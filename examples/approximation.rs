//! Function approximation on faulty silicon: the accelerator fits a
//! sine through the Q6.10 datapath, defects are injected, and
//! retraining restores the fit — the paper's claim that "the ANN design
//! would be the same for approximation tasks".
//!
//! ```sh
//! cargo run --release --example approximation
//! ```

use dta::ann::{FaultPlan, Mlp, RegressionSet, RegressionTrainer, Topology};
use dta::circuits::FaultModel;
use dta::fixed::SigmoidLut;
use rand::SeedableRng;

fn plot(mlp: &Mlp, set: &RegressionSet, faults: Option<&mut FaultPlan>) {
    let lut = SigmoidLut::new();
    let mut faults = faults;
    const COLS: usize = 64;
    const ROWS: usize = 12;
    let mut grid = vec![[b' '; COLS]; ROWS];
    // `c` picks a column across every row of the row-major grid.
    #[allow(clippy::needless_range_loop)]
    for c in 0..COLS {
        let x = c as f64 / (COLS - 1) as f64;
        let target = 0.5 + 0.4 * (std::f64::consts::TAU * x).sin();
        let y = match faults.as_deref_mut() {
            Some(plan) => mlp.forward_faulty(&[x], &lut, plan).output[0],
            None => mlp.forward_fixed(&[x], &lut).output[0],
        };
        let to_row = |v: f64| ((1.0 - v) * (ROWS - 1) as f64).round() as usize;
        grid[to_row(target).min(ROWS - 1)][c] = b'.';
        grid[to_row(y).min(ROWS - 1)][c] = b'#';
    }
    for row in &grid {
        println!("  |{}", String::from_utf8_lossy(row));
    }
    println!("  ('.' = target sine, '#' = accelerator output)");
    let _ = set;
}

fn main() {
    let set = RegressionSet::from_function("sine", 1, 1, 240, 7, |x| {
        vec![0.5 + 0.4 * (std::f64::consts::TAU * x[0]).sin()]
    });
    let idx: Vec<usize> = (0..set.len()).collect();
    let trainer = RegressionTrainer::new(0.6, 0.5, 250);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    // 1. Clean fit.
    let mut mlp = Mlp::new(Topology::new(1, 10, 1), 3);
    trainer.train(&mut mlp, &set, &idx, None, &mut rng);
    println!(
        "clean fit, MSE = {:.5}",
        trainer.mse(&mlp, &set, &idx, None)
    );
    plot(&mlp, &set, None);

    // 2. Break the silicon.
    let mut plan = FaultPlan::new(90);
    for _ in 0..4 {
        plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
    }
    println!("\ninjected 4 transistor-level defects:");
    for r in plan.records() {
        println!("  - {r}");
    }
    println!(
        "MSE with fresh defects = {:.5}",
        trainer.mse(&mlp, &set, &idx, Some(&mut plan))
    );

    // 3. Retrain on the faulty silicon.
    let quick = RegressionTrainer::new(0.6, 0.5, 120);
    quick.train(&mut mlp, &set, &idx, Some(&mut plan), &mut rng);
    println!(
        "\nMSE after retraining    = {:.5}",
        quick.mse(&mlp, &set, &idx, Some(&mut plan))
    );
    plot(&mlp, &set, Some(&mut plan));
}
