//! Anatomy of a faulty operator: inject physical defects into a 4-bit
//! adder, compare transistor-level and gate-level fault models, and
//! print the reconstructed logic expressions of a defective CMOS gate
//! (the paper's §III walkthrough).
//!
//! ```sh
//! cargo run --release --example faulty_operator
//! ```

use dta::circuits::{AdderCircuit, DefectPlan, FaultModel};
use dta::logic::GateKind;
use dta::transistor::{reconstruct::reconstruct_cell, CmosCell, Defect};
use rand::SeedableRng;

fn main() {
    // --- Part 1: the paper's example gate, reconstructed. ---
    println!("== OAI22 (the complex gate of Figures 6-9) ==");
    let healthy = CmosCell::for_gate(GateKind::Oai22);
    println!("{}", healthy.schematic_text());
    let exprs = reconstruct_cell(&healthy).expect("no delay defects");
    println!("healthy:      {}", exprs[0]);

    let mut shorted = healthy.clone();
    shorted
        .inject(Defect::Short {
            stage: 0,
            transistor: 5,
        })
        .unwrap();
    let exprs = reconstruct_cell(&shorted).expect("no delay defects");
    println!("p(b) shorted: {}", exprs[0]);

    let mut opened = healthy.clone();
    opened
        .inject(Defect::Open {
            stage: 0,
            transistor: 4,
        })
        .unwrap();
    let exprs = reconstruct_cell(&opened).expect("no delay defects");
    println!(
        "p(a) open:    {}  (asymmetric: memory effect possible)",
        exprs[0]
    );

    let mut bridged = healthy.clone();
    bridged
        .inject(Defect::Bridge {
            stage: 0,
            a: 3,
            b: 4,
        })
        .unwrap();
    let exprs = reconstruct_cell(&bridged).expect("no delay defects");
    println!("n_mid~p_ab bridge: {}", exprs[0]);

    // --- Part 2: corrupt a 4-bit adder under both fault models. ---
    println!("\n== 4-bit adder, 5 random defects, both fault models ==");
    let adder = AdderCircuit::new(4);
    for model in [FaultModel::TransistorLevel, FaultModel::GateLevel] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let mut plan = DefectPlan::new(model);
        for _ in 0..5 {
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        }
        let mut sim = adder.simulator();
        plan.apply(&mut sim);

        let mut wrong = 0;
        let mut worst = 0i64;
        for a in 0..16u64 {
            for b in 0..16u64 {
                let (s, c) = adder.compute(&mut sim, a, b);
                let got = s | (u64::from(c) << 4);
                if got != a + b {
                    wrong += 1;
                    worst = worst.max((got as i64 - (a + b) as i64).abs());
                }
            }
        }
        println!("\n{model}:");
        for rec in plan.records() {
            println!("  bit {}: {}", rec.bit, rec.description);
        }
        println!("  corrupted {wrong}/256 input pairs, worst error magnitude {worst}");
    }
}
