//! Networks larger than the array: partial time-multiplexing (paper
//! §IV), pass counting, latency, and the defect-multiplication effect —
//! plus the fully time-multiplexed baseline with its fragile control
//! logic.
//!
//! ```sh
//! cargo run --release --example large_network
//! ```

use dta::ann::{Mlp, Topology};
use dta::core::large::LargeNetworkMapper;
use dta::core::TimeMultiplexedAccelerator;
use rand::SeedableRng;

fn main() {
    let physical = Topology::accelerator();
    let mut mapper = LargeNetworkMapper::new(physical);

    println!("physical array: {physical}, {} slots\n", mapper.slots());
    println!(
        "{:<24}{:>8}{:>8}{:>14}",
        "logical network", "jobs", "passes", "latency"
    );
    for logical in [
        Topology::new(90, 10, 10),  // fits exactly: 1 pass
        Topology::new(200, 16, 10), // wide inputs
        Topology::new(784, 30, 10), // MNIST-sized
        Topology::new(784, 300, 10),
    ] {
        println!(
            "{:<24}{:>8}{:>8}{:>11.1} ns",
            logical.to_string(),
            mapper.jobs(logical),
            mapper.passes(logical),
            mapper.latency_ns(logical)
        );
    }

    // Functional check: a 784-input network actually runs, chunked.
    let logical = Topology::new(784, 30, 10);
    let mlp = Mlp::new(logical, 3);
    let x: Vec<f64> = (0..784).map(|i| (i % 17) as f64 / 17.0).collect();
    let trace = mapper.forward(&mlp, &x);
    println!(
        "\n784-input forward pass produced {} outputs; predicted class {}",
        trace.output.len(),
        trace.predicted()
    );

    // Defect multiplication under partial time-multiplexing.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    mapper.inject_random_defect(&mut rng);
    println!(
        "1 physical defect is seen {}x by the {} network (defect multiplication)",
        mapper.defect_multiplier(logical),
        logical
    );

    // The fully time-multiplexed baseline: control logic is a large,
    // catastrophic target.
    println!("\n== fully time-multiplexed baseline (2 shared neurons) ==");
    let mut tm = TimeMultiplexedAccelerator::new(2);
    let (d, s, c) = tm.transistor_budget();
    let total = (d + s + c) as f64;
    println!(
        "transistor shares: datapath {:.0}%, SRAM {:.0}%, control {:.0}%",
        d as f64 / total * 100.0,
        s as f64 / total * 100.0,
        c as f64 / total * 100.0
    );
    let mut injected = 0;
    while !tm.is_broken() {
        tm.inject_random_defect(&mut rng);
        injected += 1;
    }
    println!(
        "random defect #{injected} landed in the control logic: accelerator wrecked \
         (the spatial design has no such single point of failure)"
    );
}
