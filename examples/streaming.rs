//! Streaming rows through the DMA double buffer into the accelerator —
//! the high-performance deployment of §IV: the memory system fills the
//! back buffer while the array processes the front one, sustaining one
//! row per 14.92 ns.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use dta::ann::{Mlp, Topology};
use dta::core::accelerator::Accelerator;
use dta::core::MemoryInterface;
use dta::datasets::suite;
use dta::fixed::Fx;
use rand::SeedableRng;

fn main() {
    let ds = suite::load("robot").expect("robot is in the suite");
    println!("streaming task: {ds}");
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // Train a 90-input classifier (robot uses the full array width).
    let mut accel = Accelerator::new();
    accel
        .map_network(Mlp::new(Topology::new(90, 6, 5), 9))
        .unwrap();
    accel.retrain(&ds, &idx, 0.2, 0.1, 25, &mut rng).unwrap();

    // Stream every row through the DMA: push into the double buffer,
    // take into the array, classify.
    let mut dma = MemoryInterface::paper_config();
    let mut correct = 0usize;
    let mut pending: Vec<(Vec<Fx>, usize)> = ds
        .samples()
        .iter()
        .map(|s| {
            (
                s.features.iter().map(|&v| Fx::from_f64(v)).collect(),
                s.label,
            )
        })
        .collect();
    let mut labels = std::collections::VecDeque::new();

    let total = pending.len();
    pending.reverse();
    while !pending.is_empty() || labels.front().is_some() {
        // Memory side: fill the double buffer while there is room.
        while dma.ready() {
            let Some((row, label)) = pending.pop() else {
                break;
            };
            dma.push_row(row);
            labels.push_back(label);
        }
        // Accelerator side: drain one row per "cycle".
        if let Some(row) = dma.take_row() {
            let features: Vec<f64> = row.iter().map(|x| x.to_f64()).collect();
            let class = accel.classify(&features).unwrap();
            if class == labels.pop_front().unwrap() {
                correct += 1;
            }
        }
    }

    let (pushed, taken, stalls) = dma.stats();
    println!("streamed {total} rows: {pushed} pushed, {taken} processed, {stalls} DMA stalls");
    println!(
        "streaming accuracy: {:.1}%",
        correct as f64 / total as f64 * 100.0
    );

    let cost = accel.cost();
    let bw = dma.bandwidth_report(cost.latency_ns);
    println!("\nsteady-state: {bw}");
    println!(
        "one full weight reload costs {} interface cycles ({:.2} µs)",
        dma.weight_reload_report().cycles,
        dma.weight_reload_report().time_us
    );
    println!(
        "throughput at {:.2} ns/row: {:.1} M rows/s, {:.1} µJ per million rows",
        cost.latency_ns,
        1e3 / cost.latency_ns,
        cost.energy_per_row_nj * 1e6 / 1e3
    );
}
