//! A miniature Figure 10 campaign: accuracy vs. defect count with
//! retraining, on two benchmark tasks.
//!
//! ```sh
//! cargo run --release --example defect_campaign
//! ```

use dta::circuits::FaultModel;
use dta::core::campaign::{defect_tolerance_curve, CampaignConfig};
use dta::datasets::suite;

fn main() {
    let cfg = CampaignConfig {
        defect_counts: vec![0, 4, 8, 12, 20],
        repetitions: 2,
        folds: 3,
        epochs: Some(30),
        model: FaultModel::TransistorLevel,
        seed: 7,
        threads: 0, // all available cores; results match --threads 1 exactly
        ..CampaignConfig::default()
    };

    println!("accuracy after retraining vs. number of injected defects");
    println!("(transistor-level faults in the input/hidden stage)\n");
    print!("{:<12}", "task");
    for &d in &cfg.defect_counts {
        print!("{d:>8}");
    }
    println!();

    for name in ["iris", "wine"] {
        let spec = suite::specs()
            .into_iter()
            .find(|s| s.name == name)
            .expect("task exists");
        let curve = defect_tolerance_curve(&spec, &cfg).expect("valid campaign config");
        print!("{name:<12}");
        for p in &curve {
            print!("{:>7.1}%", p.mean_accuracy * 100.0);
        }
        println!();
    }

    println!(
        "\nThe paper's Figure 10 shape: accuracy holds up to ~12 defects \
         for every task because retraining silences the faulty elements."
    );
}
