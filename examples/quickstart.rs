//! Quickstart: train a classifier, map it onto the accelerator, break
//! the silicon, retrain, and watch the accuracy recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dta::ann::{Mlp, Topology};
use dta::circuits::FaultModel;
use dta::core::accelerator::Accelerator;
use dta::datasets::suite;
use rand::SeedableRng;

fn main() {
    let ds = suite::load("wine").expect("wine is in the suite");
    println!("task: {ds}");
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // 1. Train a 13-4-3 network on the companion core (forward passes
    //    run through the hardware Q6.10 datapath).
    let mut accel = Accelerator::new();
    println!("accelerator geometry: {}", accel.geometry());
    accel
        .map_network(Mlp::new(Topology::new(13, 4, 3), 42))
        .expect("13-4-3 fits the 90-10-10 array");
    accel
        .retrain(&ds, &idx, 0.2, 0.1, 60, &mut rng)
        .expect("network is mapped");
    let clean = accel.evaluate(&ds, &idx).expect("mapped");
    println!("clean accuracy:              {:.1}%", clean * 100.0);

    // 2. Break the silicon: 8 random transistor-level defects in the
    //    input/hidden stage.
    let reports = accel
        .inject_defects(8, FaultModel::TransistorLevel, &mut rng)
        .expect("quiescent array");
    println!("injected {} transistor-level defects:", reports.len());
    for r in &reports {
        println!("  - {r}");
    }
    let degraded = accel.evaluate(&ds, &idx).expect("mapped");
    println!("accuracy with fresh defects: {:.1}%", degraded * 100.0);

    // 3. Retrain on the faulty silicon: back-propagation silences the
    //    defective elements.
    accel
        .retrain(&ds, &idx, 0.2, 0.1, 60, &mut rng)
        .expect("network is mapped");
    let recovered = accel.evaluate(&ds, &idx).expect("mapped");
    println!("accuracy after retraining:   {:.1}%", recovered * 100.0);

    // 4. What did this cost?
    let cost = accel.cost();
    println!("\n90nm cost model: {cost}");
    println!(
        "energy spent on {} rows: {:.1} µJ",
        accel.rows_processed(),
        accel.energy_spent_nj() / 1000.0
    );
}
