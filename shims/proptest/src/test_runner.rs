//! Config, error type, and the deterministic case generator.

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a hash of a string; seeds each property's generator from its
/// fully qualified name so runs are reproducible.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 stream driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// New stream from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` (widening multiply).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
