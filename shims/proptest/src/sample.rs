//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly among a fixed set of values.
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

/// Uniform choice from `items`.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one item");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}
