//! The `Strategy` trait and primitive strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
