//! Collection strategies (`prop::collection::vec`).

use core::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_incl: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_incl: n,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy: each element from `element`, length within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_incl - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
