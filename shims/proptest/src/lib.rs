#![warn(missing_docs)]

//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range/`any`/tuple/`prop_map` strategies,
//! `prop::collection::vec`, `prop::sample::select`, and the
//! `prop_assert*` macros.
//!
//! Unlike the upstream crate this shim does **no shrinking** — a failing
//! case reports its case number and message and panics immediately. Case
//! generation is deterministic: the stream is seeded from the test's
//! module path and name, so failures reproduce exactly across runs.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current property case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: both sides equal `{:?}`",
            format!($($fmt)+),
            left
        );
    }};
}

/// Declares property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::fnv1a(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::new(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)*
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}/{} (offline shim, no shrinking): {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e.message()
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}
