//! `any::<T>()` — full-domain strategies for primitive types.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}
