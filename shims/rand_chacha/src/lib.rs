#![warn(missing_docs)]

//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream
//! generator behind the [`ChaCha8Rng`] name.
//!
//! The block function is the genuine RFC 8439 ChaCha core at 8 rounds
//! (keyed by the 32-byte seed, 64-bit block counter, zero nonce), so
//! streams are high-quality and deterministic per seed. Word-for-word
//! equality with the upstream crate's stream layout is not guaranteed
//! and nothing in this workspace depends on it — campaigns only require
//! determinism of a seeded stream.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8-based deterministic random generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit counter, zero nonce.
        let mut x = [0u32; 16];
        x[0] = 0x6170_7865;
        x[1] = 0x3320_646E;
        x[2] = 0x7962_2D32;
        x[3] = 0x6B20_6574;
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        let input = x;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, (word, init)) in self.buf.iter_mut().zip(x.iter().zip(input.iter())) {
            *out = word.wrapping_add(*init);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xD7A);
        let mut b = ChaCha8Rng::seed_from_u64(0xD7A);
        let mut c = ChaCha8Rng::seed_from_u64(0xD7B);
        let mut differs = false;
        for _ in 0..100 {
            let va = a.next_u64();
            assert_eq!(va, b.next_u64());
            differs |= va != c.next_u64();
        }
        assert!(differs, "distinct seeds must produce distinct streams");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn words_are_not_constant_or_trivially_correlated() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        assert_eq!(distinct.len(), words.len());
        let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        // 64 words x 64 bits: expect ~2048 set bits; allow wide slack.
        assert!((1600..2500).contains(&ones), "popcount {ones}");
    }
}
