#![warn(missing_docs)]

//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use: `Criterion::default().sample_size(n)`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — calibrate an iteration count
//! targeting a few milliseconds per sample, take `sample_size` samples,
//! report min/median/mean per iteration. No statistical regression
//! analysis, plots, or HTML reports. When a bench binary is invoked with
//! `--test` (as `cargo test --benches` does), every benchmark runs one
//! iteration and is reported as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);
/// Wall-time ceiling for one benchmark's measurement loop.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// Benchmark driver. Mirrors the `criterion::Criterion` builder API.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 30,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{id}: ok (test mode, 1 iteration)");
            return self;
        }

        // Calibrate: grow the iteration count until one sample costs
        // at least SAMPLE_TARGET.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(4);
        }

        let started = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
            if started.elapsed() > BENCH_BUDGET {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<40} time: [min {} median {} mean {}] ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
            iters,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timer handle passed to each benchmark closure.
#[derive(Clone, Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`; only this loop is measured, so setup
    /// done outside `iter` is free, matching upstream semantics.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group. Both upstream forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: true,
        };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn fmt_time_picks_unit() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
