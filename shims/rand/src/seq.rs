//! Sequence helpers: shuffling and uniform element choice.

use crate::Rng;

/// In-place uniform shuffling.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Uniform random element selection from an indexable sequence.
pub trait IndexedRandom<T> {
    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T>;
}

impl<T> IndexedRandom<T> for [T] {
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert_eq!(seen, [true; 4]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
