#![warn(missing_docs)]

//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the small surface it needs: [`RngCore`], [`SeedableRng`]
//! (including the SplitMix64-based `seed_from_u64`), the [`Rng`]
//! extension trait with `random_range`/`random_bool`, slice helpers in
//! [`seq`], and a [`rngs::StdRng`]. Distributions are sampled with a
//! fixed-point widening multiply (integers) or a 53-bit mantissa scale
//! (floats); streams are deterministic for a given seed, which is all
//! the simulator requires. Swap the workspace dependency back to a
//! crates.io version requirement to restore the upstream crate.

pub mod rngs;
pub mod seq;

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-width byte seed.
pub trait SeedableRng: Sized {
    /// Seed byte array (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, as `rand_core`
    /// does, then seeds the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(4) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Maps 64 random bits to a double in `[0, 1)` with 53 bits of
/// precision.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable uniformly from their whole domain via
/// [`Rng::random`].
pub trait Random {
    /// Draws one uniform value.
    fn random_from<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! int_random {
    ($($t:ty),* $(,)?) => {$(
        impl Random for $t {
            fn random_from<G: RngCore + ?Sized>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random_from<G: RngCore + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// Extension methods every [`RngCore`] gets for free.
pub trait Rng: RngCore {
    /// Draws a uniform value over `T`'s whole domain (unit interval for
    /// floats).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw one uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=4u32);
            assert!(w <= 4);
            let f = rng.random_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
