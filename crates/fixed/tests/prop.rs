//! Property-based tests for the Q6.10 datapath numeric.

use dta_fixed::{Fx, QFormat, SigmoidLut};
use proptest::prelude::*;

fn any_fx() -> impl Strategy<Value = Fx> {
    any::<i16>().prop_map(Fx::from_raw)
}

proptest! {
    #[test]
    fn add_commutes(a in any_fx(), b in any_fx()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn mul_commutes(a in any_fx(), b in any_fx()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn add_identity(a in any_fx()) {
        prop_assert_eq!(a + Fx::ZERO, a);
        prop_assert_eq!(a - Fx::ZERO, a);
    }

    #[test]
    fn mul_identity(a in any_fx()) {
        prop_assert_eq!(a * Fx::ONE, a);
    }

    #[test]
    fn mul_zero(a in any_fx()) {
        prop_assert_eq!(a * Fx::ZERO, Fx::ZERO);
    }

    #[test]
    fn add_matches_f64_when_in_range(a in -15.0f64..15.0, b in -15.0f64..15.0) {
        let fa = Fx::from_f64(a);
        let fb = Fx::from_f64(b);
        let sum = (fa + fb).to_f64();
        // Exact: both operands are on the grid and the sum is in range.
        prop_assert_eq!(sum, fa.to_f64() + fb.to_f64());
    }

    #[test]
    fn mul_error_bounded(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let fa = Fx::from_f64(a);
        let fb = Fx::from_f64(b);
        let exact = fa.to_f64() * fb.to_f64();
        let got = (fa * fb).to_f64();
        // Truncating multiply loses at most one LSB.
        prop_assert!(got <= exact + 1e-12);
        prop_assert!(exact - got <= Fx::RESOLUTION + 1e-12);
    }

    #[test]
    fn saturating_ops_stay_in_range(a in any_fx(), b in any_fx()) {
        for v in [a + b, a - b, a * b, -a, a.abs()] {
            prop_assert!(v >= Fx::MIN && v <= Fx::MAX);
        }
    }

    #[test]
    fn wrapping_add_is_group_op(a in any_fx(), b in any_fx()) {
        // wrapping add then wrapping sub recovers the original value.
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
    }

    #[test]
    fn from_f64_to_f64_error_half_ulp(x in -31.9f64..31.9) {
        let err = (Fx::from_f64(x).to_f64() - x).abs();
        prop_assert!(err <= Fx::RESOLUTION / 2.0 + 1e-12);
    }

    #[test]
    fn qformat_quantize_within_resolution(x in -20.0f64..20.0,
                                          frac in 2u32..12) {
        let q = QFormat::new(6, frac);
        let y = q.quantize(x);
        prop_assert!((x - y).abs() <= q.resolution() + 1e-12);
        prop_assert!(y <= x + 1e-12, "floor quantization never rounds up");
    }

    #[test]
    fn sigmoid_lut_close_to_exact(x in -12.0f64..12.0) {
        let lut = SigmoidLut::new();
        let approx = lut.eval(Fx::from_f64(x)).to_f64();
        let exact = dta_fixed::sigmoid::sigmoid(x);
        prop_assert!((approx - exact).abs() < 0.02);
    }

    #[test]
    fn sigmoid_lut_bit_exact_vs_bits_roundtrip(raw in any::<i16>()) {
        // Feeding the wire word through bits round-trips the evaluation.
        let lut = SigmoidLut::new();
        let x = Fx::from_raw(raw);
        prop_assert_eq!(lut.eval(Fx::from_bits(x.to_bits())), lut.eval(x));
    }
}
