//! Runtime-parameterized Qm.n formats for precision-ablation experiments.

use std::fmt;

/// A signed fixed-point format with a runtime-chosen number of integral and
/// fractional bits, used to quantize an `f64` computation to an arbitrary
/// precision.
///
/// The paper states that "fixed-point computations with as little as 8 bits
/// have been shown to achieve similar accuracy for a broad range of
/// problems" and picks Q6.10; the `exp_ablation_fixed` experiment sweeps
/// formats with this type to verify that claim on our benchmark suite.
///
/// # Example
///
/// ```
/// use dta_fixed::QFormat;
/// let q = QFormat::new(6, 10); // the accelerator's Q6.10
/// assert_eq!(q.total_bits(), 16);
/// assert_eq!(q.quantize(0.299_999), 0.2998046875); // floor to 2^-10
/// assert_eq!(q.quantize(1000.0), q.max_value());   // saturates
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QFormat {
    int_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Creates a Qm.n format with `int_bits` integral bits (including the
    /// sign bit) and `frac_bits` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `int_bits == 0` or `int_bits + frac_bits > 32`.
    pub fn new(int_bits: u32, frac_bits: u32) -> QFormat {
        assert!(int_bits >= 1, "need at least the sign bit");
        assert!(
            int_bits + frac_bits <= 32,
            "formats wider than 32 bits are not supported"
        );
        QFormat {
            int_bits,
            frac_bits,
        }
    }

    /// The paper's datapath format, Q6.10.
    pub fn q6_10() -> QFormat {
        QFormat::new(6, 10)
    }

    /// Number of integral bits (including sign).
    pub fn int_bits(self) -> u32 {
        self.int_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Total word width in bits.
    pub fn total_bits(self) -> u32 {
        self.int_bits + self.frac_bits
    }

    /// Resolution (value of one least-significant bit).
    pub fn resolution(self) -> f64 {
        (2.0f64).powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    pub fn max_value(self) -> f64 {
        let max_raw = (1i64 << (self.total_bits() - 1)) - 1;
        max_raw as f64 * self.resolution()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(self) -> f64 {
        let min_raw = -(1i64 << (self.total_bits() - 1));
        min_raw as f64 * self.resolution()
    }

    /// Quantizes `x` to this format: floor to the resolution grid (matching
    /// the truncating hardware datapath) and saturate at the range bounds.
    /// NaN maps to zero.
    pub fn quantize(self, x: f64) -> f64 {
        if x.is_nan() {
            return 0.0;
        }
        let scale = (1u64 << self.frac_bits) as f64;
        let raw = (x * scale).floor();
        let max_raw = ((1i64 << (self.total_bits() - 1)) - 1) as f64;
        let min_raw = (-(1i64 << (self.total_bits() - 1))) as f64;
        raw.clamp(min_raw, max_raw) / scale
    }

    /// Quantizes with round-to-nearest instead of floor (used when loading
    /// trained weights into the accelerator, which rounds once at load
    /// time).
    pub fn quantize_round(self, x: f64) -> f64 {
        if x.is_nan() {
            return 0.0;
        }
        let scale = (1u64 << self.frac_bits) as f64;
        let raw = (x * scale).round();
        let max_raw = ((1i64 << (self.total_bits() - 1)) - 1) as f64;
        let min_raw = (-(1i64 << (self.total_bits() - 1))) as f64;
        raw.clamp(min_raw, max_raw) / scale
    }
}

impl Default for QFormat {
    /// The accelerator's Q6.10.
    fn default() -> QFormat {
        QFormat::q6_10()
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fx;

    #[test]
    fn q6_10_bounds_match_fx() {
        let q = QFormat::q6_10();
        assert_eq!(q.max_value(), Fx::MAX.to_f64());
        assert_eq!(q.min_value(), Fx::MIN.to_f64());
        assert_eq!(q.resolution(), Fx::RESOLUTION);
    }

    #[test]
    fn quantize_floors() {
        let q = QFormat::new(2, 2); // resolution 0.25, range [-2, 1.75]
        assert_eq!(q.quantize(0.6), 0.5);
        assert_eq!(q.quantize(-0.6), -0.75);
        assert_eq!(q.quantize(0.25), 0.25);
    }

    #[test]
    fn quantize_saturates() {
        let q = QFormat::new(2, 2);
        assert_eq!(q.quantize(100.0), 1.75);
        assert_eq!(q.quantize(-100.0), -2.0);
        assert_eq!(q.quantize(f64::NAN), 0.0);
    }

    #[test]
    fn quantize_round_rounds() {
        let q = QFormat::new(2, 2);
        assert_eq!(q.quantize_round(0.6), 0.5);
        assert_eq!(q.quantize_round(0.7), 0.75);
        assert_eq!(q.quantize_round(-0.6), -0.5);
    }

    #[test]
    fn display() {
        assert_eq!(QFormat::q6_10().to_string(), "Q6.10");
    }

    #[test]
    #[should_panic(expected = "sign bit")]
    fn zero_int_bits_rejected() {
        let _ = QFormat::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "wider than 32")]
    fn too_wide_rejected() {
        let _ = QFormat::new(16, 17);
    }

    #[test]
    fn quantize_is_idempotent() {
        let q = QFormat::new(4, 6);
        for x in [-7.99, -1.0, 0.0, 0.015625, std::f64::consts::PI, 7.98] {
            let once = q.quantize(x);
            assert_eq!(q.quantize(once), once);
        }
    }
}
