//! The sigmoid activation function and its 16-segment piecewise-linear
//! hardware approximation.
//!
//! The paper implements the activation function "using a piecewise linear
//! approximation using a small look-up table (`x -> f(x) = a_i*x + b_i`)"
//! with 16 segments, observed to have "no noticeable impact on the network
//! accuracy compared to the original sigmoid".

use crate::Fx;

/// Exact logistic sigmoid `1 / (1 + e^-x)`.
///
/// # Example
///
/// ```
/// assert_eq!(dta_fixed::sigmoid::sigmoid(0.0), 0.5);
/// ```
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of the sigmoid expressed in terms of its *output* `y`:
/// `f'(x) = y * (1 - y)`. Back-propagation uses this form because the
/// forward pass already produced `y`.
#[inline]
pub fn sigmoid_derivative_from_output(y: f64) -> f64 {
    y * (1.0 - y)
}

/// One segment of the piecewise-linear approximation: `f(x) ≈ a*x + b`,
/// with both coefficients quantized to Q6.10 exactly as stored in the
/// hardware look-up table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Slope coefficient.
    pub a: Fx,
    /// Offset coefficient.
    pub b: Fx,
}

/// Number of segments in the hardware look-up table.
pub const NUM_SEGMENTS: usize = 16;

/// Lower edge of the approximated domain; below it the unit outputs 0.
pub const DOMAIN_MIN: f64 = -8.0;

/// Upper edge of the approximated domain; at or above it the unit outputs 1.
pub const DOMAIN_MAX: f64 = 8.0;

/// The 16-entry sigmoid look-up table of the activation unit.
///
/// Each of the 16 unit-width segments covering `[-8, 8)` stores a
/// Q6.10 `(a_i, b_i)` pair obtained by chord interpolation of the exact
/// sigmoid at the segment endpoints. Evaluation is one table read, one
/// multiply and one add — the same three operations as the hardware unit,
/// so [`SigmoidLut::eval`] is bit-exact with the gate-level activation
/// circuit in `dta-circuits`.
///
/// # Example
///
/// ```
/// use dta_fixed::{Fx, SigmoidLut};
/// let lut = SigmoidLut::new();
/// assert_eq!(lut.eval(Fx::ZERO).to_f64(), 0.5);
/// assert_eq!(lut.eval(Fx::from_f64(20.0)), Fx::ONE);
/// assert_eq!(lut.eval(Fx::from_f64(-20.0)), Fx::ZERO);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SigmoidLut {
    segments: [Segment; NUM_SEGMENTS],
}

impl SigmoidLut {
    /// Builds the table by chord-interpolating the exact sigmoid over each
    /// unit-width segment of `[-8, 8)` and rounding coefficients to Q6.10.
    pub fn new() -> SigmoidLut {
        let mut segments = [Segment {
            a: Fx::ZERO,
            b: Fx::ZERO,
        }; NUM_SEGMENTS];
        for (i, seg) in segments.iter_mut().enumerate() {
            let x0 = DOMAIN_MIN + i as f64;
            let x1 = x0 + 1.0;
            let y0 = sigmoid(x0);
            let y1 = sigmoid(x1);
            let a = y1 - y0; // divided by (x1 - x0) == 1
            let b = y0 - a * x0;
            seg.a = Fx::from_f64(a);
            seg.b = Fx::from_f64(b);
        }
        SigmoidLut { segments }
    }

    /// Returns the table contents (what the hardware LUT stores).
    pub fn segments(&self) -> &[Segment; NUM_SEGMENTS] {
        &self.segments
    }

    /// Maps an input to its segment index, or the saturated rail.
    ///
    /// The hardware derives the index from the integral part of `x`
    /// (bits `[15:10]`): values below −8 saturate to 0, values at or above
    /// +8 saturate to 1, everything else selects one of the 16 entries.
    pub fn index(&self, x: Fx) -> LutIndex {
        let int_part = (x.raw() >> Fx::FRAC_BITS) as i32; // floor(x)
        if int_part < DOMAIN_MIN as i32 {
            LutIndex::RailLow
        } else if int_part >= DOMAIN_MAX as i32 {
            LutIndex::RailHigh
        } else {
            LutIndex::Segment((int_part - DOMAIN_MIN as i32) as usize)
        }
    }

    /// Evaluates the approximation with Q6.10 arithmetic:
    /// `clamp(a_i * x + b_i, 0, 1)`.
    pub fn eval(&self, x: Fx) -> Fx {
        match self.index(x) {
            LutIndex::RailLow => Fx::ZERO,
            LutIndex::RailHigh => Fx::ONE,
            LutIndex::Segment(i) => {
                let seg = self.segments[i];
                let y = seg.a * x + seg.b;
                y.clamp(Fx::ZERO, Fx::ONE)
            }
        }
    }

    /// Evaluates the same piecewise-linear approximation in `f64`
    /// (quantized coefficients, exact arithmetic) — used to isolate the
    /// approximation error from the datapath quantization error in the
    /// sigmoid ablation.
    pub fn eval_f64(&self, x: f64) -> f64 {
        if x < DOMAIN_MIN {
            0.0
        } else if x >= DOMAIN_MAX {
            1.0
        } else {
            let i = (x - DOMAIN_MIN).floor() as usize;
            let seg = self.segments[i.min(NUM_SEGMENTS - 1)];
            (seg.a.to_f64() * x + seg.b.to_f64()).clamp(0.0, 1.0)
        }
    }

    /// Maximum absolute error of [`SigmoidLut::eval`] against the exact
    /// sigmoid, scanned over every representable Q6.10 input.
    pub fn max_abs_error(&self) -> f64 {
        let mut worst = 0.0f64;
        for raw in i16::MIN..=i16::MAX {
            let x = Fx::from_raw(raw);
            let err = (self.eval(x).to_f64() - sigmoid(x.to_f64())).abs();
            worst = worst.max(err);
        }
        worst
    }
}

impl Default for SigmoidLut {
    fn default() -> SigmoidLut {
        SigmoidLut::new()
    }
}

/// A runtime-parameterized piecewise-linear sigmoid over `[-8, 8)` with
/// any segment count — the design-space companion of the fixed 16-entry
/// hardware [`SigmoidLut`], used by the segment-count ablation ("we
/// empirically observed that approximating the function with 16 segments
/// has no noticeable impact").
///
/// # Example
///
/// ```
/// use dta_fixed::sigmoid::PwlSigmoid;
/// let coarse = PwlSigmoid::new(4);
/// let fine = PwlSigmoid::new(64);
/// assert!(fine.max_abs_error() < coarse.max_abs_error());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PwlSigmoid {
    /// `(a_i, b_i)` per segment, in f64 (no coefficient quantization, so
    /// this isolates the segmentation error).
    segments: Vec<(f64, f64)>,
}

impl PwlSigmoid {
    /// Builds an `n`-segment chord approximation of the sigmoid over
    /// `[-8, 8)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_segments` is zero.
    pub fn new(n_segments: usize) -> PwlSigmoid {
        assert!(n_segments >= 1, "need at least one segment");
        let width = (DOMAIN_MAX - DOMAIN_MIN) / n_segments as f64;
        let segments = (0..n_segments)
            .map(|i| {
                let x0 = DOMAIN_MIN + i as f64 * width;
                let x1 = x0 + width;
                let a = (sigmoid(x1) - sigmoid(x0)) / width;
                let b = sigmoid(x0) - a * x0;
                (a, b)
            })
            .collect();
        PwlSigmoid { segments }
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Evaluates the approximation.
    pub fn eval(&self, x: f64) -> f64 {
        if x < DOMAIN_MIN {
            0.0
        } else if x >= DOMAIN_MAX {
            1.0
        } else {
            let width = (DOMAIN_MAX - DOMAIN_MIN) / self.segments.len() as f64;
            let i = (((x - DOMAIN_MIN) / width) as usize).min(self.segments.len() - 1);
            let (a, b) = self.segments[i];
            (a * x + b).clamp(0.0, 1.0)
        }
    }

    /// Maximum absolute error against the exact sigmoid, scanned densely
    /// over the domain.
    pub fn max_abs_error(&self) -> f64 {
        let mut worst = 0.0f64;
        let mut x = DOMAIN_MIN;
        while x < DOMAIN_MAX {
            worst = worst.max((self.eval(x) - sigmoid(x)).abs());
            x += 1.0 / 512.0;
        }
        worst
    }
}

/// Result of mapping an input to the activation-unit look-up table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LutIndex {
    /// Input below the approximated domain: output rails to 0.
    RailLow,
    /// Input above the approximated domain: output rails to 1.
    RailHigh,
    /// Input inside the domain: use segment `i`.
    Segment(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sigmoid_properties() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Symmetry: f(-x) = 1 - f(x).
        for x in [0.1, 1.0, 3.7] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_from_output() {
        let y = sigmoid(1.3);
        assert!((sigmoid_derivative_from_output(y) - y * (1.0 - y)).abs() < 1e-15);
        assert_eq!(sigmoid_derivative_from_output(0.0), 0.0);
        assert_eq!(sigmoid_derivative_from_output(1.0), 0.0);
    }

    #[test]
    fn lut_rails() {
        let lut = SigmoidLut::new();
        assert_eq!(lut.eval(Fx::from_f64(-8.001)), Fx::ZERO);
        assert_eq!(lut.eval(Fx::from_f64(-31.0)), Fx::ZERO);
        assert_eq!(lut.eval(Fx::from_f64(8.0)), Fx::ONE);
        assert_eq!(lut.eval(Fx::from_f64(30.0)), Fx::ONE);
    }

    #[test]
    fn lut_index_boundaries() {
        let lut = SigmoidLut::new();
        assert_eq!(lut.index(Fx::from_f64(-8.0)), LutIndex::Segment(0));
        assert_eq!(lut.index(Fx::from_f64(0.0)), LutIndex::Segment(8));
        assert_eq!(lut.index(Fx::from_f64(7.999)), LutIndex::Segment(15));
        assert_eq!(lut.index(Fx::from_f64(8.0)), LutIndex::RailHigh);
        // floor semantics: -0.001 has integral part -1 -> segment 7.
        assert_eq!(lut.index(Fx::from_f64(-0.5)), LutIndex::Segment(7));
    }

    #[test]
    fn lut_accuracy_within_paper_tolerance() {
        // 16 unit-width chords over [-8,8) keep the error comfortably
        // below 2% — the "no noticeable impact" regime of the paper.
        let lut = SigmoidLut::new();
        assert!(lut.max_abs_error() < 0.02, "err={}", lut.max_abs_error());
    }

    #[test]
    fn lut_monotonic_nondecreasing() {
        let lut = SigmoidLut::new();
        let mut prev = Fx::MIN;
        let mut prev_y = lut.eval(prev);
        for raw in (i16::MIN..=i16::MAX).step_by(7) {
            let x = Fx::from_raw(raw);
            let y = lut.eval(x);
            if x > prev {
                // Coefficient quantization (a_i rounded to 2^-10 over a
                // domain of |x| <= 8) can dent monotonicity by up to
                // 8 * 2^-10 at segment boundaries; never more.
                assert!(
                    y >= prev_y - Fx::from_raw(8),
                    "non-monotonic at {x}: {prev_y} -> {y}"
                );
            }
            prev = x;
            prev_y = y;
        }
    }

    #[test]
    fn lut_output_bounded() {
        let lut = SigmoidLut::new();
        for raw in (i16::MIN..=i16::MAX).step_by(13) {
            let y = lut.eval(Fx::from_raw(raw));
            assert!(y >= Fx::ZERO && y <= Fx::ONE);
        }
    }

    #[test]
    fn eval_f64_tracks_eval_fx() {
        let lut = SigmoidLut::new();
        for raw in (i16::MIN..=i16::MAX).step_by(101) {
            let x = Fx::from_raw(raw);
            let diff = (lut.eval(x).to_f64() - lut.eval_f64(x.to_f64())).abs();
            // The fixed-point path adds at most a few ulps of truncation.
            assert!(diff < 0.01, "diff={diff} at {x}");
        }
    }

    #[test]
    fn midpoint_value() {
        let lut = SigmoidLut::new();
        // sigmoid(0) = 0.5 exactly; segment 8 chord passes through it.
        assert_eq!(lut.eval(Fx::ZERO).to_f64(), 0.5);
    }

    #[test]
    fn pwl_error_shrinks_quadratically_with_segments() {
        // Chord error scales ~1/n^2: quadrupling the segments should cut
        // the error by an order of magnitude.
        let e4 = PwlSigmoid::new(4).max_abs_error();
        let e16 = PwlSigmoid::new(16).max_abs_error();
        let e64 = PwlSigmoid::new(64).max_abs_error();
        assert!(e16 < e4 / 8.0, "e4={e4} e16={e16}");
        assert!(e64 < e16 / 8.0, "e16={e16} e64={e64}");
    }

    #[test]
    fn pwl_16_matches_hardware_lut_before_quantization() {
        let pwl = PwlSigmoid::new(16);
        let lut = SigmoidLut::new();
        for raw in (i16::MIN..=i16::MAX).step_by(257) {
            let x = Fx::from_raw(raw);
            let diff = (pwl.eval(x.to_f64()) - lut.eval_f64(x.to_f64())).abs();
            // The only difference is the LUT's Q6.10 coefficient rounding.
            assert!(diff < 0.01, "diff {diff} at {x}");
        }
    }

    #[test]
    fn pwl_rails_and_bounds() {
        let pwl = PwlSigmoid::new(8);
        assert_eq!(pwl.eval(-100.0), 0.0);
        assert_eq!(pwl.eval(100.0), 1.0);
        assert_eq!(pwl.n_segments(), 8);
        for i in -1000..1000 {
            let y = pwl.eval(i as f64 / 50.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        let _ = PwlSigmoid::new(0);
    }
}
