//! The Q6.10 fixed-point type [`Fx`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 16-bit signed fixed-point number in Q6.10 format (6 integral bits
/// including sign, 10 fractional bits), the datapath word of the paper's
/// accelerator.
///
/// Representable range: `[-32.0, 32.0)` with resolution `2^-10`.
///
/// Arithmetic semantics mirror the hardware:
///
/// * `+`, `-` **saturate** at the representable range (the accelerator's
///   accumulators clamp on overflow); [`Fx::wrapping_add`] exposes the raw
///   two's-complement ripple-adder behavior for circuit-equivalence tests.
/// * `*` computes the exact 32-bit product and keeps bits `[25:10]`
///   (arithmetic shift right by 10, i.e. floor), then saturates — identical
///   to the gate-level Baugh–Wooley multiplier plus output clamp.
///
/// # Example
///
/// ```
/// use dta_fixed::Fx;
/// let a = Fx::from_f64(1.5);
/// let b = Fx::from_f64(-0.25);
/// assert_eq!((a * b).to_f64(), -0.375);
/// assert_eq!((Fx::MAX + Fx::MAX), Fx::MAX); // saturation
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx(i16);

impl Fx {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 10;
    /// Scaling factor `2^FRAC_BITS`.
    pub const SCALE: i32 = 1 << Self::FRAC_BITS;
    /// Smallest positive increment (`2^-10`).
    pub const RESOLUTION: f64 = 1.0 / Self::SCALE as f64;
    /// Zero.
    pub const ZERO: Fx = Fx(0);
    /// One.
    pub const ONE: Fx = Fx(1 << Self::FRAC_BITS);
    /// Largest representable value (`32767/1024 ≈ 31.999`).
    pub const MAX: Fx = Fx(i16::MAX);
    /// Smallest representable value (`-32.0`).
    pub const MIN: Fx = Fx(i16::MIN);

    /// Creates a value from its raw two's-complement bit pattern.
    #[inline]
    pub const fn from_raw(raw: i16) -> Fx {
        Fx(raw)
    }

    /// Returns the raw two's-complement representation.
    #[inline]
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Returns the 16 bits as an unsigned word, LSB-first when indexed by
    /// `(bits >> i) & 1`; this is the word driven onto the accelerator's
    /// internal wires.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0 as u16
    }

    /// Reconstructs a value from a 16-bit wire word.
    #[inline]
    pub const fn from_bits(bits: u16) -> Fx {
        Fx(bits as i16)
    }

    /// Converts from `f64`, rounding to nearest and saturating at the
    /// representable range. NaN maps to zero.
    #[inline]
    pub fn from_f64(x: f64) -> Fx {
        if x.is_nan() {
            return Fx::ZERO;
        }
        let scaled = (x * Self::SCALE as f64).round();
        Fx(scaled.clamp(i16::MIN as f64, i16::MAX as f64) as i16)
    }

    /// Converts to `f64` exactly (every `Fx` is exactly representable).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE as f64
    }

    /// Two's-complement (wrapping) addition — the raw behavior of the
    /// 16-bit ripple-carry adder before the saturation stage.
    #[inline]
    pub fn wrapping_add(self, rhs: Fx) -> Fx {
        Fx(self.0.wrapping_add(rhs.0))
    }

    /// Two's-complement (wrapping) subtraction.
    #[inline]
    pub fn wrapping_sub(self, rhs: Fx) -> Fx {
        Fx(self.0.wrapping_sub(rhs.0))
    }

    /// Truncating multiply without the final saturation stage: keeps bits
    /// `[25:10]` of the 32-bit product, discarding the upper bits. This is
    /// what a bare 16×16→16 hardware multiplier slice produces.
    #[inline]
    pub fn wrapping_mul(self, rhs: Fx) -> Fx {
        let prod = (self.0 as i32) * (rhs.0 as i32);
        Fx((prod >> Self::FRAC_BITS) as i16)
    }

    /// Saturating addition (the operator behind `+`).
    #[inline]
    pub fn saturating_add(self, rhs: Fx) -> Fx {
        Fx(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (the operator behind `-`).
    #[inline]
    pub fn saturating_sub(self, rhs: Fx) -> Fx {
        Fx(self.0.saturating_sub(rhs.0))
    }

    /// Saturating truncating multiply (the operator behind `*`): exact
    /// 32-bit product, arithmetic shift right by 10, clamp to 16 bits.
    #[inline]
    pub fn saturating_mul(self, rhs: Fx) -> Fx {
        let prod = (self.0 as i32) * (rhs.0 as i32);
        let shifted = prod >> Self::FRAC_BITS;
        Fx(shifted.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Absolute value, saturating (`|MIN|` clamps to `MAX`).
    #[inline]
    pub fn abs(self) -> Fx {
        Fx(self.0.saturating_abs())
    }

    /// Returns `true` if the value is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl From<i16> for Fx {
    /// Converts an integer count of Q6.10 *units* (i.e. raw representation).
    fn from(raw: i16) -> Fx {
        Fx(raw)
    }
}

impl From<Fx> for f64 {
    fn from(x: Fx) -> f64 {
        x.to_f64()
    }
}

impl Add for Fx {
    type Output = Fx;
    #[inline]
    fn add(self, rhs: Fx) -> Fx {
        self.saturating_add(rhs)
    }
}

impl Sub for Fx {
    type Output = Fx;
    #[inline]
    fn sub(self, rhs: Fx) -> Fx {
        self.saturating_sub(rhs)
    }
}

impl Mul for Fx {
    type Output = Fx;
    #[inline]
    fn mul(self, rhs: Fx) -> Fx {
        self.saturating_mul(rhs)
    }
}

impl Div for Fx {
    type Output = Fx;
    /// Fixed-point division `(a << 10) / b`, saturating.
    ///
    /// # Panics
    ///
    /// Panics on division by zero, like integer division.
    #[inline]
    fn div(self, rhs: Fx) -> Fx {
        let num = (self.0 as i32) << Self::FRAC_BITS;
        let q = num / rhs.0 as i32;
        Fx(q.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }
}

impl Neg for Fx {
    type Output = Fx;
    #[inline]
    fn neg(self) -> Fx {
        Fx(self.0.saturating_neg())
    }
}

impl AddAssign for Fx {
    fn add_assign(&mut self, rhs: Fx) {
        *self = *self + rhs;
    }
}

impl SubAssign for Fx {
    fn sub_assign(&mut self, rhs: Fx) {
        *self = *self - rhs;
    }
}

impl MulAssign for Fx {
    fn mul_assign(&mut self, rhs: Fx) {
        *self = *self * rhs;
    }
}

impl Sum for Fx {
    fn sum<I: Iterator<Item = Fx>>(iter: I) -> Fx {
        iter.fold(Fx::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Debug for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fx({})", self.to_f64())
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl fmt::Binary for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&(self.0 as u16), f)
    }
}

impl fmt::LowerHex for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&(self.0 as u16), f)
    }
}

impl fmt::UpperHex for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&(self.0 as u16), f)
    }
}

impl fmt::Octal for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&(self.0 as u16), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Fx::ZERO.to_f64(), 0.0);
        assert_eq!(Fx::ONE.to_f64(), 1.0);
        assert_eq!(Fx::MIN.to_f64(), -32.0);
        assert!((Fx::MAX.to_f64() - 32.0).abs() < 0.001);
    }

    #[test]
    fn roundtrip_f64() {
        for raw in [-32768i16, -1024, -1, 0, 1, 512, 1024, 32767] {
            let x = Fx::from_raw(raw);
            assert_eq!(Fx::from_f64(x.to_f64()), x);
        }
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Fx::from_f64(1e9), Fx::MAX);
        assert_eq!(Fx::from_f64(-1e9), Fx::MIN);
        assert_eq!(Fx::from_f64(f64::NAN), Fx::ZERO);
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        // 0.00048828125 = half a ulp; rounds away from zero.
        assert_eq!(Fx::from_f64(Fx::RESOLUTION / 2.0).raw(), 1);
        assert_eq!(Fx::from_f64(Fx::RESOLUTION / 4.0).raw(), 0);
    }

    #[test]
    fn add_saturates() {
        assert_eq!(Fx::MAX + Fx::ONE, Fx::MAX);
        assert_eq!(Fx::MIN - Fx::ONE, Fx::MIN);
        assert_eq!(Fx::from_f64(1.5) + Fx::from_f64(2.25), Fx::from_f64(3.75));
    }

    #[test]
    fn mul_truncates_toward_neg_infinity() {
        // 3 raw units * 3 raw units = 9 / 1024 -> floor to 0 raw units.
        let tiny = Fx::from_raw(3);
        assert_eq!(tiny * tiny, Fx::ZERO);
        // Negative product truncates toward -inf: -9/1024 -> -1 raw unit.
        assert_eq!((-tiny) * tiny, Fx::from_raw(-1));
    }

    #[test]
    fn mul_matches_exact_when_representable() {
        assert_eq!(Fx::from_f64(1.5) * Fx::from_f64(-2.0), Fx::from_f64(-3.0));
        assert_eq!(Fx::from_f64(0.5) * Fx::from_f64(0.5), Fx::from_f64(0.25));
    }

    #[test]
    fn mul_saturates() {
        let big = Fx::from_f64(30.0);
        assert_eq!(big * big, Fx::MAX);
        assert_eq!(big * -big, Fx::MIN);
    }

    #[test]
    fn div_basic() {
        assert_eq!(Fx::from_f64(1.0) / Fx::from_f64(2.0), Fx::from_f64(0.5));
        assert_eq!(Fx::from_f64(3.0) / Fx::from_f64(-1.5), Fx::from_f64(-2.0));
    }

    #[test]
    fn neg_saturates_min() {
        assert_eq!(-Fx::MIN, Fx::MAX);
        assert_eq!(-Fx::ONE, Fx::from_f64(-1.0));
    }

    #[test]
    fn wrapping_matches_twos_complement() {
        assert_eq!(Fx::MAX.wrapping_add(Fx::from_raw(1)), Fx::MIN);
        let a = Fx::from_f64(31.0);
        let b = Fx::from_f64(2.0);
        assert_eq!(
            a.wrapping_add(b).raw(),
            (31.0f64 * 1024.0 + 2.0 * 1024.0) as i32 as i16
        );
    }

    #[test]
    fn bits_roundtrip() {
        for raw in [-32768i16, -1, 0, 12345] {
            let x = Fx::from_raw(raw);
            assert_eq!(Fx::from_bits(x.to_bits()), x);
        }
    }

    #[test]
    fn sum_saturates() {
        let xs = vec![Fx::from_f64(20.0); 10];
        assert_eq!(xs.into_iter().sum::<Fx>(), Fx::MAX);
    }

    #[test]
    fn ordering_and_abs() {
        assert!(Fx::from_f64(-1.0) < Fx::ZERO);
        assert!(Fx::from_f64(2.0) > Fx::ONE);
        assert_eq!(Fx::from_f64(-3.5).abs(), Fx::from_f64(3.5));
        assert_eq!(Fx::MIN.abs(), Fx::MAX);
        assert!(Fx::from_f64(-0.1).is_negative());
        assert!(!Fx::ZERO.is_negative());
    }

    #[test]
    fn formatting_nonempty() {
        let x = Fx::from_f64(-1.0);
        assert_eq!(format!("{x}"), "-1");
        assert_eq!(format!("{x:?}"), "Fx(-1)");
        assert_eq!(format!("{x:x}"), "fc00");
        assert_eq!(format!("{x:b}"), "1111110000000000");
    }
}
