#![warn(missing_docs)]

//! 16-bit fixed-point arithmetic for the defect-tolerant ANN accelerator.
//!
//! The accelerator of Temam's ISCA 2012 paper uses a 16-bit datapath with a
//! 6-bit integral part and a 10-bit fractional part (Q6.10). This crate
//! provides:
//!
//! * [`Fx`] — the Q6.10 number type used throughout the accelerator model.
//!   Multiplication truncates (floor) exactly like the hardware array
//!   multiplier that keeps bits `[25:10]` of the 32-bit product, so the
//!   behavioral model is bit-identical to the gate-level circuits in
//!   `dta-circuits`.
//! * [`QFormat`] — a runtime-parameterized Qm.n format used by the
//!   precision-ablation experiments (8/12/16/24-bit forward paths).
//! * [`sigmoid`] — the exact sigmoid, and the paper's 16-segment
//!   piecewise-linear approximation (`x -> a_i * x + b_i`, coefficients in
//!   Q6.10) backed by the same lookup table the hardware activation unit
//!   uses.
//!
//! # Example
//!
//! ```
//! use dta_fixed::{Fx, sigmoid::SigmoidLut};
//!
//! let w = Fx::from_f64(0.75);
//! let x = Fx::from_f64(-2.5);
//! let prod = w * x; // truncating Q6.10 multiply, like the hardware
//! assert!((prod.to_f64() - (-1.875)).abs() < Fx::RESOLUTION);
//!
//! let lut = SigmoidLut::new();
//! let y = lut.eval(prod);
//! assert!((y.to_f64() - 1.0 / (1.0 + (1.875f64).exp())).abs() < 0.01);
//! ```

pub mod format;
pub mod fx;
pub mod sigmoid;

pub use format::QFormat;
pub use fx::Fx;
pub use sigmoid::{PwlSigmoid, SigmoidLut};
