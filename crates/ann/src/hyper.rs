//! Hyper-parameter grid search over the paper's Table I space.

use std::fmt;

use dta_datasets::Dataset;

use crate::train::{cross_validate, ForwardMode, Trainer};

/// One hyper-parameter configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HyperParams {
    /// Hidden-layer size.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
}

impl fmt::Display for HyperParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hidden={} epochs={} lr={} momentum={}",
            self.hidden, self.epochs, self.learning_rate, self.momentum
        )
    }
}

/// A grid of hyper-parameter values.
#[derive(Clone, Debug, PartialEq)]
pub struct HyperSpace {
    /// Hidden-layer sizes to try.
    pub hidden: Vec<usize>,
    /// Epoch counts to try.
    pub epochs: Vec<usize>,
    /// Learning rates to try.
    pub learning_rates: Vec<f64>,
    /// Momentum values to try.
    pub momenta: Vec<f64>,
}

impl HyperSpace {
    /// The paper's Table I space: hidden 2..16 step 2, epochs 100..3200
    /// doubling, learning rate 0.1..0.9 step 0.1, momentum 0.1..0.9 step
    /// 0.1 — 3888 configurations.
    pub fn table1() -> HyperSpace {
        HyperSpace {
            hidden: (1..=8).map(|h| 2 * h).collect(),
            epochs: (0..6).map(|e| 100 << e).collect(),
            learning_rates: (1..=9).map(|r| r as f64 / 10.0).collect(),
            momenta: (1..=9).map(|m| m as f64 / 10.0).collect(),
        }
    }

    /// A coarse sub-grid for quick searches (still spanning the Table I
    /// ranges): 48 configurations.
    pub fn coarse() -> HyperSpace {
        HyperSpace {
            hidden: vec![2, 6, 10, 14],
            epochs: vec![100, 400],
            learning_rates: vec![0.1, 0.3, 0.5],
            momenta: vec![0.1, 0.5],
        }
    }

    /// Every configuration of the grid, in deterministic order.
    pub fn configs(&self) -> Vec<HyperParams> {
        let mut out = Vec::with_capacity(
            self.hidden.len() * self.epochs.len() * self.learning_rates.len() * self.momenta.len(),
        );
        for &hidden in &self.hidden {
            for &epochs in &self.epochs {
                for &learning_rate in &self.learning_rates {
                    for &momentum in &self.momenta {
                        out.push(HyperParams {
                            hidden,
                            epochs,
                            learning_rate,
                            momentum,
                        });
                    }
                }
            }
        }
        out
    }

    /// Number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.hidden.len() * self.epochs.len() * self.learning_rates.len() * self.momenta.len()
    }

    /// True if the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of a grid search.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchResult {
    /// The best configuration found.
    pub best: HyperParams,
    /// Its mean cross-validated accuracy.
    pub accuracy: f64,
    /// Number of configurations evaluated.
    pub evaluated: usize,
}

/// Exhaustive grid search with k-fold cross-validation on the hardware
/// (fixed-point) forward path, as the paper did per task to produce
/// Table II. Ties break toward smaller hidden layers, then fewer epochs
/// (cheaper hardware mappings).
pub fn search(ds: &Dataset, space: &HyperSpace, folds: usize, seed: u64) -> SearchResult {
    assert!(!space.is_empty(), "empty hyper-parameter space");
    let mut best: Option<(HyperParams, f64)> = None;
    let configs = space.configs();
    let evaluated = configs.len();
    for hp in configs {
        let trainer = Trainer::new(hp.learning_rate, hp.momentum, hp.epochs, ForwardMode::Fixed);
        let cv = cross_validate(&trainer, ds, hp.hidden, folds, seed, None);
        let acc = cv.mean();
        let better = match &best {
            None => true,
            Some((b, ba)) => {
                acc > *ba + 1e-12
                    || ((acc - *ba).abs() <= 1e-12 && (hp.hidden, hp.epochs) < (b.hidden, b.epochs))
            }
        };
        if better {
            best = Some((hp, acc));
        }
    }
    let (best, accuracy) = best.expect("space is non-empty");
    SearchResult {
        best,
        accuracy,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_datasets::GaussianMixture;

    #[test]
    fn table1_space_has_3888_configs() {
        let space = HyperSpace::table1();
        assert_eq!(space.len(), 8 * 6 * 9 * 9);
        assert_eq!(space.configs().len(), 3888);
        assert_eq!(space.hidden, vec![2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(space.epochs, vec![100, 200, 400, 800, 1600, 3200]);
        assert!(!space.is_empty());
    }

    #[test]
    fn search_finds_a_working_config() {
        let ds = GaussianMixture::new(5, 2)
            .spread(0.08)
            .samples(80)
            .generate("tiny", 12);
        let space = HyperSpace {
            hidden: vec![2, 4],
            epochs: vec![20],
            learning_rates: vec![0.3],
            momenta: vec![0.1],
        };
        let result = search(&ds, &space, 4, 3);
        assert_eq!(result.evaluated, 2);
        assert!(result.accuracy > 0.8, "best acc {}", result.accuracy);
        assert!(space.hidden.contains(&result.best.hidden));
    }

    #[test]
    fn search_is_deterministic() {
        let ds = GaussianMixture::new(4, 2)
            .spread(0.1)
            .samples(60)
            .generate("det", 5);
        let space = HyperSpace {
            hidden: vec![2, 4],
            epochs: vec![10, 20],
            learning_rates: vec![0.2],
            momenta: vec![0.1],
        };
        assert_eq!(search(&ds, &space, 3, 9), search(&ds, &space, 3, 9));
    }

    #[test]
    fn display_formats() {
        let hp = HyperParams {
            hidden: 10,
            epochs: 200,
            learning_rate: 0.1,
            momentum: 0.5,
        };
        assert_eq!(hp.to_string(), "hidden=10 epochs=200 lr=0.1 momentum=0.5");
    }
}
