//! Per-neuron fault plans: which operators of which neurons are
//! defective, and the gate-level circuits that emulate them.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use rand::Rng;

use dta_circuits::{
    FaultModel, FxMulCircuit, HwAdder, HwMultiplier, HwSigmoid, SatAdderCircuit, SigmoidUnitCircuit,
};
use dta_fixed::{Fx, SigmoidLut};

/// Which layer a faulty neuron belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layer {
    /// The hidden layer (the input→hidden stage, where Figure 10 injects).
    Hidden,
    /// The output layer (where Figure 11 injects).
    Output,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Hidden => write!(f, "hidden"),
            Layer::Output => write!(f, "output"),
        }
    }
}

/// Shared immutable operator netlists: built once per process, since a
/// 16-bit multiplier netlist has thousands of gates and every faulty
/// operator instance only needs its own (cheap) simulator state on top.
fn library() -> &'static (
    Arc<FxMulCircuit>,
    Arc<SatAdderCircuit>,
    Arc<SigmoidUnitCircuit>,
) {
    static LIB: OnceLock<(
        Arc<FxMulCircuit>,
        Arc<SatAdderCircuit>,
        Arc<SigmoidUnitCircuit>,
    )> = OnceLock::new();
    LIB.get_or_init(|| {
        (
            Arc::new(FxMulCircuit::new()),
            Arc::new(SatAdderCircuit::new()),
            Arc::new(SigmoidUnitCircuit::new()),
        )
    })
}

/// The faulty operators of one neuron.
///
/// In the spatially expanded accelerator every synapse has its own
/// multiplier, accumulation adder and weight latch, so faults are indexed
/// by synapse position; the activation unit is one per neuron. Weight
/// latches are state elements, for which the stuck-at model is accurate
/// (the paper: such a model "accurately describes faults occurring at
/// state elements"), so latch defects are stuck bits in the stored word.
#[derive(Debug, Default)]
pub struct NeuronFaults {
    muls: HashMap<usize, HwMultiplier>,
    adds: HashMap<usize, HwAdder>,
    act: Option<HwSigmoid>,
    /// Per-synapse (AND mask, OR mask) applied to the stored weight bits.
    latches: HashMap<usize, (u16, u16)>,
}

impl NeuronFaults {
    /// One past the highest physical synapse index carrying a fault
    /// (multiplier, adder or latch); 0 if only the activation is faulty.
    pub fn max_synapse_excl(&self) -> usize {
        self.muls
            .keys()
            .chain(self.adds.keys())
            .chain(self.latches.keys())
            .map(|&i| i + 1)
            .max()
            .unwrap_or(0)
    }

    /// The faulty multiplier at synapse `i`, if any.
    pub fn multiplier_mut(&mut self, i: usize) -> Option<&mut HwMultiplier> {
        self.muls.get_mut(&i)
    }

    /// The faulty accumulation adder at step `i`, if any.
    pub fn adder_mut(&mut self, i: usize) -> Option<&mut HwAdder> {
        self.adds.get_mut(&i)
    }

    /// Applies any latch stuck-bit masks of synapse `i` to a weight.
    pub fn latch_filter(&self, i: usize, w: Fx) -> Fx {
        match self.latches.get(&i) {
            Some(&(and_mask, or_mask)) => Fx::from_bits((w.to_bits() & and_mask) | or_mask),
            None => w,
        }
    }

    /// Evaluates the neuron's activation, through the faulty unit if one
    /// is installed.
    pub fn activation(&mut self, x: Fx, lut: &SigmoidLut) -> Fx {
        match self.act.as_mut() {
            Some(hw) => hw.eval(x),
            None => lut.eval(x),
        }
    }

    /// Evaluates a batch of activations (64 lanes per settle through a
    /// vectorizable faulty unit). Identical to mapping
    /// [`NeuronFaults::activation`].
    pub fn activation_batch(&mut self, xs: &[Fx], lut: &SigmoidLut) -> Vec<Fx> {
        match self.act.as_mut() {
            Some(hw) => hw.eval_batch(xs),
            None => xs.iter().map(|&x| lut.eval(x)).collect(),
        }
    }

    /// True if every faulty operator of this neuron is combinational,
    /// i.e. safe for lane-parallel evaluation (latch stuck-bit masks
    /// are pure functions and never disqualify).
    pub fn vectorizable(&self) -> bool {
        self.muls.values().all(|hw| hw.vectorizable())
            && self.adds.values().all(|hw| hw.vectorizable())
            && self.act.as_ref().is_none_or(|hw| hw.vectorizable())
    }

    /// True if this neuron carries no fault (plans prune such entries).
    pub fn is_empty(&self) -> bool {
        self.muls.is_empty()
            && self.adds.is_empty()
            && self.act.is_none()
            && self.latches.is_empty()
    }

    fn reset_state(&mut self) {
        for hw in self.muls.values_mut() {
            hw.reset_state();
        }
        for hw in self.adds.values_mut() {
            hw.reset_state();
        }
        if let Some(hw) = self.act.as_mut() {
            hw.reset_state();
        }
    }
}

/// The set of defective operators across the network, owning the
/// gate-level circuits that emulate them.
///
/// # Example
///
/// ```
/// use dta_ann::FaultPlan;
/// use dta_circuits::FaultModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let mut plan = FaultPlan::new(90);
/// plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
/// assert_eq!(plan.len(), 1);
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    /// Physical synapses per hidden neuron (90 in the accelerator).
    hw_inputs: usize,
    neurons: HashMap<(Layer, usize), NeuronFaults>,
    records: Vec<String>,
}

impl FaultPlan {
    /// Creates an empty plan for an accelerator with `hw_inputs` physical
    /// synapses per hidden neuron.
    pub fn new(hw_inputs: usize) -> FaultPlan {
        FaultPlan {
            hw_inputs,
            neurons: HashMap::new(),
            records: Vec::new(),
        }
    }

    /// Number of injected defects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no defect has been injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Descriptions of every injected defect.
    pub fn records(&self) -> &[String] {
        &self.records
    }

    /// The fault state of a neuron, if it has any.
    pub fn neuron_mut(&mut self, layer: Layer, neuron: usize) -> Option<&mut NeuronFaults> {
        self.neurons.get_mut(&(layer, neuron))
    }

    /// Indices of faulty neurons per layer.
    pub fn faulty_neurons(&self, layer: Layer) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .neurons
            .keys()
            .filter(|(l, _)| *l == layer)
            .map(|(_, n)| *n)
            .collect();
        v.sort_unstable();
        v
    }

    fn entry(&mut self, layer: Layer, neuron: usize) -> &mut NeuronFaults {
        self.neurons.entry((layer, neuron)).or_default()
    }

    /// Injects one transistor- or gate-level defect at a uniformly random
    /// operator instance of the input/hidden stage (the Figure 10
    /// procedure): per hidden neuron the instances are `hw_inputs`
    /// multipliers, `hw_inputs` adders, `hw_inputs` weight latches, and
    /// one activation unit.
    pub fn inject_random_hidden<R: Rng + ?Sized>(
        &mut self,
        n_hidden: usize,
        model: FaultModel,
        rng: &mut R,
    ) {
        assert!(n_hidden >= 1);
        let neuron = rng.random_range(0..n_hidden);
        let per_neuron = 3 * self.hw_inputs + 1;
        let instance = rng.random_range(0..per_neuron);
        let (lib_mul, lib_add, lib_act) = library();
        let hw_inputs = self.hw_inputs;
        let nf = self.entry(Layer::Hidden, neuron);
        let desc = if instance < hw_inputs {
            let syn = instance;
            let hw = nf
                .muls
                .entry(syn)
                .or_insert_with(|| HwMultiplier::with_circuit(Arc::clone(lib_mul)));
            let d = hw.inject_random(model, 1, rng).pop().expect("one defect");
            format!("hidden[{neuron}].mul[{syn}]: {d}")
        } else if instance < 2 * hw_inputs {
            let step = instance - hw_inputs;
            let hw = nf
                .adds
                .entry(step)
                .or_insert_with(|| HwAdder::with_circuit(Arc::clone(lib_add)));
            let d = hw.inject_random(model, 1, rng).pop().expect("one defect");
            format!("hidden[{neuron}].add[{step}]: {d}")
        } else if instance < 3 * hw_inputs {
            let syn = instance - 2 * hw_inputs;
            let bit = rng.random_range(0..16u32);
            let stuck_one = rng.random_bool(0.5);
            let (and_mask, or_mask) = nf.latches.entry(syn).or_insert((0xFFFF, 0x0000));
            if stuck_one {
                *or_mask |= 1 << bit;
            } else {
                *and_mask &= !(1 << bit);
            }
            format!(
                "hidden[{neuron}].latch[{syn}]: bit {bit} stuck at {}",
                u8::from(stuck_one)
            )
        } else {
            let hw = nf
                .act
                .get_or_insert_with(|| HwSigmoid::with_circuit(Arc::clone(lib_act)));
            let d = hw.inject_random(model, 1, rng).pop().expect("one defect");
            format!("hidden[{neuron}].act: {d}")
        };
        self.records.push(desc);
    }

    /// Injects one transistor-level defect into the accumulation adder of
    /// an output neuron (a Figure 11 site). The defective instance is the
    /// final accumulation step, whose error reaches the activation input
    /// directly.
    pub fn inject_output_adder<R: Rng + ?Sized>(
        &mut self,
        neuron: usize,
        last_step: usize,
        rng: &mut R,
    ) {
        let (_, lib_add, _) = library();
        let nf = self.entry(Layer::Output, neuron);
        let hw = nf
            .adds
            .entry(last_step)
            .or_insert_with(|| HwAdder::with_circuit(Arc::clone(lib_add)));
        let d = hw
            .inject_random(FaultModel::TransistorLevel, 1, rng)
            .pop()
            .expect("one defect");
        self.records
            .push(format!("output[{neuron}].add[{last_step}]: {d}"));
    }

    /// Injects one transistor-level defect into the activation unit of an
    /// output neuron (the other Figure 11 site).
    pub fn inject_output_activation<R: Rng + ?Sized>(&mut self, neuron: usize, rng: &mut R) {
        let (_, _, lib_act) = library();
        let nf = self.entry(Layer::Output, neuron);
        let hw = nf
            .act
            .get_or_insert_with(|| HwSigmoid::with_circuit(Arc::clone(lib_act)));
        let d = hw
            .inject_random(FaultModel::TransistorLevel, 1, rng)
            .pop()
            .expect("one defect");
        self.records.push(format!("output[{neuron}].act: {d}"));
    }

    /// Clears memory effects and delay-line state in every faulty
    /// circuit; call between independent evaluation runs.
    pub fn reset_state(&mut self) {
        for nf in self.neurons.values_mut() {
            nf.reset_state();
        }
    }

    /// True if every faulty operator in the plan is combinational, so
    /// whole-dataset forward passes can run 64 samples per settle (see
    /// [`crate::Mlp::forward_faulty_batch`]). Stateful defects (memory
    /// effects, delays) force the scalar path, whose per-sample
    /// evaluation order is part of the semantics.
    pub fn vectorizable(&self) -> bool {
        self.neurons.values().all(|nf| nf.vectorizable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_plan_has_no_faulty_neurons() {
        let mut plan = FaultPlan::new(90);
        assert!(plan.is_empty());
        assert!(plan.neuron_mut(Layer::Hidden, 0).is_none());
        assert!(plan.faulty_neurons(Layer::Hidden).is_empty());
    }

    #[test]
    fn injection_creates_neuron_entries() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut plan = FaultPlan::new(90);
        for _ in 0..25 {
            plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
        }
        assert_eq!(plan.len(), 25);
        assert_eq!(plan.records().len(), 25);
        let faulty = plan.faulty_neurons(Layer::Hidden);
        assert!(!faulty.is_empty());
        assert!(faulty.iter().all(|&n| n < 10));
        for &n in &faulty {
            assert!(!plan.neuron_mut(Layer::Hidden, n).unwrap().is_empty());
        }
    }

    #[test]
    fn latch_filter_applies_stuck_bits() {
        let mut nf = NeuronFaults::default();
        nf.latches.insert(3, (0xFFFE, 0x8000)); // bit0 stuck 0, bit15 stuck 1
        let w = Fx::from_bits(0x0001);
        let filtered = nf.latch_filter(3, w);
        assert_eq!(filtered.to_bits(), 0x8000);
        // Other synapses pass through.
        assert_eq!(nf.latch_filter(2, w), w);
    }

    #[test]
    fn output_layer_injection_sites() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut plan = FaultPlan::new(90);
        plan.inject_output_adder(2, 9, &mut rng);
        plan.inject_output_activation(4, &mut rng);
        assert_eq!(plan.faulty_neurons(Layer::Output), vec![2, 4]);
        assert!(plan.records()[0].contains("output[2].add[9]"));
        assert!(plan.records()[1].contains("output[4].act"));
        assert!(plan.faulty_neurons(Layer::Hidden).is_empty());
    }

    #[test]
    fn max_synapse_tracks_fault_positions() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut plan = FaultPlan::new(90);
        plan.inject_output_adder(0, 42, &mut rng);
        let nf = plan.neuron_mut(Layer::Output, 0).unwrap();
        assert_eq!(nf.max_synapse_excl(), 43);
    }

    #[test]
    fn reset_state_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut plan = FaultPlan::new(90);
        plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
        plan.reset_state(); // must not panic
    }
}
