//! Per-neuron fault plans: which operators of which neurons are
//! defective, and the gate-level circuits that emulate them.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

use rand::Rng;

use dta_circuits::{
    Activation, ActivationState, FaultModel, FxMulCircuit, HwAdder, HwMultiplier, HwSigmoid,
    SatAdderCircuit, SigmoidUnitCircuit,
};
use dta_fixed::{Fx, SigmoidLut};
use dta_mem::{Bank, WeightMemory};

/// Which layer a faulty neuron belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// The hidden layer (the input→hidden stage, where Figure 10 injects).
    Hidden,
    /// The output layer (where Figure 11 injects).
    Output,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Hidden => write!(f, "hidden"),
            Layer::Output => write!(f, "output"),
        }
    }
}

/// Which operator class of a neuron a fault site refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitKind {
    /// A synaptic multiplier (one per physical synapse).
    Multiplier,
    /// An accumulation adder (one per physical synapse).
    Adder,
    /// A weight latch (one per physical synapse).
    Latch,
    /// The neuron's sigmoid activation unit (one per neuron).
    Activation,
    /// A whole multiply-accumulate processing element (systolic
    /// topology: one PE serves many synapses across weight tiles).
    Pe,
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitKind::Multiplier => write!(f, "mul"),
            UnitKind::Adder => write!(f, "add"),
            UnitKind::Latch => write!(f, "latch"),
            UnitKind::Activation => write!(f, "act"),
            UnitKind::Pe => write!(f, "pe"),
        }
    }
}

/// Structured location of one defective (or BIST-flagged) operator
/// instance: the ground truth a self-test's diagnosis is scored
/// against. Activation units have no synapse index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultSite {
    /// The layer of the host neuron.
    pub layer: Layer,
    /// Physical neuron lane within the layer.
    pub neuron: usize,
    /// The operator class carrying the defect.
    pub unit: UnitKind,
    /// Synapse/step index for per-synapse operators, `None` for the
    /// activation unit.
    pub synapse: Option<usize>,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.synapse {
            Some(s) => write!(f, "{}[{}].{}[{}]", self.layer, self.neuron, self.unit, s),
            None => write!(f, "{}[{}].{}", self.layer, self.neuron, self.unit),
        }
    }
}

/// Shared immutable operator netlists: built once per process, since a
/// 16-bit multiplier netlist has thousands of gates and every faulty
/// operator instance only needs its own (cheap) simulator state on top.
fn library() -> &'static (
    Arc<FxMulCircuit>,
    Arc<SatAdderCircuit>,
    Arc<SigmoidUnitCircuit>,
) {
    static LIB: OnceLock<(
        Arc<FxMulCircuit>,
        Arc<SatAdderCircuit>,
        Arc<SigmoidUnitCircuit>,
    )> = OnceLock::new();
    LIB.get_or_init(|| {
        (
            Arc::new(FxMulCircuit::new()),
            Arc::new(SatAdderCircuit::new()),
            Arc::new(SigmoidUnitCircuit::new()),
        )
    })
}

/// The stuck bits of one weight latch: permanent faults merged into an
/// (AND mask, OR mask) pair, dynamic (transient/intermittent) faults
/// kept individually and overlaid per read in injection order.
#[derive(Debug)]
struct LatchFaults {
    and_mask: u16,
    or_mask: u16,
    dynamic: Vec<LatchBit>,
}

/// One dynamically activated stuck bit of a weight latch.
#[derive(Debug)]
struct LatchBit {
    bit: u32,
    stuck_one: bool,
    state: ActivationState,
}

impl Default for LatchFaults {
    fn default() -> LatchFaults {
        LatchFaults {
            and_mask: 0xFFFF,
            or_mask: 0x0000,
            dynamic: Vec::new(),
        }
    }
}

/// The faulty operators of one neuron.
///
/// In the spatially expanded accelerator every synapse has its own
/// multiplier, accumulation adder and weight latch, so faults are indexed
/// by synapse position; the activation unit is one per neuron. Weight
/// latches are state elements, for which the stuck-at model is accurate
/// (the paper: such a model "accurately describes faults occurring at
/// state elements"), so latch defects are stuck bits in the stored word.
#[derive(Debug, Default)]
pub struct NeuronFaults {
    muls: HashMap<usize, HwMultiplier>,
    adds: HashMap<usize, HwAdder>,
    act: Option<HwSigmoid>,
    /// Per-synapse stuck bits applied to the stored weight word.
    latches: HashMap<usize, LatchFaults>,
}

impl NeuronFaults {
    /// One past the highest physical synapse index carrying a fault
    /// (multiplier, adder or latch); 0 if only the activation is faulty.
    pub fn max_synapse_excl(&self) -> usize {
        self.muls
            .keys()
            .chain(self.adds.keys())
            .chain(self.latches.keys())
            .map(|&i| i + 1)
            .max()
            .unwrap_or(0)
    }

    /// The faulty multiplier at synapse `i`, if any.
    pub fn multiplier_mut(&mut self, i: usize) -> Option<&mut HwMultiplier> {
        self.muls.get_mut(&i)
    }

    /// The faulty accumulation adder at step `i`, if any.
    pub fn adder_mut(&mut self, i: usize) -> Option<&mut HwAdder> {
        self.adds.get_mut(&i)
    }

    /// Applies any latch stuck-bit faults of synapse `i` to a weight.
    /// Each read advances the activation machines of that latch's
    /// dynamic faults, so a transient stuck bit corrupts individual
    /// weight fetches; active dynamic bits overwrite the permanent
    /// masks in injection order.
    pub fn latch_filter(&mut self, i: usize, w: Fx) -> Fx {
        match self.latches.get_mut(&i) {
            Some(lf) => {
                let mut bits = (w.to_bits() & lf.and_mask) | lf.or_mask;
                for b in &mut lf.dynamic {
                    if b.state.advance() {
                        if b.stuck_one {
                            bits |= 1 << b.bit;
                        } else {
                            bits &= !(1 << b.bit);
                        }
                    }
                }
                Fx::from_bits(bits)
            }
            None => w,
        }
    }

    /// Evaluates the neuron's activation, through the faulty unit if one
    /// is installed.
    pub fn activation(&mut self, x: Fx, lut: &SigmoidLut) -> Fx {
        match self.act.as_mut() {
            Some(hw) => hw.eval(x),
            None => lut.eval(x),
        }
    }

    /// Evaluates a batch of activations (64 lanes per settle through a
    /// vectorizable faulty unit). Identical to mapping
    /// [`NeuronFaults::activation`].
    pub fn activation_batch(&mut self, xs: &[Fx], lut: &SigmoidLut) -> Vec<Fx> {
        match self.act.as_mut() {
            Some(hw) => hw.eval_batch(xs),
            None => xs.iter().map(|&x| lut.eval(x)).collect(),
        }
    }

    /// True if every faulty operator of this neuron is combinational,
    /// i.e. safe for lane-parallel evaluation. Permanent latch
    /// stuck-bit masks are pure functions and never disqualify; dynamic
    /// latch faults advance per weight read and force the scalar path.
    pub fn vectorizable(&self) -> bool {
        self.muls.values().all(|hw| hw.vectorizable())
            && self.adds.values().all(|hw| hw.vectorizable())
            && self.act.as_ref().is_none_or(|hw| hw.vectorizable())
            && self.latches.values().all(|lf| lf.dynamic.is_empty())
    }

    /// True if this neuron carries no fault (plans prune such entries).
    pub fn is_empty(&self) -> bool {
        self.muls.is_empty()
            && self.adds.is_empty()
            && self.act.is_none()
            && self.latches.is_empty()
    }

    /// Read-only view of the faulty multiplier at synapse `i` (the
    /// network fuser reads its patched LUT stream without evaluating).
    pub(crate) fn mul_at(&self, i: usize) -> Option<&HwMultiplier> {
        self.muls.get(&i)
    }

    /// Read-only view of the faulty adder at step `i`.
    pub(crate) fn add_at(&self, i: usize) -> Option<&HwAdder> {
        self.adds.get(&i)
    }

    /// Read-only view of the faulty activation unit.
    pub(crate) fn act_ref(&self) -> Option<&HwSigmoid> {
        self.act.as_ref()
    }

    /// The permanent stuck-bit masks `(and, or)` of synapse `i`'s weight
    /// latch — `(0xFFFF, 0)` when the latch is clean. Pure (does not
    /// advance dynamic fault state); only meaningful on
    /// [vectorizable](NeuronFaults::vectorizable) neurons, where the
    /// dynamic list is empty.
    pub(crate) fn latch_masks(&self, i: usize) -> (u16, u16) {
        self.latches
            .get(&i)
            .map_or((0xFFFF, 0), |lf| (lf.and_mask, lf.or_mask))
    }

    fn reset_state(&mut self) {
        for hw in self.muls.values_mut() {
            hw.reset_state();
        }
        for hw in self.adds.values_mut() {
            hw.reset_state();
        }
        if let Some(hw) = self.act.as_mut() {
            hw.reset_state();
        }
        for lf in self.latches.values_mut() {
            for b in &mut lf.dynamic {
                b.state.reset();
            }
        }
    }
}

/// The set of defective operators across the network, owning the
/// gate-level circuits that emulate them.
///
/// # Example
///
/// ```
/// use dta_ann::FaultPlan;
/// use dta_circuits::FaultModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let mut plan = FaultPlan::new(90);
/// plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
/// assert_eq!(plan.len(), 1);
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    /// Physical synapses per hidden neuron (90 in the accelerator).
    hw_inputs: usize,
    neurons: HashMap<(Layer, usize), NeuronFaults>,
    records: Vec<String>,
    sites: Vec<FaultSite>,
    /// Logical→physical hidden-lane overrides installed by a recovery
    /// remap; identity for lanes not present.
    hidden_map: HashMap<usize, usize>,
    /// Physical lanes whose output is gated to 0 (fail-silent masking).
    masked: HashSet<(Layer, usize)>,
    /// Optional weight-store model: when attached, every weight and bias
    /// fetch of the faulty forward paths goes through the (possibly
    /// defective) bit-cell array. A transparent (defect-free) array is
    /// skipped entirely, keeping the healthy path bit-identical.
    mem: Option<WeightMemory>,
}

/// The memory bank a layer's weight rows live in.
pub(crate) fn bank_of(layer: Layer) -> Bank {
    match layer {
        Layer::Hidden => Bank::Hidden,
        Layer::Output => Bank::Output,
    }
}

impl FaultPlan {
    /// Creates an empty plan for an accelerator with `hw_inputs` physical
    /// synapses per hidden neuron.
    pub fn new(hw_inputs: usize) -> FaultPlan {
        FaultPlan {
            hw_inputs,
            neurons: HashMap::new(),
            records: Vec::new(),
            sites: Vec::new(),
            hidden_map: HashMap::new(),
            masked: HashSet::new(),
            mem: None,
        }
    }

    /// Attaches a weight-store model; subsequent faulty forward passes
    /// fetch every weight and bias through its bit-cell array.
    pub fn attach_memory(&mut self, mem: WeightMemory) {
        self.mem = Some(mem);
    }

    /// Removes the attached weight store, if any.
    pub fn detach_memory(&mut self) -> Option<WeightMemory> {
        self.mem.take()
    }

    /// The attached weight store, if any.
    pub fn memory(&self) -> Option<&WeightMemory> {
        self.mem.as_ref()
    }

    /// Mutable access to the attached weight store (defect injection,
    /// BIST, steering repairs).
    pub fn memory_mut(&mut self) -> Option<&mut WeightMemory> {
        self.mem.as_mut()
    }

    /// The weight store *if it can disturb fetches* (attached and not
    /// transparent), alongside the neuron's fault entry. Split accessor
    /// so the forward path can hold both mutably at once.
    pub fn fetch_units(
        &mut self,
        layer: Layer,
        neuron: usize,
    ) -> (Option<&mut WeightMemory>, Option<&mut NeuronFaults>) {
        let mem = self.mem.as_mut().filter(|m| !m.is_transparent());
        let nf = self.neurons.get_mut(&(layer, neuron));
        (mem, nf)
    }

    /// Routes one weight through the attached array (identity when no
    /// non-transparent memory is attached).
    pub fn mem_weight(&mut self, layer: Layer, lane: usize, slot: usize, w: Fx) -> Fx {
        match self.mem.as_mut().filter(|m| !m.is_transparent()) {
            Some(m) => m.fetch(bank_of(layer), lane, slot, w),
            None => w,
        }
    }

    /// Routes one bias through the attached array (the bias occupies the
    /// last word slot of its lane's row).
    pub fn mem_bias(&mut self, layer: Layer, lane: usize, w: Fx) -> Fx {
        match self.mem.as_mut().filter(|m| !m.is_transparent()) {
            Some(m) => {
                let bank = bank_of(layer);
                let slot = m.bias_slot(bank);
                m.fetch(bank, lane, slot, w)
            }
            None => w,
        }
    }

    /// Number of injected defects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no defect has been injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Descriptions of every injected defect.
    pub fn records(&self) -> &[String] {
        &self.records
    }

    /// Physical synapses per hidden neuron.
    pub fn hw_inputs(&self) -> usize {
        self.hw_inputs
    }

    /// Structured ground-truth locations of every injected defect, one
    /// per record and in injection order (a site repeats when several
    /// defects land on the same operator instance). This is what a
    /// self-test's diagnosis is scored against.
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// Physical hidden lane that logical hidden neuron `logical` is
    /// routed to (identity unless remapped).
    pub fn hidden_lane(&self, logical: usize) -> usize {
        *self.hidden_map.get(&logical).unwrap_or(&logical)
    }

    /// Routes logical hidden neuron `logical` onto physical lane
    /// `physical` (a spare-lane repair). Forward passes evaluate the
    /// neuron's weights through that lane's operators instead.
    pub fn remap_hidden(&mut self, logical: usize, physical: usize) {
        if logical == physical {
            self.hidden_map.remove(&logical);
        } else {
            self.hidden_map.insert(logical, physical);
        }
    }

    /// The installed logical→physical hidden remaps, sorted by logical
    /// lane.
    pub fn remapped_hidden(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = self.hidden_map.iter().map(|(&l, &p)| (l, p)).collect();
        v.sort_unstable();
        v
    }

    /// Gates a physical lane's output to 0 (fail-silent masking — the
    /// degraded network serves without the lane's contribution).
    pub fn mask(&mut self, layer: Layer, lane: usize) {
        self.masked.insert((layer, lane));
    }

    /// Removes a mask installed by [`FaultPlan::mask`].
    pub fn unmask(&mut self, layer: Layer, lane: usize) {
        self.masked.remove(&(layer, lane));
    }

    /// True if the physical lane's output is gated to 0.
    pub fn is_masked(&self, layer: Layer, lane: usize) -> bool {
        self.masked.contains(&(layer, lane))
    }

    /// The masked physical lanes of a layer, sorted.
    pub fn masked_lanes(&self, layer: Layer) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .masked
            .iter()
            .filter(|(l, _)| *l == layer)
            .map(|(_, n)| *n)
            .collect();
        v.sort_unstable();
        v
    }

    /// The fault state of a neuron, if it has any.
    pub fn neuron_mut(&mut self, layer: Layer, neuron: usize) -> Option<&mut NeuronFaults> {
        self.neurons.get_mut(&(layer, neuron))
    }

    /// Read-only view of a neuron's fault state (used by the fused
    /// network compiler, which must not disturb activation machines).
    pub(crate) fn neuron(&self, layer: Layer, neuron: usize) -> Option<&NeuronFaults> {
        self.neurons.get(&(layer, neuron))
    }

    /// Indices of faulty neurons per layer.
    pub fn faulty_neurons(&self, layer: Layer) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .neurons
            .keys()
            .filter(|(l, _)| *l == layer)
            .map(|(_, n)| *n)
            .collect();
        v.sort_unstable();
        v
    }

    fn entry(&mut self, layer: Layer, neuron: usize) -> &mut NeuronFaults {
        self.neurons.entry((layer, neuron)).or_default()
    }

    /// Injects one **permanent** transistor- or gate-level defect at a
    /// uniformly random operator instance of the input/hidden stage
    /// (the Figure 10 procedure): per hidden neuron the instances are
    /// `hw_inputs` multipliers, `hw_inputs` adders, `hw_inputs` weight
    /// latches, and one activation unit.
    pub fn inject_random_hidden<R: Rng + ?Sized>(
        &mut self,
        n_hidden: usize,
        model: FaultModel,
        rng: &mut R,
    ) {
        self.inject_random_hidden_with(n_hidden, model, Activation::Permanent, rng);
    }

    /// Injects one random input/hidden-stage defect with the given
    /// lifetime. For [`Activation::Permanent`] this consumes exactly
    /// the same RNG draws as [`FaultPlan::inject_random_hidden`];
    /// non-permanent defects draw one extra `u64` to seed their
    /// activation stream.
    pub fn inject_random_hidden_with<R: Rng + ?Sized>(
        &mut self,
        n_hidden: usize,
        model: FaultModel,
        activation: Activation,
        rng: &mut R,
    ) {
        assert!(n_hidden >= 1);
        let neuron = rng.random_range(0..n_hidden);
        let per_neuron = 3 * self.hw_inputs + 1;
        let instance = rng.random_range(0..per_neuron);
        let (lib_mul, lib_add, lib_act) = library();
        let hw_inputs = self.hw_inputs;
        let nf = self.entry(Layer::Hidden, neuron);
        let (desc, site) = if instance < hw_inputs {
            let syn = instance;
            let hw = nf
                .muls
                .entry(syn)
                .or_insert_with(|| HwMultiplier::with_circuit(Arc::clone(lib_mul)));
            let d = hw
                .inject_random_with(model, activation, 1, rng)
                .pop()
                .expect("one defect");
            (
                format!("hidden[{neuron}].mul[{syn}]: {d}"),
                FaultSite {
                    layer: Layer::Hidden,
                    neuron,
                    unit: UnitKind::Multiplier,
                    synapse: Some(syn),
                },
            )
        } else if instance < 2 * hw_inputs {
            let step = instance - hw_inputs;
            let hw = nf
                .adds
                .entry(step)
                .or_insert_with(|| HwAdder::with_circuit(Arc::clone(lib_add)));
            let d = hw
                .inject_random_with(model, activation, 1, rng)
                .pop()
                .expect("one defect");
            (
                format!("hidden[{neuron}].add[{step}]: {d}"),
                FaultSite {
                    layer: Layer::Hidden,
                    neuron,
                    unit: UnitKind::Adder,
                    synapse: Some(step),
                },
            )
        } else if instance < 3 * hw_inputs {
            let syn = instance - 2 * hw_inputs;
            let bit = rng.random_range(0..16u32);
            let stuck_one = rng.random_bool(0.5);
            let lf = nf.latches.entry(syn).or_default();
            let desc = if activation.is_permanent() {
                if stuck_one {
                    lf.or_mask |= 1 << bit;
                } else {
                    lf.and_mask &= !(1 << bit);
                }
                format!(
                    "hidden[{neuron}].latch[{syn}]: bit {bit} stuck at {}",
                    u8::from(stuck_one)
                )
            } else {
                let seed = rng.random::<u64>();
                lf.dynamic.push(LatchBit {
                    bit,
                    stuck_one,
                    state: ActivationState::new(activation, seed),
                });
                format!(
                    "hidden[{neuron}].latch[{syn}]: bit {bit} stuck at {} [{activation}]",
                    u8::from(stuck_one)
                )
            };
            (
                desc,
                FaultSite {
                    layer: Layer::Hidden,
                    neuron,
                    unit: UnitKind::Latch,
                    synapse: Some(syn),
                },
            )
        } else {
            let hw = nf
                .act
                .get_or_insert_with(|| HwSigmoid::with_circuit(Arc::clone(lib_act)));
            let d = hw
                .inject_random_with(model, activation, 1, rng)
                .pop()
                .expect("one defect");
            (
                format!("hidden[{neuron}].act: {d}"),
                FaultSite {
                    layer: Layer::Hidden,
                    neuron,
                    unit: UnitKind::Activation,
                    synapse: None,
                },
            )
        };
        self.records.push(desc);
        self.sites.push(site);
    }

    /// Injects one transistor-level defect into the accumulation adder of
    /// an output neuron (a Figure 11 site). The defective instance is the
    /// final accumulation step, whose error reaches the activation input
    /// directly.
    pub fn inject_output_adder<R: Rng + ?Sized>(
        &mut self,
        neuron: usize,
        last_step: usize,
        rng: &mut R,
    ) {
        let (_, lib_add, _) = library();
        let nf = self.entry(Layer::Output, neuron);
        let hw = nf
            .adds
            .entry(last_step)
            .or_insert_with(|| HwAdder::with_circuit(Arc::clone(lib_add)));
        let d = hw
            .inject_random(FaultModel::TransistorLevel, 1, rng)
            .pop()
            .expect("one defect");
        self.records
            .push(format!("output[{neuron}].add[{last_step}]: {d}"));
        self.sites.push(FaultSite {
            layer: Layer::Output,
            neuron,
            unit: UnitKind::Adder,
            synapse: Some(last_step),
        });
    }

    /// Injects one transistor-level defect into the activation unit of an
    /// output neuron (the other Figure 11 site).
    pub fn inject_output_activation<R: Rng + ?Sized>(&mut self, neuron: usize, rng: &mut R) {
        let (_, _, lib_act) = library();
        let nf = self.entry(Layer::Output, neuron);
        let hw = nf
            .act
            .get_or_insert_with(|| HwSigmoid::with_circuit(Arc::clone(lib_act)));
        let d = hw
            .inject_random(FaultModel::TransistorLevel, 1, rng)
            .pop()
            .expect("one defect");
        self.records.push(format!("output[{neuron}].act: {d}"));
        self.sites.push(FaultSite {
            layer: Layer::Output,
            neuron,
            unit: UnitKind::Activation,
            synapse: None,
        });
    }

    /// Clears memory effects and delay-line state in every faulty
    /// circuit; call between independent evaluation runs.
    pub fn reset_state(&mut self) {
        for nf in self.neurons.values_mut() {
            nf.reset_state();
        }
        if let Some(mem) = self.mem.as_mut() {
            mem.reset_state();
        }
    }

    /// True if every faulty operator in the plan is combinational, so
    /// whole-dataset forward passes can run 64 samples per settle (see
    /// [`crate::Mlp::forward_faulty_batch`]). Stateful defects (memory
    /// effects, delays) force the scalar path, whose per-sample
    /// evaluation order is part of the semantics.
    pub fn vectorizable(&self) -> bool {
        self.neurons.values().all(|nf| nf.vectorizable())
            && self.mem.as_ref().is_none_or(|m| m.vectorizable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_plan_has_no_faulty_neurons() {
        let mut plan = FaultPlan::new(90);
        assert!(plan.is_empty());
        assert!(plan.neuron_mut(Layer::Hidden, 0).is_none());
        assert!(plan.faulty_neurons(Layer::Hidden).is_empty());
    }

    #[test]
    fn injection_creates_neuron_entries() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut plan = FaultPlan::new(90);
        for _ in 0..25 {
            plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
        }
        assert_eq!(plan.len(), 25);
        assert_eq!(plan.records().len(), 25);
        let faulty = plan.faulty_neurons(Layer::Hidden);
        assert!(!faulty.is_empty());
        assert!(faulty.iter().all(|&n| n < 10));
        for &n in &faulty {
            assert!(!plan.neuron_mut(Layer::Hidden, n).unwrap().is_empty());
        }
    }

    #[test]
    fn latch_filter_applies_stuck_bits() {
        let mut nf = NeuronFaults::default();
        // bit0 stuck 0, bit15 stuck 1
        nf.latches.insert(
            3,
            LatchFaults {
                and_mask: 0xFFFE,
                or_mask: 0x8000,
                dynamic: Vec::new(),
            },
        );
        let w = Fx::from_bits(0x0001);
        let filtered = nf.latch_filter(3, w);
        assert_eq!(filtered.to_bits(), 0x8000);
        // Other synapses pass through.
        assert_eq!(nf.latch_filter(2, w), w);
    }

    #[test]
    fn intermittent_latch_bit_corrupts_alternate_reads() {
        let mut nf = NeuronFaults::default();
        nf.latches.insert(
            0,
            LatchFaults {
                dynamic: vec![LatchBit {
                    bit: 15,
                    stuck_one: true,
                    state: ActivationState::new(Activation::Intermittent { period: 2, duty: 1 }, 0),
                }],
                ..LatchFaults::default()
            },
        );
        assert!(!nf.vectorizable(), "dynamic latch forces the scalar path");
        let w = Fx::from_bits(0x0001);
        // duty 1 / period 2: faulty, clean, faulty, clean ...
        assert_eq!(nf.latch_filter(0, w).to_bits(), 0x8001);
        assert_eq!(nf.latch_filter(0, w).to_bits(), 0x0001);
        assert_eq!(nf.latch_filter(0, w).to_bits(), 0x8001);
        nf.reset_state();
        assert_eq!(nf.latch_filter(0, w).to_bits(), 0x8001, "reset replays");
    }

    #[test]
    fn permanent_injection_with_is_rng_compatible() {
        // `inject_random_hidden_with(Permanent)` must consume the same
        // RNG draws and produce the same records as the original entry
        // point.
        let mut a = ChaCha8Rng::seed_from_u64(21);
        let mut b = a.clone();
        let mut plain = FaultPlan::new(90);
        let mut with = FaultPlan::new(90);
        for _ in 0..15 {
            plain.inject_random_hidden(10, FaultModel::TransistorLevel, &mut a);
            with.inject_random_hidden_with(
                10,
                FaultModel::TransistorLevel,
                Activation::Permanent,
                &mut b,
            );
        }
        assert_eq!(plain.records(), with.records());
        assert_eq!(a.random::<u64>(), b.random::<u64>(), "RNG streams aligned");
    }

    #[test]
    fn dynamic_injection_records_and_disables_vectorization() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut plan = FaultPlan::new(90);
        for _ in 0..12 {
            plan.inject_random_hidden_with(
                6,
                FaultModel::TransistorLevel,
                Activation::Transient {
                    per_eval_probability: 0.2,
                },
                &mut rng,
            );
        }
        assert_eq!(plan.len(), 12);
        assert!(
            plan.records()
                .iter()
                .all(|r| r.contains("transient(p=0.2)")),
            "every record names the lifetime: {:?}",
            plan.records()
        );
        assert!(!plan.vectorizable(), "dynamic plans must run scalar");
        plan.reset_state(); // must not panic, resets activation streams
    }

    #[test]
    fn output_layer_injection_sites() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut plan = FaultPlan::new(90);
        plan.inject_output_adder(2, 9, &mut rng);
        plan.inject_output_activation(4, &mut rng);
        assert_eq!(plan.faulty_neurons(Layer::Output), vec![2, 4]);
        assert!(plan.records()[0].contains("output[2].add[9]"));
        assert!(plan.records()[1].contains("output[4].act"));
        assert!(plan.faulty_neurons(Layer::Hidden).is_empty());
    }

    #[test]
    fn max_synapse_tracks_fault_positions() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut plan = FaultPlan::new(90);
        plan.inject_output_adder(0, 42, &mut rng);
        let nf = plan.neuron_mut(Layer::Output, 0).unwrap();
        assert_eq!(nf.max_synapse_excl(), 43);
    }

    #[test]
    fn sites_mirror_records() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut plan = FaultPlan::new(90);
        for _ in 0..40 {
            plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
        }
        plan.inject_output_adder(1, 9, &mut rng);
        plan.inject_output_activation(2, &mut rng);
        assert_eq!(plan.sites().len(), plan.records().len());
        for (site, record) in plan.sites().iter().zip(plan.records()) {
            // The structured site renders as the prefix of its record.
            assert!(
                record.starts_with(&format!("{site}:")),
                "{site} vs {record}"
            );
        }
        assert_eq!(
            plan.sites().last().copied(),
            Some(FaultSite {
                layer: Layer::Output,
                neuron: 2,
                unit: UnitKind::Activation,
                synapse: None,
            })
        );
    }

    #[test]
    fn hidden_lane_map_defaults_to_identity() {
        let mut plan = FaultPlan::new(90);
        assert_eq!(plan.hidden_lane(3), 3);
        plan.remap_hidden(3, 7);
        assert_eq!(plan.hidden_lane(3), 7);
        assert_eq!(plan.hidden_lane(7), 7, "other lanes untouched");
        assert_eq!(plan.remapped_hidden(), vec![(3, 7)]);
        plan.remap_hidden(3, 3); // identity remap clears the override
        assert_eq!(plan.hidden_lane(3), 3);
        assert!(plan.remapped_hidden().is_empty());
    }

    #[test]
    fn mask_is_per_layer_lane() {
        let mut plan = FaultPlan::new(90);
        assert!(!plan.is_masked(Layer::Hidden, 2));
        plan.mask(Layer::Hidden, 2);
        assert!(plan.is_masked(Layer::Hidden, 2));
        assert!(!plan.is_masked(Layer::Output, 2));
        plan.mask(Layer::Output, 0);
        assert_eq!(plan.masked_lanes(Layer::Hidden), vec![2]);
        assert_eq!(plan.masked_lanes(Layer::Output), vec![0]);
        plan.unmask(Layer::Hidden, 2);
        assert!(!plan.is_masked(Layer::Hidden, 2));
    }

    #[test]
    fn reset_state_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut plan = FaultPlan::new(90);
        plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
        plan.reset_state(); // must not panic
    }
}
