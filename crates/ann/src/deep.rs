//! Deep (multi-hidden-layer) perceptrons — the paper's §VIII follow-up
//! direction ("we want to increase the size of the neural networks that
//! can be mapped ..., in order to efficiently tackle very large networks,
//! such as Deep Networks").
//!
//! The accelerator executes deep networks by partial time-multiplexing
//! (every layer pair is chunked over the physical array, see
//! `dta_core::large`); this module provides the algorithmic side:
//! arbitrary-depth MLPs with the same Q6.10 hardware forward semantics
//! and companion-core back-propagation as the 2-layer [`crate::Mlp`].

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_datasets::Dataset;
use dta_fixed::{sigmoid::sigmoid, Fx, SigmoidLut};

/// A fully connected feed-forward network with any number of layers.
///
/// `dims = [inputs, h1, h2, ..., outputs]`; every non-input layer has a
/// bias weight and a sigmoid activation.
///
/// # Example
///
/// ```
/// use dta_ann::deep::DeepMlp;
/// let net = DeepMlp::new(&[8, 16, 12, 4], 42);
/// assert_eq!(net.depth(), 3); // three weight layers
/// let out = net.forward_float(&[0.5; 8]).pop().unwrap();
/// assert_eq!(out.len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DeepMlp {
    dims: Vec<usize>,
    /// One weight matrix per layer, row-major `[out][in + 1]`.
    weights: Vec<Vec<f64>>,
}

impl DeepMlp {
    /// Creates a network with seeded Xavier-style initial weights.
    ///
    /// # Panics
    ///
    /// Panics unless `dims` has at least 2 entries, all nonzero.
    pub fn new(dims: &[usize], seed: u64) -> DeepMlp {
        assert!(dims.len() >= 2, "need input and output layers");
        assert!(dims.iter().all(|&d| d >= 1), "zero-width layer");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weights = dims
            .windows(2)
            .map(|w| {
                let (n_in, n_out) = (w[0], w[1]);
                let lim = 1.0 / (n_in as f64).sqrt();
                (0..n_out * (n_in + 1))
                    .map(|_| rng.random_range(-lim..lim))
                    .collect()
            })
            .collect();
        DeepMlp {
            dims: dims.to_vec(),
            weights,
        }
    }

    /// Layer widths including input and output.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of weight layers.
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// Total number of weights including biases.
    pub fn n_weights(&self) -> usize {
        self.weights.iter().map(Vec::len).sum()
    }

    /// Weight `w[l][j][i]` (`i == dims[l]` is the bias).
    pub fn weight(&self, layer: usize, j: usize, i: usize) -> f64 {
        self.weights[layer][j * (self.dims[layer] + 1) + i]
    }

    fn weight_mut(&mut self, layer: usize, j: usize, i: usize) -> &mut f64 {
        &mut self.weights[layer][j * (self.dims[layer] + 1) + i]
    }

    /// Exact `f64` forward pass; returns the activations of every
    /// non-input layer (last entry = network output).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dims()[0]`.
    pub fn forward_float(&self, x: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(x.len(), self.dims[0]);
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.depth());
        let mut current = x.to_vec();
        for l in 0..self.depth() {
            let n_out = self.dims[l + 1];
            let next: Vec<f64> = (0..n_out)
                .map(|j| {
                    let mut acc = self.weight(l, j, self.dims[l]);
                    for (i, &v) in current.iter().enumerate() {
                        acc += self.weight(l, j, i) * v;
                    }
                    sigmoid(acc)
                })
                .collect();
            acts.push(next.clone());
            current = next;
        }
        acts
    }

    /// Hardware (Q6.10 + LUT sigmoid) forward pass; same shape as
    /// [`DeepMlp::forward_float`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dims()[0]`.
    pub fn forward_fixed(&self, x: &[f64], lut: &SigmoidLut) -> Vec<Vec<f64>> {
        assert_eq!(x.len(), self.dims[0]);
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.depth());
        let mut current: Vec<Fx> = x.iter().map(|&v| Fx::from_f64(v)).collect();
        for l in 0..self.depth() {
            let n_out = self.dims[l + 1];
            let next: Vec<Fx> = (0..n_out)
                .map(|j| {
                    let mut acc = Fx::from_f64(self.weight(l, j, self.dims[l]));
                    for (i, &v) in current.iter().enumerate() {
                        acc += Fx::from_f64(self.weight(l, j, i)) * v;
                    }
                    lut.eval(acc)
                })
                .collect();
            acts.push(next.iter().map(|v| v.to_f64()).collect());
            current = next;
        }
        acts
    }

    /// Predicted class from the output activations.
    pub fn classify_fixed(&self, x: &[f64], lut: &SigmoidLut) -> usize {
        let out = self.forward_fixed(x, lut).pop().expect("depth >= 1");
        argmax(&out)
    }
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// Back-propagation for [`DeepMlp`] (stochastic, with momentum), with the
/// forward pass on the hardware fixed-point path.
#[derive(Clone, Debug, PartialEq)]
pub struct DeepTrainer {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Training epochs.
    pub epochs: usize,
}

impl DeepTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive learning rate or zero epochs.
    pub fn new(learning_rate: f64, momentum: f64, epochs: usize) -> DeepTrainer {
        assert!(learning_rate > 0.0);
        assert!((0.0..1.0).contains(&momentum));
        assert!(epochs >= 1);
        DeepTrainer {
            learning_rate,
            momentum,
            epochs,
        }
    }

    /// Trains on the selected samples, forward in Q6.10, gradients in
    /// `f64`.
    pub fn train<R: Rng + ?Sized>(
        &self,
        net: &mut DeepMlp,
        ds: &Dataset,
        idx: &[usize],
        rng: &mut R,
    ) {
        assert_eq!(net.dims[0], ds.n_features(), "network/dataset mismatch");
        assert!(*net.dims.last().unwrap() >= ds.n_classes());
        let lut = SigmoidLut::new();
        let mut velocity: Vec<Vec<f64>> = net.weights.iter().map(|w| vec![0.0; w.len()]).collect();
        let mut order: Vec<usize> = idx.to_vec();
        for _ in 0..self.epochs {
            order.shuffle(rng);
            for &s in &order {
                let sample = &ds.samples()[s];
                let acts = net.forward_fixed(&sample.features, &lut);
                let depth = net.depth();
                // Deltas layer by layer, from the output backwards.
                let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); depth];
                let out = &acts[depth - 1];
                deltas[depth - 1] = out
                    .iter()
                    .enumerate()
                    .map(|(k, &y)| {
                        let t = if k == sample.label { 1.0 } else { 0.0 };
                        (t - y) * y * (1.0 - y)
                    })
                    .collect();
                for l in (0..depth - 1).rev() {
                    let next_delta = deltas[l + 1].clone();
                    deltas[l] = acts[l]
                        .iter()
                        .enumerate()
                        .map(|(j, &h)| {
                            let back: f64 = next_delta
                                .iter()
                                .enumerate()
                                .map(|(k, &dk)| dk * net.weight(l + 1, k, j))
                                .sum();
                            h * (1.0 - h) * back
                        })
                        .collect();
                }
                // Updates.
                for l in 0..depth {
                    let n_in = net.dims[l];
                    let delta_l = deltas[l].clone();
                    for (j, &dj) in delta_l.iter().enumerate() {
                        // The inclusive bound is the bias slot, one past
                        // the activation slice.
                        #[allow(clippy::needless_range_loop)]
                        for i in 0..=n_in {
                            let y_in = if i == n_in {
                                1.0
                            } else if l == 0 {
                                sample.features[i]
                            } else {
                                acts[l - 1][i]
                            };
                            let vi = j * (n_in + 1) + i;
                            velocity[l][vi] =
                                self.learning_rate * dj * y_in + self.momentum * velocity[l][vi];
                            *net.weight_mut(l, j, i) += velocity[l][vi];
                        }
                    }
                }
            }
        }
    }

    /// Classification accuracy on the selected samples (fixed-point
    /// forward).
    pub fn evaluate(&self, net: &DeepMlp, ds: &Dataset, idx: &[usize]) -> f64 {
        let lut = SigmoidLut::new();
        let correct = idx
            .iter()
            .filter(|&&s| {
                let sample = &ds.samples()[s];
                net.classify_fixed(&sample.features, &lut) == sample.label
            })
            .count();
        correct as f64 / idx.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_datasets::GaussianMixture;

    #[test]
    fn construction_and_accessors() {
        let net = DeepMlp::new(&[5, 8, 6, 3], 1);
        assert_eq!(net.depth(), 3);
        assert_eq!(net.dims(), &[5, 8, 6, 3]);
        assert_eq!(net.n_weights(), 8 * 6 + 6 * 9 + 3 * 7);
        assert_eq!(DeepMlp::new(&[5, 8, 6, 3], 1), net, "deterministic");
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let net = DeepMlp::new(&[4, 7, 5, 2], 3);
        let acts = net.forward_float(&[0.2, 0.8, 0.1, 0.9]);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts[0].len(), 7);
        assert_eq!(acts[2].len(), 2);
        for layer in &acts {
            for &v in layer {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn fixed_tracks_float() {
        let net = DeepMlp::new(&[6, 10, 8, 3], 7);
        let lut = SigmoidLut::new();
        let x: Vec<f64> = (0..6).map(|i| i as f64 / 6.0).collect();
        let ff = net.forward_float(&x).pop().unwrap();
        let fx = net.forward_fixed(&x, &lut).pop().unwrap();
        for (a, b) in ff.iter().zip(&fx) {
            assert!((a - b).abs() < 0.08, "float {a} vs fixed {b}");
        }
    }

    #[test]
    fn deep_network_learns() {
        let ds = GaussianMixture::new(8, 3)
            .spread(0.09)
            .samples(240)
            .generate("deep", 11);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut net = DeepMlp::new(&[8, 12, 8, 3], 5);
        let trainer = DeepTrainer::new(0.3, 0.2, 40);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let before = trainer.evaluate(&net, &ds, &idx);
        trainer.train(&mut net, &ds, &idx, &mut rng);
        let after = trainer.evaluate(&net, &ds, &idx);
        assert!(after > 0.9, "deep training acc {after} (before {before})");
    }

    #[test]
    fn two_layer_deep_matches_mlp_semantics() {
        // A DeepMlp with one hidden layer computes the same function
        // family as Mlp; check the forward value ranges agree on a
        // shared topology with identical weights copied over.
        use crate::mlp::{Mlp, Topology};
        let topo = Topology::new(3, 4, 2);
        let mlp = Mlp::new(topo, 9);
        let mut deep = DeepMlp::new(&[3, 4, 2], 9);
        for j in 0..4 {
            for i in 0..=3 {
                *deep.weight_mut(0, j, i) = mlp.w_hidden(j, i);
            }
        }
        for k in 0..2 {
            for j in 0..=4 {
                *deep.weight_mut(1, k, j) = mlp.w_output(k, j);
            }
        }
        let lut = SigmoidLut::new();
        let x = [0.3, 0.6, 0.9];
        let trace = mlp.forward_fixed(&x, &lut);
        let acts = deep.forward_fixed(&x, &lut);
        assert_eq!(trace.hidden, acts[0]);
        assert_eq!(trace.output, acts[1]);
    }

    #[test]
    #[should_panic(expected = "input and output")]
    fn single_layer_rejected() {
        let _ = DeepMlp::new(&[5], 0);
    }
}
