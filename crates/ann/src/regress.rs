//! Function approximation — the second task family the paper targets
//! ("the ANN design would be the same for approximation, or clustering
//! tasks").
//!
//! The same 2-layer MLP and Q6.10 hardware forward path are trained
//! against continuous targets in `[0, 1]` with an MSE objective; the
//! per-neuron fault hooks work unchanged, so defect-tolerant
//! approximation (train → inject → retrain) composes exactly like
//! classification.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_fixed::SigmoidLut;

use crate::fault::FaultPlan;
use crate::mlp::Mlp;

/// One regression example: features and continuous targets, all in
/// `[0, 1]` (the sigmoid output range).
#[derive(Clone, Debug, PartialEq)]
pub struct RegressionSample {
    /// Input features.
    pub features: Vec<f64>,
    /// Target outputs in `[0, 1]`.
    pub targets: Vec<f64>,
}

/// A regression dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct RegressionSet {
    name: String,
    n_features: usize,
    n_targets: usize,
    samples: Vec<RegressionSample>,
}

impl RegressionSet {
    /// Creates a set, validating shapes and target ranges.
    ///
    /// # Panics
    ///
    /// Panics on empty data, shape mismatches, or targets outside
    /// `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        n_features: usize,
        n_targets: usize,
        samples: Vec<RegressionSample>,
    ) -> RegressionSet {
        assert!(!samples.is_empty(), "regression set must not be empty");
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.features.len(), n_features, "sample {i} features");
            assert_eq!(s.targets.len(), n_targets, "sample {i} targets");
            assert!(
                s.targets.iter().all(|&t| (0.0..=1.0).contains(&t)),
                "sample {i} targets must lie in [0,1] (sigmoid range)"
            );
        }
        RegressionSet {
            name: name.into(),
            n_features,
            n_targets,
            samples,
        }
    }

    /// Samples a function on uniformly random points of `[0, 1]^d`.
    /// `f` must return `n_targets` values in `[0, 1]`.
    pub fn from_function(
        name: impl Into<String>,
        n_features: usize,
        n_targets: usize,
        n_samples: usize,
        seed: u64,
        mut f: impl FnMut(&[f64]) -> Vec<f64>,
    ) -> RegressionSet {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let samples = (0..n_samples)
            .map(|_| {
                let features: Vec<f64> = (0..n_features)
                    .map(|_| rng.random_range(0.0..1.0))
                    .collect();
                let targets = f(&features);
                RegressionSample { features, targets }
            })
            .collect();
        RegressionSet::new(name, n_features, n_targets, samples)
    }

    /// Set name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of target outputs.
    pub fn n_targets(&self) -> usize {
        self.n_targets
    }

    /// The examples.
    pub fn samples(&self) -> &[RegressionSample] {
        &self.samples
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// MSE back-propagation against continuous targets, forward in Q6.10
/// (optionally through faulty silicon).
#[derive(Clone, Debug, PartialEq)]
pub struct RegressionTrainer {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Training epochs.
    pub epochs: usize,
}

impl RegressionTrainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive learning rate or zero epochs.
    pub fn new(learning_rate: f64, momentum: f64, epochs: usize) -> RegressionTrainer {
        assert!(learning_rate > 0.0);
        assert!((0.0..1.0).contains(&momentum));
        assert!(epochs >= 1);
        RegressionTrainer {
            learning_rate,
            momentum,
            epochs,
        }
    }

    /// Trains `mlp` on the selected samples; with `faults`, the forward
    /// pass exercises the defective hardware.
    pub fn train<R: Rng + ?Sized>(
        &self,
        mlp: &mut Mlp,
        set: &RegressionSet,
        idx: &[usize],
        mut faults: Option<&mut FaultPlan>,
        rng: &mut R,
    ) {
        let topo = mlp.topology();
        assert_eq!(topo.inputs, set.n_features(), "network/set mismatch");
        assert_eq!(topo.outputs, set.n_targets(), "output/target mismatch");
        let lut = SigmoidLut::new();
        let mut order: Vec<usize> = idx.to_vec();
        let mut v_hidden = vec![0.0f64; topo.hidden * (topo.inputs + 1)];
        let mut v_output = vec![0.0f64; topo.outputs * (topo.hidden + 1)];
        for _ in 0..self.epochs {
            order.shuffle(rng);
            for &s in &order {
                let sample = &set.samples[s];
                let trace = match faults.as_deref_mut() {
                    Some(plan) => mlp.forward_faulty(&sample.features, &lut, plan),
                    None => mlp.forward_fixed(&sample.features, &lut),
                };
                let mut delta_out = vec![0.0f64; topo.outputs];
                for (k, d) in delta_out.iter_mut().enumerate() {
                    let y = trace.output[k];
                    *d = (sample.targets[k] - y) * y * (1.0 - y);
                }
                let mut delta_hid = vec![0.0f64; topo.hidden];
                for (j, d) in delta_hid.iter_mut().enumerate() {
                    let h = trace.hidden[j];
                    let back: f64 = delta_out
                        .iter()
                        .enumerate()
                        .map(|(k, &dk)| dk * mlp.w_output(k, j))
                        .sum();
                    *d = h * (1.0 - h) * back;
                }
                for (k, &dk) in delta_out.iter().enumerate() {
                    for j in 0..=topo.hidden {
                        let y_in = if j == topo.hidden {
                            1.0
                        } else {
                            trace.hidden[j]
                        };
                        let vi = k * (topo.hidden + 1) + j;
                        v_output[vi] =
                            self.learning_rate * dk * y_in + self.momentum * v_output[vi];
                        *mlp.w_output_mut(k, j) += v_output[vi];
                    }
                }
                for (j, &dj) in delta_hid.iter().enumerate() {
                    for i in 0..=topo.inputs {
                        let x_in = if i == topo.inputs {
                            1.0
                        } else {
                            sample.features[i]
                        };
                        let vi = j * (topo.inputs + 1) + i;
                        v_hidden[vi] =
                            self.learning_rate * dj * x_in + self.momentum * v_hidden[vi];
                        *mlp.w_hidden_mut(j, i) += v_hidden[vi];
                    }
                }
            }
        }
    }

    /// Mean squared error over the selected samples.
    pub fn mse(
        &self,
        mlp: &Mlp,
        set: &RegressionSet,
        idx: &[usize],
        mut faults: Option<&mut FaultPlan>,
    ) -> f64 {
        let lut = SigmoidLut::new();
        let mut total = 0.0;
        let mut count = 0usize;
        for &s in idx {
            let sample = &set.samples[s];
            let trace = match faults.as_deref_mut() {
                Some(plan) => mlp.forward_faulty(&sample.features, &lut, plan),
                None => mlp.forward_fixed(&sample.features, &lut),
            };
            for (y, t) in trace.output.iter().zip(&sample.targets) {
                total += (y - t).powi(2);
                count += 1;
            }
        }
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Topology;
    use dta_circuits::FaultModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sine_set() -> RegressionSet {
        RegressionSet::from_function("sine", 1, 1, 200, 7, |x| {
            vec![0.5 + 0.4 * (std::f64::consts::TAU * x[0]).sin()]
        })
    }

    #[test]
    fn construction_validates() {
        let set = sine_set();
        assert_eq!(set.name(), "sine");
        assert_eq!((set.n_features(), set.n_targets()), (1, 1));
        assert_eq!(set.len(), 200);
        assert!(!set.is_empty());
    }

    #[test]
    #[should_panic(expected = "[0,1]")]
    fn out_of_range_targets_rejected() {
        RegressionSet::new(
            "bad",
            1,
            1,
            vec![RegressionSample {
                features: vec![0.5],
                targets: vec![1.5],
            }],
        );
    }

    #[test]
    fn approximates_a_sine() {
        let set = sine_set();
        let idx: Vec<usize> = (0..set.len()).collect();
        let mut mlp = Mlp::new(Topology::new(1, 10, 1), 3);
        let trainer = RegressionTrainer::new(0.6, 0.5, 300);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let before = trainer.mse(&mlp, &set, &idx, None);
        trainer.train(&mut mlp, &set, &idx, None, &mut rng);
        let after = trainer.mse(&mlp, &set, &idx, None);
        assert!(after < before / 3.0, "MSE {before} -> {after}");
        assert!(after < 0.005, "sine fit MSE {after}");
    }

    #[test]
    fn defect_tolerant_approximation() {
        // The paper's claim extends to approximation: inject, retrain,
        // and the fit survives.
        let set = sine_set();
        let idx: Vec<usize> = (0..set.len()).collect();
        let mut mlp = Mlp::new(Topology::new(1, 10, 1), 3);
        let trainer = RegressionTrainer::new(0.6, 0.5, 80);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut plan = FaultPlan::new(90);
        for _ in 0..3 {
            plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
        }
        trainer.train(&mut mlp, &set, &idx, Some(&mut plan), &mut rng);
        let mse = trainer.mse(&mlp, &set, &idx, Some(&mut plan));
        assert!(mse < 0.03, "faulty-silicon sine fit MSE {mse}");
    }
}
