//! Back-propagation training, evaluation, and cross-validation.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_datasets::Dataset;
use dta_fixed::SigmoidLut;

use crate::fault::FaultPlan;
use crate::mlp::{ForwardTrace, Mlp};

/// Which forward path training and evaluation use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardMode {
    /// Exact `f64` forward pass (the software reference / ablation).
    Float,
    /// The hardware Q6.10 + LUT-sigmoid path (the paper's methodology:
    /// training on the companion core "using the forward hardware
    /// logic"). When a [`FaultPlan`] is supplied, defective operators run
    /// through their gate-level circuits.
    Fixed,
}

/// Stochastic back-propagation with learning rate and momentum, MSE
/// objective — the paper's training setup.
///
/// Gradients are always accumulated in `f64` (the companion core); the
/// `mode` selects which forward path produces the activations, so
/// retraining "factors in the faulty elements".
#[derive(Clone, Debug, PartialEq)]
pub struct Trainer {
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Forward path.
    pub mode: ForwardMode,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive or `epochs` is zero.
    pub fn new(learning_rate: f64, momentum: f64, epochs: usize, mode: ForwardMode) -> Trainer {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0,1)");
        assert!(epochs >= 1, "need at least one epoch");
        Trainer {
            learning_rate,
            momentum,
            epochs,
            mode,
        }
    }

    /// Trains `mlp` on the samples of `ds` selected by `idx`, shuffling
    /// each epoch with `rng`. If `faults` is supplied, the forward pass
    /// exercises the defective hardware, so the network learns to
    /// "silence out" faulty elements.
    pub fn train<R: Rng + ?Sized>(
        &self,
        mlp: &mut Mlp,
        ds: &Dataset,
        idx: &[usize],
        mut faults: Option<&mut FaultPlan>,
        rng: &mut R,
    ) {
        let lut = SigmoidLut::new();
        let mode = self.mode;
        self.train_with(mlp, ds, idx, rng, move |m, x| {
            match (mode, faults.as_deref_mut()) {
                (ForwardMode::Float, _) => m.forward_float(x),
                (ForwardMode::Fixed, None) => m.forward_fixed(x, &lut),
                (ForwardMode::Fixed, Some(plan)) => m.forward_faulty(x, &lut, plan),
            }
        });
    }

    /// Trains with an arbitrary forward function (e.g. the
    /// time-multiplexed accelerator's shared-neuron path). Gradients are
    /// computed in `f64` from the activations the function reports.
    pub fn train_with<R: Rng + ?Sized, F>(
        &self,
        mlp: &mut Mlp,
        ds: &Dataset,
        idx: &[usize],
        rng: &mut R,
        mut forward: F,
    ) where
        F: FnMut(&Mlp, &[f64]) -> ForwardTrace,
    {
        let topo = mlp.topology();
        assert_eq!(topo.inputs, ds.n_features(), "network/dataset mismatch");
        assert!(topo.outputs >= ds.n_classes(), "too few output neurons");
        let mut order: Vec<usize> = idx.to_vec();
        // Momentum velocities, one per weight.
        let mut v_hidden = vec![0.0f64; topo.hidden * (topo.inputs + 1)];
        let mut v_output = vec![0.0f64; topo.outputs * (topo.hidden + 1)];

        for _epoch in 0..self.epochs {
            order.shuffle(rng);
            for &s in &order {
                let sample = &ds.samples()[s];
                let trace = forward(mlp, &sample.features);

                // Output deltas: (t - y) f'(o), with f' from the output.
                let mut delta_out = vec![0.0f64; topo.outputs];
                for (k, d) in delta_out.iter_mut().enumerate() {
                    let t = if k == sample.label { 1.0 } else { 0.0 };
                    let y = trace.output[k];
                    *d = (t - y) * y * (1.0 - y);
                }
                // Hidden deltas.
                let mut delta_hid = vec![0.0f64; topo.hidden];
                for (j, d) in delta_hid.iter_mut().enumerate() {
                    let h = trace.hidden[j];
                    let mut back = 0.0;
                    for (k, &dk) in delta_out.iter().enumerate() {
                        back += dk * mlp.w_output(k, j);
                    }
                    *d = h * (1.0 - h) * back;
                }
                // Output-layer update.
                for (k, &dk) in delta_out.iter().enumerate() {
                    for j in 0..=topo.hidden {
                        let y_in = if j == topo.hidden {
                            1.0
                        } else {
                            trace.hidden[j]
                        };
                        let vi = k * (topo.hidden + 1) + j;
                        v_output[vi] =
                            self.learning_rate * dk * y_in + self.momentum * v_output[vi];
                        *mlp.w_output_mut(k, j) += v_output[vi];
                    }
                }
                // Hidden-layer update.
                for (j, &dj) in delta_hid.iter().enumerate() {
                    for i in 0..=topo.inputs {
                        let x_in = if i == topo.inputs {
                            1.0
                        } else {
                            sample.features[i]
                        };
                        let vi = j * (topo.inputs + 1) + i;
                        v_hidden[vi] =
                            self.learning_rate * dj * x_in + self.momentum * v_hidden[vi];
                        *mlp.w_hidden_mut(j, i) += v_hidden[vi];
                    }
                }
            }
        }
    }

    /// Classification accuracy over the samples selected by `idx`.
    ///
    /// With a fault plan on the fixed-point path, the whole selection is
    /// evaluated through [`Mlp::forward_faulty_batch`]: combinational
    /// fault sets run 64 samples per circuit settle, stateful ones fall
    /// back to per-sample order. Accuracies are identical either way.
    pub fn evaluate(
        &self,
        mlp: &Mlp,
        ds: &Dataset,
        idx: &[usize],
        faults: Option<&mut FaultPlan>,
    ) -> f64 {
        let lut = SigmoidLut::new();
        if let (ForwardMode::Fixed, Some(plan)) = (self.mode, faults) {
            let rows: Vec<&[f64]> = idx
                .iter()
                .map(|&s| ds.samples()[s].features.as_slice())
                .collect();
            let traces = mlp.forward_faulty_batch(&rows, &lut, plan);
            let correct = idx
                .iter()
                .zip(&traces)
                .filter(|&(&s, t)| t.predicted() == ds.samples()[s].label)
                .count();
            return correct as f64 / idx.len() as f64;
        }
        let mode = self.mode;
        Self::evaluate_with(mlp, ds, idx, move |m, x| match mode {
            ForwardMode::Float => m.forward_float(x),
            ForwardMode::Fixed => m.forward_fixed(x, &lut),
        })
    }

    /// Classification accuracy with an arbitrary forward function.
    pub fn evaluate_with<F>(mlp: &Mlp, ds: &Dataset, idx: &[usize], mut forward: F) -> f64
    where
        F: FnMut(&Mlp, &[f64]) -> ForwardTrace,
    {
        let correct = idx
            .iter()
            .filter(|&&s| {
                let sample = &ds.samples()[s];
                forward(mlp, &sample.features).predicted() == sample.label
            })
            .count();
        correct as f64 / idx.len() as f64
    }
}

/// A confusion matrix: `counts[actual][predicted]`.
///
/// # Example
///
/// ```
/// use dta_ann::ConfusionMatrix;
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.accuracy(), 2.0 / 3.0);
/// assert_eq!(cm.recall(0), 0.5);
/// assert_eq!(cm.precision(1), 0.5);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero.
    pub fn new(n_classes: usize) -> ConfusionMatrix {
        assert!(n_classes >= 1);
        ConfusionMatrix {
            counts: vec![vec![0; n_classes]; n_classes],
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Records one prediction.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// Count of samples with the given actual and predicted classes.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual][predicted]
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (diagonal mass).
    pub fn accuracy(&self) -> f64 {
        let diag: u64 = (0..self.n_classes()).map(|c| self.counts[c][c]).sum();
        diag as f64 / self.total().max(1) as f64
    }

    /// Recall of a class: correct / actual occurrences (0 if unseen).
    pub fn recall(&self, class: usize) -> f64 {
        let row: u64 = self.counts[class].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / row as f64
        }
    }

    /// Precision of a class: correct / predicted occurrences (0 if never
    /// predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let col: u64 = self.counts.iter().map(|r| r[class]).sum();
        if col == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / col as f64
        }
    }

    /// Builds the matrix by classifying the selected samples of a
    /// dataset with the hardware (fixed-point) forward path, optionally
    /// through faulty silicon.
    ///
    /// Faulty selections go through [`Mlp::forward_faulty_batch`], which
    /// settles the operator circuits 64 rows per pass when the fault set
    /// is combinational and preserves per-sample order otherwise.
    pub fn from_evaluation(
        mlp: &Mlp,
        ds: &Dataset,
        idx: &[usize],
        faults: Option<&mut FaultPlan>,
    ) -> ConfusionMatrix {
        let lut = SigmoidLut::new();
        let mut cm = ConfusionMatrix::new(ds.n_classes());
        if let Some(plan) = faults {
            let rows: Vec<&[f64]> = idx
                .iter()
                .map(|&s| ds.samples()[s].features.as_slice())
                .collect();
            let traces = mlp.forward_faulty_batch(&rows, &lut, plan);
            for (&s, trace) in idx.iter().zip(&traces) {
                // Clamp predictions from wider physical outputs.
                let predicted = trace.predicted().min(ds.n_classes() - 1);
                cm.record(ds.samples()[s].label, predicted);
            }
            return cm;
        }
        for &s in idx {
            let sample = &ds.samples()[s];
            let trace = mlp.forward_fixed(&sample.features, &lut);
            let predicted = trace.predicted().min(ds.n_classes() - 1);
            cm.record(sample.label, predicted);
        }
        cm
    }
}

/// Result of a k-fold cross-validation run.
#[derive(Clone, Debug, PartialEq)]
pub struct CvResult {
    /// Test accuracy of each fold.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean accuracy across folds — the number every paper table/figure
    /// reports.
    pub fn mean(&self) -> f64 {
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Sample standard deviation across folds.
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        let n = self.fold_accuracies.len();
        if n < 2 {
            return 0.0;
        }
        (self
            .fold_accuracies
            .iter()
            .map(|a| (a - m).powi(2))
            .sum::<f64>()
            / (n - 1) as f64)
            .sqrt()
    }
}

/// K-fold cross-validation: trains a fresh network per fold (seeded
/// deterministically from `seed`) and reports held-out accuracies. The
/// same `faults` persist across folds (the silicon does not change when
/// the data split does); circuit state is reset between folds.
pub fn cross_validate(
    trainer: &Trainer,
    ds: &Dataset,
    hidden: usize,
    k: usize,
    seed: u64,
    mut faults: Option<&mut FaultPlan>,
) -> CvResult {
    let folds = ds.k_folds(k, seed);
    let topo = crate::mlp::Topology::new(ds.n_features(), hidden, ds.n_classes());
    let mut fold_accuracies = Vec::with_capacity(k);
    for (f, fold) in folds.iter().enumerate() {
        let mut mlp = Mlp::new(topo, seed ^ (f as u64) << 32 | 0x5eed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(f as u64));
        if let Some(plan) = faults.as_deref_mut() {
            plan.reset_state();
        }
        trainer.train(&mut mlp, ds, &fold.train, faults.as_deref_mut(), &mut rng);
        let acc = trainer.evaluate(&mlp, ds, &fold.test, faults.as_deref_mut());
        fold_accuracies.push(acc);
    }
    CvResult { fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_circuits::FaultModel;
    use dta_datasets::GaussianMixture;

    fn easy_dataset() -> Dataset {
        GaussianMixture::new(6, 2)
            .spread(0.08)
            .samples(120)
            .generate("easy", 99)
    }

    #[test]
    fn training_beats_majority_baseline() {
        let ds = easy_dataset();
        let trainer = Trainer::new(0.3, 0.2, 40, ForwardMode::Fixed);
        let topo = crate::mlp::Topology::new(6, 4, 2);
        let mut mlp = Mlp::new(topo, 1);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let before = trainer.evaluate(&mlp, &ds, &idx, None);
        trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
        let after = trainer.evaluate(&mlp, &ds, &idx, None);
        assert!(after > 0.9, "train acc {after} (was {before})");
        assert!(after > ds.majority_baseline());
    }

    #[test]
    fn float_and_fixed_modes_both_learn() {
        let ds = easy_dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        for mode in [ForwardMode::Float, ForwardMode::Fixed] {
            let trainer = Trainer::new(0.3, 0.1, 30, mode);
            let mut mlp = Mlp::new(crate::mlp::Topology::new(6, 4, 2), 3);
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
            let acc = trainer.evaluate(&mlp, &ds, &idx, None);
            assert!(acc > 0.9, "{mode:?} accuracy {acc}");
        }
    }

    #[test]
    fn cross_validation_partitions_and_reports() {
        let ds = easy_dataset();
        let trainer = Trainer::new(0.3, 0.1, 25, ForwardMode::Fixed);
        let cv = cross_validate(&trainer, &ds, 4, 5, 7, None);
        assert_eq!(cv.fold_accuracies.len(), 5);
        assert!(cv.mean() > 0.85, "cv mean {}", cv.mean());
        assert!(cv.std_dev() < 0.2);
        // Deterministic.
        let cv2 = cross_validate(&trainer, &ds, 4, 5, 7, None);
        assert_eq!(cv.fold_accuracies, cv2.fold_accuracies);
    }

    #[test]
    fn training_with_faults_recovers_accuracy() {
        // Inject a handful of hidden-layer defects, then verify that
        // retraining with the faulty forward path still learns the easy
        // task — the paper's central claim in miniature.
        let ds = easy_dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut plan = FaultPlan::new(90);
        for _ in 0..3 {
            plan.inject_random_hidden(4, FaultModel::TransistorLevel, &mut rng);
        }
        let trainer = Trainer::new(0.3, 0.1, 30, ForwardMode::Fixed);
        let mut mlp = Mlp::new(crate::mlp::Topology::new(6, 4, 2), 5);
        trainer.train(&mut mlp, &ds, &idx, Some(&mut plan), &mut rng);
        let acc = trainer.evaluate(&mlp, &ds, &idx, Some(&mut plan));
        assert!(acc > 0.8, "post-retraining accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_learning_rate_rejected() {
        let _ = Trainer::new(0.0, 0.1, 10, ForwardMode::Float);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dataset_mismatch_rejected() {
        let ds = easy_dataset();
        let trainer = Trainer::new(0.1, 0.1, 1, ForwardMode::Float);
        let mut mlp = Mlp::new(crate::mlp::Topology::new(3, 2, 2), 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        trainer.train(&mut mlp, &ds, &[0], None, &mut rng);
    }

    #[test]
    fn confusion_matrix_counts_and_metrics() {
        let ds = easy_dataset();
        let trainer = Trainer::new(0.3, 0.2, 40, ForwardMode::Fixed);
        let topo = crate::mlp::Topology::new(6, 4, 2);
        let mut mlp = Mlp::new(topo, 1);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
        let cm = ConfusionMatrix::from_evaluation(&mlp, &ds, &idx, None);
        assert_eq!(cm.total() as usize, ds.len());
        // Accuracy agrees with the trainer's metric.
        let acc = trainer.evaluate(&mlp, &ds, &idx, None);
        assert!((cm.accuracy() - acc).abs() < 1e-12);
        for c in 0..2 {
            assert!((0.0..=1.0).contains(&cm.recall(c)));
            assert!((0.0..=1.0).contains(&cm.precision(c)));
        }
    }
}
