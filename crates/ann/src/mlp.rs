//! The 2-layer multi-layer perceptron and its three forward paths.

use std::fmt;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_fixed::{sigmoid::sigmoid, Fx, SigmoidLut};
use dta_mem::WeightMemory;

use crate::fault::{bank_of, FaultPlan, Layer};

/// Streams one weight through the attached (non-transparent) array, if
/// any: the companion core writes the value into its word and the
/// datapath reads it back through the fault pipeline.
fn fetch_through(
    mem: &mut Option<&mut WeightMemory>,
    layer: Layer,
    lane: usize,
    slot: usize,
    w: Fx,
) -> Fx {
    match mem {
        Some(m) => m.fetch(bank_of(layer), lane, slot, w),
        None => w,
    }
}

/// Network dimensions: one hidden layer, as in the paper ("a 2-layer MLP
/// with one hidden layer, plus the input layer").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of input attributes.
    pub inputs: usize,
    /// Number of hidden neurons.
    pub hidden: usize,
    /// Number of output neurons (classes).
    pub outputs: usize,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(inputs: usize, hidden: usize, outputs: usize) -> Topology {
        assert!(inputs >= 1 && hidden >= 1 && outputs >= 1);
        Topology {
            inputs,
            hidden,
            outputs,
        }
    }

    /// The accelerator's physical geometry: 90 inputs, 10 hidden neurons,
    /// 10 outputs.
    pub fn accelerator() -> Topology {
        Topology::new(90, 10, 10)
    }

    /// Total number of synaptic weights (including biases).
    pub fn n_weights(&self) -> usize {
        self.hidden * (self.inputs + 1) + self.outputs * (self.hidden + 1)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}-{}", self.inputs, self.hidden, self.outputs)
    }
}

/// Activations recorded by one forward pass, needed both for
/// back-propagation and for the output-layer error-amplitude measurement
/// of Figure 11.
#[derive(Clone, Debug, PartialEq)]
pub struct ForwardTrace {
    /// Hidden-layer activations.
    pub hidden: Vec<f64>,
    /// Output-layer pre-activations (the adder outputs feeding each
    /// output neuron's activation function).
    pub output_pre: Vec<f64>,
    /// Output-layer activations.
    pub output: Vec<f64>,
}

impl ForwardTrace {
    /// The predicted class (argmax of the outputs).
    pub fn predicted(&self) -> usize {
        self.output
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("activations are finite"))
            .map(|(i, _)| i)
            .expect("networks have at least one output")
    }
}

/// A fully connected 2-layer perceptron with `f64` master weights (the
/// companion core's copy) and three forward paths:
///
/// * [`Mlp::forward_float`] — exact `f64` arithmetic and sigmoid (the
///   software reference);
/// * [`Mlp::forward_fixed`] — the hardware datapath: weights and inputs
///   quantized to Q6.10, saturating MACs, 16-segment sigmoid LUT;
/// * [`Mlp::forward_faulty`] — the fixed path with individual operators
///   of marked neurons routed through gate-level faulty circuits.
#[derive(Clone, Debug, PartialEq)]
pub struct Mlp {
    topo: Topology,
    /// `[hidden][inputs + 1]` row-major; the last column is the bias.
    w_hidden: Vec<f64>,
    /// `[outputs][hidden + 1]` row-major; the last column is the bias.
    w_output: Vec<f64>,
}

impl Mlp {
    /// Creates a network with seeded uniform Xavier-style initial weights
    /// (`±1/sqrt(fan_in)`).
    pub fn new(topo: Topology, seed: u64) -> Mlp {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lim_h = 1.0 / (topo.inputs as f64).sqrt();
        let lim_o = 1.0 / (topo.hidden as f64).sqrt();
        let w_hidden = (0..topo.hidden * (topo.inputs + 1))
            .map(|_| rng.random_range(-lim_h..lim_h))
            .collect();
        let w_output = (0..topo.outputs * (topo.hidden + 1))
            .map(|_| rng.random_range(-lim_o..lim_o))
            .collect();
        Mlp {
            topo,
            w_hidden,
            w_output,
        }
    }

    /// The network dimensions.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Hidden weight `w[j][i]` (`i == inputs` is the bias).
    pub fn w_hidden(&self, j: usize, i: usize) -> f64 {
        self.w_hidden[j * (self.topo.inputs + 1) + i]
    }

    /// Mutable hidden weight.
    pub fn w_hidden_mut(&mut self, j: usize, i: usize) -> &mut f64 {
        &mut self.w_hidden[j * (self.topo.inputs + 1) + i]
    }

    /// Output weight `w[k][j]` (`j == hidden` is the bias).
    pub fn w_output(&self, k: usize, j: usize) -> f64 {
        self.w_output[k * (self.topo.hidden + 1) + j]
    }

    /// Mutable output weight.
    pub fn w_output_mut(&mut self, k: usize, j: usize) -> &mut f64 {
        &mut self.w_output[k * (self.topo.hidden + 1) + j]
    }

    /// Exact `f64` forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != topology().inputs`.
    pub fn forward_float(&self, x: &[f64]) -> ForwardTrace {
        assert_eq!(x.len(), self.topo.inputs);
        let hidden: Vec<f64> = (0..self.topo.hidden)
            .map(|j| {
                let mut acc = self.w_hidden(j, self.topo.inputs);
                for (i, &xi) in x.iter().enumerate() {
                    acc += self.w_hidden(j, i) * xi;
                }
                sigmoid(acc)
            })
            .collect();
        let output_pre: Vec<f64> = (0..self.topo.outputs)
            .map(|k| {
                let mut acc = self.w_output(k, self.topo.hidden);
                for (j, &hj) in hidden.iter().enumerate() {
                    acc += self.w_output(k, j) * hj;
                }
                acc
            })
            .collect();
        let output = output_pre.iter().map(|&a| sigmoid(a)).collect();
        ForwardTrace {
            hidden,
            output_pre,
            output,
        }
    }

    /// Hardware (Q6.10) forward pass: quantized weights and inputs,
    /// saturating multiply-accumulate, LUT sigmoid.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != topology().inputs`.
    pub fn forward_fixed(&self, x: &[f64], lut: &SigmoidLut) -> ForwardTrace {
        assert_eq!(x.len(), self.topo.inputs);
        let xq: Vec<Fx> = x.iter().map(|&v| Fx::from_f64(v)).collect();
        let mut hidden_fx = Vec::with_capacity(self.topo.hidden);
        for j in 0..self.topo.hidden {
            let mut acc = Fx::from_f64(self.w_hidden(j, self.topo.inputs));
            for (i, &xi) in xq.iter().enumerate() {
                acc += Fx::from_f64(self.w_hidden(j, i)) * xi;
            }
            hidden_fx.push(lut.eval(acc));
        }
        let mut output_pre = Vec::with_capacity(self.topo.outputs);
        let mut output = Vec::with_capacity(self.topo.outputs);
        for k in 0..self.topo.outputs {
            let mut acc = Fx::from_f64(self.w_output(k, self.topo.hidden));
            for (j, &hj) in hidden_fx.iter().enumerate() {
                acc += Fx::from_f64(self.w_output(k, j)) * hj;
            }
            output_pre.push(acc.to_f64());
            output.push(lut.eval(acc).to_f64());
        }
        ForwardTrace {
            hidden: hidden_fx.iter().map(|h| h.to_f64()).collect(),
            output_pre,
            output,
        }
    }

    /// Hardware forward pass with faults: operators of neurons marked in
    /// `faults` are evaluated through their gate-level circuits. Neurons
    /// with defects in physical synapses beyond the logical input count
    /// evaluate those synapses too (with zero weight and input), since the
    /// faulty silicon can produce nonzero outputs even for zero operands.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != topology().inputs`.
    pub fn forward_faulty(
        &self,
        x: &[f64],
        lut: &SigmoidLut,
        faults: &mut FaultPlan,
    ) -> ForwardTrace {
        assert_eq!(x.len(), self.topo.inputs);
        let xq: Vec<Fx> = x.iter().map(|&v| Fx::from_f64(v)).collect();

        let mut hidden_fx = Vec::with_capacity(self.topo.hidden);
        for j in 0..self.topo.hidden {
            // Logical neuron j's weights evaluate through physical lane
            // `hidden_lane(j)` (identity unless a recovery remap moved
            // the neuron to a spare lane); masked lanes are gated to 0.
            let lane = faults.hidden_lane(j);
            if faults.is_masked(Layer::Hidden, lane) {
                hidden_fx.push(Fx::ZERO);
                continue;
            }
            let bias = faults.mem_bias(
                Layer::Hidden,
                lane,
                Fx::from_f64(self.w_hidden(j, self.topo.inputs)),
            );
            let acc = self.neuron_sum(Layer::Hidden, lane, bias, &xq, faults, |s, i| {
                Fx::from_f64(s.w_hidden(j, i))
            });
            let y = match faults.neuron_mut(Layer::Hidden, lane) {
                Some(nf) => nf.activation(acc, lut),
                None => lut.eval(acc),
            };
            hidden_fx.push(y);
        }

        let mut output_pre = Vec::with_capacity(self.topo.outputs);
        let mut output = Vec::with_capacity(self.topo.outputs);
        for k in 0..self.topo.outputs {
            if faults.is_masked(Layer::Output, k) {
                output_pre.push(0.0);
                output.push(0.0);
                continue;
            }
            let bias = faults.mem_bias(
                Layer::Output,
                k,
                Fx::from_f64(self.w_output(k, self.topo.hidden)),
            );
            let acc = self.neuron_sum(Layer::Output, k, bias, &hidden_fx, faults, |s, j| {
                Fx::from_f64(s.w_output(k, j))
            });
            output_pre.push(acc.to_f64());
            let y = match faults.neuron_mut(Layer::Output, k) {
                Some(nf) => nf.activation(acc, lut),
                None => lut.eval(acc),
            };
            output.push(y.to_f64());
        }
        ForwardTrace {
            hidden: hidden_fx.iter().map(|h| h.to_f64()).collect(),
            output_pre,
            output,
        }
    }

    /// Batched hardware forward pass with faults: evaluates every row of
    /// `xs` like [`Mlp::forward_faulty`], but when the fault plan is
    /// [vectorizable](FaultPlan::vectorizable) each faulty operator runs
    /// 64 samples per settle through its lane-parallel simulator (the
    /// memoized pin truth table of each faulty cell, broadcast across
    /// lanes). Stateful plans fall back to per-sample evaluation, so the
    /// results are identical to the scalar path in every case.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `topology().inputs`.
    pub fn forward_faulty_batch(
        &self,
        xs: &[impl AsRef<[f64]>],
        lut: &SigmoidLut,
        faults: &mut FaultPlan,
    ) -> Vec<ForwardTrace> {
        // Preferred engine: the whole pass as one fused, optimized LUT
        // stream (memoized per topology + defect-plan fingerprint).
        if !crate::fused::fused_engine_disabled() {
            if let Some(fused) = crate::fused::FusedForward::cached(self, faults) {
                return fused.forward(self, xs, lut, faults);
            }
        }
        if !faults.vectorizable() {
            // Memory effects make per-sample order semantic: replay the
            // scalar path exactly.
            return xs
                .iter()
                .map(|x| self.forward_faulty(x.as_ref(), lut, faults))
                .collect();
        }
        let n = xs.len();
        let xq: Vec<Vec<Fx>> = xs
            .iter()
            .map(|x| {
                let x = x.as_ref();
                assert_eq!(x.len(), self.topo.inputs);
                x.iter().map(|&v| Fx::from_f64(v)).collect()
            })
            .collect();

        // Hidden layer, sample-major.
        let mut hidden_fx: Vec<Vec<Fx>> = vec![Vec::with_capacity(self.topo.hidden); n];
        for j in 0..self.topo.hidden {
            let lane = faults.hidden_lane(j);
            if faults.is_masked(Layer::Hidden, lane) {
                for row in hidden_fx.iter_mut() {
                    row.push(Fx::ZERO);
                }
                continue;
            }
            let bias = faults.mem_bias(
                Layer::Hidden,
                lane,
                Fx::from_f64(self.w_hidden(j, self.topo.inputs)),
            );
            let accs = self.neuron_sum_batch(Layer::Hidden, lane, bias, &xq, faults, |s, i| {
                Fx::from_f64(s.w_hidden(j, i))
            });
            let ys = match faults.neuron_mut(Layer::Hidden, lane) {
                Some(nf) => nf.activation_batch(&accs, lut),
                None => accs.iter().map(|&a| lut.eval(a)).collect(),
            };
            for (row, y) in hidden_fx.iter_mut().zip(ys) {
                row.push(y);
            }
        }

        // Output layer.
        let mut traces: Vec<ForwardTrace> = hidden_fx
            .iter()
            .map(|row| ForwardTrace {
                hidden: row.iter().map(|h| h.to_f64()).collect(),
                output_pre: Vec::with_capacity(self.topo.outputs),
                output: Vec::with_capacity(self.topo.outputs),
            })
            .collect();
        for k in 0..self.topo.outputs {
            if faults.is_masked(Layer::Output, k) {
                for trace in traces.iter_mut() {
                    trace.output_pre.push(0.0);
                    trace.output.push(0.0);
                }
                continue;
            }
            let bias = faults.mem_bias(
                Layer::Output,
                k,
                Fx::from_f64(self.w_output(k, self.topo.hidden)),
            );
            let accs = self.neuron_sum_batch(Layer::Output, k, bias, &hidden_fx, faults, |s, j| {
                Fx::from_f64(s.w_output(k, j))
            });
            let ys = match faults.neuron_mut(Layer::Output, k) {
                Some(nf) => nf.activation_batch(&accs, lut),
                None => accs.iter().map(|&a| lut.eval(a)).collect(),
            };
            for ((trace, acc), y) in traces.iter_mut().zip(&accs).zip(ys) {
                trace.output_pre.push(acc.to_f64());
                trace.output.push(y.to_f64());
            }
        }
        traces
    }

    /// Batched multiply-accumulate for one neuron over sample-major
    /// inputs: per physical synapse, one 64-lane pass through any faulty
    /// multiplier/adder instead of a per-sample circuit settle. Only
    /// called on vectorizable (stateless) plans, where the per-sample
    /// results cannot depend on evaluation order.
    fn neuron_sum_batch(
        &self,
        layer: Layer,
        neuron: usize,
        bias: Fx,
        inputs: &[Vec<Fx>],
        faults: &mut FaultPlan,
        weight_of: impl Fn(&Mlp, usize) -> Fx,
    ) -> Vec<Fx> {
        let n = inputs.len();
        let (mut mem, nf) = faults.fetch_units(layer, neuron);
        let Some(nf) = nf else {
            // Fully native accumulation per sample; when a defective
            // array is attached each weight is streamed through it once
            // per batch (a vectorizable array is a pure function, so
            // this matches the scalar path's per-sample fetches).
            let n_logical = inputs.first().map_or(0, Vec::len);
            let ws: Vec<Fx> = (0..n_logical)
                .map(|i| fetch_through(&mut mem, layer, neuron, i, weight_of(self, i)))
                .collect();
            return inputs
                .iter()
                .map(|x| {
                    let mut acc = bias;
                    for (i, &xi) in x.iter().enumerate() {
                        acc += ws[i] * xi;
                    }
                    acc
                })
                .collect();
        };
        let n_logical = inputs.first().map_or(0, Vec::len);
        let n_eff = n_logical.max(nf.max_synapse_excl());
        let mut accs = vec![bias; n];
        for i in 0..n_eff {
            let w = if i < n_logical {
                weight_of(self, i)
            } else {
                Fx::ZERO
            };
            // Array first (the store feeds the lane's weight latch),
            // then the latch's own stuck bits.
            let w = fetch_through(&mut mem, layer, neuron, i, w);
            let w = nf.latch_filter(i, w);
            let lane: Vec<Fx> = if i < n_logical {
                inputs.iter().map(|x| x[i]).collect()
            } else {
                vec![Fx::ZERO; n]
            };
            let prods: Vec<Fx> = match nf.multiplier_mut(i) {
                Some(hw) => hw.mul_batch(&vec![w; n], &lane),
                None => lane.iter().map(|&xi| w * xi).collect(),
            };
            match nf.adder_mut(i) {
                Some(hw) => accs = hw.add_batch(&accs, &prods),
                None => {
                    for (acc, &p) in accs.iter_mut().zip(&prods) {
                        *acc += p;
                    }
                }
            }
        }
        accs
    }

    /// Multiply-accumulate for one neuron, routing individual operations
    /// through faulty circuits where the plan marks them.
    fn neuron_sum(
        &self,
        layer: Layer,
        neuron: usize,
        bias: Fx,
        inputs: &[Fx],
        faults: &mut FaultPlan,
        weight_of: impl Fn(&Mlp, usize) -> Fx,
    ) -> Fx {
        let (mut mem, nf) = faults.fetch_units(layer, neuron);
        let Some(nf) = nf else {
            // Fast path: fully native accumulation, with each weight
            // still streamed through the array when a defective one is
            // attached (memory faults hit every lane, not just neurons
            // with operator faults).
            let mut acc = bias;
            for (i, &xi) in inputs.iter().enumerate() {
                acc += fetch_through(&mut mem, layer, neuron, i, weight_of(self, i)) * xi;
            }
            return acc;
        };
        let n_logical = inputs.len();
        let n_eff = n_logical.max(nf.max_synapse_excl());
        let mut acc = bias;
        // The physical synapse range can extend past `inputs` (defective
        // columns beyond the task width), so this cannot iterate the slice.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_eff {
            let (w, xi) = if i < n_logical {
                (weight_of(self, i), inputs[i])
            } else {
                (Fx::ZERO, Fx::ZERO) // physical synapse beyond the task
            };
            // Array first (the store feeds the lane's weight latch),
            // then the latch's own stuck bits.
            let w = fetch_through(&mut mem, layer, neuron, i, w);
            let w = nf.latch_filter(i, w);
            let p = match nf.multiplier_mut(i) {
                Some(hw) => hw.mul(w, xi),
                None => w * xi,
            };
            acc = match nf.adder_mut(i) {
                Some(hw) => hw.add(acc, p),
                None => acc + p,
            };
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn topology_accessors() {
        let t = Topology::new(4, 3, 2);
        assert_eq!(t.to_string(), "4-3-2");
        assert_eq!(t.n_weights(), 3 * 5 + 2 * 4);
        let acc = Topology::accelerator();
        assert_eq!((acc.inputs, acc.hidden, acc.outputs), (90, 10, 10));
    }

    #[test]
    fn deterministic_init() {
        let t = Topology::new(5, 4, 3);
        assert_eq!(Mlp::new(t, 7), Mlp::new(t, 7));
        assert_ne!(Mlp::new(t, 7), Mlp::new(t, 8));
    }

    #[test]
    fn float_outputs_in_unit_interval() {
        let mlp = Mlp::new(Topology::new(6, 5, 4), 3);
        let trace = mlp.forward_float(&[0.1, 0.9, 0.3, 0.5, 0.0, 1.0]);
        assert_eq!(trace.hidden.len(), 5);
        assert_eq!(trace.output.len(), 4);
        for &y in trace.hidden.iter().chain(&trace.output) {
            assert!((0.0..=1.0).contains(&y));
        }
        assert!(trace.predicted() < 4);
    }

    #[test]
    fn fixed_tracks_float_closely() {
        // With unit-scale weights and inputs, the Q6.10 path stays within
        // a couple of percent of the float path.
        let mlp = Mlp::new(Topology::new(8, 6, 3), 11);
        let lut = SigmoidLut::new();
        let x: Vec<f64> = (0..8).map(|i| (i as f64) / 8.0).collect();
        let ff = mlp.forward_float(&x);
        let fx = mlp.forward_fixed(&x, &lut);
        for (a, b) in ff.output.iter().zip(&fx.output) {
            assert!((a - b).abs() < 0.05, "float {a} vs fixed {b}");
        }
    }

    #[test]
    fn faulty_with_empty_plan_equals_fixed() {
        let mlp = Mlp::new(Topology::new(10, 4, 3), 5);
        let lut = SigmoidLut::new();
        let mut plan = FaultPlan::new(90);
        let x: Vec<f64> = (0..10).map(|i| (i as f64) * 0.07).collect();
        assert_eq!(
            mlp.forward_fixed(&x, &lut),
            mlp.forward_faulty(&x, &lut, &mut plan)
        );
    }

    #[test]
    fn batch_forward_matches_scalar_under_faults() {
        use dta_circuits::FaultModel;
        use rand::SeedableRng;
        let topo = Topology::new(6, 4, 3);
        let lut = SigmoidLut::new();
        let rows: Vec<Vec<f64>> = (0..130)
            .map(|s| {
                (0..6)
                    .map(|i| ((s * 7 + i * 13) % 29) as f64 / 29.0)
                    .collect()
            })
            .collect();
        let mut vectorized = 0;
        let mut scalar_fallback = 0;
        for seed in 0..10u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut plan = FaultPlan::new(90);
            for _ in 0..5 {
                plan.inject_random_hidden(4, FaultModel::TransistorLevel, &mut rng);
            }
            if plan.vectorizable() {
                vectorized += 1;
            } else {
                scalar_fallback += 1;
            }
            let mlp = Mlp::new(topo, seed ^ 0xB17);
            plan.reset_state();
            let batch = mlp.forward_faulty_batch(&rows, &lut, &mut plan);
            plan.reset_state();
            let scalar: Vec<ForwardTrace> = rows
                .iter()
                .map(|x| mlp.forward_faulty(x, &lut, &mut plan))
                .collect();
            assert_eq!(batch, scalar, "seed {seed}");
        }
        // The sweep must exercise both the 64-lane path and the
        // stateful fallback, or the test proves less than it claims.
        assert!(vectorized > 0, "no vectorizable plan in 10 seeds");
        assert!(scalar_fallback > 0, "no stateful plan in 10 seeds");
    }

    #[test]
    fn batch_forward_with_empty_plan_equals_fixed() {
        let mlp = Mlp::new(Topology::new(5, 3, 2), 9);
        let lut = SigmoidLut::new();
        let mut plan = FaultPlan::new(90);
        let rows: Vec<Vec<f64>> = (0..70)
            .map(|s| (0..5).map(|i| ((s + i * 3) % 11) as f64 / 11.0).collect())
            .collect();
        let batch = mlp.forward_faulty_batch(&rows, &lut, &mut plan);
        for (row, trace) in rows.iter().zip(&batch) {
            assert_eq!(mlp.forward_fixed(row, &lut), *trace);
        }
    }

    #[test]
    fn remap_routes_around_faulty_lane() {
        use dta_circuits::FaultModel;
        use rand::SeedableRng;
        let mlp = Mlp::new(Topology::new(6, 4, 3), 2);
        let lut = SigmoidLut::new();
        let x: Vec<f64> = (0..6).map(|i| 0.9 - 0.2 * i as f64).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        // Find a seed whose single defect visibly corrupts the trace.
        let mut plan = loop {
            let mut plan = FaultPlan::new(90);
            plan.inject_random_hidden(1, FaultModel::TransistorLevel, &mut rng);
            plan.reset_state();
            if mlp.forward_faulty(&x, &lut, &mut plan) != mlp.forward_fixed(&x, &lut) {
                plan.reset_state();
                break plan;
            }
        };
        // All defects landed on physical lane 0; remapping logical
        // neuron 0 to a spare healthy lane restores the fixed path
        // exactly (the spare index may exceed the logical width).
        plan.remap_hidden(0, 7);
        assert_eq!(
            mlp.forward_faulty(&x, &lut, &mut plan),
            mlp.forward_fixed(&x, &lut)
        );
    }

    #[test]
    fn masked_hidden_lane_outputs_zero() {
        let mlp = Mlp::new(Topology::new(5, 3, 2), 4);
        let lut = SigmoidLut::new();
        let mut plan = FaultPlan::new(90);
        plan.mask(Layer::Hidden, 1);
        let rows: Vec<Vec<f64>> = (0..70)
            .map(|s| (0..5).map(|i| ((s + i * 3) % 13) as f64 / 13.0).collect())
            .collect();
        let batch = mlp.forward_faulty_batch(&rows, &lut, &mut plan);
        for (row, trace) in rows.iter().zip(&batch) {
            assert_eq!(trace.hidden[1], 0.0, "masked lane gated to 0");
            assert_eq!(*trace, mlp.forward_faulty(row, &lut, &mut plan));
            assert_ne!(*trace, mlp.forward_fixed(row, &lut));
        }
    }

    #[test]
    fn transparent_memory_is_bit_invisible() {
        // The zero-defect guard: attaching a defect-free weight store
        // (with or without ECC) must leave both faulty forward paths
        // byte-identical to the plain fixed path.
        use dta_mem::{MemGeometry, WeightMemory};
        let topo = Topology::new(10, 4, 3);
        let mlp = Mlp::new(topo, 5);
        let lut = SigmoidLut::new();
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|s| {
                (0..10)
                    .map(|i| ((s * 5 + i * 3) % 17) as f64 / 17.0)
                    .collect()
            })
            .collect();
        for ecc in [false, true] {
            let mut plan = FaultPlan::new(90);
            plan.attach_memory(WeightMemory::new(MemGeometry::for_network(10, 4, 3, ecc)));
            assert!(plan.vectorizable());
            for row in &rows {
                assert_eq!(
                    mlp.forward_fixed(row, &lut),
                    mlp.forward_faulty(row, &lut, &mut plan),
                    "ecc={ecc}"
                );
            }
            let batch = mlp.forward_faulty_batch(&rows, &lut, &mut plan);
            for (row, trace) in rows.iter().zip(&batch) {
                assert_eq!(mlp.forward_fixed(row, &lut), *trace, "ecc={ecc}");
            }
        }
    }

    #[test]
    fn memory_faults_reach_every_lane_and_batch_matches_scalar() {
        use dta_mem::{Activation, MemGeometry, WeightMemory};
        use rand::SeedableRng;
        let topo = Topology::new(10, 4, 3);
        let mlp = Mlp::new(topo, 5);
        let lut = SigmoidLut::new();
        let rows: Vec<Vec<f64>> = (0..90)
            .map(|s| {
                (0..10)
                    .map(|i| ((s * 7 + i * 11) % 23) as f64 / 23.0)
                    .collect()
            })
            .collect();
        let lifetimes = [
            Activation::Permanent,
            Activation::Transient {
                per_eval_probability: 0.3,
            },
        ];
        let mut corrupted = 0;
        for (li, activation) in lifetimes.into_iter().enumerate() {
            // Raw array (no ECC) so even small damage is visible.
            let mut plan = FaultPlan::new(90);
            let mut mem = WeightMemory::new(MemGeometry::for_network(10, 4, 3, false));
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xD00D + li as u64);
            mem.inject_many(8, activation, &mut rng);
            plan.attach_memory(mem);
            assert_eq!(plan.vectorizable(), activation.is_permanent());
            plan.reset_state();
            let batch = mlp.forward_faulty_batch(&rows, &lut, &mut plan);
            plan.reset_state();
            for (row, trace) in rows.iter().zip(&batch) {
                assert_eq!(*trace, mlp.forward_faulty(row, &lut, &mut plan));
                if *trace != mlp.forward_fixed(row, &lut) {
                    corrupted += 1;
                }
            }
        }
        assert!(
            corrupted > 0,
            "8 raw-array defects never disturbed the output"
        );
    }

    #[test]
    fn weight_accessors_roundtrip() {
        let mut mlp = Mlp::new(Topology::new(3, 2, 2), 1);
        *mlp.w_hidden_mut(1, 3) = 0.5; // bias of hidden neuron 1
        assert_eq!(mlp.w_hidden(1, 3), 0.5);
        *mlp.w_output_mut(0, 2) = -0.25; // bias of output neuron 0
        assert_eq!(mlp.w_output(0, 2), -0.25);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn wrong_input_width_panics() {
        let mlp = Mlp::new(Topology::new(3, 2, 2), 1);
        let _ = mlp.forward_float(&[0.0; 4]);
    }
}
