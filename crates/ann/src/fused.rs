//! Network-level fusion of the faulty forward pass.
//!
//! [`crate::Mlp::forward_faulty_batch`] dispatches every faulty operator
//! through its own per-operator LUT stream, repacking 64-lane words at
//! each operator boundary. [`FusedForward`] instead compiles the *whole*
//! forward pass of one `(topology, fault-plan)` pair into a single
//! [`dta_logic::FusedProgram`]: every faulty multiplier, adder and
//! sigmoid unit — faults already lowered into patched truth words —
//! becomes a segment of one straight-line instruction stream over a
//! shared flat register file, with producer outputs bound directly as
//! consumer inputs (a faulty multiplier feeding a faulty adder costs
//! zero repacking, and consecutive faulty adders chain in-gate).
//!
//! Healthy operators never enter the stream: the runner evaluates them
//! natively between stage barriers, exactly like the per-operator
//! engine ladder would. On top of the raw fusion the program is run
//! through [`dta_logic::optimize`]'s pass pipeline — constant folding
//! through the patched truth words (physical synapses beyond the
//! logical input width and masked hidden lanes feed compile-time-zero
//! operands), cross-operator dead-LUT elimination, and register-file
//! liveness compaction — so the working set stays cache-resident for
//! deep fault plans.
//!
//! Compilation is memoized process-wide per (topology, defect-plan
//! fingerprint), so campaign cells and mission batches amortize it
//! across every epoch and batch; [`fused_cache_stats`] exposes the
//! hit/miss counters for benchmark breakdowns. The engine-preference
//! ladder for batch evaluation is: fused → per-operator LUT → 64-lane
//! gate simulation → cone-of-influence → scalar settle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dta_fixed::{Fx, SigmoidLut};
use dta_logic::{optimize_with_consts, FuseBuilder, FusedExec, FusedProgram, LutExec, OptStats};
use dta_logic::{NodeId, SlotMap};

use crate::fault::{FaultPlan, Layer, NeuronFaults};
use crate::mlp::{ForwardTrace, Mlp};

/// Fused compilations kept in the process-wide memo before it is
/// cleared wholesale (campaign sweeps mint one plan per cell; an
/// unbounded cache would grow with the sweep).
const CACHE_CAP: usize = 256;

static DISABLE_FUSED: AtomicBool = AtomicBool::new(false);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide switch disabling the fused network engine, so
/// benchmarks can time the per-operator ladder underneath it.
pub fn disable_fused_engine(disable: bool) {
    DISABLE_FUSED.store(disable, Ordering::SeqCst);
}

/// True if [`disable_fused_engine`] turned the fused engine off.
pub fn fused_engine_disabled() -> bool {
    DISABLE_FUSED.load(Ordering::SeqCst)
}

/// `(hits, misses)` of the process-wide fused-compilation memo —
/// measures compilation amortization across campaign cells and epochs.
pub fn fused_cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Empties the fused-compilation memo (benchmark cold-start timing).
pub fn clear_fused_cache() {
    if let Ok(mut cache) = cache().lock() {
        cache.clear();
    }
}

/// Identity of one faulty operator's patched instruction stream: the
/// shared netlist (instruction skeleton) plus the patched truth words.
#[derive(PartialEq, Eq, Hash)]
struct OpKey {
    net: usize,
    tables: Vec<u16>,
}

impl OpKey {
    fn new(net: usize, ex: &LutExec) -> OpKey {
        OpKey {
            net,
            tables: ex.instrs().iter().map(|i| i.table).collect(),
        }
    }
}

/// One neuron's contribution to the defect-plan fingerprint.
#[derive(PartialEq, Eq, Hash)]
struct NeuronKey {
    lane: usize,
    n_eff: usize,
    muls: Vec<(usize, OpKey)>,
    adds: Vec<(usize, OpKey)>,
    act: Option<OpKey>,
    latches: Vec<(usize, u16, u16)>,
}

/// What one logical neuron compiles to, as fingerprint material.
#[derive(PartialEq, Eq, Hash)]
enum KeyPlan {
    Masked,
    Native { lane: usize },
    Gated(NeuronKey),
}

/// The full (topology, defect-plan) fingerprint keying the memo. Weight
/// values are deliberately absent: weights and biases are runtime
/// inputs of the fused stream, so training updates and memory repairs
/// never force a recompile.
#[derive(PartialEq, Eq, Hash)]
struct FuseKey {
    dims: (usize, usize, usize),
    hidden: Vec<KeyPlan>,
    output: Vec<KeyPlan>,
}

fn cache() -> &'static Mutex<HashMap<FuseKey, Arc<FusedForward>>> {
    static CACHE: OnceLock<Mutex<HashMap<FuseKey, Arc<FusedForward>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A faulty multiplier's segment ports in the fused register file.
struct MulPort {
    syn: usize,
    /// Weight operand bus (driven uniform across lanes each call).
    w: Vec<u32>,
    /// Input operand bus; not driven when `x_const`.
    x: Vec<u32>,
    /// Product bus; read back only when the consuming adder is healthy
    /// (otherwise it is wired straight into the adder's `b` operand).
    out: Vec<u32>,
    /// The input operand is compile-time zero (physical synapse beyond
    /// the logical width, or a masked hidden lane): folded, not driven.
    x_const: bool,
}

/// One synapse of a fused adder run.
struct RunSyn {
    syn: usize,
    /// `b` operand bus when the multiplier at this synapse is healthy
    /// (the runner packs the native product); `None` when the faulty
    /// multiplier's output is bound directly.
    b: Option<Vec<u32>>,
    /// The native product is compile-time zero: folded, not driven.
    b_const: bool,
}

/// A maximal chain of consecutive faulty adders, fused in-gate: adder
/// `i`'s sum feeds adder `i+1`'s `a` operand with no repacking.
struct AddRun {
    start: usize,
    end: usize,
    /// Partial-accumulator input bus of the first adder in the chain.
    a_in: Vec<u32>,
    /// Sum bus of the last adder in the chain.
    out: Vec<u32>,
    syns: Vec<RunSyn>,
}

/// A faulty sigmoid unit's ports.
struct ActPort {
    x: Vec<u32>,
    out: Vec<u32>,
}

/// Compiled layout of one neuron that owns at least one fault.
struct GatedNeuron {
    lane: usize,
    n_eff: usize,
    muls: Vec<MulPort>,
    /// Index into `muls` per synapse (`n_eff` entries).
    mul_at: Vec<Option<usize>>,
    runs: Vec<AddRun>,
    act: Option<ActPort>,
}

/// How one logical neuron executes at run time.
enum NeuronPlan {
    /// Recovery-masked lane: outputs zero.
    Masked,
    /// No fault entry: fully native multiply-accumulate and LUT sigmoid.
    Native { lane: usize },
    /// At least one faulty operator: gate segments in the fused stream,
    /// native arithmetic between them.
    Gated(GatedNeuron),
}

/// Stage indices of one layer inside the fused program: one multiplier
/// stage, `n_runs` adder-run stages, one activation stage.
struct LayerStages {
    mul: usize,
    add0: usize,
    n_runs: usize,
    act: usize,
}

/// Per-call weight preparation for one neuron (bias and weights fetched
/// through the attached memory once per batch, latch stuck-bit masks
/// applied — all native, outside the gate stream).
enum RtPrep {
    Masked,
    Native { bias: Fx, ws: Vec<Fx> },
    Gated { bias: Fx, w_eff: Vec<Fx> },
}

/// A whole faulty forward pass compiled to one optimized 64-lane LUT
/// instruction stream (see the module docs). Build with
/// [`FusedForward::cached`] (memoized) or [`FusedForward::compile`].
pub struct FusedForward {
    prog: Arc<FusedProgram>,
    hidden: Vec<NeuronPlan>,
    output: Vec<NeuronPlan>,
    h_stages: LayerStages,
    o_stages: LayerStages,
    stats: OptStats,
}

impl FusedForward {
    /// The memoized fused compilation for this `(topology, plan)` pair,
    /// or `None` when the plan is not fusable (stateful faults, or a
    /// faulty operator without a patched LUT stream). Weight values are
    /// not part of the fingerprint — see [`FuseKey`].
    pub fn cached(mlp: &Mlp, plan: &FaultPlan) -> Option<Arc<FusedForward>> {
        let key = build_key(mlp, plan)?;
        let mut cache = cache().lock().expect("fused cache poisoned");
        if let Some(ff) = cache.get(&key) {
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(ff));
        }
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let ff = Arc::new(Self::compile(mlp, plan)?);
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&ff));
        Some(ff)
    }

    /// Compiles (without memoization) the fused forward program for this
    /// plan, or `None` when the plan is not fusable.
    pub fn compile(mlp: &Mlp, plan: &FaultPlan) -> Option<FusedForward> {
        if !plan.vectorizable() {
            return None;
        }
        let topo = mlp.topology();
        let masked_logical: Vec<bool> = (0..topo.hidden)
            .map(|j| plan.is_masked(Layer::Hidden, plan.hidden_lane(j)))
            .collect();

        let mut fb = FuseBuilder::new();
        let mut roots: Vec<u32> = Vec::new();
        let mut known: Vec<(u32, bool)> = Vec::new();
        let mut stage = 0usize;

        let h_lanes: Vec<usize> = (0..topo.hidden).map(|j| plan.hidden_lane(j)).collect();
        let (hidden, h_stages) = compile_layer(
            plan,
            Layer::Hidden,
            &h_lanes,
            topo.inputs,
            |i| i >= topo.inputs,
            &mut fb,
            &mut stage,
            &mut roots,
            &mut known,
        )?;
        fb.barrier();
        stage += 1;
        let o_lanes: Vec<usize> = (0..topo.outputs).collect();
        let (output, o_stages) = compile_layer(
            plan,
            Layer::Output,
            &o_lanes,
            topo.hidden,
            |j| j >= topo.hidden || masked_logical[j],
            &mut fb,
            &mut stage,
            &mut roots,
            &mut known,
        )?;

        let raw = fb.finish();
        let (prog, sm, stats) = optimize_with_consts(&raw, &roots, &known);
        let hidden = hidden.into_iter().map(|p| remap_plan(p, &sm)).collect();
        let output = output.into_iter().map(|p| remap_plan(p, &sm)).collect();
        Some(FusedForward {
            prog: Arc::new(prog),
            hidden,
            output,
            h_stages,
            o_stages,
            stats,
        })
    }

    /// The optimized fused instruction stream (rank partitioning for
    /// multi-core execution operates on this).
    pub fn program(&self) -> &Arc<FusedProgram> {
        &self.prog
    }

    /// What the optimization pipeline did to this program.
    pub fn opt_stats(&self) -> OptStats {
        self.stats
    }

    /// Evaluates every row of `xs` bit-identically to
    /// [`Mlp::forward_faulty_batch`]'s per-operator ladder (and hence to
    /// the scalar [`Mlp::forward_faulty`]), 64 samples per stream sweep.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the compiled topology's
    /// input count, or if `mlp`/`plan` do not match the compiled pair.
    pub fn forward(
        &self,
        mlp: &Mlp,
        xs: &[impl AsRef<[f64]>],
        lut: &SigmoidLut,
        plan: &mut FaultPlan,
    ) -> Vec<ForwardTrace> {
        let topo = mlp.topology();
        assert_eq!(self.hidden.len(), topo.hidden, "topology mismatch");
        assert_eq!(self.output.len(), topo.outputs, "topology mismatch");
        let xq: Vec<Vec<Fx>> = xs
            .iter()
            .map(|x| {
                let x = x.as_ref();
                assert_eq!(x.len(), topo.inputs);
                x.iter().map(|&v| Fx::from_f64(v)).collect()
            })
            .collect();

        // Weights and biases stream through the attached memory once per
        // batch (pure on vectorizable plans), latch masks applied — the
        // fused stream sees them as uniform runtime inputs, so repairs
        // and training updates never recompile.
        let prep_h: Vec<RtPrep> = self
            .hidden
            .iter()
            .enumerate()
            .map(|(j, p)| {
                prep_neuron(p, plan, Layer::Hidden, topo.inputs, |i| {
                    Fx::from_f64(mlp.w_hidden(j, i))
                })
            })
            .collect();
        let prep_o: Vec<RtPrep> = self
            .output
            .iter()
            .enumerate()
            .map(|(k, p)| {
                prep_neuron(p, plan, Layer::Output, topo.hidden, |j| {
                    Fx::from_f64(mlp.w_output(k, j))
                })
            })
            .collect();

        let mut ex = FusedExec::new(Arc::clone(&self.prog));
        // Weight buses carry the same uniform word for the whole batch:
        // write them once, not per chunk.
        for (plans, prep) in [(&self.hidden, &prep_h), (&self.output, &prep_o)] {
            for (plan, rt) in plans.iter().zip(prep) {
                let (NeuronPlan::Gated(g), RtPrep::Gated { w_eff, .. }) = (plan, rt) else {
                    continue;
                };
                for mp in &g.muls {
                    ex.set_bus_uniform(&mp.w, w_eff[mp.syn].to_bits() as u64);
                }
            }
        }
        let mut traces = Vec::with_capacity(xq.len());
        let mut h_flat: Vec<Fx> = Vec::new();
        for chunk in xq.chunks(64) {
            let xrows: Vec<&[Fx]> = chunk.iter().map(|r| r.as_slice()).collect();
            let h_res = self.run_layer(&self.hidden, &self.h_stages, &prep_h, &xrows, lut, &mut ex);
            // Row-major hidden activations in one flat buffer; rows are
            // contiguous slices, so the output layer borrows them
            // without per-row allocations.
            h_flat.clear();
            h_flat.reserve(xrows.len() * topo.hidden);
            for r in 0..xrows.len() {
                for n in &h_res {
                    h_flat.push(n.as_ref().map_or(Fx::ZERO, |(_, ys)| ys[r]));
                }
            }
            let hrefs: Vec<&[Fx]> = h_flat.chunks(topo.hidden).collect();
            let o_res = self.run_layer(&self.output, &self.o_stages, &prep_o, &hrefs, lut, &mut ex);
            for r in 0..xrows.len() {
                traces.push(ForwardTrace {
                    hidden: hrefs[r].iter().map(|h| h.to_f64()).collect(),
                    output_pre: o_res
                        .iter()
                        .map(|n| n.as_ref().map_or(0.0, |(accs, _)| accs[r].to_f64()))
                        .collect(),
                    output: o_res
                        .iter()
                        .map(|n| n.as_ref().map_or(0.0, |(_, ys)| ys[r].to_f64()))
                        .collect(),
                });
            }
        }
        traces
    }

    /// Runs one layer for one chunk of ≤ 64 rows: gate stages through
    /// the fused stream, native arithmetic between them. Returns
    /// `(pre-activations, activations)` per neuron, `None` for masked.
    #[allow(clippy::type_complexity)]
    fn run_layer(
        &self,
        plans: &[NeuronPlan],
        stages: &LayerStages,
        prep: &[RtPrep],
        xrows: &[&[Fx]],
        lut: &SigmoidLut,
        ex: &mut FusedExec,
    ) -> Vec<Option<(Vec<Fx>, Vec<Fx>)>> {
        let nrows = xrows.len();
        let mut buf = vec![0u64; nrows];

        // Multiplier stage inputs: samples lane-packed (weight buses are
        // batch-uniform, written once by `forward`).
        for plan in plans {
            let NeuronPlan::Gated(g) = plan else {
                continue;
            };
            for mp in &g.muls {
                if !mp.x_const {
                    pack_x(&mut buf, xrows, mp.syn);
                    ex.set_bus_words(&mp.x, &buf);
                }
            }
        }
        ex.exec_stage(stages.mul);

        // Accumulation: native adds between fused adder runs.
        let mut scratch: Vec<Option<(Vec<Fx>, usize)>> = plans
            .iter()
            .zip(prep)
            .map(|(p, rt)| match (p, rt) {
                (NeuronPlan::Gated(_), RtPrep::Gated { bias, .. }) => Some((vec![*bias; nrows], 0)),
                _ => None,
            })
            .collect();
        for r in 0..stages.n_runs {
            for ((plan, rt), sc) in plans.iter().zip(prep).zip(scratch.iter_mut()) {
                let (NeuronPlan::Gated(g), RtPrep::Gated { w_eff, .. }, Some((accs, cursor))) =
                    (plan, rt, sc.as_mut())
                else {
                    continue;
                };
                let Some(run) = g.runs.get(r) else { continue };
                advance_native(g, w_eff, accs, cursor, run.start, xrows, ex);
                pack_fx(&mut buf, accs);
                ex.set_bus_words(&run.a_in, &buf);
                for rs in &run.syns {
                    let Some(b) = rs.b.as_ref().filter(|_| !rs.b_const) else {
                        continue;
                    };
                    for (slot, row) in buf.iter_mut().zip(xrows) {
                        *slot = (w_eff[rs.syn] * x_at(row, rs.syn)).to_bits() as u64;
                    }
                    ex.set_bus_words(b, &buf);
                }
            }
            ex.exec_stage(stages.add0 + r);
            for (plan, sc) in plans.iter().zip(scratch.iter_mut()) {
                let (NeuronPlan::Gated(g), Some((accs, cursor))) = (plan, sc.as_mut()) else {
                    continue;
                };
                let Some(run) = g.runs.get(r) else { continue };
                for (acc, w) in accs.iter_mut().zip(ex.read_words(&run.out, nrows)) {
                    *acc = Fx::from_bits(w as u16);
                }
                *cursor = run.end;
            }
        }
        for ((plan, rt), sc) in plans.iter().zip(prep).zip(scratch.iter_mut()) {
            let (NeuronPlan::Gated(g), RtPrep::Gated { w_eff, .. }, Some((accs, cursor))) =
                (plan, rt, sc.as_mut())
            else {
                continue;
            };
            advance_native(g, w_eff, accs, cursor, g.n_eff, xrows, ex);
        }

        // Activation stage: faulty units in-stream, healthy ones native.
        for (plan, sc) in plans.iter().zip(&scratch) {
            let (NeuronPlan::Gated(g), Some((accs, _))) = (plan, sc) else {
                continue;
            };
            if let Some(act) = &g.act {
                pack_fx(&mut buf, accs);
                ex.set_bus_words(&act.x, &buf);
            }
        }
        ex.exec_stage(stages.act);

        plans
            .iter()
            .zip(prep)
            .zip(scratch)
            .map(|((plan, rt), sc)| match (plan, rt) {
                (NeuronPlan::Masked, _) => None,
                (NeuronPlan::Native { .. }, RtPrep::Native { bias, ws }) => {
                    let accs: Vec<Fx> = xrows
                        .iter()
                        .map(|row| {
                            let mut acc = *bias;
                            for (w, &xi) in ws.iter().zip(row.iter()) {
                                acc += *w * xi;
                            }
                            acc
                        })
                        .collect();
                    let ys = accs.iter().map(|&a| lut.eval(a)).collect();
                    Some((accs, ys))
                }
                (NeuronPlan::Gated(g), _) => {
                    let (accs, _) = sc.expect("gated neuron has scratch");
                    let ys = match &g.act {
                        Some(act) => ex
                            .read_words(&act.out, nrows)
                            .into_iter()
                            .map(|w| Fx::from_bits(w as u16))
                            .collect(),
                        None => accs.iter().map(|&a| lut.eval(a)).collect(),
                    };
                    Some((accs, ys))
                }
                _ => unreachable!("plan/prep variants agree"),
            })
            .collect()
    }
}

/// The input operand of physical synapse `syn` for one row (zero beyond
/// the logical width, like the scalar path).
#[inline]
fn x_at(row: &[Fx], syn: usize) -> Fx {
    row.get(syn).copied().unwrap_or(Fx::ZERO)
}

/// Lane-packs one input column across the chunk's rows.
fn pack_x(buf: &mut [u64], xrows: &[&[Fx]], syn: usize) {
    for (slot, row) in buf.iter_mut().zip(xrows) {
        *slot = x_at(row, syn).to_bits() as u64;
    }
}

/// Lane-packs a per-row value vector.
fn pack_fx(buf: &mut [u64], vals: &[Fx]) {
    for (slot, &v) in buf.iter_mut().zip(vals) {
        *slot = v.to_bits() as u64;
    }
}

/// Native multiply-accumulate from `*cursor` up to `stop`: products of
/// unbound faulty multipliers are read back from the fused register
/// file, everything else is native Q6.10 arithmetic.
fn advance_native(
    g: &GatedNeuron,
    w_eff: &[Fx],
    accs: &mut [Fx],
    cursor: &mut usize,
    stop: usize,
    xrows: &[&[Fx]],
    ex: &FusedExec,
) {
    while *cursor < stop {
        let i = *cursor;
        match g.mul_at[i] {
            Some(m) => {
                let prods = ex.read_words(&g.muls[m].out, accs.len());
                for (acc, w) in accs.iter_mut().zip(prods) {
                    *acc += Fx::from_bits(w as u16);
                }
            }
            None => {
                for (acc, row) in accs.iter_mut().zip(xrows) {
                    *acc += w_eff[i] * x_at(row, i);
                }
            }
        }
        *cursor += 1;
    }
}

/// Per-call weight preparation (see [`RtPrep`]).
fn prep_neuron(
    plan_n: &NeuronPlan,
    plan: &mut FaultPlan,
    layer: Layer,
    n_logical: usize,
    weight_of: impl Fn(usize) -> Fx,
) -> RtPrep {
    match plan_n {
        NeuronPlan::Masked => RtPrep::Masked,
        NeuronPlan::Native { lane } => {
            let bias = plan.mem_bias(layer, *lane, weight_of(n_logical));
            let ws = (0..n_logical)
                .map(|i| plan.mem_weight(layer, *lane, i, weight_of(i)))
                .collect();
            RtPrep::Native { bias, ws }
        }
        NeuronPlan::Gated(g) => {
            let bias = plan.mem_bias(layer, g.lane, weight_of(n_logical));
            let nf = plan
                .neuron(layer, g.lane)
                .expect("gated neuron has a fault entry");
            let masks: Vec<(u16, u16)> = (0..g.n_eff).map(|i| nf.latch_masks(i)).collect();
            let w_eff = (0..g.n_eff)
                .map(|i| {
                    let base = if i < n_logical {
                        weight_of(i)
                    } else {
                        Fx::ZERO
                    };
                    let w = plan.mem_weight(layer, g.lane, i, base);
                    let (and, or) = masks[i];
                    Fx::from_bits((w.to_bits() & and) | or)
                })
                .collect();
            RtPrep::Gated { bias, w_eff }
        }
    }
}

fn bus_u32(bus: &[NodeId]) -> Vec<u32> {
    bus.iter().map(|n| n.index() as u32).collect()
}

fn zip_bind(local: &[u32], fused: &[u32]) -> impl Iterator<Item = (u32, u32)> {
    local
        .iter()
        .copied()
        .zip(fused.iter().copied())
        .collect::<Vec<_>>()
        .into_iter()
}

/// Appends one patched operator stream, binding its two operand buses,
/// and returns the local→fused slot map.
fn append_op(
    fb: &mut FuseBuilder,
    ex: &LutExec,
    binds: impl Iterator<Item = (u32, u32)>,
) -> Vec<u32> {
    let bind: Vec<(u32, u32)> = binds.collect();
    fb.append(
        ex.instrs(),
        ex.program().n_slots(),
        ex.program().latch_slots(),
        &bind,
    )
}

/// Groups the sorted faulty-adder synapses of one neuron into maximal
/// consecutive runs.
fn add_runs(adds: &[usize]) -> Vec<(usize, usize)> {
    let mut runs: Vec<(usize, usize)> = Vec::new();
    for &i in adds {
        match runs.last_mut() {
            Some((_, end)) if *end == i => *end = i + 1,
            _ => runs.push((i, i + 1)),
        }
    }
    runs
}

/// Compiles one layer's gate segments into the shared builder: one
/// multiplier stage, `max_runs` chained-adder stages, one activation
/// stage, with barriers between them. Returns `None` when a faulty
/// operator has no patched LUT stream (not fusable).
#[allow(clippy::too_many_arguments)]
fn compile_layer(
    plan: &FaultPlan,
    layer: Layer,
    lanes: &[usize],
    n_logical: usize,
    x_const_at: impl Fn(usize) -> bool,
    fb: &mut FuseBuilder,
    stage: &mut usize,
    roots: &mut Vec<u32>,
    known: &mut Vec<(u32, bool)>,
) -> Option<(Vec<NeuronPlan>, LayerStages)> {
    struct Skeleton<'a> {
        idx: usize,
        nf: &'a NeuronFaults,
        mul_syns: Vec<usize>,
        runs: Vec<(usize, usize)>,
    }
    let mut plans: Vec<NeuronPlan> = Vec::with_capacity(lanes.len());
    let mut skels: Vec<Skeleton> = Vec::new();
    for (idx, &lane) in lanes.iter().enumerate() {
        if plan.is_masked(layer, lane) {
            plans.push(NeuronPlan::Masked);
            continue;
        }
        let Some(nf) = plan.neuron(layer, lane) else {
            plans.push(NeuronPlan::Native { lane });
            continue;
        };
        let n_eff = n_logical.max(nf.max_synapse_excl());
        let mut mul_syns = Vec::new();
        let mut add_syns = Vec::new();
        for i in 0..n_eff {
            if nf.mul_at(i).is_some() {
                mul_syns.push(i);
            }
            if nf.add_at(i).is_some() {
                add_syns.push(i);
            }
        }
        plans.push(NeuronPlan::Gated(GatedNeuron {
            lane,
            n_eff,
            muls: Vec::new(),
            mul_at: vec![None; n_eff],
            runs: Vec::new(),
            act: None,
        }));
        skels.push(Skeleton {
            idx,
            nf,
            mul_syns,
            runs: add_runs(&add_syns),
        });
    }
    let max_runs = skels.iter().map(|s| s.runs.len()).max().unwrap_or(0);

    // Stage 1: every faulty multiplier of the layer.
    let mul_stage = *stage;
    for sk in &skels {
        let NeuronPlan::Gated(g) = &mut plans[sk.idx] else {
            unreachable!()
        };
        for &syn in &sk.mul_syns {
            let hw = sk.nf.mul_at(syn).expect("skeleton lists faulty synapses");
            let ex = hw.lut_stream()?;
            let c = hw.circuit();
            let w = fb.fresh_bus(c.a_bus().len());
            let x = fb.fresh_bus(c.b_bus().len());
            let map = append_op(
                fb,
                ex,
                zip_bind(&bus_u32(c.a_bus()), &w).chain(zip_bind(&bus_u32(c.b_bus()), &x)),
            );
            let out: Vec<u32> = bus_u32(c.out_bus())
                .iter()
                .map(|&n| map[n as usize])
                .collect();
            let x_const = x_const_at(syn);
            if x_const {
                known.extend(x.iter().map(|&s| (s, false)));
            }
            if sk.nf.add_at(syn).is_none() {
                roots.extend(&out);
            }
            g.mul_at[syn] = Some(g.muls.len());
            g.muls.push(MulPort {
                syn,
                w,
                x,
                out,
                x_const,
            });
        }
    }

    // Stages 2..: chained faulty-adder runs, one stage per run depth so
    // the runner can accumulate natively between them.
    for r in 0..max_runs {
        fb.barrier();
        *stage += 1;
        for sk in &skels {
            let Some(&(start, end)) = sk.runs.get(r) else {
                continue;
            };
            let NeuronPlan::Gated(g) = &mut plans[sk.idx] else {
                unreachable!()
            };
            let mut syns = Vec::with_capacity(end - start);
            let mut a_in: Option<Vec<u32>> = None;
            let mut prev: Vec<u32> = Vec::new();
            for syn in start..end {
                let hw = sk.nf.add_at(syn).expect("run spans faulty adders");
                let ex = hw.lut_stream()?;
                let c = hw.circuit();
                let a = if prev.is_empty() {
                    let fresh = fb.fresh_bus(c.a_bus().len());
                    a_in = Some(fresh.clone());
                    fresh
                } else {
                    prev.clone()
                };
                let (b, b_bus, b_const) = match g.mul_at[syn] {
                    Some(m) => (g.muls[m].out.clone(), None, false),
                    None => {
                        let fresh = fb.fresh_bus(c.b_bus().len());
                        let b_const = x_const_at(syn);
                        if b_const {
                            known.extend(fresh.iter().map(|&s| (s, false)));
                        }
                        (fresh.clone(), Some(fresh), b_const)
                    }
                };
                let map = append_op(
                    fb,
                    ex,
                    zip_bind(&bus_u32(c.a_bus()), &a).chain(zip_bind(&bus_u32(c.b_bus()), &b)),
                );
                prev = bus_u32(c.out_bus())
                    .iter()
                    .map(|&n| map[n as usize])
                    .collect();
                syns.push(RunSyn {
                    syn,
                    b: b_bus,
                    b_const,
                });
            }
            roots.extend(&prev);
            g.runs.push(AddRun {
                start,
                end,
                a_in: a_in.expect("run has at least one adder"),
                out: prev,
                syns,
            });
        }
    }

    // Final stage: faulty activation units.
    fb.barrier();
    *stage += 1;
    let act_stage = *stage;
    for sk in &skels {
        let Some(hw) = sk.nf.act_ref() else { continue };
        let ex = hw.lut_stream()?;
        let c = hw.circuit();
        let NeuronPlan::Gated(g) = &mut plans[sk.idx] else {
            unreachable!()
        };
        let x = fb.fresh_bus(c.x_bus().len());
        let map = append_op(fb, ex, zip_bind(&bus_u32(c.x_bus()), &x));
        let out: Vec<u32> = bus_u32(c.out_bus())
            .iter()
            .map(|&n| map[n as usize])
            .collect();
        roots.extend(&out);
        g.act = Some(ActPort { x, out });
    }

    Some((
        plans,
        LayerStages {
            mul: mul_stage,
            add0: mul_stage + 1,
            n_runs: max_runs,
            act: act_stage,
        },
    ))
}

/// Rewrites a compiled neuron's port buses through the optimizer's slot
/// map (dead input bits become [`dta_logic::DEAD_SLOT`], which the
/// executor's bus writers skip).
fn remap_plan(plan: NeuronPlan, sm: &SlotMap) -> NeuronPlan {
    let mut g = match plan {
        NeuronPlan::Gated(g) => g,
        other => return other,
    };
    for mp in &mut g.muls {
        mp.w = sm.remap(&mp.w);
        mp.x = sm.remap(&mp.x);
        mp.out = sm.remap(&mp.out);
    }
    for run in &mut g.runs {
        run.a_in = sm.remap(&run.a_in);
        run.out = sm.remap(&run.out);
        for rs in &mut run.syns {
            if let Some(b) = &mut rs.b {
                *b = sm.remap(b);
            }
        }
    }
    if let Some(act) = &mut g.act {
        act.x = sm.remap(&act.x);
        act.out = sm.remap(&act.out);
    }
    NeuronPlan::Gated(g)
}

/// Builds the memo fingerprint, or `None` when the plan is not fusable.
fn build_key(mlp: &Mlp, plan: &FaultPlan) -> Option<FuseKey> {
    if !plan.vectorizable() {
        return None;
    }
    let topo = mlp.topology();
    let layer_keys = |layer: Layer, lanes: &[usize], n_logical: usize| -> Option<Vec<KeyPlan>> {
        lanes
            .iter()
            .map(|&lane| {
                if plan.is_masked(layer, lane) {
                    return Some(KeyPlan::Masked);
                }
                let Some(nf) = plan.neuron(layer, lane) else {
                    return Some(KeyPlan::Native { lane });
                };
                neuron_key(nf, lane, n_logical).map(KeyPlan::Gated)
            })
            .collect()
    };
    let h_lanes: Vec<usize> = (0..topo.hidden).map(|j| plan.hidden_lane(j)).collect();
    let o_lanes: Vec<usize> = (0..topo.outputs).collect();
    Some(FuseKey {
        dims: (topo.inputs, topo.hidden, topo.outputs),
        hidden: layer_keys(Layer::Hidden, &h_lanes, topo.inputs)?,
        output: layer_keys(Layer::Output, &o_lanes, topo.hidden)?,
    })
}

fn neuron_key(nf: &NeuronFaults, lane: usize, n_logical: usize) -> Option<NeuronKey> {
    let n_eff = n_logical.max(nf.max_synapse_excl());
    let mut muls = Vec::new();
    let mut adds = Vec::new();
    let mut latches = Vec::new();
    for i in 0..n_eff {
        if let Some(hw) = nf.mul_at(i) {
            let net = Arc::as_ptr(hw.circuit().netlist()) as usize;
            muls.push((i, OpKey::new(net, hw.lut_stream()?)));
        }
        if let Some(hw) = nf.add_at(i) {
            let net = Arc::as_ptr(hw.circuit().netlist()) as usize;
            adds.push((i, OpKey::new(net, hw.lut_stream()?)));
        }
        let (and, or) = nf.latch_masks(i);
        if (and, or) != (0xFFFF, 0) {
            latches.push((i, and, or));
        }
    }
    let act = match nf.act_ref() {
        Some(hw) => {
            let net = Arc::as_ptr(hw.circuit().netlist()) as usize;
            Some(OpKey::new(net, hw.lut_stream()?))
        }
        None => None,
    };
    Some(NeuronKey {
        lane,
        n_eff,
        muls,
        adds,
        act,
        latches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Topology;
    use dta_circuits::FaultModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rows(n: usize, width: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|r| {
                (0..width)
                    .map(|i| ((r * 7 + i * 3) % 17) as f64 / 8.5 - 1.0)
                    .collect()
            })
            .collect()
    }

    /// A plan dense enough to exercise chained adders, bound
    /// multiplier→adder pairs, latch masks and faulty activations, with
    /// physical synapses beyond the logical width.
    fn dense_plan(topo: Topology, n_faults: usize, seed: u64) -> FaultPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(topo.inputs + 2);
        for _ in 0..n_faults {
            plan.inject_random_hidden(topo.hidden, FaultModel::TransistorLevel, &mut rng);
        }
        plan.inject_output_adder(0, topo.hidden - 1, &mut rng);
        plan.inject_output_activation(1, &mut rng);
        plan
    }

    /// First seed whose random defects are all combinational (some
    /// transistor-level defects are stateful and refuse fusion).
    fn fusable_dense_plan(mlp: &Mlp, n_faults: usize) -> FaultPlan {
        let topo = mlp.topology();
        for seed in 0..64 {
            let plan = dense_plan(topo, n_faults, seed);
            if FusedForward::compile(mlp, &plan).is_some() {
                return plan;
            }
        }
        panic!("no fusable plan in 64 seeds");
    }

    #[test]
    fn fused_forward_is_bit_identical_to_scalar() {
        let topo = Topology::new(4, 3, 2);
        let mlp = Mlp::new(topo, 11);
        let lut = SigmoidLut::new();
        let mut plan = fusable_dense_plan(&mlp, 8);
        plan.mask(Layer::Hidden, 1);
        plan.remap_hidden(0, 2);

        let xs = rows(70, topo.inputs); // crosses the 64-lane chunk edge
        let want: Vec<ForwardTrace> = xs
            .iter()
            .map(|x| mlp.forward_faulty(x, &lut, &mut plan))
            .collect();

        let ff = FusedForward::cached(&mlp, &plan).expect("plan is fusable");
        assert!(!ff.program().is_empty(), "faults compiled into the stream");
        let stats = ff.opt_stats();
        assert!(stats.instrs_after <= stats.instrs_before);
        assert!(stats.slots_after <= stats.slots_before);
        let got = ff.forward(&mlp, &xs, &lut, &mut plan);
        assert_eq!(got, want, "fused stream diverged from scalar reference");

        // The batch entry point routes through the same engine.
        let routed = mlp.forward_faulty_batch(&xs, &lut, &mut plan);
        assert_eq!(routed, want);
    }

    #[test]
    fn memoization_survives_weight_updates() {
        let topo = Topology::new(3, 2, 2);
        let mut mlp = Mlp::new(topo, 7);
        let plan = fusable_dense_plan(&mlp, 3);
        let a = FusedForward::cached(&mlp, &plan).expect("fusable");
        let (h0, _) = fused_cache_stats();
        let b = FusedForward::cached(&mlp, &plan).expect("fusable");
        assert!(Arc::ptr_eq(&a, &b), "same fingerprint, same program");
        let (h1, _) = fused_cache_stats();
        assert!(h1 > h0, "second lookup hits the memo");
        // Weights are runtime inputs: training updates never recompile.
        *mlp.w_hidden_mut(0, 0) += 0.25;
        let c = FusedForward::cached(&mlp, &plan).expect("fusable");
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn empty_plan_compiles_to_an_empty_stream() {
        let topo = Topology::new(4, 3, 2);
        let mlp = Mlp::new(topo, 3);
        let lut = SigmoidLut::new();
        let mut plan = FaultPlan::new(topo.inputs);
        let ff = FusedForward::cached(&mlp, &plan).expect("fusable");
        assert!(ff.program().is_empty(), "no faults, no gate segments");
        let xs = rows(9, topo.inputs);
        let got = ff.forward(&mlp, &xs, &lut, &mut plan);
        for (x, trace) in xs.iter().zip(&got) {
            assert_eq!(*trace, mlp.forward_fixed(x, &lut));
        }
    }

    #[test]
    fn stateful_plans_are_not_fusable() {
        use dta_circuits::Activation;
        let topo = Topology::new(3, 2, 2);
        let mlp = Mlp::new(topo, 1);
        let mut plan = FaultPlan::new(topo.inputs);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        plan.inject_random_hidden_with(
            topo.hidden,
            FaultModel::TransistorLevel,
            Activation::Intermittent { period: 3, duty: 1 },
            &mut rng,
        );
        assert!(!plan.vectorizable());
        assert!(FusedForward::cached(&mlp, &plan).is_none());
    }
}
