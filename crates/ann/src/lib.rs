#![warn(missing_docs)]

//! The software ANN model of the paper: a 2-layer multi-layer perceptron
//! trained with back-propagation, whose **forward pass runs through the
//! hardware datapath semantics** (Q6.10 arithmetic, 16-segment sigmoid),
//! with per-neuron faulty-operator hooks.
//!
//! The paper's evaluation methodology (§V, §VI-C):
//!
//! * training happens on a companion core "though using the forward
//!   hardware logic" — here: forward in Q6.10 (optionally with injected
//!   faults), gradients accumulated in `f64`;
//! * "it is possible to mark a neuron as having one or several defect(s)
//!   for a specific operator, in which case a software function is called
//!   to perform that operator in place of the native operator" — here:
//!   [`FaultPlan`] routes individual multiplies/adds/activations of
//!   marked neurons through the gate-level operator circuits of
//!   `dta-circuits`;
//! * every accuracy uses 10-fold cross-validation ([`train::cross_validate`]);
//! * hyper-parameters come from a grid search over the Table I space
//!   ([`hyper`]).
//!
//! # Example
//!
//! ```
//! use dta_ann::{Mlp, Topology, Trainer, ForwardMode};
//! use dta_datasets::suite;
//! use rand::SeedableRng;
//!
//! let ds = suite::load("iris").unwrap();
//! let topo = Topology::new(ds.n_features(), 8, ds.n_classes());
//! let mut mlp = Mlp::new(topo, 42);
//! let trainer = Trainer::new(0.2, 0.1, 30, ForwardMode::Fixed);
//! let idx: Vec<usize> = (0..ds.len()).collect();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
//! let acc = trainer.evaluate(&mlp, &ds, &idx, None);
//! assert!(acc > 0.8, "iris in 30 epochs should fit well, got {acc}");
//! ```

pub mod deep;
pub mod fault;
pub mod fused;
pub mod hyper;
pub mod mlp;
pub mod regress;
pub mod train;

pub use deep::{DeepMlp, DeepTrainer};
pub use fault::{FaultPlan, FaultSite, Layer, NeuronFaults, UnitKind};
pub use fused::{
    clear_fused_cache, disable_fused_engine, fused_cache_stats, fused_engine_disabled, FusedForward,
};
pub use hyper::{HyperParams, HyperSpace, SearchResult};
pub use mlp::{ForwardTrace, Mlp, Topology};
pub use regress::{RegressionSample, RegressionSet, RegressionTrainer};
pub use train::{cross_validate, ConfusionMatrix, CvResult, ForwardMode, Trainer};
