//! Property tests for the ANN layer: forward-path invariants, fault-hook
//! composition, and training determinism.

use dta_ann::{FaultPlan, ForwardMode, Mlp, Topology, Trainer};
use dta_circuits::FaultModel;
use dta_datasets::GaussianMixture;
use dta_fixed::SigmoidLut;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_topology() -> impl Strategy<Value = Topology> {
    (1usize..12, 1usize..8, 1usize..6).prop_map(|(i, h, o)| Topology::new(i, h, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn activations_always_in_unit_interval(
        topo in any_topology(),
        seed in any::<u64>(),
        xs in prop::collection::vec(-2.0f64..3.0, 1..12),
    ) {
        let mlp = Mlp::new(topo, seed);
        let x: Vec<f64> = (0..topo.inputs)
            .map(|i| xs[i % xs.len()])
            .collect();
        let lut = SigmoidLut::new();
        for trace in [mlp.forward_float(&x), mlp.forward_fixed(&x, &lut)] {
            for &v in trace.hidden.iter().chain(&trace.output) {
                prop_assert!((0.0..=1.0).contains(&v), "activation {v}");
            }
            prop_assert!(trace.predicted() < topo.outputs);
        }
    }

    #[test]
    fn fixed_forward_is_pure(topo in any_topology(), seed in any::<u64>()) {
        let mlp = Mlp::new(topo, seed);
        let lut = SigmoidLut::new();
        let x: Vec<f64> = (0..topo.inputs).map(|i| (i as f64 * 0.13) % 1.0).collect();
        prop_assert_eq!(mlp.forward_fixed(&x, &lut), mlp.forward_fixed(&x, &lut));
    }

    #[test]
    fn fault_plan_len_counts_injections(
        n in 1usize..12,
        seed in any::<u64>(),
        n_hidden in 1usize..16,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(90);
        for _ in 0..n {
            plan.inject_random_hidden(n_hidden, FaultModel::TransistorLevel, &mut rng);
        }
        prop_assert_eq!(plan.len(), n);
        prop_assert_eq!(plan.records().len(), n);
        for neuron in plan.faulty_neurons(dta_ann::Layer::Hidden) {
            prop_assert!(neuron < n_hidden);
        }
    }

    #[test]
    fn faulty_forward_outputs_stay_bounded(
        seed in any::<u64>(),
        n_defects in 1usize..6,
    ) {
        let topo = Topology::new(5, 4, 3);
        let mlp = Mlp::new(topo, seed);
        let lut = SigmoidLut::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(90);
        for _ in 0..n_defects {
            plan.inject_random_hidden(4, FaultModel::TransistorLevel, &mut rng);
        }
        let x = [0.1, 0.9, 0.4, 0.6, 0.2];
        let trace = mlp.forward_faulty(&x, &lut, &mut plan);
        // Activations come out of sigmoid units, so even faulty silicon
        // keeps them in [0,1] (a faulty activation unit emits raw 16-bit
        // words, but its output clamp stage bounds healthy paths; the
        // *hidden* values feed onward regardless, so just require
        // finiteness there and bounds on dimensions).
        prop_assert_eq!(trace.hidden.len(), 4);
        prop_assert_eq!(trace.output.len(), 3);
        for v in trace.hidden.iter().chain(&trace.output) {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn training_is_seed_deterministic(seed in any::<u64>()) {
        let ds = GaussianMixture::new(4, 2).samples(40).generate("p", 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let trainer = Trainer::new(0.3, 0.1, 3, ForwardMode::Fixed);
        let run = || {
            let mut mlp = Mlp::new(Topology::new(4, 3, 2), seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
            trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
            mlp
        };
        prop_assert_eq!(run(), run());
    }
}
