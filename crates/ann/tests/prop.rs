//! Property tests for the ANN layer: forward-path invariants, fault-hook
//! composition, and training determinism.

use dta_ann::{FaultPlan, ForwardMode, Mlp, Topology, Trainer};
use dta_circuits::FaultModel;
use dta_datasets::GaussianMixture;
use dta_fixed::SigmoidLut;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_topology() -> impl Strategy<Value = Topology> {
    (1usize..12, 1usize..8, 1usize..6).prop_map(|(i, h, o)| Topology::new(i, h, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn activations_always_in_unit_interval(
        topo in any_topology(),
        seed in any::<u64>(),
        xs in prop::collection::vec(-2.0f64..3.0, 1..12),
    ) {
        let mlp = Mlp::new(topo, seed);
        let x: Vec<f64> = (0..topo.inputs)
            .map(|i| xs[i % xs.len()])
            .collect();
        let lut = SigmoidLut::new();
        for trace in [mlp.forward_float(&x), mlp.forward_fixed(&x, &lut)] {
            for &v in trace.hidden.iter().chain(&trace.output) {
                prop_assert!((0.0..=1.0).contains(&v), "activation {v}");
            }
            prop_assert!(trace.predicted() < topo.outputs);
        }
    }

    #[test]
    fn fixed_forward_is_pure(topo in any_topology(), seed in any::<u64>()) {
        let mlp = Mlp::new(topo, seed);
        let lut = SigmoidLut::new();
        let x: Vec<f64> = (0..topo.inputs).map(|i| (i as f64 * 0.13) % 1.0).collect();
        prop_assert_eq!(mlp.forward_fixed(&x, &lut), mlp.forward_fixed(&x, &lut));
    }

    #[test]
    fn fault_plan_len_counts_injections(
        n in 1usize..12,
        seed in any::<u64>(),
        n_hidden in 1usize..16,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(90);
        for _ in 0..n {
            plan.inject_random_hidden(n_hidden, FaultModel::TransistorLevel, &mut rng);
        }
        prop_assert_eq!(plan.len(), n);
        prop_assert_eq!(plan.records().len(), n);
        for neuron in plan.faulty_neurons(dta_ann::Layer::Hidden) {
            prop_assert!(neuron < n_hidden);
        }
    }

    #[test]
    fn faulty_forward_outputs_stay_bounded(
        seed in any::<u64>(),
        n_defects in 1usize..6,
    ) {
        let topo = Topology::new(5, 4, 3);
        let mlp = Mlp::new(topo, seed);
        let lut = SigmoidLut::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(90);
        for _ in 0..n_defects {
            plan.inject_random_hidden(4, FaultModel::TransistorLevel, &mut rng);
        }
        let x = [0.1, 0.9, 0.4, 0.6, 0.2];
        let trace = mlp.forward_faulty(&x, &lut, &mut plan);
        // Activations come out of sigmoid units, so even faulty silicon
        // keeps them in [0,1] (a faulty activation unit emits raw 16-bit
        // words, but its output clamp stage bounds healthy paths; the
        // *hidden* values feed onward regardless, so just require
        // finiteness there and bounds on dimensions).
        prop_assert_eq!(trace.hidden.len(), 4);
        prop_assert_eq!(trace.output.len(), 3);
        for v in trace.hidden.iter().chain(&trace.output) {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn batch_forward_matches_scalar_under_every_activation_class(
        seed in any::<u64>(),
        n_defects in 1usize..5,
        class in 0usize..3,
        n_rows in 1usize..8,
    ) {
        use dta_circuits::Activation;
        let topo = Topology::new(4, 3, 2);
        let mlp = Mlp::new(topo, seed);
        let lut = SigmoidLut::new();
        let activation = match class {
            0 => Activation::Permanent,
            1 => Activation::Transient { per_eval_probability: 0.4 },
            _ => Activation::Intermittent { period: 3, duty: 1 },
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::new(6);
        for _ in 0..n_defects {
            plan.inject_random_hidden_with(
                topo.hidden,
                FaultModel::TransistorLevel,
                activation,
                &mut rng,
            );
        }
        let xs: Vec<Vec<f64>> = (0..n_rows)
            .map(|r| (0..topo.inputs).map(|i| ((r * 5 + i * 3) % 11) as f64 / 5.5 - 1.0).collect())
            .collect();
        // The scalar reference must replay from the same fault state:
        // stateful activation classes advance per evaluation.
        plan.reset_state();
        let batch = mlp.forward_faulty_batch(&xs, &lut, &mut plan);
        plan.reset_state();
        let scalar: Vec<_> = xs.iter().map(|x| mlp.forward_faulty(x, &lut, &mut plan)).collect();
        // Permanent plans route through the fused network engine (when
        // the defects are combinational); stateful classes fall back to
        // the per-sample path. All must agree bit-for-bit.
        prop_assert_eq!(batch, scalar);
    }

    #[test]
    fn training_is_seed_deterministic(seed in any::<u64>()) {
        let ds = GaussianMixture::new(4, 2).samples(40).generate("p", 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let trainer = Trainer::new(0.3, 0.1, 3, ForwardMode::Fixed);
        let run = || {
            let mut mlp = Mlp::new(Topology::new(4, 3, 2), seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
            trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
            mlp
        };
        prop_assert_eq!(run(), run());
    }
}
