//! Property tests: the gate-level operators are bit-exact with native
//! arithmetic when healthy, for arbitrary widths and operands, and
//! defect plans can always be removed cleanly.

use dta_circuits::{AdderCircuit, ArrayMultiplier, DefectPlan, FaultModel, SatAdderCircuit};
use dta_fixed::Fx;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ripple_adder_any_width(width in 1usize..20, a in any::<u64>(), b in any::<u64>(), cin in any::<bool>()) {
        let adder = AdderCircuit::new(width);
        let mut sim = adder.simulator();
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let (s, c) = adder.compute_with_carry(&mut sim, a & mask, b & mask, cin);
        let exact = (a & mask) + (b & mask) + u64::from(cin);
        prop_assert_eq!(s, exact & mask);
        prop_assert_eq!(c, exact > mask);
    }

    #[test]
    fn signed_multiplier_any_width(width in 2usize..9, a in any::<i16>(), b in any::<i16>()) {
        let mul = ArrayMultiplier::signed(width);
        let mut sim = mul.simulator();
        let half = 1i64 << (width - 1);
        let a = (a as i64).rem_euclid(2 * half) - half;
        let b = (b as i64).rem_euclid(2 * half) - half;
        prop_assert_eq!(mul.compute_signed(&mut sim, a, b), a * b);
    }

    #[test]
    fn unsigned_multiplier_any_width(width in 2usize..9, a in any::<u16>(), b in any::<u16>()) {
        let mul = ArrayMultiplier::unsigned(width);
        let mut sim = mul.simulator();
        let mask = (1u64 << width) - 1;
        let (a, b) = (a as u64 & mask, b as u64 & mask);
        prop_assert_eq!(mul.compute(&mut sim, a, b), a * b);
    }

    #[test]
    fn sat_adder_matches_fx(a in any::<i16>(), b in any::<i16>()) {
        let adder = SatAdderCircuit::new();
        let mut sim = adder.simulator();
        let (a, b) = (Fx::from_raw(a), Fx::from_raw(b));
        prop_assert_eq!(adder.compute(&mut sim, a, b), a + b);
    }

    #[test]
    fn defect_plans_remove_cleanly(seed in any::<u64>(), n in 1usize..8,
                                   model_gate in any::<bool>()) {
        let adder = AdderCircuit::new(4);
        let model = if model_gate {
            FaultModel::GateLevel
        } else {
            FaultModel::TransistorLevel
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = DefectPlan::new(model);
        for _ in 0..n {
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        }
        let mut sim = adder.simulator();
        plan.apply(&mut sim);
        let _ = adder.compute(&mut sim, 7, 9);
        plan.remove(&mut sim);
        // Healthy arithmetic restored exactly.
        for (a, b) in [(0u64, 0u64), (7, 9), (15, 15), (8, 8)] {
            let (s, c) = adder.compute(&mut sim, a, b);
            prop_assert_eq!(s | (u64::from(c) << 4), a + b);
        }
    }
}
