//! The hardware activation unit: 16-entry LUT, multiply, add, clamp.

use std::sync::Arc;

use dta_fixed::{Fx, SigmoidLut};
use dta_logic::{
    GateKind, LutExec, LutProgram, Netlist, NetlistBuilder, NodeId, Simulator, Simulator64,
};

use crate::adder::full_adder;

/// The gate-level sigmoid unit of the paper's Figure 4: a 16-segment
/// piecewise-linear approximation `f(x) = a_i*x + b_i`, where the
/// `(a_i, b_i)` coefficient pair is selected from a look-up table by the
/// integral part of `x`, multiplied/added in Q6.10, and clamped to
/// `[0, 1]` (with hard rails outside the approximated domain).
///
/// Bit-exact with [`dta_fixed::SigmoidLut::eval`]; the LUT constants are
/// tie cells, while the selection muxes, the multiplier, the adder and
/// the clamp logic are all transistor-level defect sites.
///
/// # Example
///
/// ```
/// use dta_circuits::SigmoidUnitCircuit;
/// use dta_fixed::{Fx, SigmoidLut};
/// let unit = SigmoidUnitCircuit::new();
/// let mut sim = unit.simulator();
/// let x = Fx::from_f64(-1.3);
/// assert_eq!(unit.compute(&mut sim, x), SigmoidLut::new().eval(x));
/// ```
#[derive(Clone, Debug)]
pub struct SigmoidUnitCircuit {
    net: Arc<Netlist>,
    x: Vec<NodeId>,
    out: Vec<NodeId>,
    cells: Vec<Vec<NodeId>>,
}

const W: usize = 16;
const FRAC: usize = 10;

impl SigmoidUnitCircuit {
    /// Builds the activation unit with the standard [`SigmoidLut`]
    /// contents.
    pub fn new() -> SigmoidUnitCircuit {
        SigmoidUnitCircuit::with_lut(&SigmoidLut::new())
    }

    /// Builds the activation unit from explicit LUT contents.
    pub fn with_lut(lut: &SigmoidLut) -> SigmoidUnitCircuit {
        let mut b = NetlistBuilder::new();
        let x = b.input_bus("x", W);
        let zero = b.constant(false);
        let one = b.constant(true);

        // -- Index & rail decode from the integral part (bits 10..15). --
        // int = x >> 10, 6-bit signed. rail_low: int < -8; rail_high:
        // int >= 8; else segment index = (int + 8) & 15, whose bits are
        // (x10, x11, x12, !x13).
        let s = x[15];
        let b3 = x[13];
        let b4 = x[14];
        let b3_and_b4 = b.gate(GateKind::And2, &[b3, b4]);
        let not_b34 = b.gate(GateKind::Not, &[b3_and_b4]);
        let rail_low = b.gate(GateKind::And2, &[s, not_b34]);
        let b3_or_b4 = b.gate(GateKind::Or2, &[b3, b4]);
        let not_s = b.gate(GateKind::Not, &[s]);
        let rail_high = b.gate(GateKind::And2, &[not_s, b3_or_b4]);
        let idx3 = b.gate(GateKind::Not, &[b3]);
        let idx = [x[10], x[11], x[12], idx3];
        let decode_cells = vec![
            b3_and_b4, not_b34, rail_low, b3_or_b4, not_s, rail_high, idx3,
        ];

        // -- LUT: two 16-bit coefficient words selected by idx. --
        let mut lut_cells = Vec::new();
        let mut select_word = |b: &mut NetlistBuilder, words: [u16; 16]| -> Vec<NodeId> {
            (0..W)
                .map(|bit| {
                    // 16:1 mux tree per output bit.
                    let mut level: Vec<NodeId> = (0..16)
                        .map(|e| if words[e] >> bit & 1 == 1 { one } else { zero })
                        .collect();
                    for sel in idx {
                        level = level
                            .chunks(2)
                            .map(|pair| {
                                let m = b.gate(GateKind::Mux2, &[sel, pair[0], pair[1]]);
                                lut_cells.push(m);
                                m
                            })
                            .collect();
                    }
                    level[0]
                })
                .collect()
        };
        let mut a_words = [0u16; 16];
        let mut b_words = [0u16; 16];
        for (i, seg) in lut.segments().iter().enumerate() {
            a_words[i] = seg.a.to_bits();
            b_words[i] = seg.b.to_bits();
        }
        let a_coef = select_word(&mut b, a_words);
        let b_coef = select_word(&mut b, b_words);

        // -- Multiplier: a_coef * x, Q6.10 with saturation (same
        //    structure as FxMulCircuit). --
        const PW: usize = 2 * W;
        let mut mul_cells = Vec::new();
        let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(W + 1);
        for j in 0..W {
            let mut row = vec![zero; PW];
            for i in 0..W {
                let kind = if (i == W - 1) ^ (j == W - 1) {
                    GateKind::Nand2
                } else {
                    GateKind::And2
                };
                let pp = b.gate(kind, &[a_coef[i], x[j]]);
                mul_cells.push(pp);
                row[i + j] = pp;
            }
            rows.push(row);
        }
        let mut corr = vec![zero; PW];
        corr[W] = one;
        corr[PW - 1] = one;
        rows.push(corr);
        let mut acc = rows[0].clone();
        for row in &rows[1..] {
            let mut carry = zero;
            for k in 0..PW {
                let (sum, c, gates) = full_adder(&mut b, acc[k], row[k], carry);
                acc[k] = sum;
                carry = c;
                mul_cells.extend(gates);
            }
        }
        let top = W + FRAC - 1;
        let psign = acc[PW - 1];
        let mut diff = Vec::new();
        for &bit in &acc[top..(PW - 1)] {
            let d = b.gate(GateKind::Xor2, &[bit, psign]);
            mul_cells.push(d);
            diff.push(d);
        }
        let mut movf = diff[0];
        for &d in &diff[1..] {
            movf = b.gate(GateKind::Or2, &[movf, d]);
            mul_cells.push(movf);
        }
        let not_psign = b.gate(GateKind::Not, &[psign]);
        mul_cells.push(not_psign);
        let mut prod = Vec::with_capacity(W);
        for i in 0..W {
            let clamp_bit = if i == W - 1 { psign } else { not_psign };
            let m = b.gate(GateKind::Mux2, &[movf, acc[FRAC + i], clamp_bit]);
            mul_cells.push(m);
            prod.push(m);
        }

        // -- Adder: prod + b_coef, saturating (same as SatAdderCircuit). --
        let mut add_cells = Vec::new();
        let mut carry = zero;
        let mut sum = Vec::with_capacity(W);
        for i in 0..W {
            let (s_, c, gates) = full_adder(&mut b, prod[i], b_coef[i], carry);
            sum.push(s_);
            carry = c;
            add_cells.extend(gates);
        }
        let msb = W - 1;
        let same_sign = b.gate(GateKind::Xnor2, &[prod[msb], b_coef[msb]]);
        let sign_flip = b.gate(GateKind::Xor2, &[sum[msb], prod[msb]]);
        let aovf = b.gate(GateKind::And2, &[same_sign, sign_flip]);
        let not_asign = b.gate(GateKind::Not, &[prod[msb]]);
        add_cells.extend([same_sign, sign_flip, aovf, not_asign]);
        let mut y = Vec::with_capacity(W);
        for (i, &s_) in sum.iter().enumerate() {
            let clamp_bit = if i == msb { prod[msb] } else { not_asign };
            let o = b.gate(GateKind::Mux2, &[aovf, s_, clamp_bit]);
            add_cells.push(o);
            y.push(o);
        }

        // -- Clamp y to [0, 1] and apply rails. --
        // neg: y < 0. gt1: y > 1.0 (raw 1024): any of bits 11..14 set
        // while non-negative, or bit 10 set with any fractional bit set.
        let mut clamp_cells = Vec::new();
        let neg = y[msb];
        let mut hi = y[11];
        for &bit in &y[12..15] {
            hi = b.gate(GateKind::Or2, &[hi, bit]);
            clamp_cells.push(hi);
        }
        let mut frac_any = y[0];
        for &bit in &y[1..10] {
            frac_any = b.gate(GateKind::Or2, &[frac_any, bit]);
            clamp_cells.push(frac_any);
        }
        let over_int = b.gate(GateKind::And2, &[y[10], frac_any]);
        let hi_or_over = b.gate(GateKind::Or2, &[hi, over_int]);
        let not_neg = b.gate(GateKind::Not, &[neg]);
        let gt1 = b.gate(GateKind::And2, &[not_neg, hi_or_over]);
        clamp_cells.extend([over_int, hi_or_over, not_neg, gt1]);

        // ONE = raw 1024: only bit 10 set.
        let mut out = Vec::with_capacity(W);
        for (i, &yi) in y.iter().enumerate() {
            let one_bit = if i == FRAC { one } else { zero };
            // Clamp high, then low, then the two input rails.
            let c1 = b.gate(GateKind::Mux2, &[gt1, yi, one_bit]);
            let c2 = b.gate(GateKind::Mux2, &[neg, c1, zero]);
            let c3 = b.gate(GateKind::Mux2, &[rail_low, c2, zero]);
            let c4 = b.gate(GateKind::Mux2, &[rail_high, c3, one_bit]);
            clamp_cells.extend([c1, c2, c3, c4]);
            out.push(c4);
        }
        b.output_bus("f", &out);

        let cells = vec![decode_cells, lut_cells, mul_cells, add_cells, clamp_cells];

        SigmoidUnitCircuit {
            net: Arc::new(b.build()),
            x,
            out,
            cells,
        }
    }

    /// The underlying netlist (shared).
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// Gate instances grouped by functional block: index/rail decode,
    /// LUT muxes, multiplier, adder, clamp.
    pub fn cells(&self) -> &[Vec<NodeId>] {
        &self.cells
    }

    /// Creates a fresh simulator for this circuit.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(Arc::clone(&self.net))
    }

    /// Evaluates the activation through `sim`; faults injected into
    /// `sim` apply.
    pub fn compute(&self, sim: &mut Simulator, x: Fx) -> Fx {
        sim.set_input_word(&self.x, x.to_bits() as u64);
        sim.settle();
        Fx::from_bits(sim.read_word(&self.out) as u16)
    }

    /// Creates a fresh 64-lane simulator for this circuit.
    pub fn simulator64(&self) -> Simulator64 {
        Simulator64::new(Arc::clone(&self.net))
    }

    /// Evaluates a whole batch of activations, 64 lanes per settle.
    /// Only valid with combinational overrides (see
    /// [`crate::DefectPlan::apply64`]); results are then identical to
    /// repeated [`SigmoidUnitCircuit::compute`] calls.
    pub fn compute64(&self, sim: &mut Simulator64, xs: &[Fx]) -> Vec<Fx> {
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(64) {
            let wx: Vec<u64> = chunk.iter().map(|v| v.to_bits() as u64).collect();
            sim.set_input_words(&self.x, &wx);
            sim.settle();
            out.extend(
                (0..chunk.len()).map(|l| Fx::from_bits(sim.read_word_lane(&self.out, l) as u16)),
            );
        }
        out
    }

    /// The LSB-first `x` input bus.
    pub fn x_bus(&self) -> &[NodeId] {
        &self.x
    }

    /// The LSB-first activation output bus.
    pub fn out_bus(&self) -> &[NodeId] {
        &self.out
    }

    /// Creates a fresh LUT instruction-stream executor for this circuit,
    /// compiling (or reusing the process-wide memoized compilation of)
    /// its netlist — see [`dta_logic::LutProgram::cached`].
    pub fn lut_exec(&self) -> LutExec {
        LutExec::new(LutProgram::cached(&self.net))
    }

    /// Evaluates a whole batch of activations through the compiled LUT
    /// instruction stream — see [`crate::FxMulCircuit::compute_lut`].
    /// Identical to repeated [`SigmoidUnitCircuit::compute`] calls.
    pub fn compute_lut(&self, ex: &mut LutExec, xs: &[Fx]) -> Vec<Fx> {
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(64) {
            let wx: Vec<u64> = chunk.iter().map(|v| v.to_bits() as u64).collect();
            ex.set_active_lanes(chunk.len());
            ex.set_input_words(&self.x, &wx);
            ex.exec();
            out.extend(
                (0..chunk.len()).map(|l| Fx::from_bits(ex.read_word_lane(&self.out, l) as u16)),
            );
        }
        out
    }

    /// Differential batch evaluation for *stateful* fault sets — see
    /// [`crate::FxMulCircuit::compute_cone`]. Identical to mapping
    /// [`SigmoidUnitCircuit::compute`] over the inputs.
    ///
    /// # Panics
    ///
    /// Panics if `sim` has no cone plan.
    pub fn compute_cone(
        &self,
        sim: &mut Simulator,
        healthy: &mut Simulator64,
        xs: &[Fx],
    ) -> Vec<Fx> {
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(64) {
            let wx: Vec<u64> = chunk.iter().map(|v| v.to_bits() as u64).collect();
            healthy.set_input_words(&self.x, &wx);
            healthy.settle();
            sim.settle_cone_from64(healthy, chunk.len());
            for l in 0..chunk.len() {
                out.push(Fx::from_bits(
                    sim.read_word_cone(healthy, l, &self.out) as u16
                ));
            }
        }
        out
    }
}

impl Default for SigmoidUnitCircuit {
    fn default() -> SigmoidUnitCircuit {
        SigmoidUnitCircuit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_lut_on_dense_sample() {
        let unit = SigmoidUnitCircuit::new();
        let lut = SigmoidLut::new();
        let mut sim = unit.simulator();
        let mut raw = -32768i32;
        while raw <= 32767 {
            let x = Fx::from_raw(raw as i16);
            assert_eq!(unit.compute(&mut sim, x), lut.eval(x), "x={x}");
            raw += 97;
        }
    }

    #[test]
    fn matches_lut_on_rails_and_boundaries() {
        let unit = SigmoidUnitCircuit::new();
        let lut = SigmoidLut::new();
        let mut sim = unit.simulator();
        for v in [
            -32.0, -8.001, -8.0, -7.999, -1.0, -0.001, 0.0, 0.001, 1.0, 7.999, 8.0, 8.001, 31.9,
        ] {
            let x = Fx::from_f64(v);
            assert_eq!(unit.compute(&mut sim, x), lut.eval(x), "x={x}");
        }
    }

    #[test]
    fn output_always_in_unit_interval() {
        let unit = SigmoidUnitCircuit::new();
        let mut sim = unit.simulator();
        let mut raw = -32768i32;
        while raw <= 32767 {
            let y = unit.compute(&mut sim, Fx::from_raw(raw as i16));
            assert!(y >= Fx::ZERO && y <= Fx::ONE);
            raw += 331;
        }
    }

    #[test]
    fn cells_grouped_into_five_blocks() {
        let unit = SigmoidUnitCircuit::new();
        assert_eq!(unit.cells().len(), 5);
        let grouped: usize = unit.cells().iter().map(Vec::len).sum();
        // Two tie cells are not defect sites.
        assert_eq!(grouped + 2, unit.netlist().gate_count());
    }
}
