//! Wallace-tree multiplier — an alternative multiplier implementation
//! for the operator-organization studies the paper mentions.
//!
//! The Baugh–Wooley partial products are reduced column-wise with 3:2
//! (full-adder) and 2:2 (half-adder) compressors until at most two rows
//! remain, then summed with one carry-propagate adder. The critical path
//! is logarithmic in the operand width instead of quadratic.

use std::sync::Arc;

use dta_fixed::Fx;
use dta_logic::{GateKind, Netlist, NetlistBuilder, NodeId, Simulator};

use crate::adder::full_adder;

/// Builds a half-adder bit cell: `(sum, carry, gates)`.
fn half_adder(b: &mut NetlistBuilder, x: NodeId, y: NodeId) -> (NodeId, NodeId, Vec<NodeId>) {
    let s = b.gate(GateKind::Xor2, &[x, y]);
    let c = b.gate(GateKind::And2, &[x, y]);
    (s, c, vec![s, c])
}

/// A signed (Baugh–Wooley) W×W Wallace-tree multiplier producing the
/// full 2W-bit product — bit-identical to
/// [`crate::ArrayMultiplier::signed`] with a logarithmic critical path.
///
/// # Example
///
/// ```
/// use dta_circuits::wallace::WallaceMultiplier;
/// let mul = WallaceMultiplier::signed(8);
/// let mut sim = mul.simulator();
/// assert_eq!(mul.compute_signed(&mut sim, -100, 77), -7_700);
/// ```
#[derive(Clone, Debug)]
pub struct WallaceMultiplier {
    net: Arc<Netlist>,
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    product: Vec<NodeId>,
    cells: Vec<Vec<NodeId>>,
    width: usize,
}

impl WallaceMultiplier {
    /// Builds a signed W×W Wallace multiplier.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= width <= 16`.
    pub fn signed(width: usize) -> WallaceMultiplier {
        assert!((2..=16).contains(&width), "width must be in 2..=16");
        let w = width;
        let pw = 2 * w;
        let mut b = NetlistBuilder::new();
        let a_bus = b.input_bus("a", w);
        let b_bus = b.input_bus("b", w);
        let one = b.constant(true);
        let zero = b.constant(false);

        let mut cells: Vec<Vec<NodeId>> = vec![Vec::new(); pw];

        // Columns of partial-product bits (Baugh–Wooley complemented
        // cross terms + correction constants).
        let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); pw];
        for j in 0..w {
            for i in 0..w {
                let kind = if (i == w - 1) ^ (j == w - 1) {
                    GateKind::Nand2
                } else {
                    GateKind::And2
                };
                let pp = b.gate(kind, &[a_bus[i], b_bus[j]]);
                cells[i + j].push(pp);
                columns[i + j].push(pp);
            }
        }
        columns[w].push(one);
        columns[pw - 1].push(one);

        // Column compression: apply 3:2 and 2:2 compressors until every
        // column holds at most two bits.
        while columns.iter().any(|c| c.len() > 2) {
            let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); pw];
            for k in 0..pw {
                let col = &columns[k];
                let mut idx = 0;
                while col.len() - idx >= 3 {
                    let (s, c, gates) = full_adder(&mut b, col[idx], col[idx + 1], col[idx + 2]);
                    cells[k].extend(gates);
                    next[k].push(s);
                    if k + 1 < pw {
                        next[k + 1].push(c);
                    }
                    idx += 3;
                }
                if col.len() - idx == 2 && col.len() > 2 {
                    let (s, c, gates) = half_adder(&mut b, col[idx], col[idx + 1]);
                    cells[k].extend(gates);
                    next[k].push(s);
                    if k + 1 < pw {
                        next[k + 1].push(c);
                    }
                    idx += 2;
                }
                next[k].extend(&col[idx..]);
            }
            columns = next;
        }

        // Final carry-propagate addition of the two remaining rows.
        let mut product = Vec::with_capacity(pw);
        let mut carry = zero;
        for k in 0..pw {
            let (x, y) = match columns[k].len() {
                0 => (zero, zero),
                1 => (columns[k][0], zero),
                _ => (columns[k][0], columns[k][1]),
            };
            let (s, c, gates) = full_adder(&mut b, x, y, carry);
            cells[k].extend(gates);
            product.push(s);
            carry = c;
        }

        b.output_bus("p", &product);
        WallaceMultiplier {
            net: Arc::new(b.build()),
            a: a_bus,
            b: b_bus,
            product,
            cells,
            width,
        }
    }

    /// Operand width W.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The underlying netlist (shared).
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// Gate instances grouped by product-bit weight.
    pub fn cells(&self) -> &[Vec<NodeId>] {
        &self.cells
    }

    /// Creates a fresh simulator for this circuit.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(Arc::clone(&self.net))
    }

    /// Multiplies, returning the raw 2W product bits (two's complement).
    pub fn compute(&self, sim: &mut Simulator, a: u64, b: u64) -> u64 {
        let mask = (1u64 << self.width) - 1;
        sim.set_input_word(&self.a, a & mask);
        sim.set_input_word(&self.b, b & mask);
        sim.settle();
        sim.read_word(&self.product)
    }

    /// Signed multiply convenience: sign-extends the 2W product bits.
    pub fn compute_signed(&self, sim: &mut Simulator, a: i64, b: i64) -> i64 {
        let p = self.compute(sim, a as u64, b as u64);
        let pw = 2 * self.width;
        let sign = 1u64 << (pw - 1);
        ((p ^ sign).wrapping_sub(sign)) as i64
    }

    /// Multiplies two Q6.10 values through a 16-bit instance, applying
    /// the same bit-select + saturation semantics as `Fx * Fx`
    /// (behavioral select; the select stage is native here since this
    /// variant exists for structural comparison, not defect injection
    /// into the select logic).
    ///
    /// # Panics
    ///
    /// Panics if the multiplier is not 16 bits wide.
    pub fn compute_fx(&self, sim: &mut Simulator, a: Fx, b: Fx) -> Fx {
        assert_eq!(self.width, 16, "Q6.10 needs the 16-bit instance");
        let p = self.compute(sim, a.to_bits() as u64, b.to_bits() as u64);
        let prod = ((p ^ (1u64 << 31)).wrapping_sub(1u64 << 31)) as i64 as i32;
        let shifted = prod >> 10;
        Fx::from_raw(shifted.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplier::ArrayMultiplier;

    #[test]
    fn four_bit_signed_exhaustive() {
        let mul = WallaceMultiplier::signed(4);
        let mut sim = mul.simulator();
        for a in -8i64..8 {
            for b in -8i64..8 {
                assert_eq!(mul.compute_signed(&mut sim, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn sixteen_bit_matches_array_sampled() {
        let wallace = WallaceMultiplier::signed(16);
        let array = ArrayMultiplier::signed(16);
        let mut sw = wallace.simulator();
        let mut sa = array.simulator();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (a, b) = (x & 0xFFFF, (x >> 16) & 0xFFFF);
            assert_eq!(
                wallace.compute(&mut sw, a, b),
                array.compute(&mut sa, a, b),
                "{a}*{b}"
            );
        }
    }

    #[test]
    fn fx_semantics_match_native() {
        let mul = WallaceMultiplier::signed(16);
        let mut sim = mul.simulator();
        let mut raw = -32768i32;
        while raw <= 32767 {
            let a = Fx::from_raw(raw as i16);
            let b = Fx::from_raw((raw.wrapping_mul(73) ^ 0xBEE) as i16);
            assert_eq!(mul.compute_fx(&mut sim, a, b), a * b, "a={a} b={b}");
            raw += 1499;
        }
    }

    #[test]
    fn much_shallower_than_array() {
        let wallace = WallaceMultiplier::signed(16);
        let array = ArrayMultiplier::signed(16);
        // The compression tree is logarithmic; the final 32-bit ripple
        // adder dominates the remaining depth (~30% below the array).
        assert!(
            wallace.netlist().logic_depth() * 10 < array.netlist().logic_depth() * 8,
            "wallace {} vs array {}",
            wallace.netlist().logic_depth(),
            array.netlist().logic_depth()
        );
    }

    #[test]
    fn cells_cover_all_gates() {
        let mul = WallaceMultiplier::signed(8);
        let grouped: usize = mul.cells().iter().map(Vec::len).sum();
        // Two tie cells are not defect sites.
        assert_eq!(grouped + 2, mul.netlist().gate_count());
        assert_eq!(mul.width(), 8);
    }
}
