//! Carry-lookahead adder — an alternative adder implementation for the
//! operator-organization studies the paper mentions ("different
//! implementations of arithmetic operators").
//!
//! 4-bit lookahead groups with ripple between groups: inside a group the
//! carries are computed directly from propagate/generate terms, cutting
//! the critical path well below the ripple-carry chain at the cost of
//! wider (more defect-prone) lookahead gates.

use std::sync::Arc;

use dta_logic::{GateKind, Netlist, NetlistBuilder, NodeId, Simulator};

/// A W-bit group-carry-lookahead adder (two's complement wrapping, with
/// carry-in and carry-out), functionally identical to
/// [`crate::AdderCircuit`] but with a much shorter critical path.
///
/// # Example
///
/// ```
/// use dta_circuits::cla_adder::ClaAdderCircuit;
/// let adder = ClaAdderCircuit::new(16);
/// let mut sim = adder.simulator();
/// assert_eq!(adder.compute(&mut sim, 40_000, 30_000), (4_464, true));
/// ```
#[derive(Clone, Debug)]
pub struct ClaAdderCircuit {
    net: Arc<Netlist>,
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    cin: NodeId,
    sum: Vec<NodeId>,
    cout: NodeId,
    cells: Vec<Vec<NodeId>>,
    width: usize,
}

/// Lookahead group width.
const GROUP: usize = 4;

impl ClaAdderCircuit {
    /// Builds a W-bit group-CLA adder.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32.
    pub fn new(width: usize) -> ClaAdderCircuit {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        let mut b = NetlistBuilder::new();
        let a_bus = b.input_bus("a", width);
        let b_bus = b.input_bus("b", width);
        let cin = b.input("cin");

        let mut cells: Vec<Vec<NodeId>> = vec![Vec::new(); width];
        // Propagate / generate per bit.
        let mut p = Vec::with_capacity(width);
        let mut g = Vec::with_capacity(width);
        for i in 0..width {
            let pi = b.gate(GateKind::Xor2, &[a_bus[i], b_bus[i]]);
            let gi = b.gate(GateKind::And2, &[a_bus[i], b_bus[i]]);
            cells[i].extend([pi, gi]);
            p.push(pi);
            g.push(gi);
        }

        // Carries: lookahead within each group, ripple between groups.
        // c[i+1] = g[i] | p[i]&g[i-1] | ... | p[i]&..&p[lo]&c[lo].
        let mut carries = Vec::with_capacity(width + 1);
        carries.push(cin);
        let mut group_cin = cin;
        for lo in (0..width).step_by(GROUP) {
            let hi = (lo + GROUP).min(width);
            for i in lo..hi {
                // Build c[i+1] from scratch off group_cin: terms are
                // g[j] AND p[j+1..=i], plus c_in AND p[lo..=i].
                let mut terms: Vec<NodeId> = Vec::new();
                for j in lo..=i {
                    let mut term = g[j];
                    for &pk in &p[j + 1..=i] {
                        term = b.gate(GateKind::And2, &[term, pk]);
                        cells[i].push(term);
                    }
                    terms.push(term);
                }
                let mut cin_term = group_cin;
                for &pk in &p[lo..=i] {
                    cin_term = b.gate(GateKind::And2, &[cin_term, pk]);
                    cells[i].push(cin_term);
                }
                terms.push(cin_term);
                let mut carry = terms[0];
                for &t in &terms[1..] {
                    carry = b.gate(GateKind::Or2, &[carry, t]);
                    cells[i].push(carry);
                }
                carries.push(carry);
            }
            group_cin = carries[hi];
        }

        // Sums.
        let mut sum = Vec::with_capacity(width);
        for i in 0..width {
            let s = b.gate(GateKind::Xor2, &[p[i], carries[i]]);
            cells[i].push(s);
            sum.push(s);
        }
        let cout = carries[width];
        b.output_bus("sum", &sum);
        b.output("cout", cout);

        ClaAdderCircuit {
            net: Arc::new(b.build()),
            a: a_bus,
            b: b_bus,
            cin,
            sum,
            cout,
            cells,
            width,
        }
    }

    /// Word width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The underlying netlist (shared).
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// Gate instances grouped by bit position.
    pub fn cells(&self) -> &[Vec<NodeId>] {
        &self.cells
    }

    /// Creates a fresh simulator for this circuit.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(Arc::clone(&self.net))
    }

    /// Computes `a + b` (no carry-in), returning the wrapped sum and the
    /// carry-out.
    pub fn compute(&self, sim: &mut Simulator, a: u64, b: u64) -> (u64, bool) {
        self.compute_with_carry(sim, a, b, false)
    }

    /// Computes `a + b + cin`.
    pub fn compute_with_carry(
        &self,
        sim: &mut Simulator,
        a: u64,
        b: u64,
        cin: bool,
    ) -> (u64, bool) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        sim.set_input_word(&self.a, a & mask);
        sim.set_input_word(&self.b, b & mask);
        sim.set_input(self.cin, cin);
        sim.settle();
        (sim.read_word(&self.sum), sim.value(self.cout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AdderCircuit;

    #[test]
    fn four_bit_exhaustive() {
        let adder = ClaAdderCircuit::new(4);
        let mut sim = adder.simulator();
        for a in 0u64..16 {
            for b in 0u64..16 {
                for cin in [false, true] {
                    let (s, c) = adder.compute_with_carry(&mut sim, a, b, cin);
                    let exact = a + b + u64::from(cin);
                    assert_eq!(s, exact & 0xF, "{a}+{b}+{cin}");
                    assert_eq!(c, exact > 15, "{a}+{b}+{cin} carry");
                }
            }
        }
    }

    #[test]
    fn sixteen_bit_matches_ripple_sampled() {
        let cla = ClaAdderCircuit::new(16);
        let ripple = AdderCircuit::new(16);
        let mut sim_c = cla.simulator();
        let mut sim_r = ripple.simulator();
        let mut x = 0x2545f4914f6cdd1du64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (a, b) = (x & 0xFFFF, (x >> 16) & 0xFFFF);
            assert_eq!(
                cla.compute(&mut sim_c, a, b),
                ripple.compute(&mut sim_r, a, b),
                "{a}+{b}"
            );
        }
    }

    #[test]
    fn shallower_than_ripple() {
        let cla = ClaAdderCircuit::new(16);
        let ripple = AdderCircuit::new(16);
        // Group-ripple CLA: ~30% shallower than the full ripple chain
        // (a flat CLA would do better at the cost of very wide gates).
        assert!(
            cla.netlist().logic_depth() * 10 < ripple.netlist().logic_depth() * 8,
            "CLA depth {} vs ripple {}",
            cla.netlist().logic_depth(),
            ripple.netlist().logic_depth()
        );
    }

    #[test]
    fn cells_cover_all_gates() {
        let cla = ClaAdderCircuit::new(16);
        let grouped: usize = cla.cells().iter().map(Vec::len).sum();
        assert_eq!(grouped, cla.netlist().gate_count());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = ClaAdderCircuit::new(0);
    }
}
