#![warn(missing_docs)]

//! Gate-level implementations of the accelerator's datapath operators.
//!
//! The spatially expanded accelerator is made of three operator types per
//! neuron — synaptic multipliers, accumulation adders, and the sigmoid
//! look-up unit — plus weight/input latches. This crate builds each of
//! them as a [`dta_logic::Netlist`] of standard cells, so that defects
//! can be injected *into a specific transistor of a specific 1-bit cell*
//! and the resulting operator behavior observed, exactly as in §III of
//! the paper:
//!
//! * [`AdderCircuit`] — W-bit ripple-carry adder (wrapping);
//! * [`SatAdderCircuit`] — the 16-bit Q6.10 saturating adder used in
//!   neuron accumulation, bit-exact with [`dta_fixed::Fx`] `+`;
//! * [`ArrayMultiplier`] — W×W array multiplier (unsigned or
//!   Baugh–Wooley signed), full 2W-bit product;
//! * [`FxMulCircuit`] — the Q6.10 multiplier (product bits `[25:10]` with
//!   saturation), bit-exact with [`dta_fixed::Fx`] `*`;
//! * [`SigmoidUnitCircuit`] — the 16-segment piecewise-linear activation
//!   unit (LUT + multiply + add + clamp), bit-exact with
//!   [`dta_fixed::SigmoidLut`];
//! * [`WordLatch`] — a 16-bit synaptic-weight register;
//! * [`inject`] — random defect placement (uniform over operator bits,
//!   then over transistors / stuck-at sites within the bit cell) for both
//!   fault models;
//! * [`ops`] — self-contained faulty-operator evaluators
//!   ([`HwAdder`], [`HwMultiplier`], [`HwSigmoid`]) that the ANN model
//!   calls in place of native arithmetic for neurons marked defective
//!   (the paper's hybrid execution strategy).
//!
//! # Example
//!
//! ```
//! use dta_circuits::ops::HwMultiplier;
//! use dta_fixed::Fx;
//!
//! // A healthy gate-level multiplier is bit-exact with the Fx datapath.
//! let mut hw = HwMultiplier::new();
//! let (a, b) = (Fx::from_f64(1.5), Fx::from_f64(-2.25));
//! assert_eq!(hw.mul(a, b), a * b);
//! ```

pub mod adder;
pub mod cla_adder;
pub mod inject;
pub mod multiplier;
pub mod ops;
pub mod sigmoid_unit;
pub mod visibility;
pub mod wallace;
pub mod word_latch;

pub use adder::{AdderCircuit, SatAdderCircuit};
pub use cla_adder::ClaAdderCircuit;
pub use dta_transistor::{Activation, ActivationError, ActivationState};
pub use inject::{force_switch_level_baseline, switch_level_baseline, DefectPlan, FaultModel};
pub use multiplier::{ArrayMultiplier, FxMulCircuit};
pub use ops::{HwAdder, HwMultiplier, HwSigmoid};
pub use sigmoid_unit::SigmoidUnitCircuit;
pub use visibility::VisibilityReport;
pub use wallace::WallaceMultiplier;
pub use word_latch::WordLatch;
