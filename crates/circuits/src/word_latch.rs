//! A 16-bit register of D-latches — the synaptic-weight storage element.

use std::sync::Arc;

use dta_fixed::Fx;
use dta_logic::{Netlist, NetlistBuilder, NodeId, Simulator};

/// A 16-bit word of D-latches, as used for the distributed synaptic
/// weight storage and the DMA double buffers of the accelerator.
///
/// In the spatially expanded design every synapse owns one of these,
/// placed next to its multiplier — the paper's "decentralized synaptic
/// storage means the synapses (data) are located close to the neurons
/// (operators)".
///
/// # Example
///
/// ```
/// use dta_circuits::WordLatch;
/// use dta_fixed::Fx;
/// let latch = WordLatch::new();
/// let mut sim = latch.simulator();
/// let w = Fx::from_f64(-0.75);
/// latch.write(&mut sim, w);
/// assert_eq!(latch.read(&sim), w);
/// ```
#[derive(Clone, Debug)]
pub struct WordLatch {
    net: Arc<Netlist>,
    d: Vec<NodeId>,
    q: Vec<NodeId>,
}

impl WordLatch {
    /// Builds a 16-bit latch word initialized to zero.
    pub fn new() -> WordLatch {
        let mut b = NetlistBuilder::new();
        let d = b.input_bus("d", 16);
        let q: Vec<NodeId> = d.iter().map(|&bit| b.latch(bit, false)).collect();
        b.output_bus("q", &q);
        WordLatch {
            net: Arc::new(b.build()),
            d,
            q,
        }
    }

    /// The underlying netlist (shared).
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// Creates a fresh simulator for this circuit.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(Arc::clone(&self.net))
    }

    /// Drives the data inputs and ticks the latches (a write strobe).
    pub fn write(&self, sim: &mut Simulator, value: Fx) {
        sim.set_input_word(&self.d, value.to_bits() as u64);
        sim.settle();
        sim.tick();
    }

    /// Reads the stored word.
    pub fn read(&self, sim: &Simulator) -> Fx {
        Fx::from_bits(sim.read_word(&self.q) as u16)
    }
}

impl Default for WordLatch {
    fn default() -> WordLatch {
        WordLatch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializes_to_zero() {
        let latch = WordLatch::new();
        let sim = latch.simulator();
        assert_eq!(latch.read(&sim), Fx::ZERO);
    }

    #[test]
    fn stores_and_overwrites() {
        let latch = WordLatch::new();
        let mut sim = latch.simulator();
        for v in [1.5, -3.25, 0.0, 31.0, -32.0] {
            let w = Fx::from_f64(v);
            latch.write(&mut sim, w);
            assert_eq!(latch.read(&sim), w);
        }
    }

    #[test]
    fn holds_value_when_input_changes_without_tick() {
        let latch = WordLatch::new();
        let mut sim = latch.simulator();
        latch.write(&mut sim, Fx::ONE);
        // Drive new data but do not strobe.
        sim.set_input_word(&latch.d, Fx::from_f64(5.0).to_bits() as u64);
        sim.settle();
        assert_eq!(latch.read(&sim), Fx::ONE);
    }

    #[test]
    fn transistor_count_is_sixteen_latches() {
        let latch = WordLatch::new();
        assert_eq!(latch.netlist().transistor_count(), 16 * 8);
    }
}
