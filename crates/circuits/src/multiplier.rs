//! Array multipliers: unsigned and Baugh–Wooley signed, plus the Q6.10
//! datapath multiplier.

use std::sync::Arc;

use dta_fixed::Fx;
use dta_logic::{
    GateKind, LutExec, LutProgram, Netlist, NetlistBuilder, NodeId, Simulator, Simulator64,
};

use crate::adder::full_adder;

/// A W×W array multiplier producing the full 2W-bit product.
///
/// * [`ArrayMultiplier::unsigned`] multiplies W-bit unsigned operands
///   with plain AND partial products (this is the 4-bit multiplier of the
///   paper's Figure 5 experiment);
/// * [`ArrayMultiplier::signed`] multiplies W-bit two's-complement
///   operands using the Baugh–Wooley scheme (complemented cross partial
///   products plus correction constants at bits `W` and `2W-1`).
///
/// Partial products are accumulated row by row with ripple-carry adders —
/// the classic array organization. Gate instances are grouped by output
/// bit position for defect-site selection.
///
/// # Example
///
/// ```
/// use dta_circuits::ArrayMultiplier;
/// let mul = ArrayMultiplier::unsigned(4);
/// let mut sim = mul.simulator();
/// assert_eq!(mul.compute(&mut sim, 13, 11), 143);
/// ```
#[derive(Clone, Debug)]
pub struct ArrayMultiplier {
    net: Arc<Netlist>,
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    product: Vec<NodeId>,
    cells: Vec<Vec<NodeId>>,
    width: usize,
    signed: bool,
}

impl ArrayMultiplier {
    /// Builds an unsigned W×W multiplier.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= width <= 16`.
    pub fn unsigned(width: usize) -> ArrayMultiplier {
        ArrayMultiplier::build(width, false)
    }

    /// Builds a signed (two's-complement, Baugh–Wooley) W×W multiplier.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= width <= 16`.
    pub fn signed(width: usize) -> ArrayMultiplier {
        ArrayMultiplier::build(width, true)
    }

    fn build(width: usize, signed: bool) -> ArrayMultiplier {
        assert!((2..=16).contains(&width), "width must be in 2..=16");
        let w = width;
        let pw = 2 * w;
        let mut b = NetlistBuilder::new();
        let a_bus = b.input_bus("a", w);
        let b_bus = b.input_bus("b", w);
        let zero = b.constant(false);
        let one = b.constant(true);

        // cells[k] collects the gates whose output weight is 2^k.
        let mut cells: Vec<Vec<NodeId>> = vec![Vec::new(); pw];

        // Partial-product rows as 2W-bit words.
        let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(w + 1);
        for j in 0..w {
            let mut row = vec![zero; pw];
            for i in 0..w {
                let msb_a = i == w - 1;
                let msb_b = j == w - 1;
                // Baugh–Wooley: complement the cross terms involving
                // exactly one sign bit.
                let kind = if signed && (msb_a ^ msb_b) {
                    GateKind::Nand2
                } else {
                    GateKind::And2
                };
                let pp = b.gate(kind, &[a_bus[i], b_bus[j]]);
                cells[i + j].push(pp);
                row[i + j] = pp;
            }
            rows.push(row);
        }
        if signed {
            // Correction constants: +2^W and +2^(2W-1), mod 2^(2W).
            let mut row = vec![zero; pw];
            row[w] = one;
            row[pw - 1] = one;
            rows.push(row);
        }

        // Accumulate rows with ripple-carry adders over 2W bits.
        let mut acc = rows[0].clone();
        for row in &rows[1..] {
            let mut carry = zero;
            for k in 0..pw {
                let (s, c, gates) = full_adder(&mut b, acc[k], row[k], carry);
                acc[k] = s;
                carry = c;
                cells[k].extend(gates);
            }
            // Carry out of bit 2W-1 is discarded (mod 2^2W).
        }

        b.output_bus("p", &acc);
        ArrayMultiplier {
            net: Arc::new(b.build()),
            a: a_bus,
            b: b_bus,
            product: acc,
            cells,
            width,
            signed,
        }
    }

    /// Operand width W.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether this is the signed (Baugh–Wooley) variant.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The underlying netlist (shared).
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// Gate instances grouped by product-bit weight.
    pub fn cells(&self) -> &[Vec<NodeId>] {
        &self.cells
    }

    /// Creates a fresh simulator for this circuit.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(Arc::clone(&self.net))
    }

    /// Multiplies through `sim`, returning the raw 2W product bits
    /// (interpret as two's complement for the signed variant). Operands
    /// are taken modulo 2^W. Faults injected into `sim` apply.
    pub fn compute(&self, sim: &mut Simulator, a: u64, b: u64) -> u64 {
        let mask = (1u64 << self.width) - 1;
        sim.set_input_word(&self.a, a & mask);
        sim.set_input_word(&self.b, b & mask);
        sim.settle();
        sim.read_word(&self.product)
    }

    /// Signed multiply convenience: sign-extends the 2W product bits.
    pub fn compute_signed(&self, sim: &mut Simulator, a: i64, b: i64) -> i64 {
        let p = self.compute(sim, a as u64, b as u64);
        let pw = 2 * self.width;
        let sign = 1u64 << (pw - 1);
        ((p ^ sign).wrapping_sub(sign)) as i64
    }
}

/// The accelerator's Q6.10 synaptic multiplier: a signed 16×16 array
/// core whose output stage selects product bits `[25:10]` and clamps on
/// overflow — bit-exact with `Fx * Fx`.
///
/// # Example
///
/// ```
/// use dta_circuits::FxMulCircuit;
/// use dta_fixed::Fx;
/// let mul = FxMulCircuit::new();
/// let mut sim = mul.simulator();
/// let (a, b) = (Fx::from_f64(2.5), Fx::from_f64(-1.25));
/// assert_eq!(mul.compute(&mut sim, a, b), a * b);
/// ```
#[derive(Clone, Debug)]
pub struct FxMulCircuit {
    net: Arc<Netlist>,
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    out: Vec<NodeId>,
    cells: Vec<Vec<NodeId>>,
}

impl FxMulCircuit {
    /// Builds the Q6.10 multiplier (signed 16×16 core + bit-select +
    /// saturation).
    pub fn new() -> FxMulCircuit {
        const W: usize = 16;
        const PW: usize = 2 * W;
        const FRAC: usize = 10;
        let mut b = NetlistBuilder::new();
        let a_bus = b.input_bus("a", W);
        let b_bus = b.input_bus("b", W);
        let zero = b.constant(false);
        let one = b.constant(true);

        let mut cells: Vec<Vec<NodeId>> = vec![Vec::new(); PW + 1];

        // Baugh–Wooley core, identical to ArrayMultiplier::signed(16).
        let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(W + 1);
        for j in 0..W {
            let mut row = vec![zero; PW];
            for i in 0..W {
                let kind = if (i == W - 1) ^ (j == W - 1) {
                    GateKind::Nand2
                } else {
                    GateKind::And2
                };
                let pp = b.gate(kind, &[a_bus[i], b_bus[j]]);
                cells[i + j].push(pp);
                row[i + j] = pp;
            }
            rows.push(row);
        }
        let mut corr = vec![zero; PW];
        corr[W] = one;
        corr[PW - 1] = one;
        rows.push(corr);

        let mut acc = rows[0].clone();
        for row in &rows[1..] {
            let mut carry = zero;
            for k in 0..PW {
                let (s, c, gates) = full_adder(&mut b, acc[k], row[k], carry);
                acc[k] = s;
                carry = c;
                cells[k].extend(gates);
            }
        }

        // The Q6.10 result keeps bits [25:10]. It fits 16 bits iff the
        // discarded high bits [31:25] are all equal; otherwise clamp to
        // MAX/MIN by the product sign (bit 31).
        let top = W + FRAC - 1; // 25
        let sign = acc[PW - 1];
        let mut ovf_gates = Vec::new();
        let mut diff_bits = Vec::new();
        for &bit in &acc[top..(PW - 1)] {
            let d = b.gate(GateKind::Xor2, &[bit, sign]);
            diff_bits.push(d);
            ovf_gates.push(d);
        }
        let mut ovf = diff_bits[0];
        for &d in &diff_bits[1..] {
            ovf = b.gate(GateKind::Or2, &[ovf, d]);
            ovf_gates.push(ovf);
        }
        let not_sign = b.gate(GateKind::Not, &[sign]);
        ovf_gates.push(not_sign);

        let mut out = Vec::with_capacity(W);
        for i in 0..W {
            let clamp_bit = if i == W - 1 { sign } else { not_sign };
            let o = b.gate(GateKind::Mux2, &[ovf, acc[FRAC + i], clamp_bit]);
            ovf_gates.push(o);
            out.push(o);
        }
        cells[PW] = ovf_gates;
        b.output_bus("out", &out);

        FxMulCircuit {
            net: Arc::new(b.build()),
            a: a_bus,
            b: b_bus,
            out,
            cells,
        }
    }

    /// The underlying netlist (shared).
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// Gate instances grouped by product-bit weight; the final group is
    /// the select/saturation stage.
    pub fn cells(&self) -> &[Vec<NodeId>] {
        &self.cells
    }

    /// Creates a fresh simulator for this circuit.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(Arc::clone(&self.net))
    }

    /// Multiplies through `sim`; faults injected into `sim` apply.
    pub fn compute(&self, sim: &mut Simulator, a: Fx, b: Fx) -> Fx {
        sim.set_input_word(&self.a, a.to_bits() as u64);
        sim.set_input_word(&self.b, b.to_bits() as u64);
        sim.settle();
        Fx::from_bits(sim.read_word(&self.out) as u16)
    }

    /// Creates a fresh 64-lane simulator for this circuit.
    pub fn simulator64(&self) -> Simulator64 {
        Simulator64::new(Arc::clone(&self.net))
    }

    /// Multiplies a whole batch through the lane-parallel simulator, 64
    /// products per settle. Only valid with combinational overrides
    /// (see [`crate::DefectPlan::apply64`]); results are then identical
    /// to repeated [`FxMulCircuit::compute`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in length.
    pub fn compute64(&self, sim: &mut Simulator64, a: &[Fx], b: &[Fx]) -> Vec<Fx> {
        assert_eq!(a.len(), b.len(), "operand batches must match");
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            let wa: Vec<u64> = ca.iter().map(|v| v.to_bits() as u64).collect();
            let wb: Vec<u64> = cb.iter().map(|v| v.to_bits() as u64).collect();
            sim.set_input_words(&self.a, &wa);
            sim.set_input_words(&self.b, &wb);
            sim.settle();
            out.extend(
                (0..ca.len()).map(|l| Fx::from_bits(sim.read_word_lane(&self.out, l) as u16)),
            );
        }
        out
    }

    /// The LSB-first `a` operand input bus.
    pub fn a_bus(&self) -> &[NodeId] {
        &self.a
    }

    /// The LSB-first `b` operand input bus.
    pub fn b_bus(&self) -> &[NodeId] {
        &self.b
    }

    /// The LSB-first product output bus.
    pub fn out_bus(&self) -> &[NodeId] {
        &self.out
    }

    /// Creates a fresh LUT instruction-stream executor for this circuit,
    /// compiling (or reusing the process-wide memoized compilation of)
    /// its netlist — see [`dta_logic::LutProgram::cached`].
    pub fn lut_exec(&self) -> LutExec {
        LutExec::new(LutProgram::cached(&self.net))
    }

    /// Multiplies a whole batch through the compiled LUT instruction
    /// stream, 64 products per straight-line sweep. Valid for *any*
    /// fault lowering ([`crate::DefectPlan::apply_lut`]): permanent
    /// combinational faults are truth-word patches at full speed, and
    /// stateful/dynamic ones advance per lane in lane order — identical
    /// to repeated [`FxMulCircuit::compute`] calls either way.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in length.
    pub fn compute_lut(&self, ex: &mut LutExec, a: &[Fx], b: &[Fx]) -> Vec<Fx> {
        assert_eq!(a.len(), b.len(), "operand batches must match");
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            let wa: Vec<u64> = ca.iter().map(|v| v.to_bits() as u64).collect();
            let wb: Vec<u64> = cb.iter().map(|v| v.to_bits() as u64).collect();
            ex.set_active_lanes(ca.len());
            ex.set_input_words(&self.a, &wa);
            ex.set_input_words(&self.b, &wb);
            ex.exec();
            out.extend(
                (0..ca.len()).map(|l| Fx::from_bits(ex.read_word_lane(&self.out, l) as u16)),
            );
        }
        out
    }

    /// Differential batch evaluation for *stateful* fault sets: settles
    /// a healthy 64-lane twin once per chunk of 64 pairs, then
    /// gate-simulates only `sim`'s cone of influence per lane, in lane
    /// order — so memory effects and activation streams advance exactly
    /// as repeated [`FxMulCircuit::compute`] calls would. Identical
    /// results, a fraction of the gate evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in length, or `sim` has no cone plan
    /// (see [`Simulator::prepare_cone`]).
    pub fn compute_cone(
        &self,
        sim: &mut Simulator,
        healthy: &mut Simulator64,
        a: &[Fx],
        b: &[Fx],
    ) -> Vec<Fx> {
        assert_eq!(a.len(), b.len(), "operand batches must match");
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            let wa: Vec<u64> = ca.iter().map(|v| v.to_bits() as u64).collect();
            let wb: Vec<u64> = cb.iter().map(|v| v.to_bits() as u64).collect();
            healthy.set_input_words(&self.a, &wa);
            healthy.set_input_words(&self.b, &wb);
            healthy.settle();
            sim.settle_cone_from64(healthy, ca.len());
            for l in 0..ca.len() {
                out.push(Fx::from_bits(
                    sim.read_word_cone(healthy, l, &self.out) as u16
                ));
            }
        }
        out
    }
}

impl Default for FxMulCircuit {
    fn default() -> FxMulCircuit {
        FxMulCircuit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_unsigned_exhaustive() {
        let mul = ArrayMultiplier::unsigned(4);
        let mut sim = mul.simulator();
        for a in 0u64..16 {
            for b in 0u64..16 {
                assert_eq!(mul.compute(&mut sim, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn four_bit_signed_exhaustive() {
        let mul = ArrayMultiplier::signed(4);
        let mut sim = mul.simulator();
        for a in -8i64..8 {
            for b in -8i64..8 {
                assert_eq!(mul.compute_signed(&mut sim, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn eight_bit_signed_sampled() {
        let mul = ArrayMultiplier::signed(8);
        let mut sim = mul.simulator();
        for a in (-128i64..128).step_by(17) {
            for b in (-128i64..128).step_by(13) {
                assert_eq!(mul.compute_signed(&mut sim, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn cells_cover_all_gates() {
        let mul = ArrayMultiplier::unsigned(4);
        let grouped: usize = mul.cells().iter().map(Vec::len).sum();
        // Two tie cells (const 0/1) are not defect sites.
        assert_eq!(grouped + 2, mul.netlist().gate_count());
        assert!(mul.width() == 4 && !mul.is_signed());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn too_wide_rejected() {
        let _ = ArrayMultiplier::unsigned(17);
    }

    #[test]
    fn fx_mul_matches_datapath_sampled() {
        let mul = FxMulCircuit::new();
        let mut sim = mul.simulator();
        let mut raw = -32768i32;
        while raw <= 32767 {
            let a = Fx::from_raw(raw as i16);
            let b = Fx::from_raw((raw.wrapping_mul(97) ^ 0x4d2) as i16);
            assert_eq!(mul.compute(&mut sim, a, b), a * b, "a={a} b={b}");
            raw += 509;
        }
    }

    #[test]
    fn fx_mul_edge_cases() {
        let mul = FxMulCircuit::new();
        let mut sim = mul.simulator();
        for (a, b) in [
            (Fx::MAX, Fx::MAX), // saturates high
            (Fx::MIN, Fx::MIN), // saturates high (positive product)
            (Fx::MAX, Fx::MIN), // saturates low
            (Fx::MIN, Fx::ONE), // exactly MIN
            (Fx::ONE, Fx::ONE),
            (Fx::ZERO, Fx::MAX),
            (Fx::from_raw(-1), Fx::from_raw(1)), // floor(-1/1024)
        ] {
            assert_eq!(mul.compute(&mut sim, a, b), a * b, "a={a} b={b}");
        }
    }
}
