//! Random defect placement into operator circuits.
//!
//! The paper's §VI-C procedure: "we randomly pick one of the logic
//! operators or latches ... and one 1-bit operator or wire within the
//! target operator"; defects are "randomly spread over the operator bits,
//! and within each 1-bit operation, over all transistors". A
//! [`DefectPlan`] reproduces this: it first draws a uniformly random
//! *bit cell* of the circuit, then a gate within that cell, then a
//! defect site inside that gate — at the transistor level
//! ([`FaultModel::TransistorLevel`]) or with the stuck-at baseline
//! ([`FaultModel::GateLevel`], for the Figure 5 comparison).
//!
//! Each injected defect additionally carries an
//! [`Activation`] lifetime: `Permanent` defects are folded into the
//! gate's schematic (the paper's manufacturing-defect model), while
//! `Transient`/`Intermittent` ones are installed as *dynamic* defects
//! whose presence is decided per evaluation by a seeded
//! [`ActivationState`] — at the transistor level through
//! [`DynamicCell`], at the gate level through a dynamic stuck-at
//! wrapper.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use rand::seq::IndexedRandom;
use rand::Rng;

use dta_logic::gate::GateBehavior;
use dta_logic::{
    LutExec, Netlist, Node, NodeId, Simulator, Simulator64, StuckAt, StuckPort, StuckSet,
};
use dta_transistor::{
    Activation, ActivationState, CachedCell, CellTable, CmosCell, Defect, DynamicCell,
    DynamicDefect, DynamicRefCell, FaultyCell,
};

/// Benchmark hook: when set, [`DefectPlan::apply`] installs the uncached
/// switch-level evaluator and [`DefectPlan::apply64`] always refuses, so
/// every campaign layer above runs exactly the engine the seed shipped
/// with. Process-global because the campaign drivers build their fault
/// plans many layers below the experiment binaries.
static SWITCH_LEVEL_BASELINE: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the seed's uncached switch-level evaluation
/// engine for every subsequently applied [`DefectPlan`] in the process.
///
/// Only meant for benchmarks that measure the truth-table cache against
/// the original engine (`exp_fig10 --baseline`, `benches/campaign.rs`);
/// results are bit-identical either way, only the speed differs.
pub fn force_switch_level_baseline(on: bool) {
    SWITCH_LEVEL_BASELINE.store(on, Ordering::SeqCst);
}

/// True while [`force_switch_level_baseline`] is in effect.
pub fn switch_level_baseline() -> bool {
    SWITCH_LEVEL_BASELINE.load(Ordering::SeqCst)
}

/// Which fault model to inject with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Physical defects (opens, shorts, bridges, delays) inside the CMOS
    /// schematic of the gate, evaluated at the switch level — the
    /// paper's contribution.
    TransistorLevel,
    /// Stuck-at-0/1 on gate inputs/outputs — the abstract baseline the
    /// paper argues is inaccurate.
    GateLevel,
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::TransistorLevel => write!(f, "transistor-level"),
            FaultModel::GateLevel => write!(f, "gate-level"),
        }
    }
}

/// One injected defect, for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefectRecord {
    /// The affected gate instance.
    pub gate: NodeId,
    /// The bit-cell group the gate belongs to.
    pub bit: usize,
    /// Human-readable description of the physical defect (suffixed with
    /// the activation class for non-permanent defects).
    pub description: String,
}

/// The transistor-level fault state of one gate instance: permanent
/// defects folded into the schematic, dynamic ones kept as
/// `(site, lifetime, seed)` descriptions until apply time.
#[derive(Clone, Debug)]
struct TransGate {
    cell: CmosCell,
    dynamic: Vec<(Defect, Activation, u64)>,
}

/// The gate-level fault state of one gate instance: permanent stuck-at
/// faults merged into a [`StuckSet`], dynamic ones applied per
/// evaluation on top.
#[derive(Clone, Debug)]
struct StuckGate {
    set: StuckSet,
    dynamic: Vec<(StuckPort, bool, Activation, u64)>,
}

/// Gate behavior for dynamically activated stuck-at faults: each
/// evaluation advances the per-fault activation machines and overlays
/// the active faults on the permanent [`StuckSet`]. Permanent output
/// faults keep their first-wins precedence over dynamic ones (the plan
/// injects them first).
#[derive(Clone, Debug)]
struct DynamicStuck {
    base: StuckSet,
    dynamic: Vec<(StuckPort, bool, ActivationState)>,
}

impl GateBehavior for DynamicStuck {
    fn eval(&mut self, inputs: &[bool]) -> bool {
        let mut set = self.base.clone();
        for (port, value, state) in &mut self.dynamic {
            if state.advance() {
                set.add(*port, *value);
            }
        }
        set.eval(inputs)
    }

    fn reset(&mut self) {
        for (_, _, state) in &mut self.dynamic {
            state.reset();
        }
    }
}

/// An accumulating set of random defects targeting one circuit, applied
/// to a [`Simulator`] as gate-behavior overrides.
///
/// Multiple defects may land in the same gate; the plan accumulates them
/// into a single faulty-cell model per gate, exactly like multiple
/// physical defects in one cell.
///
/// # Example
///
/// ```
/// use dta_circuits::{AdderCircuit, DefectPlan, FaultModel};
/// use rand::SeedableRng;
///
/// let adder = AdderCircuit::new(4);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
/// for _ in 0..5 {
///     plan.add_random(adder.netlist(), adder.cells(), &mut rng);
/// }
/// assert_eq!(plan.len(), 5);
/// let mut sim = adder.simulator();
/// plan.apply(&mut sim); // subsequent compute() calls see the defects
/// ```
#[derive(Clone, Debug, Default)]
pub struct DefectPlan {
    model: Option<FaultModel>,
    trans_cells: HashMap<NodeId, TransGate>,
    stuck_sets: HashMap<NodeId, StuckGate>,
    records: Vec<DefectRecord>,
}

impl DefectPlan {
    /// Creates an empty plan using the given fault model.
    pub fn new(model: FaultModel) -> DefectPlan {
        DefectPlan {
            model: Some(model),
            ..DefectPlan::default()
        }
    }

    /// The fault model of this plan.
    pub fn model(&self) -> FaultModel {
        self.model.expect("constructed via DefectPlan::new")
    }

    /// Number of injected defects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no defect has been injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// True if any injected defect has a non-permanent lifetime, i.e.
    /// evaluation is stateful and lane-parallel paths must refuse it.
    pub fn has_dynamic(&self) -> bool {
        self.trans_cells.values().any(|g| !g.dynamic.is_empty())
            || self.stuck_sets.values().any(|g| !g.dynamic.is_empty())
    }

    /// Reports of every injected defect, in injection order.
    pub fn records(&self) -> &[DefectRecord] {
        &self.records
    }

    /// Injects one uniformly random **permanent** defect: random
    /// non-empty bit cell → random gate within it → random site within
    /// the gate.
    ///
    /// # Panics
    ///
    /// Panics if `cells` contains no gates, or if a listed id is not a
    /// gate of `net`.
    pub fn add_random<R: Rng + ?Sized>(
        &mut self,
        net: &Netlist,
        cells: &[Vec<NodeId>],
        rng: &mut R,
    ) {
        self.add_random_with(net, cells, Activation::Permanent, rng);
    }

    /// Injects one uniformly random defect with the given lifetime.
    /// For [`Activation::Permanent`] this consumes exactly the same RNG
    /// draws as [`DefectPlan::add_random`]; non-permanent defects draw
    /// one extra `u64` to seed their activation stream.
    ///
    /// # Panics
    ///
    /// Panics if `cells` contains no gates, or if a listed id is not a
    /// gate of `net`.
    pub fn add_random_with<R: Rng + ?Sized>(
        &mut self,
        net: &Netlist,
        cells: &[Vec<NodeId>],
        activation: Activation,
        rng: &mut R,
    ) {
        let nonempty: Vec<&Vec<NodeId>> = cells.iter().filter(|c| !c.is_empty()).collect();
        let group = *nonempty
            .choose(rng)
            .expect("circuit must have at least one bit cell");
        let bit = cells
            .iter()
            .position(|c| std::ptr::eq(c, group))
            .expect("group came from cells");
        let gate = *group.choose(rng).expect("group is non-empty");
        self.add_random_in_gate_with(net, gate, bit, activation, rng);
    }

    /// Injects one random **permanent** defect into a specific gate
    /// instance.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not a gate node of `net`.
    pub fn add_random_in_gate<R: Rng + ?Sized>(
        &mut self,
        net: &Netlist,
        gate: NodeId,
        bit: usize,
        rng: &mut R,
    ) {
        self.add_random_in_gate_with(net, gate, bit, Activation::Permanent, rng);
    }

    /// Injects one random defect with the given lifetime into a
    /// specific gate instance.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not a gate node of `net`.
    pub fn add_random_in_gate_with<R: Rng + ?Sized>(
        &mut self,
        net: &Netlist,
        gate: NodeId,
        bit: usize,
        activation: Activation,
        rng: &mut R,
    ) {
        let kind = match net.node(gate) {
            Node::Gate { kind, .. } => *kind,
            other => panic!("{gate} is not a gate: {other:?}"),
        };
        let description = match self.model() {
            FaultModel::TransistorLevel => {
                let entry = self.trans_cells.entry(gate).or_insert_with(|| TransGate {
                    cell: CmosCell::for_gate(kind),
                    dynamic: Vec::new(),
                });
                let defect = entry.cell.random_defect(rng);
                if activation.is_permanent() {
                    entry.cell.inject(defect).expect("site came from this cell");
                    format!("{kind}: {defect}")
                } else {
                    let seed = rng.random::<u64>();
                    entry.dynamic.push((defect, activation, seed));
                    format!("{kind}: {defect} [{activation}]")
                }
            }
            FaultModel::GateLevel => {
                let sites = StuckAt::sites(kind);
                let &(port, value) = sites.choose(rng).expect("cells have sites");
                let entry = self.stuck_sets.entry(gate).or_insert_with(|| StuckGate {
                    set: StuckSet::new(kind),
                    dynamic: Vec::new(),
                });
                if activation.is_permanent() {
                    entry.set.add(port, value);
                    format!("{kind}: {port:?} stuck at {}", u8::from(value))
                } else {
                    let seed = rng.random::<u64>();
                    entry.dynamic.push((port, value, activation, seed));
                    format!(
                        "{kind}: {port:?} stuck at {} [{activation}]",
                        u8::from(value)
                    )
                }
            }
        };
        self.records.push(DefectRecord {
            gate,
            bit,
            description,
        });
    }

    fn dynamic_defects(gate: &TransGate) -> Vec<DynamicDefect> {
        gate.dynamic
            .iter()
            .map(|&(d, a, s)| DynamicDefect::new(d, a, s))
            .collect()
    }

    /// Installs the accumulated faulty-gate behaviors into a simulator.
    /// Previously installed overrides for other gates are left in place.
    ///
    /// Transistor-level faults evaluate through the memoized truth
    /// tables of [`CachedCell`]: the first plan to see a given
    /// `(kind, defect set)` compiles its table, every later plan in the
    /// process reuses it. Gates carrying dynamic (transient or
    /// intermittent) defects install a [`DynamicCell`] whose tables are
    /// keyed by the currently-active defect subset. Bit-identical to the
    /// switch-level evaluator installed by
    /// [`DefectPlan::apply_switch_level`].
    pub fn apply(&self, sim: &mut Simulator) {
        if switch_level_baseline() {
            return self.apply_switch_level(sim);
        }
        for (&gate, tg) in &self.trans_cells {
            if tg.dynamic.is_empty() {
                sim.override_gate(gate, Box::new(CachedCell::new(&tg.cell)));
            } else {
                let dynamic = DynamicCell::new(tg.cell.clone(), Self::dynamic_defects(tg))
                    .expect("dynamic sites were drawn from this cell");
                sim.override_gate(gate, Box::new(dynamic));
            }
        }
        for (&gate, sg) in &self.stuck_sets {
            sim.override_gate(gate, Self::stuck_behavior(sg));
        }
    }

    /// Installs the faulty-gate behaviors using the uncached
    /// switch-level evaluator ([`FaultyCell`], or [`DynamicRefCell`]
    /// for gates with dynamic defects). Same results as
    /// [`DefectPlan::apply`], minus the truth-table memoization — kept
    /// as the baseline for benchmarks and equivalence tests.
    pub fn apply_switch_level(&self, sim: &mut Simulator) {
        for (&gate, tg) in &self.trans_cells {
            if tg.dynamic.is_empty() {
                sim.override_gate(gate, Box::new(FaultyCell::new(tg.cell.clone())));
            } else {
                let dynamic = DynamicRefCell::new(tg.cell.clone(), Self::dynamic_defects(tg))
                    .expect("dynamic sites were drawn from this cell");
                sim.override_gate(gate, Box::new(dynamic));
            }
        }
        for (&gate, sg) in &self.stuck_sets {
            sim.override_gate(gate, Self::stuck_behavior(sg));
        }
    }

    fn stuck_behavior(sg: &StuckGate) -> Box<dyn GateBehavior> {
        if sg.dynamic.is_empty() {
            Box::new(sg.set.clone())
        } else {
            Box::new(DynamicStuck {
                base: sg.set.clone(),
                dynamic: sg
                    .dynamic
                    .iter()
                    .map(|&(port, value, act, seed)| (port, value, ActivationState::new(act, seed)))
                    .collect(),
            })
        }
    }

    /// Installs this plan into a 64-lane simulator, if every faulty
    /// cell is purely combinational under its defect set (no delay
    /// defect, no reachable memory state) and no defect is dynamic.
    /// Returns `false` — without touching `sim` — when any cell is
    /// stateful, in which case the caller must fall back to the scalar
    /// path; lane-parallel evaluation cannot order the per-lane state
    /// updates of a latching cell, nor the per-evaluation activation
    /// stream of a transient defect.
    pub fn apply64(&self, sim: &mut Simulator64) -> bool {
        if switch_level_baseline() || self.has_dynamic() {
            return false;
        }
        let mut tables = Vec::with_capacity(self.trans_cells.len());
        for (&gate, tg) in &self.trans_cells {
            match CellTable::cached(&tg.cell).truth64() {
                Some(t64) => tables.push((gate, t64)),
                None => return false,
            }
        }
        for (gate, t64) in tables {
            sim.override_gate(gate, Box::new(t64));
        }
        for (&gate, sg) in &self.stuck_sets {
            sim.override_gate(gate, Box::new(sg.set.clone()));
        }
        true
    }

    /// Lowers this plan onto a compiled LUT executor (the
    /// instruction-stream backend). Permanent combinational faults are
    /// *patched into the instruction's truth word* — transistor-level
    /// cells through their memoized [`CellTable::lut_patch`], gate-level
    /// stuck-at sets by collapsing the set over all pin assignments — so
    /// the faulty sweep costs exactly as much as the healthy sweep.
    /// Everything else (cells with reachable memory state or delay
    /// defects, dynamically activated faults) installs a per-lane
    /// behavioral override, which [`LutExec::exec`] evaluates in lane
    /// order for bit-identity with the scalar event-driven engine.
    ///
    /// Returns `true` when every fault lowered to a pure truth-word
    /// patch (the sweep stays fully branchless and word-parallel).
    pub fn apply_lut(&self, ex: &mut LutExec) -> bool {
        let mut fully_patched = true;
        for (&gate, tg) in &self.trans_cells {
            let patch = if tg.dynamic.is_empty() {
                CellTable::cached(&tg.cell).lut_patch()
            } else {
                None
            };
            match patch {
                Some(word) => ex.patch_gate(gate, word),
                None => {
                    fully_patched = false;
                    if tg.dynamic.is_empty() {
                        ex.override_gate(gate, Box::new(CachedCell::new(&tg.cell)));
                    } else {
                        let dynamic = DynamicCell::new(tg.cell.clone(), Self::dynamic_defects(tg))
                            .expect("dynamic sites were drawn from this cell");
                        ex.override_gate(gate, Box::new(dynamic));
                    }
                }
            }
        }
        for (&gate, sg) in &self.stuck_sets {
            if sg.dynamic.is_empty() {
                ex.patch_gate(gate, Self::stuck_table(&sg.set));
            } else {
                fully_patched = false;
                ex.override_gate(gate, Self::stuck_behavior(sg));
            }
        }
        fully_patched
    }

    /// Collapses a permanent stuck-at set into a LUT truth word by
    /// evaluating it over all `2^arity` packed pin assignments (the set
    /// is stateless, so the collapse is exact).
    fn stuck_table(set: &StuckSet) -> u16 {
        let n = set.kind().arity();
        let mut s = set.clone();
        let mut table = 0u16;
        let mut buf = [false; 4];
        for v in 0..1u16 << n {
            for (k, b) in buf.iter_mut().enumerate().take(n) {
                *b = (v >> k) & 1 == 1;
            }
            if s.eval(&buf[..n]) {
                table |= 1 << v;
            }
        }
        table
    }

    /// Removes this plan's overrides from a simulator (restoring the
    /// healthy circuit).
    pub fn remove(&self, sim: &mut Simulator) {
        for &gate in self.trans_cells.keys().chain(self.stuck_sets.keys()) {
            sim.clear_override(gate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AdderCircuit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn transistor_plan_accumulates_and_applies() {
        let adder = AdderCircuit::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
        for _ in 0..20 {
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        }
        assert_eq!(plan.len(), 20);
        assert_eq!(plan.model(), FaultModel::TransistorLevel);
        assert!(!plan.is_empty());
        assert!(!plan.has_dynamic());
        let mut sim = adder.simulator();
        plan.apply(&mut sim);
        assert!(sim.override_count() > 0);
        assert!(sim.override_count() <= 20);
        // The circuit still produces *some* 4-bit outputs.
        let (s, _) = adder.compute(&mut sim, 3, 5);
        assert!(s < 16);
        // Removing the plan restores exact arithmetic.
        plan.remove(&mut sim);
        assert_eq!(sim.override_count(), 0);
        assert_eq!(adder.compute(&mut sim, 3, 5), (8, false));
    }

    #[test]
    fn gate_plan_uses_stuck_model() {
        let adder = AdderCircuit::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut plan = DefectPlan::new(FaultModel::GateLevel);
        plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        assert_eq!(plan.len(), 1);
        assert!(plan.records()[0].description.contains("stuck at"));
        let mut sim = adder.simulator();
        plan.apply(&mut sim);
        assert_eq!(sim.override_count(), 1);
    }

    #[test]
    fn records_identify_bit_cells() {
        let adder = AdderCircuit::new(8);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
        for _ in 0..50 {
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        }
        for rec in plan.records() {
            assert!(rec.bit < 8);
            assert!(adder.cells()[rec.bit].contains(&rec.gate));
        }
        // With 50 draws over 8 bits, several distinct bits are hit.
        let distinct: std::collections::HashSet<usize> =
            plan.records().iter().map(|r| r.bit).collect();
        assert!(distinct.len() >= 4);
    }

    #[test]
    fn cached_apply_matches_switch_level_apply() {
        // The memoized truth tables installed by `apply` must reproduce
        // the uncached switch-level evaluator exactly, including state
        // carried across calls, over many random plans.
        let adder = AdderCircuit::new(4);
        for seed in 0..12 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            for _ in 0..4 {
                plan.add_random(adder.netlist(), adder.cells(), &mut rng);
            }
            let mut cached = adder.simulator();
            plan.apply(&mut cached);
            let mut switch = adder.simulator();
            plan.apply_switch_level(&mut switch);
            for a in 0..16u64 {
                for b in 0..16u64 {
                    assert_eq!(
                        adder.compute(&mut cached, a, b),
                        adder.compute(&mut switch, a, b),
                        "seed {seed}: diverged at {a}+{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_apply_matches_switch_level_apply() {
        // Same equivalence under transient and intermittent lifetimes:
        // the table-backed DynamicCell and the uncached DynamicRefCell
        // see identical seeded activation streams, so whole-circuit
        // outputs must stay bit-identical call by call.
        let adder = AdderCircuit::new(4);
        for (seed, activation) in [
            (
                0u64,
                Activation::Transient {
                    per_eval_probability: 0.3,
                },
            ),
            (1, Activation::Intermittent { period: 5, duty: 2 }),
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            for i in 0..4 {
                // Mix permanent and dynamic defects in one plan.
                let act = if i % 2 == 0 {
                    activation
                } else {
                    Activation::Permanent
                };
                plan.add_random_with(adder.netlist(), adder.cells(), act, &mut rng);
            }
            assert!(plan.has_dynamic());
            let mut cached = adder.simulator();
            plan.apply(&mut cached);
            let mut switch = adder.simulator();
            plan.apply_switch_level(&mut switch);
            for a in 0..16u64 {
                for b in 0..16u64 {
                    assert_eq!(
                        adder.compute(&mut cached, a, b),
                        adder.compute(&mut switch, a, b),
                        "{activation}: diverged at {a}+{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_records_name_the_activation() {
        let adder = AdderCircuit::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
        plan.add_random_with(
            adder.netlist(),
            adder.cells(),
            Activation::Transient {
                per_eval_probability: 0.1,
            },
            &mut rng,
        );
        assert!(plan.records()[0].description.contains("transient(p=0.1)"));
        let mut gate_plan = DefectPlan::new(FaultModel::GateLevel);
        gate_plan.add_random_with(
            adder.netlist(),
            adder.cells(),
            Activation::Intermittent { period: 8, duty: 3 },
            &mut rng,
        );
        assert!(gate_plan.records()[0]
            .description
            .contains("intermittent(3/8)"));
        // Dynamic gate-level plans install and evaluate.
        let mut sim = adder.simulator();
        gate_plan.apply(&mut sim);
        assert_eq!(sim.override_count(), 1);
        let (s, _) = adder.compute(&mut sim, 2, 2);
        assert!(s < 16);
    }

    #[test]
    fn permanent_activation_is_rng_compatible_with_add_random() {
        // `add_random_with(Permanent)` must consume the same RNG draws
        // and produce the same plan as the original `add_random`.
        let adder = AdderCircuit::new(4);
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = a.clone();
        let mut plain = DefectPlan::new(FaultModel::TransistorLevel);
        let mut with = DefectPlan::new(FaultModel::TransistorLevel);
        for _ in 0..10 {
            plain.add_random(adder.netlist(), adder.cells(), &mut a);
            with.add_random_with(
                adder.netlist(),
                adder.cells(),
                Activation::Permanent,
                &mut b,
            );
        }
        assert_eq!(plain.records(), with.records());
        assert_eq!(a.random::<u64>(), b.random::<u64>(), "RNG streams aligned");
    }

    #[test]
    fn apply64_rejects_stateful_plans_and_accepts_combinational() {
        use std::sync::Arc;
        let adder = AdderCircuit::new(4);
        let (mut combinational, mut stateful) = (0, 0);
        for seed in 0..30 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            for _ in 0..3 {
                plan.add_random(adder.netlist(), adder.cells(), &mut rng);
            }
            let mut sim64 = Simulator64::new(Arc::clone(adder.netlist()));
            if plan.apply64(&mut sim64) {
                combinational += 1;
            } else {
                stateful += 1;
                assert_eq!(sim64.override_count(), 0, "must not touch sim on refusal");
            }
        }
        assert!(combinational > 0, "no combinational plan in 30 seeds");
        assert!(stateful > 0, "no stateful plan in 30 seeds");
    }

    #[test]
    fn apply64_always_refuses_dynamic_plans() {
        use std::sync::Arc;
        let adder = AdderCircuit::new(4);
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            plan.add_random_with(
                adder.netlist(),
                adder.cells(),
                Activation::Transient {
                    per_eval_probability: 0.5,
                },
                &mut rng,
            );
            let mut sim64 = Simulator64::new(Arc::clone(adder.netlist()));
            assert!(!plan.apply64(&mut sim64), "dynamic plans cannot vectorize");
            assert_eq!(sim64.override_count(), 0);
        }
    }

    #[test]
    fn apply_lut_matches_scalar_apply() {
        // Lowering a permanent plan onto the LUT instruction stream —
        // truth-word patches for combinational cells, per-lane stateful
        // overrides otherwise — must stay bit-identical to the scalar
        // simulator over a whole batch.
        use crate::multiplier::FxMulCircuit;
        use dta_fixed::Fx;
        let mul = FxMulCircuit::new();
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            for _ in 0..3 {
                plan.add_random(mul.netlist(), mul.cells(), &mut rng);
            }
            let mut sim = mul.simulator();
            plan.apply(&mut sim);
            let mut ex = mul.lut_exec();
            let fully = plan.apply_lut(&mut ex);
            assert_eq!(fully, ex.fully_patched());
            let mut data = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
            let a: Vec<Fx> = (0..100).map(|_| Fx::from_bits(data.random())).collect();
            let b: Vec<Fx> = (0..100).map(|_| Fx::from_bits(data.random())).collect();
            let want: Vec<Fx> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| mul.compute(&mut sim, x, y))
                .collect();
            let got = mul.compute_lut(&mut ex, &a, &b);
            assert_eq!(got, want, "seed {seed}: LUT diverged from scalar");
        }
    }

    #[test]
    fn apply_lut_matches_scalar_apply_dynamic() {
        // Transient and intermittent defects become per-lane overrides;
        // lanes advance the seeded activation streams in lane order, so
        // a batch must equal the same inputs fed one by one to the
        // scalar simulator.
        use crate::multiplier::FxMulCircuit;
        use dta_fixed::Fx;
        let mul = FxMulCircuit::new();
        for (seed, activation) in [
            (
                11u64,
                Activation::Transient {
                    per_eval_probability: 0.3,
                },
            ),
            (12, Activation::Intermittent { period: 5, duty: 2 }),
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            for i in 0..3 {
                let act = if i % 2 == 0 {
                    activation
                } else {
                    Activation::Permanent
                };
                plan.add_random_with(mul.netlist(), mul.cells(), act, &mut rng);
            }
            assert!(plan.has_dynamic());
            let mut sim = mul.simulator();
            plan.apply(&mut sim);
            let mut ex = mul.lut_exec();
            assert!(!plan.apply_lut(&mut ex), "dynamic plans cannot fully patch");
            assert!(ex.override_count() > 0);
            let mut data = ChaCha8Rng::seed_from_u64(seed ^ 0xF00D);
            let a: Vec<Fx> = (0..100).map(|_| Fx::from_bits(data.random())).collect();
            let b: Vec<Fx> = (0..100).map(|_| Fx::from_bits(data.random())).collect();
            let want: Vec<Fx> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| mul.compute(&mut sim, x, y))
                .collect();
            let got = mul.compute_lut(&mut ex, &a, &b);
            assert_eq!(got, want, "{activation}: LUT diverged from scalar");
        }
    }

    #[test]
    fn apply_lut_patches_permanent_stuck_faults() {
        // Gate-level stuck faults collapse to plain truth-word patches:
        // no overrides, full-speed execution, same outputs as scalar.
        use crate::multiplier::FxMulCircuit;
        use dta_fixed::Fx;
        let mul = FxMulCircuit::new();
        for seed in 20..26u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::GateLevel);
            for _ in 0..2 {
                plan.add_random(mul.netlist(), mul.cells(), &mut rng);
            }
            let mut sim = mul.simulator();
            plan.apply(&mut sim);
            let mut ex = mul.lut_exec();
            assert!(plan.apply_lut(&mut ex), "permanent stuck plans fully patch");
            assert_eq!(ex.override_count(), 0);
            assert!(ex.patched_count() > 0);
            let mut data = ChaCha8Rng::seed_from_u64(seed ^ 0xBEEF);
            let a: Vec<Fx> = (0..80).map(|_| Fx::from_bits(data.random())).collect();
            let b: Vec<Fx> = (0..80).map(|_| Fx::from_bits(data.random())).collect();
            let want: Vec<Fx> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| mul.compute(&mut sim, x, y))
                .collect();
            let got = mul.compute_lut(&mut ex, &a, &b);
            assert_eq!(got, want, "seed {seed}: stuck patch diverged from scalar");
        }
    }

    #[test]
    fn single_defect_changes_some_output() {
        // At least one of a handful of seeds must corrupt an output
        // somewhere in the truth table (sanity: injection does something).
        let adder = AdderCircuit::new(4);
        let mut any_changed = false;
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
            let mut sim = adder.simulator();
            plan.apply(&mut sim);
            for a in 0..16u64 {
                for b in 0..16u64 {
                    let (s, c) = adder.compute(&mut sim, a, b);
                    let got = s | (u64::from(c) << 4);
                    if got != a + b {
                        any_changed = true;
                    }
                }
            }
        }
        assert!(any_changed, "five random defects all invisible is a bug");
    }
}
