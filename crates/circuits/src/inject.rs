//! Random defect placement into operator circuits.
//!
//! The paper's §VI-C procedure: "we randomly pick one of the logic
//! operators or latches ... and one 1-bit operator or wire within the
//! target operator"; defects are "randomly spread over the operator bits,
//! and within each 1-bit operation, over all transistors". A
//! [`DefectPlan`] reproduces this: it first draws a uniformly random
//! *bit cell* of the circuit, then a gate within that cell, then a
//! defect site inside that gate — at the transistor level
//! ([`FaultModel::TransistorLevel`]) or with the stuck-at baseline
//! ([`FaultModel::GateLevel`], for the Figure 5 comparison).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use rand::seq::IndexedRandom;
use rand::Rng;

use dta_logic::{Netlist, Node, NodeId, Simulator, Simulator64, StuckAt, StuckSet};
use dta_transistor::{CachedCell, CellTable, CmosCell, FaultyCell};

/// Benchmark hook: when set, [`DefectPlan::apply`] installs the uncached
/// switch-level evaluator and [`DefectPlan::apply64`] always refuses, so
/// every campaign layer above runs exactly the engine the seed shipped
/// with. Process-global because the campaign drivers build their fault
/// plans many layers below the experiment binaries.
static SWITCH_LEVEL_BASELINE: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the seed's uncached switch-level evaluation
/// engine for every subsequently applied [`DefectPlan`] in the process.
///
/// Only meant for benchmarks that measure the truth-table cache against
/// the original engine (`exp_fig10 --baseline`, `benches/campaign.rs`);
/// results are bit-identical either way, only the speed differs.
pub fn force_switch_level_baseline(on: bool) {
    SWITCH_LEVEL_BASELINE.store(on, Ordering::SeqCst);
}

/// True while [`force_switch_level_baseline`] is in effect.
pub fn switch_level_baseline() -> bool {
    SWITCH_LEVEL_BASELINE.load(Ordering::SeqCst)
}

/// Which fault model to inject with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Physical defects (opens, shorts, bridges, delays) inside the CMOS
    /// schematic of the gate, evaluated at the switch level — the
    /// paper's contribution.
    TransistorLevel,
    /// Stuck-at-0/1 on gate inputs/outputs — the abstract baseline the
    /// paper argues is inaccurate.
    GateLevel,
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::TransistorLevel => write!(f, "transistor-level"),
            FaultModel::GateLevel => write!(f, "gate-level"),
        }
    }
}

/// One injected defect, for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefectRecord {
    /// The affected gate instance.
    pub gate: NodeId,
    /// The bit-cell group the gate belongs to.
    pub bit: usize,
    /// Human-readable description of the physical defect.
    pub description: String,
}

/// An accumulating set of random defects targeting one circuit, applied
/// to a [`Simulator`] as gate-behavior overrides.
///
/// Multiple defects may land in the same gate; the plan accumulates them
/// into a single faulty-cell model per gate, exactly like multiple
/// physical defects in one cell.
///
/// # Example
///
/// ```
/// use dta_circuits::{AdderCircuit, DefectPlan, FaultModel};
/// use rand::SeedableRng;
///
/// let adder = AdderCircuit::new(4);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
/// for _ in 0..5 {
///     plan.add_random(adder.netlist(), adder.cells(), &mut rng);
/// }
/// assert_eq!(plan.len(), 5);
/// let mut sim = adder.simulator();
/// plan.apply(&mut sim); // subsequent compute() calls see the defects
/// ```
#[derive(Clone, Debug, Default)]
pub struct DefectPlan {
    model: Option<FaultModel>,
    trans_cells: HashMap<NodeId, CmosCell>,
    stuck_sets: HashMap<NodeId, StuckSet>,
    records: Vec<DefectRecord>,
}

impl DefectPlan {
    /// Creates an empty plan using the given fault model.
    pub fn new(model: FaultModel) -> DefectPlan {
        DefectPlan {
            model: Some(model),
            ..DefectPlan::default()
        }
    }

    /// The fault model of this plan.
    pub fn model(&self) -> FaultModel {
        self.model.expect("constructed via DefectPlan::new")
    }

    /// Number of injected defects.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no defect has been injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reports of every injected defect, in injection order.
    pub fn records(&self) -> &[DefectRecord] {
        &self.records
    }

    /// Injects one uniformly random defect: random non-empty bit cell →
    /// random gate within it → random site within the gate.
    ///
    /// # Panics
    ///
    /// Panics if `cells` contains no gates, or if a listed id is not a
    /// gate of `net`.
    pub fn add_random<R: Rng + ?Sized>(
        &mut self,
        net: &Netlist,
        cells: &[Vec<NodeId>],
        rng: &mut R,
    ) {
        let nonempty: Vec<&Vec<NodeId>> = cells.iter().filter(|c| !c.is_empty()).collect();
        let group = *nonempty
            .choose(rng)
            .expect("circuit must have at least one bit cell");
        let bit = cells
            .iter()
            .position(|c| std::ptr::eq(c, group))
            .expect("group came from cells");
        let gate = *group.choose(rng).expect("group is non-empty");
        self.add_random_in_gate(net, gate, bit, rng);
    }

    /// Injects one random defect into a specific gate instance.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not a gate node of `net`.
    pub fn add_random_in_gate<R: Rng + ?Sized>(
        &mut self,
        net: &Netlist,
        gate: NodeId,
        bit: usize,
        rng: &mut R,
    ) {
        let kind = match net.node(gate) {
            Node::Gate { kind, .. } => *kind,
            other => panic!("{gate} is not a gate: {other:?}"),
        };
        let description = match self.model() {
            FaultModel::TransistorLevel => {
                let cell = self
                    .trans_cells
                    .entry(gate)
                    .or_insert_with(|| CmosCell::for_gate(kind));
                let defect = cell.random_defect(rng);
                cell.inject(defect).expect("site came from this cell");
                format!("{kind}: {defect}")
            }
            FaultModel::GateLevel => {
                let sites = StuckAt::sites(kind);
                let &(port, value) = sites.choose(rng).expect("cells have sites");
                self.stuck_sets
                    .entry(gate)
                    .or_insert_with(|| StuckSet::new(kind))
                    .add(port, value);
                format!("{kind}: {port:?} stuck at {}", u8::from(value))
            }
        };
        self.records.push(DefectRecord {
            gate,
            bit,
            description,
        });
    }

    /// Installs the accumulated faulty-gate behaviors into a simulator.
    /// Previously installed overrides for other gates are left in place.
    ///
    /// Transistor-level faults evaluate through the memoized truth
    /// tables of [`CachedCell`]: the first plan to see a given
    /// `(kind, defect set)` compiles its table, every later plan in the
    /// process reuses it. Bit-identical to the switch-level evaluator
    /// installed by [`DefectPlan::apply_switch_level`].
    pub fn apply(&self, sim: &mut Simulator) {
        if switch_level_baseline() {
            return self.apply_switch_level(sim);
        }
        for (&gate, cell) in &self.trans_cells {
            sim.override_gate(gate, Box::new(CachedCell::new(cell)));
        }
        for (&gate, set) in &self.stuck_sets {
            sim.override_gate(gate, Box::new(set.clone()));
        }
    }

    /// Installs the faulty-gate behaviors using the uncached
    /// switch-level evaluator ([`FaultyCell`]). Same results as
    /// [`DefectPlan::apply`], minus the truth-table memoization — kept
    /// as the baseline for benchmarks and equivalence tests.
    pub fn apply_switch_level(&self, sim: &mut Simulator) {
        for (&gate, cell) in &self.trans_cells {
            sim.override_gate(gate, Box::new(FaultyCell::new(cell.clone())));
        }
        for (&gate, set) in &self.stuck_sets {
            sim.override_gate(gate, Box::new(set.clone()));
        }
    }

    /// Installs this plan into a 64-lane simulator, if every faulty
    /// cell is purely combinational under its defect set (no delay
    /// defect, no reachable memory state). Returns `false` — without
    /// touching `sim` — when any cell is stateful, in which case the
    /// caller must fall back to the scalar path; lane-parallel
    /// evaluation cannot order the per-lane state updates of a latching
    /// cell.
    pub fn apply64(&self, sim: &mut Simulator64) -> bool {
        if switch_level_baseline() {
            return false;
        }
        let mut tables = Vec::with_capacity(self.trans_cells.len());
        for (&gate, cell) in &self.trans_cells {
            match CellTable::cached(cell).truth64() {
                Some(t64) => tables.push((gate, t64)),
                None => return false,
            }
        }
        for (gate, t64) in tables {
            sim.override_gate(gate, Box::new(t64));
        }
        for (&gate, set) in &self.stuck_sets {
            sim.override_gate(gate, Box::new(set.clone()));
        }
        true
    }

    /// Removes this plan's overrides from a simulator (restoring the
    /// healthy circuit).
    pub fn remove(&self, sim: &mut Simulator) {
        for &gate in self.trans_cells.keys().chain(self.stuck_sets.keys()) {
            sim.clear_override(gate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AdderCircuit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn transistor_plan_accumulates_and_applies() {
        let adder = AdderCircuit::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
        for _ in 0..20 {
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        }
        assert_eq!(plan.len(), 20);
        assert_eq!(plan.model(), FaultModel::TransistorLevel);
        assert!(!plan.is_empty());
        let mut sim = adder.simulator();
        plan.apply(&mut sim);
        assert!(sim.override_count() > 0);
        assert!(sim.override_count() <= 20);
        // The circuit still produces *some* 4-bit outputs.
        let (s, _) = adder.compute(&mut sim, 3, 5);
        assert!(s < 16);
        // Removing the plan restores exact arithmetic.
        plan.remove(&mut sim);
        assert_eq!(sim.override_count(), 0);
        assert_eq!(adder.compute(&mut sim, 3, 5), (8, false));
    }

    #[test]
    fn gate_plan_uses_stuck_model() {
        let adder = AdderCircuit::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut plan = DefectPlan::new(FaultModel::GateLevel);
        plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        assert_eq!(plan.len(), 1);
        assert!(plan.records()[0].description.contains("stuck at"));
        let mut sim = adder.simulator();
        plan.apply(&mut sim);
        assert_eq!(sim.override_count(), 1);
    }

    #[test]
    fn records_identify_bit_cells() {
        let adder = AdderCircuit::new(8);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
        for _ in 0..50 {
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
        }
        for rec in plan.records() {
            assert!(rec.bit < 8);
            assert!(adder.cells()[rec.bit].contains(&rec.gate));
        }
        // With 50 draws over 8 bits, several distinct bits are hit.
        let distinct: std::collections::HashSet<usize> =
            plan.records().iter().map(|r| r.bit).collect();
        assert!(distinct.len() >= 4);
    }

    #[test]
    fn cached_apply_matches_switch_level_apply() {
        // The memoized truth tables installed by `apply` must reproduce
        // the uncached switch-level evaluator exactly, including state
        // carried across calls, over many random plans.
        let adder = AdderCircuit::new(4);
        for seed in 0..12 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            for _ in 0..4 {
                plan.add_random(adder.netlist(), adder.cells(), &mut rng);
            }
            let mut cached = adder.simulator();
            plan.apply(&mut cached);
            let mut switch = adder.simulator();
            plan.apply_switch_level(&mut switch);
            for a in 0..16u64 {
                for b in 0..16u64 {
                    assert_eq!(
                        adder.compute(&mut cached, a, b),
                        adder.compute(&mut switch, a, b),
                        "seed {seed}: diverged at {a}+{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn apply64_rejects_stateful_plans_and_accepts_combinational() {
        use std::sync::Arc;
        let adder = AdderCircuit::new(4);
        let (mut combinational, mut stateful) = (0, 0);
        for seed in 0..30 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            for _ in 0..3 {
                plan.add_random(adder.netlist(), adder.cells(), &mut rng);
            }
            let mut sim64 = Simulator64::new(Arc::clone(adder.netlist()));
            if plan.apply64(&mut sim64) {
                combinational += 1;
            } else {
                stateful += 1;
                assert_eq!(sim64.override_count(), 0, "must not touch sim on refusal");
            }
        }
        assert!(combinational > 0, "no combinational plan in 30 seeds");
        assert!(stateful > 0, "no stateful plan in 30 seeds");
    }

    #[test]
    fn single_defect_changes_some_output() {
        // At least one of a handful of seeds must corrupt an output
        // somewhere in the truth table (sanity: injection does something).
        let adder = AdderCircuit::new(4);
        let mut any_changed = false;
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            plan.add_random(adder.netlist(), adder.cells(), &mut rng);
            let mut sim = adder.simulator();
            plan.apply(&mut sim);
            for a in 0..16u64 {
                for b in 0..16u64 {
                    let (s, c) = adder.compute(&mut sim, a, b);
                    let got = s | (u64::from(c) << 4);
                    if got != a + b {
                        any_changed = true;
                    }
                }
            }
        }
        assert!(any_changed, "five random defects all invisible is a bug");
    }
}
