//! Ripple-carry adders: wrapping and Q6.10-saturating variants.

use std::sync::Arc;

use dta_fixed::Fx;
use dta_logic::{
    GateKind, LutExec, LutProgram, Netlist, NetlistBuilder, NodeId, Simulator, Simulator64,
};

/// Builds one full-adder bit cell and returns `(sum, cout, gates)`.
///
/// Structure: `sum = (a ^ b) ^ cin`, `cout = (a^b)·cin + a·b` — five
/// standard cells, all of which are transistor-level defect sites.
pub(crate) fn full_adder(
    b: &mut NetlistBuilder,
    a: NodeId,
    x: NodeId,
    cin: NodeId,
) -> (NodeId, NodeId, Vec<NodeId>) {
    let axb = b.gate(GateKind::Xor2, &[a, x]);
    let sum = b.gate(GateKind::Xor2, &[axb, cin]);
    let t1 = b.gate(GateKind::And2, &[axb, cin]);
    let t2 = b.gate(GateKind::And2, &[a, x]);
    let cout = b.gate(GateKind::Or2, &[t1, t2]);
    (sum, cout, vec![axb, sum, t1, t2, cout])
}

/// A W-bit ripple-carry adder with carry-in and carry-out (two's
/// complement wrapping semantics).
///
/// Gate instances are grouped per bit position ([`AdderCircuit::cells`])
/// so defect injection can pick a random *operator bit* first, as the
/// paper does.
///
/// # Example
///
/// ```
/// use dta_circuits::AdderCircuit;
/// let adder = AdderCircuit::new(4);
/// let mut sim = adder.simulator();
/// // 4-bit: 9 + 8 = 17 = 16 (carry out) + 1
/// assert_eq!(adder.compute(&mut sim, 9, 8), (1, true));
/// ```
#[derive(Clone, Debug)]
pub struct AdderCircuit {
    net: Arc<Netlist>,
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    cin: NodeId,
    sum: Vec<NodeId>,
    cout: NodeId,
    cells: Vec<Vec<NodeId>>,
    width: usize,
}

impl AdderCircuit {
    /// Builds a W-bit adder.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32.
    pub fn new(width: usize) -> AdderCircuit {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        let mut b = NetlistBuilder::new();
        let a_bus = b.input_bus("a", width);
        let b_bus = b.input_bus("b", width);
        let cin = b.input("cin");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(width);
        let mut cells = Vec::with_capacity(width);
        for i in 0..width {
            let (s, c, gates) = full_adder(&mut b, a_bus[i], b_bus[i], carry);
            sum.push(s);
            carry = c;
            cells.push(gates);
        }
        b.output_bus("sum", &sum);
        b.output("cout", carry);
        AdderCircuit {
            net: Arc::new(b.build()),
            a: a_bus,
            b: b_bus,
            cin,
            sum,
            cout: carry,
            cells,
            width,
        }
    }

    /// Word width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The underlying netlist (shared).
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// Gate instances grouped by bit position, for defect-site selection.
    pub fn cells(&self) -> &[Vec<NodeId>] {
        &self.cells
    }

    /// Creates a fresh simulator for this circuit.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(Arc::clone(&self.net))
    }

    /// Computes `a + b` (no carry-in) through `sim`, returning the W-bit
    /// wrapped sum and the carry-out. Faults injected into `sim` apply.
    pub fn compute(&self, sim: &mut Simulator, a: u64, b: u64) -> (u64, bool) {
        self.compute_with_carry(sim, a, b, false)
    }

    /// Computes `a + b + cin`.
    pub fn compute_with_carry(
        &self,
        sim: &mut Simulator,
        a: u64,
        b: u64,
        cin: bool,
    ) -> (u64, bool) {
        sim.set_input_word(&self.a, a);
        sim.set_input_word(&self.b, b);
        sim.set_input(self.cin, cin);
        sim.settle();
        (sim.read_word(&self.sum), sim.value(self.cout))
    }
}

/// The accelerator's 16-bit saturating adder: a ripple-carry core plus
/// two's-complement overflow detection and clamp muxes, bit-exact with
/// `Fx + Fx`.
///
/// Overflow occurs when both operands share a sign that differs from the
/// sum's sign; the output is then forced to `Fx::MAX` / `Fx::MIN`.
///
/// # Example
///
/// ```
/// use dta_circuits::SatAdderCircuit;
/// use dta_fixed::Fx;
/// let adder = SatAdderCircuit::new();
/// let mut sim = adder.simulator();
/// let (a, b) = (Fx::from_f64(30.0), Fx::from_f64(5.0));
/// assert_eq!(adder.compute(&mut sim, a, b), Fx::MAX);
/// ```
#[derive(Clone, Debug)]
pub struct SatAdderCircuit {
    net: Arc<Netlist>,
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    out: Vec<NodeId>,
    cells: Vec<Vec<NodeId>>,
}

/// Word width of the accelerator datapath.
pub(crate) const W: usize = 16;

impl SatAdderCircuit {
    /// Builds the 16-bit saturating adder.
    pub fn new() -> SatAdderCircuit {
        let mut b = NetlistBuilder::new();
        let a_bus = b.input_bus("a", W);
        let b_bus = b.input_bus("b", W);
        let zero = b.constant(false);
        let mut carry = zero;
        let mut sum = Vec::with_capacity(W);
        let mut cells = Vec::with_capacity(W + 1);
        for i in 0..W {
            let (s, c, gates) = full_adder(&mut b, a_bus[i], b_bus[i], carry);
            sum.push(s);
            carry = c;
            cells.push(gates);
        }
        // Overflow: signs equal and sum sign differs from operand sign.
        let msb = W - 1;
        let same_sign = b.gate(GateKind::Xnor2, &[a_bus[msb], b_bus[msb]]);
        let sign_flip = b.gate(GateKind::Xor2, &[sum[msb], a_bus[msb]]);
        let ovf = b.gate(GateKind::And2, &[same_sign, sign_flip]);
        // Saturated word: sign ? MIN (0x8000) : MAX (0x7FFF).
        // Bit 15 of the clamp is the operand sign; bits 0..14 its inverse.
        let not_sign = b.gate(GateKind::Not, &[a_bus[msb]]);
        let mut ovf_cells = vec![same_sign, sign_flip, ovf, not_sign];
        let mut out = Vec::with_capacity(W);
        for (i, &s) in sum.iter().enumerate() {
            let clamp_bit = if i == msb { a_bus[msb] } else { not_sign };
            let o = b.gate(GateKind::Mux2, &[ovf, s, clamp_bit]);
            ovf_cells.push(o);
            out.push(o);
        }
        cells.push(ovf_cells);
        b.output_bus("out", &out);
        SatAdderCircuit {
            net: Arc::new(b.build()),
            a: a_bus,
            b: b_bus,
            out,
            cells,
        }
    }

    /// The underlying netlist (shared).
    pub fn netlist(&self) -> &Arc<Netlist> {
        &self.net
    }

    /// Gate instances grouped by bit position; the final group holds the
    /// overflow/clamp logic.
    pub fn cells(&self) -> &[Vec<NodeId>] {
        &self.cells
    }

    /// Creates a fresh simulator for this circuit.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(Arc::clone(&self.net))
    }

    /// Computes the saturating sum through `sim`; faults injected into
    /// `sim` apply.
    pub fn compute(&self, sim: &mut Simulator, a: Fx, b: Fx) -> Fx {
        sim.set_input_word(&self.a, a.to_bits() as u64);
        sim.set_input_word(&self.b, b.to_bits() as u64);
        sim.settle();
        Fx::from_bits(sim.read_word(&self.out) as u16)
    }

    /// Creates a fresh 64-lane simulator for this circuit.
    pub fn simulator64(&self) -> Simulator64 {
        Simulator64::new(Arc::clone(&self.net))
    }

    /// Computes a whole batch of saturating sums, 64 lanes per settle.
    /// Only valid with combinational overrides (see
    /// [`crate::DefectPlan::apply64`]); results are then identical to
    /// repeated [`SatAdderCircuit::compute`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in length.
    pub fn compute64(&self, sim: &mut Simulator64, a: &[Fx], b: &[Fx]) -> Vec<Fx> {
        assert_eq!(a.len(), b.len(), "operand batches must match");
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            let wa: Vec<u64> = ca.iter().map(|v| v.to_bits() as u64).collect();
            let wb: Vec<u64> = cb.iter().map(|v| v.to_bits() as u64).collect();
            sim.set_input_words(&self.a, &wa);
            sim.set_input_words(&self.b, &wb);
            sim.settle();
            out.extend(
                (0..ca.len()).map(|l| Fx::from_bits(sim.read_word_lane(&self.out, l) as u16)),
            );
        }
        out
    }

    /// The LSB-first `a` operand input bus.
    pub fn a_bus(&self) -> &[NodeId] {
        &self.a
    }

    /// The LSB-first `b` operand input bus.
    pub fn b_bus(&self) -> &[NodeId] {
        &self.b
    }

    /// The LSB-first sum output bus.
    pub fn out_bus(&self) -> &[NodeId] {
        &self.out
    }

    /// Creates a fresh LUT instruction-stream executor for this circuit,
    /// compiling (or reusing the process-wide memoized compilation of)
    /// its netlist — see [`dta_logic::LutProgram::cached`].
    pub fn lut_exec(&self) -> LutExec {
        LutExec::new(LutProgram::cached(&self.net))
    }

    /// Computes a whole batch of saturating sums through the compiled
    /// LUT instruction stream — see [`crate::FxMulCircuit::compute_lut`].
    /// Identical to repeated [`SatAdderCircuit::compute`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in length.
    pub fn compute_lut(&self, ex: &mut LutExec, a: &[Fx], b: &[Fx]) -> Vec<Fx> {
        assert_eq!(a.len(), b.len(), "operand batches must match");
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            let wa: Vec<u64> = ca.iter().map(|v| v.to_bits() as u64).collect();
            let wb: Vec<u64> = cb.iter().map(|v| v.to_bits() as u64).collect();
            ex.set_active_lanes(ca.len());
            ex.set_input_words(&self.a, &wa);
            ex.set_input_words(&self.b, &wb);
            ex.exec();
            out.extend(
                (0..ca.len()).map(|l| Fx::from_bits(ex.read_word_lane(&self.out, l) as u16)),
            );
        }
        out
    }

    /// Differential batch evaluation for *stateful* fault sets — see
    /// [`crate::FxMulCircuit::compute_cone`]. Identical to mapping
    /// [`SatAdderCircuit::compute`] over the pairs.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` differ in length, or `sim` has no cone plan.
    pub fn compute_cone(
        &self,
        sim: &mut Simulator,
        healthy: &mut Simulator64,
        a: &[Fx],
        b: &[Fx],
    ) -> Vec<Fx> {
        assert_eq!(a.len(), b.len(), "operand batches must match");
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks(64).zip(b.chunks(64)) {
            let wa: Vec<u64> = ca.iter().map(|v| v.to_bits() as u64).collect();
            let wb: Vec<u64> = cb.iter().map(|v| v.to_bits() as u64).collect();
            healthy.set_input_words(&self.a, &wa);
            healthy.set_input_words(&self.b, &wb);
            healthy.settle();
            sim.settle_cone_from64(healthy, ca.len());
            for l in 0..ca.len() {
                out.push(Fx::from_bits(
                    sim.read_word_cone(healthy, l, &self.out) as u16
                ));
            }
        }
        out
    }
}

impl Default for SatAdderCircuit {
    fn default() -> SatAdderCircuit {
        SatAdderCircuit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_exhaustive() {
        let adder = AdderCircuit::new(4);
        let mut sim = adder.simulator();
        for a in 0u64..16 {
            for b in 0u64..16 {
                let (s, c) = adder.compute(&mut sim, a, b);
                assert_eq!(s, (a + b) & 0xF, "{a}+{b}");
                assert_eq!(c, a + b > 15, "{a}+{b} carry");
            }
        }
    }

    #[test]
    fn carry_in_counts() {
        let adder = AdderCircuit::new(8);
        let mut sim = adder.simulator();
        assert_eq!(
            adder.compute_with_carry(&mut sim, 100, 27, true),
            (128, false)
        );
    }

    #[test]
    fn sixteen_bit_wraps_like_twos_complement() {
        let adder = AdderCircuit::new(16);
        let mut sim = adder.simulator();
        for (a, b) in [(0x7FFFu64, 1u64), (0xFFFF, 1), (0x8000, 0x8000)] {
            let (s, _) = adder.compute(&mut sim, a, b);
            assert_eq!(s, (a + b) & 0xFFFF);
        }
    }

    #[test]
    fn cell_grouping_covers_all_gates() {
        let adder = AdderCircuit::new(16);
        let grouped: usize = adder.cells().iter().map(Vec::len).sum();
        assert_eq!(grouped, adder.netlist().gate_count());
        assert_eq!(adder.cells().len(), 16);
        assert_eq!(adder.width(), 16);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = AdderCircuit::new(0);
    }

    #[test]
    fn saturating_adder_matches_fx_exhaustively_sampled() {
        let adder = SatAdderCircuit::new();
        let mut sim = adder.simulator();
        let mut raw = -32768i32;
        while raw <= 32767 {
            let a = Fx::from_raw(raw as i16);
            let b = Fx::from_raw((raw.wrapping_mul(31) ^ 0x1234) as i16);
            assert_eq!(adder.compute(&mut sim, a, b), a + b, "a={a} b={b}");
            raw += 251; // prime stride over the whole range
        }
    }

    #[test]
    fn saturating_adder_edge_cases() {
        let adder = SatAdderCircuit::new();
        let mut sim = adder.simulator();
        for (a, b) in [
            (Fx::MAX, Fx::MAX),
            (Fx::MIN, Fx::MIN),
            (Fx::MAX, Fx::MIN),
            (Fx::MIN, Fx::MAX),
            (Fx::MAX, Fx::from_raw(1)),
            (Fx::MIN, Fx::from_raw(-1)),
            (Fx::ZERO, Fx::ZERO),
        ] {
            assert_eq!(adder.compute(&mut sim, a, b), a + b, "a={a} b={b}");
        }
    }

    #[test]
    fn sat_adder_cells_cover_all_gates() {
        let adder = SatAdderCircuit::new();
        let grouped: usize = adder.cells().iter().map(Vec::len).sum();
        // One Const gate (carry-in tie) is not a defect site.
        assert_eq!(grouped + 1, adder.netlist().gate_count());
        assert_eq!(adder.cells().len(), 17);
    }
}
