//! Self-contained faulty-operator evaluators for the hybrid ANN path.
//!
//! The paper trains and tests with a high-level ANN model in which "it is
//! possible to mark a neuron as having one or several defect(s) for a
//! specific operator, in which case a software function is called to
//! perform that operator in place of the native operator". These wrappers
//! are those software functions: each owns a gate-level operator circuit
//! plus a simulator with the injected defects, and exposes a plain
//! `Fx -> Fx` interface that `dta-ann` calls for marked neurons while
//! every healthy operator runs native Q6.10 arithmetic.

use std::sync::{Arc, OnceLock};

use rand::Rng;

use dta_fixed::{Fx, SigmoidLut};

use crate::adder::SatAdderCircuit;
use crate::inject::{switch_level_baseline, DefectPlan, FaultModel};
use crate::multiplier::FxMulCircuit;
use crate::sigmoid_unit::SigmoidUnitCircuit;

/// Shared sigmoid table for the healthy native shortcut.
fn sigmoid_lut() -> &'static SigmoidLut {
    static LUT: OnceLock<SigmoidLut> = OnceLock::new();
    LUT.get_or_init(SigmoidLut::new)
}

macro_rules! hw_operator {
    ($(#[$doc:meta])* $name:ident, $circuit:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            circuit: Arc<$circuit>,
            sim: dta_logic::Simulator,
            /// Lane-parallel twin of `sim`, present iff every injected
            /// fault is combinational (see [`DefectPlan::apply64`]);
            /// batch entry points go through it 64 stimuli per settle.
            sim64: Option<dta_logic::Simulator64>,
            /// Healthy (override-free) lane-parallel twin, present iff
            /// the fault set is *stateful*: batch entry points settle it
            /// 64 stimuli at a time and gate-simulate only `sim`'s cone
            /// of influence per lane (see [`dta_logic::Simulator::prepare_cone`]).
            healthy64: Option<dta_logic::Simulator64>,
            /// Compiled LUT instruction-stream engine, present iff the
            /// plan lowered to truth-word patches alone (see
            /// [`DefectPlan::apply_lut`]); it is the fastest batch path
            /// and is preferred over `sim64` when available. Stateful
            /// plans stay on the cone path so memory effects share
            /// `sim`'s behavior state with the scalar entry points.
            lut: Option<dta_logic::LutExec>,
            plan: DefectPlan,
        }

        impl $name {
            /// Builds a healthy operator with its own circuit instance.
            pub fn new() -> Self {
                Self::with_circuit(Arc::new(<$circuit>::new()))
            }

            /// Builds an operator over a shared circuit (the netlist is
            /// immutable, so many operators can reuse one instance).
            pub fn with_circuit(circuit: Arc<$circuit>) -> Self {
                let sim = circuit.simulator();
                let sim64 = Some(circuit.simulator64());
                Self {
                    circuit,
                    sim,
                    sim64,
                    healthy64: None,
                    lut: None,
                    plan: DefectPlan::new(FaultModel::TransistorLevel),
                }
            }

            /// Rebuilds the lane-parallel simulator for the current
            /// plan. Stateful fault sets drop it and instead keep the
            /// untouched simulator as the healthy twin of the
            /// cone-pruned differential batch path — unless a benchmark
            /// baseline forces the seed or PR-1 engine, in which case
            /// batches fall back to plain scalar evaluation.
            fn rebuild_sim64(&mut self) {
                self.lut = None;
                if !self.plan.is_empty()
                    && !dta_logic::lut_backend_disabled()
                    && !switch_level_baseline()
                    && !dta_logic::full_settle_forced()
                {
                    let mut ex = self.circuit.lut_exec();
                    if self.plan.apply_lut(&mut ex) {
                        self.lut = Some(ex);
                    }
                }
                let mut s = self.circuit.simulator64();
                if self.plan.apply64(&mut s) {
                    self.sim64 = Some(s);
                    self.healthy64 = None;
                } else {
                    self.sim64 = None;
                    let baseline =
                        switch_level_baseline() || dta_logic::full_settle_forced();
                    self.healthy64 = (!baseline
                        && !self.plan.is_empty()
                        && self.sim.prepare_cone())
                    .then_some(s);
                }
            }

            /// True when the healthy native shortcut applies: no defect
            /// injected and no benchmark baseline forcing full gate
            /// simulation.
            fn native_ok(&self) -> bool {
                self.plan.is_empty()
                    && !switch_level_baseline()
                    && !dta_logic::full_settle_forced()
            }

            /// True if every injected fault is combinational, i.e. the
            /// batch entry points run 64 lanes per settle instead of
            /// falling back to the scalar simulator.
            pub fn vectorizable(&self) -> bool {
                self.sim64.is_some()
            }

            /// True if the current plan lowered entirely to truth-word
            /// patches on the compiled LUT instruction stream, i.e. the
            /// batch entry points run the straight-line schedule instead
            /// of event-driven settles.
            pub fn lut_ready(&self) -> bool {
                self.lut.is_some()
            }

            /// The operator's patched LUT executor, when the plan
            /// lowered entirely to truth-word patches. Network-level
            /// fusion reads the patched instruction stream from here and
            /// stitches it into one program across operators.
            pub fn lut_stream(&self) -> Option<&dta_logic::LutExec> {
                self.lut.as_ref()
            }

            /// Injects `n` random **permanent** defects under the given
            /// fault model and applies them. Returns a description per
            /// defect.
            pub fn inject_random<R: Rng + ?Sized>(
                &mut self,
                model: FaultModel,
                n: usize,
                rng: &mut R,
            ) -> Vec<String> {
                self.inject_random_with(
                    model,
                    dta_transistor::Activation::Permanent,
                    n,
                    rng,
                )
            }

            /// Injects `n` random defects with the given lifetime under
            /// the given fault model and applies them. Returns a
            /// description per defect. For
            /// [`dta_transistor::Activation::Permanent`] this consumes
            /// exactly the same RNG draws as
            /// [`Self::inject_random`].
            pub fn inject_random_with<R: Rng + ?Sized>(
                &mut self,
                model: FaultModel,
                activation: dta_transistor::Activation,
                n: usize,
                rng: &mut R,
            ) -> Vec<String> {
                self.plan.remove(&mut self.sim);
                if self.plan.model() != model {
                    self.plan = DefectPlan::new(model);
                }
                for _ in 0..n {
                    self.plan.add_random_with(
                        self.circuit.netlist(),
                        self.circuit.cells(),
                        activation,
                        rng,
                    );
                }
                self.plan.apply(&mut self.sim);
                self.rebuild_sim64();
                self.plan
                    .records()
                    .iter()
                    .map(|r| format!("bit {}: {}", r.bit, r.description))
                    .collect()
            }

            /// Installs a prepared defect plan (replacing any previous one).
            pub fn install_plan(&mut self, plan: DefectPlan) {
                self.plan.remove(&mut self.sim);
                plan.apply(&mut self.sim);
                self.plan = plan;
                self.rebuild_sim64();
            }

            /// Number of injected defects.
            pub fn defect_count(&self) -> usize {
                self.plan.len()
            }

            /// The shared circuit.
            pub fn circuit(&self) -> &Arc<$circuit> {
                &self.circuit
            }

            /// Clears memory effects and delay-line state left by
            /// previous evaluations (call between independent runs).
            pub fn reset_state(&mut self) {
                self.sim.reset_state();
                if let Some(lut) = self.lut.as_mut() {
                    lut.reset_state();
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

hw_operator!(
    /// The neuron accumulation adder (16-bit saturating), evaluated at
    /// the gate level with optional injected defects.
    ///
    /// # Example
    ///
    /// ```
    /// use dta_circuits::ops::HwAdder;
    /// use dta_fixed::Fx;
    /// let mut adder = HwAdder::new();
    /// let (a, b) = (Fx::from_f64(1.25), Fx::from_f64(2.5));
    /// assert_eq!(adder.add(a, b), a + b);
    /// ```
    HwAdder,
    SatAdderCircuit
);

impl HwAdder {
    /// Computes the (possibly faulty) saturating sum. Healthy operators
    /// skip gate simulation entirely: the circuit is bit-exact with the
    /// native saturating Q6.10 add.
    pub fn add(&mut self, a: Fx, b: Fx) -> Fx {
        if self.native_ok() {
            return a + b;
        }
        self.circuit.compute(&mut self.sim, a, b)
    }

    /// Computes a whole batch of sums — native when healthy, a compiled
    /// LUT instruction stream when the fault set lowered to truth-word
    /// patches, 64 lanes per settle when it is merely combinational,
    /// cone-pruned differential batches when it is stateful. Identical
    /// to mapping [`HwAdder::add`] over the pairs.
    pub fn add_batch(&mut self, a: &[Fx], b: &[Fx]) -> Vec<Fx> {
        if self.native_ok() {
            return a.iter().zip(b).map(|(&x, &y)| x + y).collect();
        }
        if let Some(lut) = self.lut.as_mut() {
            return self.circuit.compute_lut(lut, a, b);
        }
        match (self.sim64.as_mut(), self.healthy64.as_mut()) {
            (Some(sim64), _) => self.circuit.compute64(sim64, a, b),
            (None, Some(healthy)) => self.circuit.compute_cone(&mut self.sim, healthy, a, b),
            (None, None) => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.circuit.compute(&mut self.sim, x, y))
                .collect(),
        }
    }
}

hw_operator!(
    /// The synaptic multiplier (Q6.10 truncating, saturating), evaluated
    /// at the gate level with optional injected defects.
    ///
    /// # Example
    ///
    /// ```
    /// use dta_circuits::ops::HwMultiplier;
    /// use dta_fixed::Fx;
    /// let mut mul = HwMultiplier::new();
    /// let (a, b) = (Fx::from_f64(0.5), Fx::from_f64(-3.0));
    /// assert_eq!(mul.mul(a, b), a * b);
    /// ```
    HwMultiplier,
    FxMulCircuit
);

impl HwMultiplier {
    /// Computes the (possibly faulty) product. Healthy operators skip
    /// gate simulation entirely: the circuit is bit-exact with the
    /// native truncating, saturating Q6.10 multiply.
    pub fn mul(&mut self, a: Fx, b: Fx) -> Fx {
        if self.native_ok() {
            return a * b;
        }
        self.circuit.compute(&mut self.sim, a, b)
    }

    /// Computes a whole batch of products — native when healthy, a
    /// compiled LUT instruction stream when the fault set lowered to
    /// truth-word patches, 64 lanes per settle when it is merely
    /// combinational, cone-pruned differential batches when it is
    /// stateful. Identical to mapping [`HwMultiplier::mul`] over the
    /// pairs.
    pub fn mul_batch(&mut self, a: &[Fx], b: &[Fx]) -> Vec<Fx> {
        if self.native_ok() {
            return a.iter().zip(b).map(|(&x, &y)| x * y).collect();
        }
        if let Some(lut) = self.lut.as_mut() {
            return self.circuit.compute_lut(lut, a, b);
        }
        match (self.sim64.as_mut(), self.healthy64.as_mut()) {
            (Some(sim64), _) => self.circuit.compute64(sim64, a, b),
            (None, Some(healthy)) => self.circuit.compute_cone(&mut self.sim, healthy, a, b),
            (None, None) => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.circuit.compute(&mut self.sim, x, y))
                .collect(),
        }
    }
}

hw_operator!(
    /// The activation unit (16-segment piecewise-linear sigmoid),
    /// evaluated at the gate level with optional injected defects.
    ///
    /// # Example
    ///
    /// ```
    /// use dta_circuits::ops::HwSigmoid;
    /// use dta_fixed::{Fx, SigmoidLut};
    /// let mut act = HwSigmoid::new();
    /// let x = Fx::from_f64(0.7);
    /// assert_eq!(act.eval(x), SigmoidLut::new().eval(x));
    /// ```
    HwSigmoid,
    SigmoidUnitCircuit
);

impl HwSigmoid {
    /// Computes the (possibly faulty) activation. Healthy operators
    /// skip gate simulation entirely: the circuit is bit-exact with the
    /// native 16-segment [`SigmoidLut`].
    pub fn eval(&mut self, x: Fx) -> Fx {
        if self.native_ok() {
            return sigmoid_lut().eval(x);
        }
        self.circuit.compute(&mut self.sim, x)
    }

    /// Computes a whole batch of activations — native when healthy, a
    /// compiled LUT instruction stream when the fault set lowered to
    /// truth-word patches, 64 lanes per settle when it is merely
    /// combinational, cone-pruned differential batches when it is
    /// stateful. Identical to mapping [`HwSigmoid::eval`] over the
    /// inputs.
    pub fn eval_batch(&mut self, xs: &[Fx]) -> Vec<Fx> {
        if self.native_ok() {
            let lut = sigmoid_lut();
            return xs.iter().map(|&x| lut.eval(x)).collect();
        }
        if let Some(lut) = self.lut.as_mut() {
            return self.circuit.compute_lut(lut, xs);
        }
        match (self.sim64.as_mut(), self.healthy64.as_mut()) {
            (Some(sim64), _) => self.circuit.compute64(sim64, xs),
            (None, Some(healthy)) => self.circuit.compute_cone(&mut self.sim, healthy, xs),
            (None, None) => xs
                .iter()
                .map(|&x| self.circuit.compute(&mut self.sim, x))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_fixed::SigmoidLut;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn healthy_operators_match_native_datapath() {
        let mut add = HwAdder::new();
        let mut mul = HwMultiplier::new();
        let mut act = HwSigmoid::new();
        let lut = SigmoidLut::new();
        let mut raw = -32768i32;
        while raw <= 32767 {
            let a = Fx::from_raw(raw as i16);
            let b = Fx::from_raw((raw.wrapping_mul(37) ^ 0x55aa) as i16);
            assert_eq!(add.add(a, b), a + b);
            assert_eq!(mul.mul(a, b), a * b);
            assert_eq!(act.eval(a), lut.eval(a));
            raw += 1021;
        }
    }

    #[test]
    fn shared_circuit_instances() {
        let circuit = Arc::new(FxMulCircuit::new());
        let mut m1 = HwMultiplier::with_circuit(Arc::clone(&circuit));
        let mut m2 = HwMultiplier::with_circuit(Arc::clone(&circuit));
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        m2.inject_random(FaultModel::TransistorLevel, 3, &mut rng);
        assert_eq!(m1.defect_count(), 0);
        assert_eq!(m2.defect_count(), 3);
        // The healthy instance is unaffected by the faulty one.
        let (a, b) = (Fx::from_f64(2.0), Fx::from_f64(3.0));
        assert_eq!(m1.mul(a, b), a * b);
    }

    #[test]
    fn injection_reports_descriptions() {
        let mut add = HwAdder::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let reports = add.inject_random(FaultModel::TransistorLevel, 4, &mut rng);
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.starts_with("bit "), "report: {r}");
        }
    }

    #[test]
    fn many_defects_visibly_corrupt_the_multiplier() {
        let mut mul = HwMultiplier::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        mul.inject_random(FaultModel::TransistorLevel, 30, &mut rng);
        let mut diffs = 0;
        let mut raw = -32000i32;
        while raw <= 32000 {
            let a = Fx::from_raw(raw as i16);
            let b = Fx::from_raw((raw ^ 0x1f3) as i16);
            if mul.mul(a, b) != a * b {
                diffs += 1;
            }
            raw += 640;
        }
        assert!(diffs > 0, "30 defects must corrupt some products");
    }

    #[test]
    fn batch_matches_scalar_for_combinational_faults() {
        // Hunt for a seed whose defects stay combinational, then check
        // the 64-lane path against element-wise evaluation.
        let mut found = false;
        for seed in 0..20 {
            let mut mul = HwMultiplier::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            mul.inject_random(FaultModel::TransistorLevel, 4, &mut rng);
            if !mul.vectorizable() {
                continue;
            }
            found = true;
            let a: Vec<Fx> = (0..150).map(|i| Fx::from_raw((i * 431) as i16)).collect();
            let b: Vec<Fx> = (0..150)
                .map(|i| Fx::from_raw((i * 77 - 999) as i16))
                .collect();
            let batch = mul.mul_batch(&a, &b);
            let scalar: Vec<Fx> = a.iter().zip(&b).map(|(&x, &y)| mul.mul(x, y)).collect();
            assert_eq!(batch, scalar, "seed {seed}");
        }
        assert!(
            found,
            "no combinational 4-defect seed in 0..20 is suspicious"
        );
    }

    #[test]
    fn stateful_faults_disable_vectorization_but_batch_still_works() {
        // Find a plan with a latching/delay cell: vectorizable() must
        // be false and the batch entry point must fall back to the
        // scalar simulator (sequencing the same state updates).
        let mut found = false;
        for seed in 0..40 {
            let mut add = HwAdder::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            add.inject_random(FaultModel::TransistorLevel, 6, &mut rng);
            if add.vectorizable() {
                continue;
            }
            found = true;
            let a: Vec<Fx> = (0..40).map(|i| Fx::from_raw((i * 997) as i16)).collect();
            let b: Vec<Fx> = (0..40).map(|i| Fx::from_raw((i * 13 + 5) as i16)).collect();
            add.reset_state();
            let batch = add.add_batch(&a, &b);
            add.reset_state();
            let scalar: Vec<Fx> = a.iter().zip(&b).map(|(&x, &y)| add.add(x, y)).collect();
            assert_eq!(batch, scalar, "seed {seed}");
            break;
        }
        assert!(found, "no stateful 6-defect seed in 0..40 is suspicious");
    }

    #[test]
    fn healthy_batch_paths_are_vectorized_and_exact() {
        let mut add = HwAdder::new();
        let mut mul = HwMultiplier::new();
        let mut act = HwSigmoid::new();
        assert!(add.vectorizable());
        assert!(mul.vectorizable());
        assert!(act.vectorizable());
        let lut = SigmoidLut::new();
        let a: Vec<Fx> = (0..100)
            .map(|i| Fx::from_raw((i * 653 - 30000) as i16))
            .collect();
        let b: Vec<Fx> = (0..100)
            .map(|i| Fx::from_raw((i * 389 + 11) as i16))
            .collect();
        let sums = add.add_batch(&a, &b);
        let prods = mul.mul_batch(&a, &b);
        let acts = act.eval_batch(&a);
        for i in 0..a.len() {
            assert_eq!(sums[i], a[i] + b[i]);
            assert_eq!(prods[i], a[i] * b[i]);
            assert_eq!(acts[i], lut.eval(a[i]));
        }
    }

    #[test]
    fn lut_backend_matches_scalar_and_can_be_disabled() {
        // Operators whose plan lowers to pure truth-word patches route
        // batches through the compiled LUT stream; outputs must equal
        // element-wise scalar evaluation, and the process-global
        // disable hook must force the rebuilt operator off the engine
        // without changing any output bit.
        let mut found = false;
        for seed in 0..20 {
            let mut mul = HwMultiplier::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            mul.inject_random(FaultModel::TransistorLevel, 4, &mut rng);
            if !mul.lut_ready() {
                continue;
            }
            found = true;
            let a: Vec<Fx> = (0..150).map(|i| Fx::from_raw((i * 431) as i16)).collect();
            let b: Vec<Fx> = (0..150)
                .map(|i| Fx::from_raw((i * 77 - 999) as i16))
                .collect();
            let batch = mul.mul_batch(&a, &b);
            let scalar: Vec<Fx> = a.iter().zip(&b).map(|(&x, &y)| mul.mul(x, y)).collect();
            assert_eq!(batch, scalar, "seed {seed}");
            dta_logic::disable_lut_backend(true);
            let mut off = HwMultiplier::new();
            let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
            off.inject_random(FaultModel::TransistorLevel, 4, &mut rng2);
            let off_ready = off.lut_ready();
            let off_batch = off.mul_batch(&a, &b);
            dta_logic::disable_lut_backend(false);
            assert!(!off_ready, "hook must keep the LUT engine off");
            assert_eq!(off_batch, batch, "seed {seed}: backends diverged");
            break;
        }
        assert!(found, "no fully-patchable 4-defect seed in 0..20");
    }

    #[test]
    fn reset_state_restores_determinism() {
        let mut mul = HwMultiplier::new();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        mul.inject_random(FaultModel::TransistorLevel, 8, &mut rng);
        let inputs: Vec<(Fx, Fx)> = (0..40)
            .map(|i| {
                (
                    Fx::from_raw((i * 997) as i16),
                    Fx::from_raw((i * 31 - 700) as i16),
                )
            })
            .collect();
        let run = |m: &mut HwMultiplier| -> Vec<Fx> {
            m.reset_state();
            inputs.iter().map(|&(a, b)| m.mul(a, b)).collect()
        };
        let first = run(&mut mul);
        let second = run(&mut mul);
        assert_eq!(first, second, "same sequence after reset");
    }
}
