//! Self-contained faulty-operator evaluators for the hybrid ANN path.
//!
//! The paper trains and tests with a high-level ANN model in which "it is
//! possible to mark a neuron as having one or several defect(s) for a
//! specific operator, in which case a software function is called to
//! perform that operator in place of the native operator". These wrappers
//! are those software functions: each owns a gate-level operator circuit
//! plus a simulator with the injected defects, and exposes a plain
//! `Fx -> Fx` interface that `dta-ann` calls for marked neurons while
//! every healthy operator runs native Q6.10 arithmetic.

use std::sync::Arc;

use rand::Rng;

use dta_fixed::Fx;

use crate::adder::SatAdderCircuit;
use crate::inject::{DefectPlan, FaultModel};
use crate::multiplier::FxMulCircuit;
use crate::sigmoid_unit::SigmoidUnitCircuit;

macro_rules! hw_operator {
    ($(#[$doc:meta])* $name:ident, $circuit:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            circuit: Arc<$circuit>,
            sim: dta_logic::Simulator,
            plan: DefectPlan,
        }

        impl $name {
            /// Builds a healthy operator with its own circuit instance.
            pub fn new() -> Self {
                Self::with_circuit(Arc::new(<$circuit>::new()))
            }

            /// Builds an operator over a shared circuit (the netlist is
            /// immutable, so many operators can reuse one instance).
            pub fn with_circuit(circuit: Arc<$circuit>) -> Self {
                let sim = circuit.simulator();
                Self {
                    circuit,
                    sim,
                    plan: DefectPlan::new(FaultModel::TransistorLevel),
                }
            }

            /// Injects `n` random defects under the given fault model and
            /// applies them. Returns a description per defect.
            pub fn inject_random<R: Rng + ?Sized>(
                &mut self,
                model: FaultModel,
                n: usize,
                rng: &mut R,
            ) -> Vec<String> {
                self.plan.remove(&mut self.sim);
                if self.plan.model() != model {
                    self.plan = DefectPlan::new(model);
                }
                for _ in 0..n {
                    self.plan.add_random(
                        self.circuit.netlist(),
                        self.circuit.cells(),
                        rng,
                    );
                }
                self.plan.apply(&mut self.sim);
                self.plan
                    .records()
                    .iter()
                    .map(|r| format!("bit {}: {}", r.bit, r.description))
                    .collect()
            }

            /// Installs a prepared defect plan (replacing any previous one).
            pub fn install_plan(&mut self, plan: DefectPlan) {
                self.plan.remove(&mut self.sim);
                plan.apply(&mut self.sim);
                self.plan = plan;
            }

            /// Number of injected defects.
            pub fn defect_count(&self) -> usize {
                self.plan.len()
            }

            /// The shared circuit.
            pub fn circuit(&self) -> &Arc<$circuit> {
                &self.circuit
            }

            /// Clears memory effects and delay-line state left by
            /// previous evaluations (call between independent runs).
            pub fn reset_state(&mut self) {
                self.sim.reset_state();
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

hw_operator!(
    /// The neuron accumulation adder (16-bit saturating), evaluated at
    /// the gate level with optional injected defects.
    ///
    /// # Example
    ///
    /// ```
    /// use dta_circuits::ops::HwAdder;
    /// use dta_fixed::Fx;
    /// let mut adder = HwAdder::new();
    /// let (a, b) = (Fx::from_f64(1.25), Fx::from_f64(2.5));
    /// assert_eq!(adder.add(a, b), a + b);
    /// ```
    HwAdder,
    SatAdderCircuit
);

impl HwAdder {
    /// Computes the (possibly faulty) saturating sum.
    pub fn add(&mut self, a: Fx, b: Fx) -> Fx {
        self.circuit.compute(&mut self.sim, a, b)
    }
}

hw_operator!(
    /// The synaptic multiplier (Q6.10 truncating, saturating), evaluated
    /// at the gate level with optional injected defects.
    ///
    /// # Example
    ///
    /// ```
    /// use dta_circuits::ops::HwMultiplier;
    /// use dta_fixed::Fx;
    /// let mut mul = HwMultiplier::new();
    /// let (a, b) = (Fx::from_f64(0.5), Fx::from_f64(-3.0));
    /// assert_eq!(mul.mul(a, b), a * b);
    /// ```
    HwMultiplier,
    FxMulCircuit
);

impl HwMultiplier {
    /// Computes the (possibly faulty) product.
    pub fn mul(&mut self, a: Fx, b: Fx) -> Fx {
        self.circuit.compute(&mut self.sim, a, b)
    }
}

hw_operator!(
    /// The activation unit (16-segment piecewise-linear sigmoid),
    /// evaluated at the gate level with optional injected defects.
    ///
    /// # Example
    ///
    /// ```
    /// use dta_circuits::ops::HwSigmoid;
    /// use dta_fixed::{Fx, SigmoidLut};
    /// let mut act = HwSigmoid::new();
    /// let x = Fx::from_f64(0.7);
    /// assert_eq!(act.eval(x), SigmoidLut::new().eval(x));
    /// ```
    HwSigmoid,
    SigmoidUnitCircuit
);

impl HwSigmoid {
    /// Computes the (possibly faulty) activation.
    pub fn eval(&mut self, x: Fx) -> Fx {
        self.circuit.compute(&mut self.sim, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_fixed::SigmoidLut;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn healthy_operators_match_native_datapath() {
        let mut add = HwAdder::new();
        let mut mul = HwMultiplier::new();
        let mut act = HwSigmoid::new();
        let lut = SigmoidLut::new();
        let mut raw = -32768i32;
        while raw <= 32767 {
            let a = Fx::from_raw(raw as i16);
            let b = Fx::from_raw((raw.wrapping_mul(37) ^ 0x55aa) as i16);
            assert_eq!(add.add(a, b), a + b);
            assert_eq!(mul.mul(a, b), a * b);
            assert_eq!(act.eval(a), lut.eval(a));
            raw += 1021;
        }
    }

    #[test]
    fn shared_circuit_instances() {
        let circuit = Arc::new(FxMulCircuit::new());
        let mut m1 = HwMultiplier::with_circuit(Arc::clone(&circuit));
        let mut m2 = HwMultiplier::with_circuit(Arc::clone(&circuit));
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        m2.inject_random(FaultModel::TransistorLevel, 3, &mut rng);
        assert_eq!(m1.defect_count(), 0);
        assert_eq!(m2.defect_count(), 3);
        // The healthy instance is unaffected by the faulty one.
        let (a, b) = (Fx::from_f64(2.0), Fx::from_f64(3.0));
        assert_eq!(m1.mul(a, b), a * b);
    }

    #[test]
    fn injection_reports_descriptions() {
        let mut add = HwAdder::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let reports = add.inject_random(FaultModel::TransistorLevel, 4, &mut rng);
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.starts_with("bit "), "report: {r}");
        }
    }

    #[test]
    fn many_defects_visibly_corrupt_the_multiplier() {
        let mut mul = HwMultiplier::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        mul.inject_random(FaultModel::TransistorLevel, 30, &mut rng);
        let mut diffs = 0;
        let mut raw = -32000i32;
        while raw <= 32000 {
            let a = Fx::from_raw(raw as i16);
            let b = Fx::from_raw((raw ^ 0x1f3) as i16);
            if mul.mul(a, b) != a * b {
                diffs += 1;
            }
            raw += 640;
        }
        assert!(diffs > 0, "30 defects must corrupt some products");
    }

    #[test]
    fn reset_state_restores_determinism() {
        let mut mul = HwMultiplier::new();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        mul.inject_random(FaultModel::TransistorLevel, 8, &mut rng);
        let inputs: Vec<(Fx, Fx)> = (0..40)
            .map(|i| {
                (
                    Fx::from_raw((i * 997) as i16),
                    Fx::from_raw((i * 31 - 700) as i16),
                )
            })
            .collect();
        let run = |m: &mut HwMultiplier| -> Vec<Fx> {
            m.reset_state();
            inputs.iter().map(|&(a, b)| m.mul(a, b)).collect()
        };
        let first = run(&mut mul);
        let second = run(&mut mul);
        assert_eq!(first, second, "same sequence after reset");
    }
}
