//! Defect visibility: how often, and how strongly, a defective operator
//! actually disagrees with the healthy one.
//!
//! This analysis explains the mechanics behind the paper's Figure 10
//! tolerance: many transistor-level defects are *invisible* for most
//! operand values (a dead branch of a pull-up network only matters for
//! the input combinations that would have used it), and many visible
//! ones flip low-significance bits that retraining absorbs trivially.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_fixed::{Fx, SigmoidLut};

use crate::ops::{HwAdder, HwMultiplier, HwSigmoid};

/// Divergence statistics of a faulty operator against its healthy twin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VisibilityReport {
    /// Fraction of sampled operand vectors where the outputs differ.
    pub visible_fraction: f64,
    /// Mean |faulty − healthy| over the samples (value domain).
    pub mean_abs_error: f64,
    /// Largest |faulty − healthy| observed.
    pub max_abs_error: f64,
    /// Number of operand vectors sampled.
    pub samples: usize,
}

impl VisibilityReport {
    /// True if the defect never manifested on the sampled inputs.
    pub fn is_invisible(&self) -> bool {
        self.visible_fraction == 0.0
    }
}

fn random_fx<R: Rng + ?Sized>(rng: &mut R) -> Fx {
    Fx::from_raw(rng.random::<i16>())
}

/// Measures a (possibly faulty) multiplier against native `Fx` multiply
/// over `samples` random operand pairs.
pub fn multiplier_visibility(hw: &mut HwMultiplier, samples: usize, seed: u64) -> VisibilityReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    measure(samples, |_| {
        let (a, b) = (random_fx(&mut rng), random_fx(&mut rng));
        (hw.mul(a, b).to_f64(), (a * b).to_f64())
    })
}

/// Measures a (possibly faulty) adder against native `Fx` addition.
pub fn adder_visibility(hw: &mut HwAdder, samples: usize, seed: u64) -> VisibilityReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    measure(samples, |_| {
        let (a, b) = (random_fx(&mut rng), random_fx(&mut rng));
        (hw.add(a, b).to_f64(), (a + b).to_f64())
    })
}

/// Measures a (possibly faulty) activation unit against the LUT sigmoid.
pub fn sigmoid_visibility(hw: &mut HwSigmoid, samples: usize, seed: u64) -> VisibilityReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let lut = SigmoidLut::new();
    measure(samples, |_| {
        let x = random_fx(&mut rng);
        (hw.eval(x).to_f64(), lut.eval(x).to_f64())
    })
}

fn measure(samples: usize, mut pair: impl FnMut(usize) -> (f64, f64)) -> VisibilityReport {
    assert!(samples > 0, "need at least one sample");
    let mut visible = 0usize;
    let mut total_err = 0.0f64;
    let mut max_err = 0.0f64;
    for i in 0..samples {
        let (faulty, healthy) = pair(i);
        let err = (faulty - healthy).abs();
        if err > 0.0 {
            visible += 1;
        }
        total_err += err;
        max_err = max_err.max(err);
    }
    VisibilityReport {
        visible_fraction: visible as f64 / samples as f64,
        mean_abs_error: total_err / samples as f64,
        max_abs_error: max_err,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FaultModel;
    use rand::SeedableRng;

    #[test]
    fn healthy_operators_are_invisible() {
        let mut mul = HwMultiplier::new();
        let r = multiplier_visibility(&mut mul, 200, 1);
        assert!(r.is_invisible(), "{r:?}");
        assert_eq!(r.mean_abs_error, 0.0);
        assert_eq!(r.samples, 200);

        let mut add = HwAdder::new();
        assert!(adder_visibility(&mut add, 200, 2).is_invisible());

        let mut act = HwSigmoid::new();
        assert!(sigmoid_visibility(&mut act, 200, 3).is_invisible());
    }

    #[test]
    fn heavy_damage_is_visible() {
        let mut mul = HwMultiplier::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        mul.inject_random(FaultModel::TransistorLevel, 25, &mut rng);
        let r = multiplier_visibility(&mut mul, 300, 5);
        assert!(r.visible_fraction > 0.0, "{r:?}");
        assert!(r.max_abs_error > 0.0);
        assert!(r.mean_abs_error <= r.max_abs_error);
    }

    #[test]
    fn some_single_defects_are_invisible_on_samples() {
        // Across a handful of random single defects, at least one should
        // be (near-)invisible and at least one visible — the spread that
        // underlies defect tolerance.
        let mut visible = 0;
        let mut invisible = 0;
        for seed in 0..12 {
            let mut add = HwAdder::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            add.inject_random(FaultModel::TransistorLevel, 1, &mut rng);
            let r = adder_visibility(&mut add, 400, seed ^ 0xA);
            if r.visible_fraction < 0.01 {
                invisible += 1;
            } else {
                visible += 1;
            }
        }
        assert!(visible > 0, "no defect ever manifested");
        assert!(invisible > 0, "every defect manifested strongly");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let mut add = HwAdder::new();
        let _ = adder_visibility(&mut add, 0, 0);
    }
}
