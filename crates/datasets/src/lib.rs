#![warn(missing_docs)]

//! Classification datasets for the accelerator evaluation.
//!
//! The paper benchmarks on 10 tasks from the UCI machine-learning
//! repository (Table II). This reproduction cannot ship the UCI data, so
//! [`suite`] provides **deterministic synthetic tasks with identical
//! dimensions** — same number of attributes, classes and a comparable
//! number of examples — generated as seeded Gaussian mixtures with
//! per-task separability. The defect-tolerance experiments (Figures 10
//! and 11) measure *relative accuracy degradation versus defects*, which
//! depends on the network dimensions and training dynamics rather than on
//! data provenance; absolute accuracies are reported as ours in
//! EXPERIMENTS.md.
//!
//! [`catalog`] additionally embeds a 135-entry attribute-count catalog
//! matching the distribution the paper reports for the whole UCI
//! repository (Figure 2: more than 92 % of datasets have fewer than 100
//! attributes), which motivates the 90-input design point.
//!
//! # Example
//!
//! ```
//! use dta_datasets::suite;
//!
//! let iris = suite::load("iris").unwrap();
//! assert_eq!(iris.n_features(), 4);
//! assert_eq!(iris.n_classes(), 3);
//! let folds = iris.k_folds(10, 42);
//! assert_eq!(folds.len(), 10);
//! ```

pub mod catalog;
pub mod dataset;
pub mod suite;
pub mod synth;

pub use dataset::{Dataset, Fold, Sample};
pub use suite::TaskSpec;
pub use synth::GaussianMixture;
