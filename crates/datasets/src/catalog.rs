//! The UCI repository attribute-count catalog behind the paper's Figure 2.
//!
//! The paper collected the number of attributes of all 135 datasets in
//! the 2011-era UCI repository and observed that "more than 92 % of UCI
//! data have less than 100 attributes", motivating the 90-input design
//! point. The repository snapshot itself is not shippable, so this module
//! embeds a 135-entry catalog whose distribution matches the reported
//! curve: real UCI names and counts for the well-known datasets, plus
//! representative entries filling each bucket.

/// One catalog entry: dataset name and its number of attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Dataset name.
    pub name: &'static str,
    /// Number of input attributes.
    pub attributes: u32,
}

macro_rules! entries {
    ($(($name:literal, $attrs:literal)),* $(,)?) => {
        &[ $( CatalogEntry { name: $name, attributes: $attrs } ),* ]
    };
}

/// The 135-dataset catalog (Figure 2 input).
pub const CATALOG: &[CatalogEntry] = entries![
    // Small, well-known UCI sets (real attribute counts).
    ("iris", 4),
    ("balance-scale", 4),
    ("hayes-roth", 4),
    ("lenses", 4),
    ("tae", 5),
    ("car", 6),
    ("monks-1", 6),
    ("monks-2", 6),
    ("monks-3", 6),
    ("liver-disorders", 6),
    ("shuttle-landing", 6),
    ("abalone", 8),
    ("pima-diabetes", 8),
    ("nursery", 8),
    ("yeast", 8),
    ("ecoli", 7),
    ("seeds", 7),
    ("post-operative", 8),
    ("tic-tac-toe", 9),
    ("glass", 9),
    ("breast-w", 9),
    ("contraceptive", 9),
    ("page-blocks", 10),
    ("magic", 10),
    ("poker-hand", 10),
    ("solar-flare", 10),
    ("cmc-survey", 9),
    ("servo", 4),
    ("lymphography", 18),
    ("vehicle", 18),
    ("hepatitis", 19),
    ("heart-statlog", 13),
    ("wine", 13),
    ("cleveland-heart", 13),
    ("housing", 13),
    ("credit-approval", 15),
    ("adult", 14),
    ("eeg-eye-state", 14),
    ("covertype-sub", 12),
    ("wine-quality", 11),
    ("pendigits", 16),
    ("letter", 16),
    ("zoo", 16),
    ("vote", 16),
    ("primary-tumor", 17),
    ("segment", 19),
    ("statlog-german", 20),
    ("hepatitis-b", 19),
    ("waveform-21", 21),
    ("mushroom", 22),
    ("spect-heart", 22),
    ("parkinson", 22),
    ("thyroid-sick", 22),
    ("autos", 25),
    ("horse-colic", 27),
    ("flags", 28),
    ("breast-cancer-wdbc", 30),
    ("steel-plates", 27),
    ("wall-following-24", 24),
    ("soybean", 35),
    ("ionosphere", 34),
    ("dermatology", 34),
    ("chess-kr-vs-kp", 36),
    ("satimage", 36),
    ("waveform-40", 40),
    ("annealing", 38),
    ("qsar-biodeg", 41),
    ("spambase", 57),
    ("sonar", 60),
    ("splice", 60),
    ("optdigits", 64),
    ("hill-valley", 100),
    ("robot-failures", 90),
    ("libras", 90),
    ("ozone", 72),
    ("audiology", 69),
    ("plants-texture", 64),
    ("uci-seventies-02", 71),
    ("musk-1", 166),
    ("musk-2", 166),
    ("semeion", 256),
    ("madelon", 500),
    ("isolet", 617),
    ("uci-eighties-02", 82),
    ("uci-nineties-02", 93),
    ("gisette", 5000),
    ("arcene", 10000),
    ("dexter", 20000),
    ("dorothea", 100000),
    // Remaining repository entries (representative counts per bucket).
    ("uci-small-01", 3),
    ("uci-small-02", 4),
    ("uci-small-03", 5),
    ("uci-small-04", 5),
    ("uci-small-05", 6),
    ("uci-small-06", 6),
    ("uci-small-07", 7),
    ("uci-small-08", 7),
    ("uci-small-09", 8),
    ("uci-small-10", 8),
    ("uci-small-11", 8),
    ("uci-small-12", 9),
    ("uci-small-13", 9),
    ("uci-small-14", 10),
    ("uci-small-15", 10),
    ("uci-small-16", 10),
    ("uci-small-17", 5),
    ("uci-small-18", 6),
    ("uci-small-19", 7),
    ("uci-small-20", 9),
    ("uci-teens-01", 11),
    ("uci-teens-02", 12),
    ("uci-teens-03", 12),
    ("uci-teens-04", 13),
    ("uci-teens-05", 14),
    ("uci-teens-06", 15),
    ("uci-teens-07", 16),
    ("uci-teens-08", 17),
    ("uci-teens-09", 18),
    ("uci-teens-10", 19),
    ("uci-teens-11", 20),
    ("uci-teens-12", 20),
    ("uci-twenties-01", 21),
    ("uci-twenties-02", 23),
    ("uci-twenties-03", 26),
    ("uci-twenties-04", 29),
    ("uci-thirties-01", 31),
    ("uci-thirties-02", 33),
    ("uci-thirties-03", 37),
    ("uci-forties-01", 43),
    ("uci-forties-02", 48),
    ("uci-fifties-01", 52),
    ("uci-sixties-01", 63),
    ("uci-seventies-01", 77),
    ("uci-eighties-01", 85),
    ("uci-nineties-01", 95),
];

/// Number of catalog datasets (the paper's 135).
pub fn len() -> usize {
    CATALOG.len()
}

/// Fraction of datasets with at most `attributes` attributes — one point
/// of the Figure 2 cumulative curve.
pub fn cumulative_fraction(attributes: u32) -> f64 {
    let below = CATALOG
        .iter()
        .filter(|e| e.attributes <= attributes)
        .count();
    below as f64 / CATALOG.len() as f64
}

/// The Figure 2 curve: cumulative fraction at the paper's x-axis points.
pub fn figure2_points() -> Vec<(u32, f64)> {
    [
        10,
        20,
        30,
        40,
        50,
        60,
        70,
        80,
        90,
        100,
        1000,
        10000,
        u32::MAX,
    ]
    .iter()
    .map(|&x| (x, cumulative_fraction(x)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_135_datasets() {
        assert_eq!(len(), 135);
    }

    #[test]
    fn paper_claim_92_percent_below_100() {
        let frac = cumulative_fraction(99);
        assert!(frac > 0.92, "fraction below 100 attrs: {frac}");
        assert!(frac < 0.97, "the tail above 100 must exist: {frac}");
    }

    #[test]
    fn ninety_inputs_capture_most() {
        // The design point: a 90-input network covers ~90% of datasets.
        let frac = cumulative_fraction(90);
        assert!(frac >= 0.88, "fraction below 90 attrs: {frac}");
    }

    #[test]
    fn tail_reaches_beyond_10000() {
        assert!(CATALOG.iter().any(|e| e.attributes > 10_000));
        assert_eq!(cumulative_fraction(u32::MAX), 1.0);
    }

    #[test]
    fn curve_is_monotone() {
        let pts = figure2_points();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = CATALOG.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CATALOG.len());
    }
}
