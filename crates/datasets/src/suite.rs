//! The 10-task benchmark suite of the paper's Table II.
//!
//! Each task mirrors the corresponding UCI dataset's dimensions (number
//! of attributes, classes, and a comparable sample count) and carries the
//! paper's best hyper-parameters (learning rate, epochs, hidden neurons)
//! as defaults. The data itself is synthetic — see the crate-level
//! documentation for why that substitution preserves the experiments.

use crate::dataset::Dataset;
use crate::synth::GaussianMixture;

/// The specification of one benchmark task: dimensions, generation
/// parameters, and the paper's Table II hyper-parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSpec {
    /// Task name (the UCI dataset it mirrors).
    pub name: &'static str,
    /// Short description from Table II.
    pub description: &'static str,
    /// Number of input attributes.
    pub n_features: usize,
    /// Number of output classes.
    pub n_classes: usize,
    /// Number of synthetic samples to generate.
    pub n_samples: usize,
    /// Clusters per class in the synthetic mixture (task nonlinearity).
    pub clusters: usize,
    /// Cluster spread (task overlap / difficulty).
    pub spread: f64,
    /// Label-noise fraction (bounds achievable accuracy).
    pub label_noise: f64,
    /// Generation seed.
    pub seed: u64,
    /// Table II best learning rate.
    pub learning_rate: f64,
    /// Table II best epoch count.
    pub epochs: usize,
    /// Table II best hidden-layer size.
    pub hidden: usize,
}

impl TaskSpec {
    /// Generates the task's dataset.
    pub fn dataset(&self) -> Dataset {
        GaussianMixture::new(self.n_features, self.n_classes)
            .clusters_per_class(self.clusters)
            .spread(self.spread)
            .label_noise(self.label_noise)
            .samples(self.n_samples)
            .generate(self.name, self.seed)
    }
}

/// The Table II suite, in the paper's order.
///
/// Dimensions ({#attributes, #classes}) and hyper-parameters
/// (learning rate, epochs, hidden neurons) match Table II exactly;
/// sample counts match the UCI originals (capped at 1000 for the two
/// large sets, optdigits and spam, to keep experiment turnaround
/// reasonable).
pub fn specs() -> Vec<TaskSpec> {
    vec![
        TaskSpec {
            name: "breast",
            description: "Breast cancer diagnostic",
            n_features: 30,
            n_classes: 2,
            n_samples: 569,
            clusters: 2,
            spread: 0.16,
            label_noise: 0.02,
            seed: 0xB4EA57,
            learning_rate: 0.1,
            epochs: 200,
            hidden: 14,
        },
        TaskSpec {
            name: "glass",
            description: "Glass oxides identification (forensic)",
            n_features: 9,
            n_classes: 6,
            n_samples: 214,
            clusters: 1,
            spread: 0.10,
            label_noise: 0.05,
            seed: 0x61A55,
            learning_rate: 0.1,
            epochs: 800,
            hidden: 10,
        },
        TaskSpec {
            name: "ionosphere",
            description: "Radar returns from ionosphere",
            n_features: 34,
            n_classes: 2,
            n_samples: 351,
            clusters: 2,
            spread: 0.17,
            label_noise: 0.04,
            seed: 0x10005,
            learning_rate: 0.3,
            epochs: 100,
            hidden: 6,
        },
        TaskSpec {
            name: "iris",
            description: "Plants classification",
            n_features: 4,
            n_classes: 3,
            n_samples: 150,
            clusters: 1,
            spread: 0.09,
            label_noise: 0.02,
            seed: 0x1815,
            learning_rate: 0.2,
            epochs: 100,
            hidden: 8,
        },
        TaskSpec {
            name: "optdigits",
            description: "Handwritten digits recognition",
            n_features: 64,
            n_classes: 10,
            n_samples: 1000,
            clusters: 1,
            spread: 0.12,
            label_noise: 0.02,
            seed: 0x0D161,
            learning_rate: 0.1,
            epochs: 200,
            hidden: 14,
        },
        TaskSpec {
            name: "robot",
            description: "Failure detection",
            n_features: 90,
            n_classes: 5,
            n_samples: 463,
            clusters: 2,
            spread: 0.15,
            label_noise: 0.05,
            seed: 0x0B07,
            learning_rate: 0.2,
            epochs: 1600,
            hidden: 6,
        },
        TaskSpec {
            name: "sonar",
            description: "Metal vs. rock sonar returns",
            n_features: 60,
            n_classes: 2,
            n_samples: 208,
            clusters: 2,
            spread: 0.18,
            label_noise: 0.05,
            seed: 0x50A4,
            learning_rate: 0.1,
            epochs: 100,
            hidden: 10,
        },
        TaskSpec {
            name: "spam",
            description: "Email spam identification",
            n_features: 57,
            n_classes: 2,
            n_samples: 1000,
            clusters: 2,
            spread: 0.16,
            label_noise: 0.05,
            seed: 0x5DA4,
            learning_rate: 0.1,
            epochs: 800,
            hidden: 6,
        },
        TaskSpec {
            name: "vehicle",
            description: "Vehicle silhouettes recognition",
            n_features: 18,
            n_classes: 4,
            n_samples: 846,
            clusters: 2,
            spread: 0.15,
            label_noise: 0.08,
            seed: 0x7E41C1E,
            learning_rate: 0.1,
            epochs: 400,
            hidden: 6,
        },
        TaskSpec {
            name: "wine",
            description: "Wine origin based on chemicals",
            n_features: 13,
            n_classes: 3,
            n_samples: 178,
            clusters: 1,
            spread: 0.11,
            label_noise: 0.02,
            seed: 0x3149E,
            learning_rate: 0.2,
            epochs: 1600,
            hidden: 4,
        },
    ]
}

/// An MNIST-scale synthetic task (784 attributes, 10 classes) that does
/// **not** fit the 90-input array — the §IV partial time-multiplexing
/// workload ("machine-learning researchers are often using input sets
/// with a large number of attributes, such as the MNIST database ...
/// 784 attributes").
pub fn mnist_like() -> Dataset {
    GaussianMixture::new(784, 10)
        .spread(0.14)
        .label_noise(0.02)
        .samples(400)
        .generate("mnist-like", 0x784)
}

/// Looks up one task by name and generates its dataset.
pub fn load(name: &str) -> Option<Dataset> {
    specs()
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| s.dataset())
}

/// Generates every task's dataset, in Table II order.
pub fn load_all() -> Vec<Dataset> {
    specs().into_iter().map(|s| s.dataset()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_tasks_with_table2_dimensions() {
        let specs = specs();
        assert_eq!(specs.len(), 10);
        let expect = [
            ("breast", 30, 2),
            ("glass", 9, 6),
            ("ionosphere", 34, 2),
            ("iris", 4, 3),
            ("optdigits", 64, 10),
            ("robot", 90, 5),
            ("sonar", 60, 2),
            ("spam", 57, 2),
            ("vehicle", 18, 4),
            ("wine", 13, 3),
        ];
        for (spec, (name, nf, nc)) in specs.iter().zip(expect) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.n_features, nf, "{name}");
            assert_eq!(spec.n_classes, nc, "{name}");
        }
    }

    #[test]
    fn all_fit_the_90_input_accelerator() {
        for spec in specs() {
            assert!(spec.n_features <= 90, "{} too wide", spec.name);
            assert!(spec.n_classes <= 10, "{} too many classes", spec.name);
            assert!(spec.hidden <= 16, "{}", spec.name);
        }
    }

    #[test]
    fn hyper_parameters_match_table2() {
        let by_name = |n: &str| specs().into_iter().find(|s| s.name == n).unwrap();
        let robot = by_name("robot");
        assert_eq!(robot.learning_rate, 0.2);
        assert_eq!(robot.epochs, 1600);
        assert_eq!(robot.hidden, 6);
        let wine = by_name("wine");
        assert_eq!(wine.learning_rate, 0.2);
        assert_eq!(wine.epochs, 1600);
        assert_eq!(wine.hidden, 4);
        let ionosphere = by_name("ionosphere");
        assert_eq!(ionosphere.learning_rate, 0.3);
        assert_eq!(ionosphere.epochs, 100);
        assert_eq!(ionosphere.hidden, 6);
    }

    #[test]
    fn load_generates_correct_shapes() {
        let ds = load("vehicle").unwrap();
        assert_eq!(ds.n_features(), 18);
        assert_eq!(ds.n_classes(), 4);
        assert_eq!(ds.len(), 846);
        assert!(load("nonexistent").is_none());
    }

    #[test]
    fn load_all_is_deterministic() {
        let a = load_all();
        let b = load_all();
        assert_eq!(a, b);
    }

    #[test]
    fn mnist_like_exceeds_the_array() {
        let ds = mnist_like();
        assert_eq!(ds.n_features(), 784);
        assert_eq!(ds.n_classes(), 10);
        assert!(ds.n_features() > 90, "must require time-multiplexing");
        assert_eq!(mnist_like(), mnist_like(), "deterministic");
    }
}
