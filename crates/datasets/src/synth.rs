//! Seeded Gaussian-mixture generators for synthetic classification tasks.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::{Dataset, Sample};

/// A synthetic classification task: each class is a mixture of Gaussian
/// clusters in `[0, 1]^d`, with optional label noise controlling how
/// learnable the task is.
///
/// Generation is fully deterministic given the seed, so every experiment
/// binary regenerates identical data.
///
/// # Example
///
/// ```
/// use dta_datasets::GaussianMixture;
/// let ds = GaussianMixture::new(8, 3)
///     .clusters_per_class(2)
///     .spread(0.12)
///     .samples(300)
///     .generate("demo", 42);
/// assert_eq!(ds.len(), 300);
/// assert_eq!(ds.n_features(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct GaussianMixture {
    n_features: usize,
    n_classes: usize,
    clusters_per_class: usize,
    spread: f64,
    label_noise: f64,
    samples: usize,
}

impl GaussianMixture {
    /// Starts a generator for `n_features`-dimensional data over
    /// `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_features == 0` or `n_classes < 2`.
    pub fn new(n_features: usize, n_classes: usize) -> GaussianMixture {
        assert!(n_features >= 1, "need at least one feature");
        assert!(n_classes >= 2, "need at least two classes");
        GaussianMixture {
            n_features,
            n_classes,
            clusters_per_class: 1,
            spread: 0.12,
            label_noise: 0.0,
            samples: 200,
        }
    }

    /// Number of Gaussian clusters per class (default 1). More clusters
    /// make the decision boundary less linear.
    pub fn clusters_per_class(mut self, k: usize) -> GaussianMixture {
        assert!(k >= 1);
        self.clusters_per_class = k;
        self
    }

    /// Standard deviation of each cluster (default 0.12). Larger spread
    /// means more class overlap and a harder task.
    pub fn spread(mut self, sigma: f64) -> GaussianMixture {
        assert!(sigma > 0.0);
        self.spread = sigma;
        self
    }

    /// Fraction of samples whose label is replaced by a random class
    /// (default 0), bounding the achievable accuracy.
    pub fn label_noise(mut self, p: f64) -> GaussianMixture {
        assert!((0.0..=1.0).contains(&p));
        self.label_noise = p;
        self
    }

    /// Number of samples to generate (default 200).
    pub fn samples(mut self, n: usize) -> GaussianMixture {
        assert!(n >= 1);
        self.samples = n;
        self
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, name: &str, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // Cluster centres, kept away from the borders so the spread does
        // not clip too often.
        let mut centres: Vec<Vec<Vec<f64>>> = Vec::with_capacity(self.n_classes);
        for _class in 0..self.n_classes {
            let class_centres = (0..self.clusters_per_class)
                .map(|_| {
                    (0..self.n_features)
                        .map(|_| rng.random_range(0.15..0.85))
                        .collect()
                })
                .collect();
            centres.push(class_centres);
        }

        let mut samples = Vec::with_capacity(self.samples);
        for i in 0..self.samples {
            let class = i % self.n_classes; // balanced classes
            let cluster = rng.random_range(0..self.clusters_per_class);
            let centre = &centres[class][cluster];
            let features = centre
                .iter()
                .map(|&c| (c + gaussian(&mut rng) * self.spread).clamp(0.0, 1.0))
                .collect();
            let label = if self.label_noise > 0.0 && rng.random_bool(self.label_noise) {
                rng.random_range(0..self.n_classes)
            } else {
                class
            };
            samples.push(Sample { features, label });
        }
        Dataset::new(name, self.n_features, self.n_classes, samples)
    }
}

/// Standard normal variate by Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = GaussianMixture::new(5, 3).samples(100);
        assert_eq!(g.generate("a", 7), g.generate("a", 7));
        assert_ne!(g.generate("a", 7), g.generate("a", 8));
    }

    #[test]
    fn features_stay_in_unit_box() {
        let ds = GaussianMixture::new(10, 4)
            .spread(0.5)
            .samples(500)
            .generate("wide", 3);
        for s in ds.samples() {
            for &f in &s.features {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn classes_balanced() {
        let ds = GaussianMixture::new(4, 5).samples(500).generate("bal", 1);
        for count in ds.class_counts() {
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn label_noise_moves_labels() {
        let clean = GaussianMixture::new(3, 2).samples(400).generate("c", 9);
        let noisy = GaussianMixture::new(3, 2)
            .samples(400)
            .label_noise(0.3)
            .generate("n", 9);
        let clean_major = clean.majority_baseline();
        // With 30% label noise the class counts shift away from perfect
        // balance only slightly, but individual labels differ.
        let differing = clean
            .samples()
            .iter()
            .zip(noisy.samples())
            .filter(|(a, b)| a.label != b.label)
            .count();
        assert!(differing > 40, "noise must flip a chunk of labels");
        assert!(clean_major <= 0.51);
    }

    #[test]
    fn separable_classes_have_distinct_means() {
        let ds = GaussianMixture::new(6, 2)
            .spread(0.05)
            .samples(200)
            .generate("sep", 5);
        let mut means = vec![vec![0.0f64; 6]; 2];
        let counts = ds.class_counts();
        for s in ds.samples() {
            for (m, &f) in means[s.label].iter_mut().zip(&s.features) {
                *m += f;
            }
        }
        for (c, m) in means.iter_mut().enumerate() {
            for v in m.iter_mut() {
                *v /= counts[c] as f64;
            }
        }
        let dist: f64 = means[0]
            .iter()
            .zip(&means[1])
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.2, "class means too close: {dist}");
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn one_class_rejected() {
        let _ = GaussianMixture::new(3, 1);
    }
}
