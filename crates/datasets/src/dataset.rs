//! In-memory labelled datasets with cross-validation splitting.

use std::fmt;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One labelled example: a feature vector (normalized to `[0, 1]`) and a
/// class index.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Feature values, one per attribute, in `[0, 1]`.
    pub features: Vec<f64>,
    /// Class index in `0..n_classes`.
    pub label: usize,
}

/// A labelled classification dataset.
///
/// Invariants (checked at construction): every sample has exactly
/// `n_features` features and a label below `n_classes`.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    name: String,
    n_features: usize,
    n_classes: usize,
    samples: Vec<Sample>,
}

/// One cross-validation fold: indices into [`Dataset::samples`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fold {
    /// Training-set sample indices.
    pub train: Vec<usize>,
    /// Held-out test-set sample indices.
    pub test: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset, validating shape invariants.
    ///
    /// # Panics
    ///
    /// Panics if any sample has the wrong number of features or an
    /// out-of-range label, or if the dataset is empty.
    pub fn new(
        name: impl Into<String>,
        n_features: usize,
        n_classes: usize,
        samples: Vec<Sample>,
    ) -> Dataset {
        assert!(!samples.is_empty(), "dataset must not be empty");
        assert!(n_classes >= 2, "need at least two classes");
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(
                s.features.len(),
                n_features,
                "sample {i} has {} features, expected {n_features}",
                s.features.len()
            );
            assert!(
                s.label < n_classes,
                "sample {i} label {} out of range 0..{n_classes}",
                s.label
            );
        }
        Dataset {
            name: name.into(),
            n_features,
            n_classes,
            samples,
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The examples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the dataset has no examples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into `k` cross-validation folds after a seeded shuffle —
    /// the paper evaluates every accuracy with 10-fold cross-validation.
    ///
    /// Every sample appears in exactly one test set; fold sizes differ by
    /// at most one.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > len()`.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<Fold> {
        assert!(k >= 2, "need at least 2 folds");
        assert!(k <= self.len(), "more folds than samples");
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let test: Vec<usize> = order.iter().copied().skip(f).step_by(k).collect();
            let train: Vec<usize> = order
                .iter()
                .copied()
                .filter(|i| !test.contains(i))
                .collect();
            folds.push(Fold { train, test });
        }
        folds
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// The accuracy a majority-class predictor achieves — the baseline
    /// any trained network must beat.
    pub fn majority_baseline(&self) -> f64 {
        let max = self.class_counts().into_iter().max().unwrap_or(0);
        max as f64 / self.len() as f64
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} samples, {} attributes, {} classes)",
            self.name,
            self.len(),
            self.n_features,
            self.n_classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let samples = (0..n)
            .map(|i| Sample {
                features: vec![i as f64 / n as f64, 0.5],
                label: i % 2,
            })
            .collect();
        Dataset::new("toy", 2, 2, samples)
    }

    #[test]
    fn accessors() {
        let d = toy(10);
        assert_eq!(d.name(), "toy");
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
        assert_eq!(d.class_counts(), vec![5, 5]);
        assert_eq!(d.majority_baseline(), 0.5);
        assert!(d.to_string().contains("10 samples"));
    }

    #[test]
    fn k_folds_partition_everything() {
        let d = toy(23);
        let folds = d.k_folds(10, 7);
        assert_eq!(folds.len(), 10);
        let mut seen = vec![0u32; d.len()];
        for fold in &folds {
            for &i in &fold.test {
                seen[i] += 1;
            }
            // Train and test are disjoint and together cover everything.
            assert_eq!(fold.train.len() + fold.test.len(), d.len());
            for &i in &fold.test {
                assert!(!fold.train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each sample tested once");
    }

    #[test]
    fn k_folds_deterministic_per_seed() {
        let d = toy(30);
        assert_eq!(d.k_folds(5, 1), d.k_folds(5, 1));
        assert_ne!(d.k_folds(5, 1), d.k_folds(5, 2));
    }

    #[test]
    fn fold_sizes_balanced() {
        let d = toy(25);
        for fold in d.k_folds(10, 0) {
            assert!(fold.test.len() == 2 || fold.test.len() == 3);
        }
    }

    #[test]
    #[should_panic(expected = "label")]
    fn bad_label_rejected() {
        Dataset::new(
            "bad",
            1,
            2,
            vec![Sample {
                features: vec![0.0],
                label: 5,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "features")]
    fn bad_width_rejected() {
        Dataset::new(
            "bad",
            3,
            2,
            vec![Sample {
                features: vec![0.0],
                label: 0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        Dataset::new("bad", 1, 2, vec![]);
    }
}
