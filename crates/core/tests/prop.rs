//! Property tests for the analytical models: structural monotonicity
//! and calibration invariants that must hold for every geometry.

use dta_ann::Topology;
use dta_core::cost::{CostModel, Inventory, SensitiveAreaReport};
use dta_core::ProcessorModel;
use proptest::prelude::*;

fn any_topology() -> impl Strategy<Value = Topology> {
    (1usize..200, 1usize..40, 1usize..20).prop_map(|(i, h, o)| Topology::new(i, h, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_is_positive_and_consistent(topo in any_topology()) {
        let model = CostModel::calibrated_90nm();
        let r = model.report(topo);
        prop_assert!(r.area_mm2 > 0.0);
        prop_assert!(r.latency_ns > 0.0);
        prop_assert!(r.energy_per_row_nj > 0.0);
        // Power is defined as energy over latency.
        prop_assert!((r.power_w - r.energy_per_row_nj / r.latency_ns).abs() < 1e-9);
    }

    #[test]
    fn area_monotone_in_every_dimension(topo in any_topology()) {
        let model = CostModel::calibrated_90nm();
        let base = model.report(topo).area_mm2;
        let more_in = model
            .report(Topology::new(topo.inputs + 1, topo.hidden, topo.outputs))
            .area_mm2;
        let more_hid = model
            .report(Topology::new(topo.inputs, topo.hidden + 1, topo.outputs))
            .area_mm2;
        let more_out = model
            .report(Topology::new(topo.inputs, topo.hidden, topo.outputs + 1))
            .area_mm2;
        prop_assert!(more_in > base);
        prop_assert!(more_hid > base);
        prop_assert!(more_out > base);
    }

    #[test]
    fn latency_monotone_in_fan_in(topo in any_topology()) {
        // Doubling the inputs deepens (or keeps) the accumulation tree.
        let model = CostModel::calibrated_90nm();
        let base = model.report(topo).latency_ns;
        let wider = model
            .report(Topology::new(topo.inputs * 2, topo.hidden, topo.outputs))
            .latency_ns;
        prop_assert!(wider >= base);
    }

    #[test]
    fn processor_cycles_scale_with_macs(topo in any_topology()) {
        let p = ProcessorModel::stealey();
        let cycles = p.cycles_per_row(topo);
        let macs = (topo.inputs * topo.hidden + topo.hidden * topo.outputs) as u64;
        // Each MAC costs at least a dozen cycles on the in-order core
        // and the model never charges more than ~2x the MAC bill.
        prop_assert!(cycles >= macs * p.cycles_per_mac);
        prop_assert!(cycles <= macs * p.cycles_per_mac * 2 + 10_000);
    }

    #[test]
    fn energy_ratio_always_large(topo in any_topology()) {
        // The paper's two-orders-of-magnitude claim holds across
        // geometries in the calibrated model (the ratio is driven by
        // per-MAC energy, which is geometry-independent).
        let model = CostModel::calibrated_90nm();
        let p = ProcessorModel::stealey();
        let ratio = p.energy_ratio(topo, &model.report(topo));
        prop_assert!(ratio > 100.0, "ratio {} at {}", ratio, topo);
    }

    #[test]
    fn inventory_transistors_match_components(topo in any_topology()) {
        let inv = Inventory::for_geometry(topo);
        prop_assert_eq!(
            inv.multipliers,
            (topo.inputs * topo.hidden + topo.hidden * topo.outputs) as u64
        );
        prop_assert!(inv.transistors > inv.multipliers);
        prop_assert!(inv.depth > 0);
    }

    #[test]
    fn sensitive_fraction_bounded(topo in any_topology()) {
        let r = SensitiveAreaReport::for_geometry(topo);
        prop_assert!((0.0..=1.0).contains(&r.fraction_of_output_layer));
        prop_assert!((0.0..=1.0).contains(&r.fraction_of_total));
        prop_assert!(r.fraction_of_total <= r.fraction_of_output_layer);
    }
}
