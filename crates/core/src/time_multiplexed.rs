//! The time-multiplexed baseline accelerator (paper §II).
//!
//! Conventional hardware ANNs (Intel ETANN and most designs since) are
//! time-multiplexed: only a few hardware neurons exist, synaptic weights
//! live in a central SRAM bank, and "a significant share of the logic is
//! dedicated to the time-multiplexing process itself: address decoder,
//! routing synapses to operators, results back to storage". This module
//! models that organization to quantify the paper's two claims against
//! it:
//!
//! 1. **a faulty transistor within the control logic wrecks the
//!    accelerator** — control-logic defects are catastrophic, unlike the
//!    distributed spatial design where a faulty neuron is retrained
//!    around;
//! 2. **defect multiplication** — a defect in one shared hardware neuron
//!    is seen by *every* logical neuron mapped onto it, multiplying the
//!    effective defect count by the multiplexing factor.

use std::fmt;

use rand::Rng;

use dta_ann::{FaultPlan, ForwardTrace, Layer, Mlp};
use dta_circuits::FaultModel;
use dta_fixed::{Fx, SigmoidLut};

use crate::cost::OperatorMetrics;

/// Where a random defect landed in the time-multiplexed design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TmDefect {
    /// In the shared control logic (decoder, routing): catastrophic.
    Control,
    /// In the SRAM weight bank: one stored weight word has a stuck bit.
    SramBit {
        /// Word index in the bank.
        word: usize,
        /// Bit position.
        bit: u32,
        /// Stuck value.
        value: bool,
    },
    /// In a shared hardware neuron's datapath operator.
    SharedNeuron {
        /// Physical neuron index.
        neuron: usize,
    },
}

impl fmt::Display for TmDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmDefect::Control => write!(f, "control logic (catastrophic)"),
            TmDefect::SramBit { word, bit, value } => {
                write!(
                    f,
                    "SRAM word {word} bit {bit} stuck at {}",
                    u8::from(*value)
                )
            }
            TmDefect::SharedNeuron { neuron } => {
                write!(f, "shared hardware neuron {neuron}")
            }
        }
    }
}

/// A time-multiplexed accelerator with `physical_neurons` shared hardware
/// neurons, an SRAM weight bank, and central control logic.
///
/// Logical neuron `j` of either layer executes on physical neuron
/// `j % physical_neurons`, so its operator faults are shared.
///
/// # Example
///
/// ```
/// use dta_core::TimeMultiplexedAccelerator;
/// use dta_ann::{Mlp, Topology};
///
/// let mut tm = TimeMultiplexedAccelerator::new(2);
/// let mlp = Mlp::new(Topology::new(8, 6, 3), 1);
/// assert_eq!(tm.multiplexing_factor(mlp.topology()), 5); // ceil(9/2)
/// let trace = tm.forward(&mlp, &[0.5; 8]);
/// assert_eq!(trace.output.len(), 3);
/// ```
#[derive(Debug)]
pub struct TimeMultiplexedAccelerator {
    physical_neurons: usize,
    /// Faults of the shared physical neurons (keyed in `Layer::Hidden`
    /// space by physical index).
    faults: FaultPlan,
    /// Stuck bits in the SRAM weight bank: `(word, and_mask, or_mask)`.
    sram_stuck: Vec<(usize, u16, u16)>,
    /// A control-logic defect has wrecked the accelerator.
    broken: bool,
    defect_log: Vec<TmDefect>,
    /// SRAM capacity in 16-bit words.
    sram_words: usize,
    lut: SigmoidLut,
}

impl TimeMultiplexedAccelerator {
    /// SRAM capacity: enough for the largest network the spatial design
    /// holds (90×10 + 10×10 weights plus biases).
    pub const SRAM_WORDS: usize = 1020;

    /// Creates a baseline with the given number of shared hardware
    /// neurons (classic designs use a handful; 2 by default in the
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics if `physical_neurons` is zero.
    pub fn new(physical_neurons: usize) -> TimeMultiplexedAccelerator {
        assert!(physical_neurons >= 1);
        TimeMultiplexedAccelerator {
            physical_neurons,
            faults: FaultPlan::new(90),
            sram_stuck: Vec::new(),
            broken: false,
            defect_log: Vec::new(),
            sram_words: Self::SRAM_WORDS,
            lut: SigmoidLut::new(),
        }
    }

    /// Number of shared hardware neurons.
    pub fn physical_neurons(&self) -> usize {
        self.physical_neurons
    }

    /// True once a control-logic defect has occurred.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The injected defects so far.
    pub fn defect_log(&self) -> &[TmDefect] {
        &self.defect_log
    }

    /// How many time steps a logical network needs per row: every
    /// logical neuron must pass through a shared physical neuron.
    pub fn multiplexing_factor(&self, logical: dta_ann::Topology) -> usize {
        (logical.hidden + logical.outputs).div_ceil(self.physical_neurons)
    }

    /// Effective defect count as seen by the application network: each
    /// shared-neuron defect is replicated onto every logical neuron
    /// mapped to that physical neuron (paper §II: "effectively
    /// multiplying the number of defects by as much as the multiplexing
    /// factor").
    pub fn effective_defects(&self, logical: dta_ann::Topology) -> usize {
        let shared = self
            .defect_log
            .iter()
            .filter(|d| matches!(d, TmDefect::SharedNeuron { .. }))
            .count();
        let other = self.defect_log.len() - shared;
        shared * self.multiplexing_factor(logical) + other
    }

    /// Transistor budgets of the three defect regions, derived from the
    /// measured operator netlists: `(datapath, sram, control)`.
    ///
    /// SRAM: 6T cells. Control: address decode plus read routing,
    /// modeled at 40 transistors per SRAM word (amortized column muxes
    /// and decoder) — the "significant share" of §II.
    pub fn transistor_budget(&self) -> (u64, u64, u64) {
        let m = OperatorMetrics::measured();
        let datapath = self.physical_neurons as u64
            * (m.mul_transistors + m.add_transistors + m.act_transistors);
        let sram = self.sram_words as u64 * 16 * 6;
        let control = self.sram_words as u64 * 40;
        (datapath, sram, control)
    }

    /// Injects one random transistor-level defect, choosing the region
    /// proportionally to its transistor count. Returns where it landed.
    pub fn inject_random_defect<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TmDefect {
        let (datapath, sram, control) = self.transistor_budget();
        let total = datapath + sram + control;
        let draw = rng.random_range(0..total);
        let defect = if draw < control {
            self.broken = true;
            TmDefect::Control
        } else if draw < control + sram {
            let word = rng.random_range(0..self.sram_words);
            let bit = rng.random_range(0..16u32);
            let value = rng.random_bool(0.5);
            let (mut and_mask, mut or_mask) = (0xFFFFu16, 0x0000u16);
            if value {
                or_mask |= 1 << bit;
            } else {
                and_mask &= !(1 << bit);
            }
            self.sram_stuck.push((word, and_mask, or_mask));
            TmDefect::SramBit { word, bit, value }
        } else {
            let before: std::collections::HashSet<usize> = self
                .faults
                .faulty_neurons(Layer::Hidden)
                .into_iter()
                .collect();
            self.faults.inject_random_hidden(
                self.physical_neurons,
                FaultModel::TransistorLevel,
                rng,
            );
            // Report which physical neuron the plan targeted.
            let neuron = self
                .faults
                .faulty_neurons(Layer::Hidden)
                .into_iter()
                .find(|n| !before.contains(n))
                .unwrap_or_else(|| {
                    // The defect landed in an already-faulty neuron; any
                    // of them is a valid report.
                    *self
                        .faults
                        .faulty_neurons(Layer::Hidden)
                        .first()
                        .expect("at least one faulty neuron")
                });
            TmDefect::SharedNeuron { neuron }
        };
        self.defect_log.push(defect.clone());
        defect
    }

    /// Fetches a logical weight through the (possibly stuck) SRAM bank.
    fn weight(&self, flat_index: usize, w: f64) -> Fx {
        let mut q = Fx::from_f64(w);
        for &(word, and_mask, or_mask) in &self.sram_stuck {
            if word == flat_index {
                q = Fx::from_bits((q.to_bits() & and_mask) | or_mask);
            }
        }
        q
    }

    /// Forward pass of a logical network through the shared neurons.
    /// If the control logic is broken the outputs are meaningless (all
    /// zeros), reflecting a wrecked accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the network's input count.
    pub fn forward(&mut self, mlp: &Mlp, x: &[f64]) -> ForwardTrace {
        let topo = mlp.topology();
        assert_eq!(x.len(), topo.inputs);
        if self.broken {
            return ForwardTrace {
                hidden: vec![0.0; topo.hidden],
                output_pre: vec![0.0; topo.outputs],
                output: vec![0.0; topo.outputs],
            };
        }
        let xq: Vec<Fx> = x.iter().map(|&v| Fx::from_f64(v)).collect();
        let k = self.physical_neurons;

        let mut hidden_fx = Vec::with_capacity(topo.hidden);
        for j in 0..topo.hidden {
            let bias_idx = j * (topo.inputs + 1) + topo.inputs;
            let bias = self.weight(bias_idx, mlp.w_hidden(j, topo.inputs));
            let phys = j % k;
            let ws: Vec<Fx> = (0..topo.inputs)
                .map(|i| self.weight(j * (topo.inputs + 1) + i, mlp.w_hidden(j, i)))
                .collect();
            let acc = self.shared_neuron_sum(phys, bias, &xq, &ws);
            let y = match self.faults.neuron_mut(Layer::Hidden, phys) {
                Some(nf) => nf.activation(acc, &self.lut),
                None => self.lut.eval(acc),
            };
            hidden_fx.push(y);
        }

        let out_base = topo.hidden * (topo.inputs + 1);
        let mut output_pre = Vec::with_capacity(topo.outputs);
        let mut output = Vec::with_capacity(topo.outputs);
        for o in 0..topo.outputs {
            let bias_idx = out_base + o * (topo.hidden + 1) + topo.hidden;
            let bias = self.weight(bias_idx, mlp.w_output(o, topo.hidden));
            // Output neurons share the same physical neurons, offset by
            // the hidden count (round-robin schedule).
            let phys = (topo.hidden + o) % k;
            let ws: Vec<Fx> = (0..topo.hidden)
                .map(|j| self.weight(out_base + o * (topo.hidden + 1) + j, mlp.w_output(o, j)))
                .collect();
            let acc = self.shared_neuron_sum(phys, bias, &hidden_fx, &ws);
            output_pre.push(acc.to_f64());
            let y = match self.faults.neuron_mut(Layer::Hidden, phys) {
                Some(nf) => nf.activation(acc, &self.lut),
                None => self.lut.eval(acc),
            };
            output.push(y.to_f64());
        }
        ForwardTrace {
            hidden: hidden_fx.iter().map(|h| h.to_f64()).collect(),
            output_pre,
            output,
        }
    }

    /// Multiply-accumulate through one shared physical neuron.
    fn shared_neuron_sum(&mut self, phys: usize, bias: Fx, inputs: &[Fx], ws: &[Fx]) -> Fx {
        let Some(nf) = self.faults.neuron_mut(Layer::Hidden, phys) else {
            let mut acc = bias;
            for (w, &xi) in ws.iter().zip(inputs) {
                acc += *w * xi;
            }
            return acc;
        };
        let n_logical = inputs.len();
        let n_eff = n_logical.max(nf.max_synapse_excl());
        let mut acc = bias;
        for i in 0..n_eff {
            let (w, xi) = if i < n_logical {
                (ws[i], inputs[i])
            } else {
                (Fx::ZERO, Fx::ZERO)
            };
            let w = nf.latch_filter(i, w);
            let p = match nf.multiplier_mut(i) {
                Some(hw) => hw.mul(w, xi),
                None => w * xi,
            };
            acc = match nf.adder_mut(i) {
                Some(hw) => hw.add(acc, p),
                None => acc + p,
            };
        }
        acc
    }

    /// Classification accuracy of a logical network on this (possibly
    /// defective) baseline. A broken accelerator classifies everything
    /// as class 0, i.e. near-chance accuracy.
    pub fn accuracy(&mut self, mlp: &Mlp, ds: &dta_datasets::Dataset, idx: &[usize]) -> f64 {
        let correct = idx
            .iter()
            .filter(|&&s| {
                let sample = &ds.samples()[s];
                self.forward(mlp, &sample.features).predicted() == sample.label
            })
            .count();
        correct as f64 / idx.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_ann::Topology;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn healthy_tm_matches_spatial_forward() {
        let mlp = Mlp::new(Topology::new(6, 4, 3), 9);
        let lut = SigmoidLut::new();
        let mut tm = TimeMultiplexedAccelerator::new(2);
        let x = [0.2, 0.8, 0.5, 0.1, 0.9, 0.3];
        let spatial = mlp.forward_fixed(&x, &lut);
        let multiplexed = tm.forward(&mlp, &x);
        assert_eq!(spatial, multiplexed, "no defects: identical datapath");
    }

    #[test]
    fn multiplexing_factor_counts_passes() {
        let tm = TimeMultiplexedAccelerator::new(2);
        assert_eq!(tm.multiplexing_factor(Topology::new(90, 10, 10)), 10);
        let tm = TimeMultiplexedAccelerator::new(4);
        assert_eq!(tm.multiplexing_factor(Topology::new(8, 6, 3)), 3);
    }

    #[test]
    fn control_defect_wrecks_outputs() {
        let mut tm = TimeMultiplexedAccelerator::new(2);
        tm.broken = true; // force the catastrophic case
        let mlp = Mlp::new(Topology::new(4, 3, 2), 1);
        let trace = tm.forward(&mlp, &[0.5; 4]);
        assert!(trace.output.iter().all(|&y| y == 0.0));
        assert!(tm.is_broken());
    }

    #[test]
    fn control_region_is_hit_reasonably_often() {
        // With the structural budgets, control+SRAM are a visible slice
        // of the defect-site space — the vulnerability the paper calls
        // out.
        let tm = TimeMultiplexedAccelerator::new(2);
        let (d, s, c) = tm.transistor_budget();
        let frac = (s + c) as f64 / (d + s + c) as f64;
        assert!(frac > 0.3, "SRAM+control fraction {frac}");
        let cfrac = c as f64 / (d + s + c) as f64;
        assert!(cfrac > 0.1, "control fraction {cfrac}");
    }

    #[test]
    fn injection_logs_and_eventually_breaks() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut tm = TimeMultiplexedAccelerator::new(2);
        for _ in 0..40 {
            tm.inject_random_defect(&mut rng);
        }
        assert_eq!(tm.defect_log().len(), 40);
        // With ~20% control share, 40 defects essentially guarantee a
        // control hit.
        assert!(tm.is_broken());
    }

    #[test]
    fn sram_stuck_bit_corrupts_specific_weight() {
        let mut tm = TimeMultiplexedAccelerator::new(2);
        // Stick bit 15 of hidden weight (0,0) to 1: large negative weight.
        tm.sram_stuck.push((0, 0xFFFF, 0x8000));
        let mlp = Mlp::new(Topology::new(2, 2, 2), 3);
        let lut = SigmoidLut::new();
        let healthy = mlp.forward_fixed(&[1.0, 0.0], &lut);
        let faulty = tm.forward(&mlp, &[1.0, 0.0]);
        assert_ne!(healthy.hidden[0], faulty.hidden[0]);
        // Neuron 1's weights are untouched.
        assert_eq!(healthy.hidden[1], faulty.hidden[1]);
    }

    #[test]
    fn shared_neuron_defects_multiply() {
        let mut tm = TimeMultiplexedAccelerator::new(2);
        tm.defect_log.push(TmDefect::SharedNeuron { neuron: 0 });
        tm.defect_log.push(TmDefect::SramBit {
            word: 3,
            bit: 1,
            value: true,
        });
        let topo = Topology::new(90, 10, 10);
        // factor 10: the shared defect counts 10x, the SRAM one 1x.
        assert_eq!(tm.effective_defects(topo), 11);
    }

    #[test]
    fn defect_display() {
        assert!(TmDefect::Control.to_string().contains("catastrophic"));
    }
}
