//! Defect-injection campaigns: the experiment logic behind Figures 10
//! and 11.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_ann::{cross_validate, FaultPlan, ForwardMode, Mlp, Topology, Trainer};
use dta_circuits::FaultModel;
use dta_datasets::{Dataset, TaskSpec};
use dta_fixed::SigmoidLut;

use crate::parallel::parallel_map;

/// Parameters of a defect-tolerance campaign. The paper uses 100
/// repetitions, 10 folds and the Table II epochs; those are expensive,
/// so the config scales every axis (the experiment binaries expose
/// flags, the defaults keep turnaround in minutes).
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignConfig {
    /// Defect counts to sweep (the Figure 10 x-axis, 0..27).
    pub defect_counts: Vec<usize>,
    /// Independent repetitions per defect count (random defect sets).
    pub repetitions: usize,
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Training epochs; `None` uses the task's Table II value.
    pub epochs: Option<usize>,
    /// Fault model to inject with.
    pub model: FaultModel,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the (defect-count × repetition) grid:
    /// `1` = serial on the calling thread, `0` = all available cores.
    /// Results are bit-identical for every value — each cell's RNG is
    /// derived from `seed` and the cell coordinates alone.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            defect_counts: (0..=27).step_by(3).collect(),
            repetitions: 3,
            folds: 3,
            epochs: Some(40),
            model: FaultModel::TransistorLevel,
            seed: 0xD7A,
            threads: 1,
        }
    }
}

/// One point of the Figure 10 curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Number of injected defects.
    pub defects: usize,
    /// Mean cross-validated accuracy over repetitions.
    pub mean_accuracy: f64,
    /// Worst repetition.
    pub min_accuracy: f64,
    /// Best repetition.
    pub max_accuracy: f64,
}

/// Runs the Figure 10 experiment for one task: for each defect count,
/// draw random defect sets in the input/hidden stage of the 90-synapse
/// silicon, retrain through the faulty forward path, and measure
/// cross-validated accuracy. "The N defects of a network remain the same
/// while the network is re-trained and tested."
pub fn defect_tolerance_curve(spec: &TaskSpec, cfg: &CampaignConfig) -> Vec<CurvePoint> {
    let ds = spec.dataset();
    let epochs = cfg.epochs.unwrap_or(spec.epochs);
    let trainer = Trainer::new(spec.learning_rate, 0.1, epochs, ForwardMode::Fixed);

    // Flatten the (defect-count × repetition) grid into independent
    // cells and fan them over the worker pool. Each cell seeds its own
    // ChaCha8 stream from the master seed and its coordinates — the
    // derivation below is byte-for-byte the one the serial loop always
    // used, so any thread count reproduces the serial accuracies
    // exactly.
    let reps = cfg.repetitions;
    assert!(reps > 0, "campaign needs at least one repetition");
    let accs = parallel_map(cfg.defect_counts.len() * reps, cfg.threads, |cell| {
        let n_defects = cfg.defect_counts[cell / reps];
        let rep = cell % reps;
        campaign_cell(spec, cfg, &trainer, &ds, n_defects, rep)
    });

    cfg.defect_counts
        .iter()
        .zip(accs.chunks_exact(reps))
        .map(|(&n_defects, accs)| CurvePoint {
            defects: n_defects,
            mean_accuracy: accs.iter().sum::<f64>() / accs.len() as f64,
            min_accuracy: accs.iter().copied().fold(f64::INFINITY, f64::min),
            max_accuracy: accs.iter().copied().fold(0.0, f64::max),
        })
        .collect()
}

/// One grid cell of the Figure 10 campaign: draw the defect set for
/// `(n_defects, rep)`, retrain through the faulty forward path, return
/// the cross-validated accuracy.
fn campaign_cell(
    spec: &TaskSpec,
    cfg: &CampaignConfig,
    trainer: &Trainer,
    ds: &Dataset,
    n_defects: usize,
    rep: usize,
) -> f64 {
    let mut rng =
        ChaCha8Rng::seed_from_u64(cfg.seed ^ (n_defects as u64) << 24 ^ (rep as u64) << 8);
    let mut plan = FaultPlan::new(90);
    for _ in 0..n_defects {
        plan.inject_random_hidden(spec.hidden, cfg.model, &mut rng);
    }
    let cv = cross_validate(
        trainer,
        ds,
        spec.hidden,
        cfg.folds,
        cfg.seed ^ rep as u64,
        Some(&mut plan),
    );
    cv.mean()
}

/// Where a Figure 11 defect was injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputSite {
    /// The final accumulation adder of an output neuron.
    Adder,
    /// The activation unit of an output neuron.
    Activation,
}

/// One Figure 11 measurement: a single output-layer defect, retrained,
/// with the resulting accuracy and the error amplitude it induces at the
/// faulty neuron.
#[derive(Clone, Debug, PartialEq)]
pub struct AmplitudePoint {
    /// Mean absolute error at the faulty neuron's adder output (or the
    /// activation output for activation-unit defects), over test rows.
    pub amplitude: f64,
    /// Cross-validated accuracy after retraining with the defect.
    pub accuracy: f64,
    /// Which unit was hit.
    pub site: OutputSite,
    /// Affected output neuron.
    pub neuron: usize,
}

/// Runs the Figure 11 experiment for one task: single random defects in
/// the output layer's most sensitive units (final adders, activation
/// functions), retraining, and per-row error-amplitude measurement.
///
/// Repetitions are independent cells and fan out over `threads` workers
/// (`1` = serial, `0` = all cores); as with
/// [`defect_tolerance_curve`], every thread count yields bit-identical
/// points because each repetition's RNG is derived from `seed ^ rep`
/// alone.
pub fn output_amplitude_curve(
    spec: &TaskSpec,
    repetitions: usize,
    epochs: Option<usize>,
    seed: u64,
    threads: usize,
) -> Vec<AmplitudePoint> {
    let ds = spec.dataset();
    let epochs = epochs.unwrap_or(spec.epochs);
    let trainer = Trainer::new(spec.learning_rate, 0.1, epochs, ForwardMode::Fixed);
    let topo = Topology::new(ds.n_features(), spec.hidden, ds.n_classes());
    let lut = SigmoidLut::new();

    parallel_map(repetitions, threads, |rep| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (rep as u64) << 16);
        let neuron = rng.random_range(0..ds.n_classes());
        let site = if rng.random_bool(0.5) {
            OutputSite::Adder
        } else {
            OutputSite::Activation
        };
        let mut plan = FaultPlan::new(90);
        match site {
            OutputSite::Adder => {
                // The final accumulation step feeds the activation
                // directly.
                plan.inject_output_adder(neuron, spec.hidden - 1, &mut rng)
            }
            OutputSite::Activation => plan.inject_output_activation(neuron, &mut rng),
        }

        // Single train/test split (the fold structure is immaterial for
        // the amplitude measurement; accuracy still uses held-out data).
        let folds = ds.k_folds(5, seed ^ rep as u64);
        let fold = &folds[0];
        let mut mlp = Mlp::new(topo, seed ^ 0xA5A5 ^ rep as u64);
        plan.reset_state();
        trainer.train(&mut mlp, &ds, &fold.train, Some(&mut plan), &mut rng);
        let accuracy = trainer.evaluate(&mlp, &ds, &fold.test, Some(&mut plan));

        // Amplitude: |faulty - healthy| at the defective unit, averaged
        // over the test rows.
        let mut total = 0.0;
        for &s in &fold.test {
            let x = &ds.samples()[s].features;
            let healthy = mlp.forward_fixed(x, &lut);
            let faulty = mlp.forward_faulty(x, &lut, &mut plan);
            total += match site {
                OutputSite::Adder => (faulty.output_pre[neuron] - healthy.output_pre[neuron]).abs(),
                OutputSite::Activation => (faulty.output[neuron] - healthy.output[neuron]).abs(),
            };
        }
        AmplitudePoint {
            amplitude: total / fold.test.len() as f64,
            accuracy,
            site,
            neuron,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_datasets::suite;

    fn tiny_cfg() -> CampaignConfig {
        CampaignConfig {
            defect_counts: vec![0, 8],
            repetitions: 1,
            folds: 2,
            epochs: Some(8),
            model: FaultModel::TransistorLevel,
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn curve_has_one_point_per_count() {
        let spec = suite::specs()
            .into_iter()
            .find(|s| s.name == "iris")
            .unwrap();
        let curve = defect_tolerance_curve(&spec, &tiny_cfg());
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].defects, 0);
        assert_eq!(curve[1].defects, 8);
        for p in &curve {
            assert!((0.0..=1.0).contains(&p.mean_accuracy));
            assert!(p.min_accuracy <= p.mean_accuracy);
            assert!(p.mean_accuracy <= p.max_accuracy);
        }
    }

    #[test]
    fn zero_defects_trains_well_even_tiny() {
        let spec = suite::specs()
            .into_iter()
            .find(|s| s.name == "iris")
            .unwrap();
        let cfg = CampaignConfig {
            defect_counts: vec![0],
            repetitions: 1,
            folds: 3,
            epochs: Some(25),
            ..tiny_cfg()
        };
        let curve = defect_tolerance_curve(&spec, &cfg);
        assert!(
            curve[0].mean_accuracy > 0.8,
            "clean iris accuracy {}",
            curve[0].mean_accuracy
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let spec = suite::specs()
            .into_iter()
            .find(|s| s.name == "iris")
            .unwrap();
        let a = defect_tolerance_curve(&spec, &tiny_cfg());
        let b = defect_tolerance_curve(&spec, &tiny_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn amplitude_experiment_produces_points() {
        let spec = suite::specs()
            .into_iter()
            .find(|s| s.name == "iris")
            .unwrap();
        let points = output_amplitude_curve(&spec, 3, Some(8), 11, 1);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.amplitude >= 0.0);
            assert!((0.0..=1.0).contains(&p.accuracy));
            assert!(p.neuron < 3);
        }
        // Determinism.
        assert_eq!(points, output_amplitude_curve(&spec, 3, Some(8), 11, 1));
    }

    #[test]
    fn parallel_curve_is_bit_identical_to_serial() {
        let spec = suite::specs()
            .into_iter()
            .find(|s| s.name == "iris")
            .unwrap();
        let mut cfg = tiny_cfg();
        cfg.repetitions = 2;
        let serial = defect_tolerance_curve(&spec, &cfg);
        for threads in [2, 4] {
            cfg.threads = threads;
            let parallel = defect_tolerance_curve(&spec, &cfg);
            // PartialEq on f64 fields: bit-identical, not approximately
            // equal.
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn parallel_amplitude_curve_is_bit_identical_to_serial() {
        let spec = suite::specs()
            .into_iter()
            .find(|s| s.name == "iris")
            .unwrap();
        let serial = output_amplitude_curve(&spec, 4, Some(6), 11, 1);
        for threads in [2, 3] {
            let parallel = output_amplitude_curve(&spec, 4, Some(6), 11, threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }
}
