//! Defect-injection campaigns: the experiment logic behind Figures 10
//! and 11, plus the transient/intermittent variants.
//!
//! The campaign engine is resilient and resumable: each grid cell runs
//! under [`std::panic::catch_unwind`], so a panicking cell degrades to
//! a reported [`CellOutcome::Failed`] (after one retry with the same
//! derived seed) instead of killing the whole run, and finished cells
//! can be journaled to a [`Checkpoint`](crate::checkpoint::Checkpoint)
//! so an interrupted campaign resumes where it left off and reproduces
//! the uninterrupted curve byte-for-byte.

use std::fmt;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::PoisonError;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_ann::{cross_validate, FaultPlan, ForwardMode, Mlp, Topology, Trainer};
use dta_circuits::{Activation, FaultModel};
use dta_datasets::{Dataset, TaskSpec};
use dta_fixed::SigmoidLut;
use dta_mem::{MemGeometry, WeightMemory};

use crate::checkpoint::Checkpoint;
use crate::parallel::parallel_map;

/// Parameters of a defect-tolerance campaign. The paper uses 100
/// repetitions, 10 folds and the Table II epochs; those are expensive,
/// so the config scales every axis (the experiment binaries expose
/// flags, the defaults keep turnaround in minutes).
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignConfig {
    /// Defect counts to sweep (the Figure 10 x-axis, 0..27).
    pub defect_counts: Vec<usize>,
    /// Independent repetitions per defect count (random defect sets).
    pub repetitions: usize,
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Training epochs; `None` uses the task's Table II value.
    pub epochs: Option<usize>,
    /// Fault model to inject with.
    pub model: FaultModel,
    /// Fault lifetime of every injected defect: permanent (the paper's
    /// Figure 10), transient (active each evaluation with probability
    /// `p`), or intermittent (a duty cycle in evaluations).
    pub activation: Activation,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the (defect-count × repetition) grid:
    /// `1` = serial on the calling thread, `0` = all available cores.
    /// Results are bit-identical for every value — each cell's RNG is
    /// derived from `seed` and the cell coordinates alone.
    pub threads: usize,
    /// Fault-injection hooks for the engine itself: cells listed here
    /// panic on their first `attempts` runs. Used to test (and
    /// demonstrate) panic isolation, retry, and checkpoint recovery;
    /// leave empty for real campaigns.
    pub chaos: Vec<ChaosCell>,
    /// Weight-store profile for a *memory*-defect campaign. When
    /// present, every grid cell backs the weight latches with a
    /// bit-cell array of this shape and the defect axis injects array
    /// defects (stuck cells, row/column failures, sense-amp and
    /// write-driver faults, bitline bridges) instead of operator
    /// defects. `None` (the default) is the classic Figure 10 operator
    /// campaign.
    pub mem: Option<MemProfile>,
    /// Combined-surface injection: when `true` **and** `mem` is set,
    /// each cell splits its defect axis across both surfaces —
    /// `ceil(n/2)` operator defects in the datapath *and* `floor(n/2)`
    /// bit-cell defects in the weight store, simultaneously. This is
    /// the hard case for per-surface repair: one cell carries damage
    /// the memory rungs cannot see and damage the operator rungs
    /// cannot see. Ignored without a memory profile.
    pub combined: bool,
}

/// Shape of the weight store a memory-defect campaign attaches per
/// cell. Geometry follows the task's network; these are the repair
/// resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemProfile {
    /// Spare rows available for steering.
    pub spare_rows: usize,
    /// Spare columns available for steering.
    pub spare_cols: usize,
    /// Whether words are protected by the SEC-DED (22,16) code.
    pub ecc: bool,
}

impl Default for MemProfile {
    fn default() -> MemProfile {
        MemProfile {
            spare_rows: 2,
            spare_cols: 8,
            ecc: true,
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            defect_counts: (0..=27).step_by(3).collect(),
            repetitions: 3,
            folds: 3,
            epochs: Some(40),
            model: FaultModel::TransistorLevel,
            activation: Activation::Permanent,
            seed: 0xD7A,
            threads: 1,
            chaos: Vec::new(),
            mem: None,
            combined: false,
        }
    }
}

impl CampaignConfig {
    /// Stable description of every knob that determines cell results,
    /// used as the checkpoint-journal header. `threads` is excluded
    /// (results are thread-invariant) and so is `chaos` (an engine
    /// test hook, not part of the experiment).
    pub fn fingerprint(&self) -> String {
        let mut fp = format!(
            "v1 seed={:#x} counts={:?} reps={} folds={} epochs={:?} model={} activation={}",
            self.seed,
            self.defect_counts,
            self.repetitions,
            self.folds,
            self.epochs,
            self.model,
            self.activation,
        );
        // Appended only when a weight store is configured, so every
        // fingerprint (and journal) written before the memory campaign
        // existed stays byte-identical and resumable.
        if let Some(mem) = &self.mem {
            let _ = write!(
                fp,
                " mem=rows:{},cols:{},ecc:{}",
                mem.spare_rows, mem.spare_cols, mem.ecc
            );
            // And only when both knobs are set: combined-surface cells
            // are a distinct experiment, but a `combined` flag without
            // a store changes nothing and must not invalidate
            // journals.
            if self.combined {
                fp.push_str(" combined=true");
            }
        }
        fp
    }
}

/// A campaign-engine fault-injection hook: the cell at
/// `(defects, rep)` panics on its first `attempts` runs, succeeding
/// afterwards. With `attempts == 1` the built-in retry recovers the
/// cell; with `attempts >= 2` it is reported as failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosCell {
    /// Defect count coordinate of the targeted cell.
    pub defects: usize,
    /// Repetition coordinate of the targeted cell.
    pub rep: usize,
    /// How many consecutive runs of the cell panic.
    pub attempts: usize,
}

/// Errors surfaced by the campaign engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignError {
    /// `repetitions` was zero — the grid would be empty.
    NoRepetitions,
    /// The configured fault lifetime is invalid (transient probability
    /// outside `[0, 1]`, or an intermittent duty cycle longer than its
    /// period). Caught before any cell runs, so a bad flag fails fast
    /// instead of panicking mid-grid.
    BadActivation {
        /// The underlying [`dta_circuits::ActivationError`] message.
        detail: String,
    },
    /// A checkpoint journal could not be opened, parsed, or written,
    /// or belongs to a different campaign configuration.
    Checkpoint {
        /// Journal file path.
        path: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::NoRepetitions => {
                write!(f, "campaign needs at least one repetition")
            }
            CampaignError::BadActivation { detail } => {
                write!(f, "invalid fault activation: {detail}")
            }
            CampaignError::Checkpoint { path, detail } => {
                write!(f, "checkpoint {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// What happened to one (defect count × repetition) grid cell.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome {
    /// The cell trained and evaluated normally.
    Completed {
        /// Cross-validated accuracy.
        accuracy: f64,
        /// Whether the first attempt panicked and the retry succeeded.
        retried: bool,
    },
    /// Both the first attempt and the retry panicked; the campaign
    /// degraded gracefully instead of aborting.
    Failed {
        /// The panic payload (message) of the final attempt.
        panic: String,
    },
}

/// One point of the Figure 10 curve.
#[derive(Clone, Debug, PartialEq)]
pub struct CurvePoint {
    /// Number of injected defects.
    pub defects: usize,
    /// Mean cross-validated accuracy over completed repetitions.
    pub mean_accuracy: f64,
    /// Worst completed repetition.
    pub min_accuracy: f64,
    /// Best completed repetition.
    pub max_accuracy: f64,
    /// Repetitions that panicked twice and were dropped from the
    /// statistics (0 in a healthy run).
    pub failed: usize,
    /// Repetitions that panicked once and succeeded on retry.
    pub retried: usize,
}

/// Derives the per-cell RNG seed from the master seed and the cell
/// coordinates alone — this is what makes campaigns thread-invariant
/// and resumable. The packing keeps every `(defect_count, rep)` pair
/// in the documented ranges (counts ≤ 300, reps ≤ 1500) on a distinct
/// stream.
fn cell_seed(master: u64, n_defects: usize, rep: usize) -> u64 {
    master ^ (n_defects as u64) << 24 ^ (rep as u64) << 8
}

/// Runs the Figure 10 experiment for one task: for each defect count,
/// draw random defect sets in the input/hidden stage of the 90-synapse
/// silicon, retrain through the faulty forward path, and measure
/// cross-validated accuracy. "The N defects of a network remain the same
/// while the network is re-trained and tested."
///
/// Equivalent to [`defect_tolerance_curve_resumable`] without a
/// checkpoint.
///
/// # Errors
///
/// [`CampaignError::NoRepetitions`] if `cfg.repetitions == 0`.
pub fn defect_tolerance_curve(
    spec: &TaskSpec,
    cfg: &CampaignConfig,
) -> Result<Vec<CurvePoint>, CampaignError> {
    defect_tolerance_curve_resumable(spec, cfg, None)
}

/// [`defect_tolerance_curve`] with checkpoint/resume: cells already in
/// the journal are skipped and their recorded outcomes replayed, cells
/// computed now are appended as they finish. A campaign killed
/// mid-grid and restarted with the same journal reproduces the
/// uninterrupted curve byte-for-byte.
///
/// # Errors
///
/// [`CampaignError::NoRepetitions`] if `cfg.repetitions == 0`. Journal
/// errors are reported by [`Checkpoint::open`], not here.
pub fn defect_tolerance_curve_resumable(
    spec: &TaskSpec,
    cfg: &CampaignConfig,
    checkpoint: Option<&Checkpoint>,
) -> Result<Vec<CurvePoint>, CampaignError> {
    let reps = cfg.repetitions;
    if reps == 0 {
        return Err(CampaignError::NoRepetitions);
    }
    cfg.activation
        .validate()
        .map_err(|e| CampaignError::BadActivation {
            detail: e.to_string(),
        })?;
    let ds = spec.dataset();
    let epochs = cfg.epochs.unwrap_or(spec.epochs);
    let trainer = Trainer::new(spec.learning_rate, 0.1, epochs, ForwardMode::Fixed);

    // Flatten the (defect-count × repetition) grid into independent
    // cells and fan them over the worker pool. Each cell seeds its own
    // ChaCha8 stream from the master seed and its coordinates — the
    // derivation is byte-for-byte the one the serial loop always used,
    // so any thread count reproduces the serial accuracies exactly.
    let journal_error: std::sync::Mutex<Option<CampaignError>> = std::sync::Mutex::new(None);
    let outcomes = parallel_map(cfg.defect_counts.len() * reps, cfg.threads, |cell| {
        let n_defects = cfg.defect_counts[cell / reps];
        let rep = cell % reps;
        if let Some(ck) = checkpoint {
            if let Some(done) = ck.lookup(spec.name, n_defects, rep) {
                return done;
            }
        }
        let outcome = run_cell_resilient(spec, cfg, &trainer, &ds, n_defects, rep);
        if let Some(ck) = checkpoint {
            // A cell whose result cannot be journaled poisons resume:
            // stash the first failure and abort the campaign after the
            // in-flight cells drain, rather than continuing with silent
            // resume-state loss.
            if let Err(e) = ck.record(spec.name, n_defects, rep, &outcome) {
                // A worker that panicked while holding this mutex only
                // poisons the flag, not the data: recover the guard
                // rather than double-panicking on the hot path.
                journal_error
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get_or_insert(e);
            }
        }
        outcome
    });
    if let Some(e) = journal_error
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(e);
    }

    Ok(cfg
        .defect_counts
        .iter()
        .zip(outcomes.chunks_exact(reps))
        .map(|(&n_defects, cell_outcomes)| {
            let mut accs = Vec::with_capacity(reps);
            let mut failed = 0;
            let mut retried = 0;
            for outcome in cell_outcomes {
                match outcome {
                    CellOutcome::Completed {
                        accuracy,
                        retried: r,
                    } => {
                        accs.push(*accuracy);
                        retried += usize::from(*r);
                    }
                    CellOutcome::Failed { .. } => failed += 1,
                }
            }
            let (mean, min, max) = if accs.is_empty() {
                (0.0, 0.0, 0.0)
            } else {
                (
                    accs.iter().sum::<f64>() / accs.len() as f64,
                    accs.iter().copied().fold(f64::INFINITY, f64::min),
                    accs.iter().copied().fold(0.0, f64::max),
                )
            };
            CurvePoint {
                defects: n_defects,
                mean_accuracy: mean,
                min_accuracy: min,
                max_accuracy: max,
                failed,
                retried,
            }
        })
        .collect())
}

/// Runs one grid cell under panic isolation: a first attempt, and on
/// panic one retry with the same derived seed (transient environmental
/// failures recover; deterministic ones fail again and are reported).
fn run_cell_resilient(
    spec: &TaskSpec,
    cfg: &CampaignConfig,
    trainer: &Trainer,
    ds: &Dataset,
    n_defects: usize,
    rep: usize,
) -> CellOutcome {
    let mut last_panic = String::new();
    for attempt in 0..2 {
        match catch_unwind(AssertUnwindSafe(|| {
            campaign_cell(spec, cfg, trainer, ds, n_defects, rep, attempt)
        })) {
            Ok(accuracy) => {
                return CellOutcome::Completed {
                    accuracy,
                    retried: attempt > 0,
                }
            }
            Err(payload) => last_panic = panic_message(payload),
        }
    }
    CellOutcome::Failed { panic: last_panic }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// One grid cell of the Figure 10 campaign: draw the defect set for
/// `(n_defects, rep)`, retrain through the faulty forward path, return
/// the cross-validated accuracy.
fn campaign_cell(
    spec: &TaskSpec,
    cfg: &CampaignConfig,
    trainer: &Trainer,
    ds: &Dataset,
    n_defects: usize,
    rep: usize,
    attempt: usize,
) -> f64 {
    for chaos in &cfg.chaos {
        if chaos.defects == n_defects && chaos.rep == rep && attempt < chaos.attempts {
            panic!("chaos: injected panic in cell ({n_defects}, {rep}) attempt {attempt}");
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(cell_seed(cfg.seed, n_defects, rep));
    let mut plan = FaultPlan::new(90);
    match cfg.mem {
        None => {
            for _ in 0..n_defects {
                plan.inject_random_hidden_with(spec.hidden, cfg.model, cfg.activation, &mut rng);
            }
        }
        Some(profile) => {
            // Memory-defect campaign: the operators stay healthy and
            // the defect axis lands in the weight store instead —
            // unless `combined` splits the axis across both surfaces
            // (operator draws first, then the store, so the per-cell
            // stream stays a pure function of the coordinates).
            let (op_defects, mem_defects) = if cfg.combined {
                (n_defects.div_ceil(2), n_defects / 2)
            } else {
                (0, n_defects)
            };
            for _ in 0..op_defects {
                plan.inject_random_hidden_with(spec.hidden, cfg.model, cfg.activation, &mut rng);
            }
            let mut geom = MemGeometry::for_network(90, spec.hidden, ds.n_classes(), profile.ecc);
            geom.spare_rows = profile.spare_rows;
            geom.spare_cols = profile.spare_cols;
            let mut mem = WeightMemory::new(geom);
            mem.inject_many(mem_defects, cfg.activation, &mut rng);
            plan.attach_memory(mem);
        }
    }
    let cv = cross_validate(
        trainer,
        ds,
        spec.hidden,
        cfg.folds,
        cfg.seed ^ rep as u64,
        Some(&mut plan),
    );
    cv.mean()
}

/// Where a Figure 11 defect was injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputSite {
    /// The final accumulation adder of an output neuron.
    Adder,
    /// The activation unit of an output neuron.
    Activation,
}

/// One Figure 11 measurement: a single output-layer defect, retrained,
/// with the resulting accuracy and the error amplitude it induces at the
/// faulty neuron.
#[derive(Clone, Debug, PartialEq)]
pub struct AmplitudePoint {
    /// Mean absolute error at the faulty neuron's adder output (or the
    /// activation output for activation-unit defects), over test rows.
    pub amplitude: f64,
    /// Cross-validated accuracy after retraining with the defect.
    pub accuracy: f64,
    /// Which unit was hit.
    pub site: OutputSite,
    /// Affected output neuron.
    pub neuron: usize,
}

/// Runs the Figure 11 experiment for one task: single random defects in
/// the output layer's most sensitive units (final adders, activation
/// functions), retraining, and per-row error-amplitude measurement.
///
/// Repetitions are independent cells and fan out over `threads` workers
/// (`1` = serial, `0` = all cores); as with
/// [`defect_tolerance_curve`], every thread count yields bit-identical
/// points because each repetition's RNG is derived from `seed ^ rep`
/// alone.
pub fn output_amplitude_curve(
    spec: &TaskSpec,
    repetitions: usize,
    epochs: Option<usize>,
    seed: u64,
    threads: usize,
) -> Vec<AmplitudePoint> {
    let ds = spec.dataset();
    let epochs = epochs.unwrap_or(spec.epochs);
    let trainer = Trainer::new(spec.learning_rate, 0.1, epochs, ForwardMode::Fixed);
    let topo = Topology::new(ds.n_features(), spec.hidden, ds.n_classes());
    let lut = SigmoidLut::new();

    parallel_map(repetitions, threads, |rep| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (rep as u64) << 16);
        let neuron = rng.random_range(0..ds.n_classes());
        let site = if rng.random_bool(0.5) {
            OutputSite::Adder
        } else {
            OutputSite::Activation
        };
        let mut plan = FaultPlan::new(90);
        match site {
            OutputSite::Adder => {
                // The final accumulation step feeds the activation
                // directly.
                plan.inject_output_adder(neuron, spec.hidden - 1, &mut rng)
            }
            OutputSite::Activation => plan.inject_output_activation(neuron, &mut rng),
        }

        // Single train/test split (the fold structure is immaterial for
        // the amplitude measurement; accuracy still uses held-out data).
        let folds = ds.k_folds(5, seed ^ rep as u64);
        let fold = &folds[0];
        let mut mlp = Mlp::new(topo, seed ^ 0xA5A5 ^ rep as u64);
        plan.reset_state();
        trainer.train(&mut mlp, &ds, &fold.train, Some(&mut plan), &mut rng);
        let accuracy = trainer.evaluate(&mlp, &ds, &fold.test, Some(&mut plan));

        // Amplitude: |faulty - healthy| at the defective unit, averaged
        // over the test rows. The faulty passes run batched (64 rows per
        // circuit settle when the plan vectorizes); the healthy reference
        // never touches the plan, so the per-sample fault sequence is
        // identical to interleaved scalar evaluation.
        let rows: Vec<&[f64]> = fold
            .test
            .iter()
            .map(|&s| ds.samples()[s].features.as_slice())
            .collect();
        let faulty_traces = mlp.forward_faulty_batch(&rows, &lut, &mut plan);
        let mut total = 0.0;
        for (&s, faulty) in fold.test.iter().zip(&faulty_traces) {
            let healthy = mlp.forward_fixed(&ds.samples()[s].features, &lut);
            total += match site {
                OutputSite::Adder => (faulty.output_pre[neuron] - healthy.output_pre[neuron]).abs(),
                OutputSite::Activation => (faulty.output[neuron] - healthy.output[neuron]).abs(),
            };
        }
        AmplitudePoint {
            amplitude: total / fold.test.len() as f64,
            accuracy,
            site,
            neuron,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_datasets::suite;
    use std::path::PathBuf;

    fn tiny_cfg() -> CampaignConfig {
        CampaignConfig {
            defect_counts: vec![0, 8],
            repetitions: 1,
            folds: 2,
            epochs: Some(8),
            model: FaultModel::TransistorLevel,
            activation: Activation::Permanent,
            seed: 7,
            threads: 1,
            chaos: Vec::new(),
            mem: None,
            combined: false,
        }
    }

    fn iris() -> TaskSpec {
        suite::specs()
            .into_iter()
            .find(|s| s.name == "iris")
            .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dta_campaign_{}_{name}.jsonl", std::process::id()))
    }

    #[test]
    fn curve_has_one_point_per_count() {
        let curve = defect_tolerance_curve(&iris(), &tiny_cfg()).unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].defects, 0);
        assert_eq!(curve[1].defects, 8);
        for p in &curve {
            assert!((0.0..=1.0).contains(&p.mean_accuracy));
            assert!(p.min_accuracy <= p.mean_accuracy);
            assert!(p.mean_accuracy <= p.max_accuracy);
            assert_eq!(p.failed, 0);
            assert_eq!(p.retried, 0);
        }
    }

    #[test]
    fn zero_repetitions_is_an_error_not_a_panic() {
        let cfg = CampaignConfig {
            repetitions: 0,
            ..tiny_cfg()
        };
        assert_eq!(
            defect_tolerance_curve(&iris(), &cfg),
            Err(CampaignError::NoRepetitions)
        );
    }

    #[test]
    fn zero_defects_trains_well_even_tiny() {
        let cfg = CampaignConfig {
            defect_counts: vec![0],
            repetitions: 1,
            folds: 3,
            epochs: Some(25),
            ..tiny_cfg()
        };
        let curve = defect_tolerance_curve(&iris(), &cfg).unwrap();
        assert!(
            curve[0].mean_accuracy > 0.8,
            "clean iris accuracy {}",
            curve[0].mean_accuracy
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = defect_tolerance_curve(&iris(), &tiny_cfg()).unwrap();
        let b = defect_tolerance_curve(&iris(), &tiny_cfg()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn amplitude_experiment_produces_points() {
        let spec = iris();
        let points = output_amplitude_curve(&spec, 3, Some(8), 11, 1);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.amplitude >= 0.0);
            assert!((0.0..=1.0).contains(&p.accuracy));
            assert!(p.neuron < 3);
        }
        // Determinism.
        assert_eq!(points, output_amplitude_curve(&spec, 3, Some(8), 11, 1));
    }

    /// End-to-end settle-strategy identity: the same campaign run with
    /// every simulator forced onto the compiled full sweep (which also
    /// disables cone pruning and 64-lane batching in the operator
    /// layer) must reproduce the event-driven curves bit-for-bit, for
    /// every activation class.
    #[test]
    fn forced_full_settle_curves_are_bit_identical() {
        let spec = iris();
        for activation in [
            Activation::Permanent,
            Activation::Transient {
                per_eval_probability: 0.3,
            },
            Activation::Intermittent { period: 4, duty: 2 },
        ] {
            let cfg = CampaignConfig {
                activation,
                defect_counts: vec![0, 6],
                ..tiny_cfg()
            };
            let event = defect_tolerance_curve(&spec, &cfg).unwrap();
            dta_logic::force_full_settle(true);
            let full = defect_tolerance_curve(&spec, &cfg);
            dta_logic::force_full_settle(false);
            assert_eq!(event, full.unwrap(), "{activation:?}");
        }
    }

    /// Forcing operators off the compiled LUT instruction stream (back
    /// onto the event-driven / cone-pruned batch paths) must reproduce
    /// the default curves bit-for-bit, for every activation class —
    /// permanent plans exercise the truth-word-patch lowering, dynamic
    /// ones the per-lane override fallback.
    #[test]
    fn lut_backend_curves_are_bit_identical() {
        let spec = iris();
        for activation in [
            Activation::Permanent,
            Activation::Transient {
                per_eval_probability: 0.3,
            },
            Activation::Intermittent { period: 4, duty: 2 },
        ] {
            let cfg = CampaignConfig {
                activation,
                defect_counts: vec![0, 6],
                ..tiny_cfg()
            };
            let with_lut = defect_tolerance_curve(&spec, &cfg).unwrap();
            dta_logic::disable_lut_backend(true);
            let without = defect_tolerance_curve(&spec, &cfg);
            dta_logic::disable_lut_backend(false);
            assert_eq!(with_lut, without.unwrap(), "{activation:?}");
        }
    }

    #[test]
    fn parallel_curve_is_bit_identical_to_serial() {
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.repetitions = 2;
        let serial = defect_tolerance_curve(&spec, &cfg).unwrap();
        for threads in [2, 4] {
            cfg.threads = threads;
            let parallel = defect_tolerance_curve(&spec, &cfg).unwrap();
            // PartialEq on f64 fields: bit-identical, not approximately
            // equal.
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn dynamic_activation_curves_are_bit_identical_across_threads() {
        let spec = iris();
        for activation in [
            Activation::Transient {
                per_eval_probability: 0.3,
            },
            Activation::Intermittent { period: 4, duty: 2 },
        ] {
            let mut cfg = CampaignConfig {
                defect_counts: vec![0, 6],
                repetitions: 2,
                epochs: Some(6),
                activation,
                ..tiny_cfg()
            };
            let serial = defect_tolerance_curve(&spec, &cfg).unwrap();
            for threads in [2, 4] {
                cfg.threads = threads;
                let parallel = defect_tolerance_curve(&spec, &cfg).unwrap();
                assert_eq!(serial, parallel, "{activation} threads={threads}");
            }
        }
    }

    #[test]
    fn dynamic_activation_changes_the_curve() {
        // Same defect sites, different lifetimes → different results (a
        // transient defect at p=0.05 is mostly dormant, a permanent one
        // is always on). Accuracies are coarsely quantized (correct
        // counts over small folds), so compare whole curves over
        // several repetitions rather than a single mean.
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.defect_counts = vec![10, 14];
        cfg.repetitions = 2;
        let permanent = defect_tolerance_curve(&spec, &cfg).unwrap();
        cfg.activation = Activation::Transient {
            per_eval_probability: 0.05,
        };
        let transient = defect_tolerance_curve(&spec, &cfg).unwrap();
        assert_ne!(
            permanent, transient,
            "activation class should alter results"
        );
    }

    #[test]
    fn invalid_activation_is_a_typed_campaign_error() {
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.activation = Activation::Transient {
            per_eval_probability: 1.5,
        };
        match defect_tolerance_curve(&spec, &cfg).unwrap_err() {
            CampaignError::BadActivation { detail } => {
                assert!(detail.contains("outside [0, 1]"), "{detail}");
            }
            other => panic!("expected BadActivation, got {other:?}"),
        }
        cfg.activation = Activation::Intermittent { period: 2, duty: 5 };
        assert!(matches!(
            defect_tolerance_curve(&spec, &cfg),
            Err(CampaignError::BadActivation { .. })
        ));
    }

    #[test]
    fn zero_duty_intermittent_matches_the_clean_curve() {
        // duty=0 never activates any defect, and the cross-validation
        // fold/init seeds depend only on (seed, rep) — so every defect
        // count must reproduce the clean (0-defect) accuracy exactly.
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.defect_counts = vec![0, 5, 12];
        cfg.activation = Activation::Intermittent { period: 6, duty: 0 };
        let curve = defect_tolerance_curve(&spec, &cfg).unwrap();
        for p in &curve {
            assert_eq!(
                p.mean_accuracy.to_bits(),
                curve[0].mean_accuracy.to_bits(),
                "count {} diverged from the clean curve",
                p.defects
            );
        }
    }

    #[test]
    fn full_duty_intermittent_matches_the_permanent_curve() {
        // duty == period is "always active" — behaviorally a permanent
        // defect. Injecting a non-permanent defect draws one extra RNG
        // word (its activation-stream seed), shifting every later
        // site, so the site sets coincide with the permanent draw only
        // for counts 0 and 1 — which is exactly where byte-identity is
        // asserted.
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.defect_counts = vec![0, 1];
        cfg.repetitions = 2;
        let permanent = defect_tolerance_curve(&spec, &cfg).unwrap();
        cfg.activation = Activation::Intermittent { period: 3, duty: 3 };
        let full_duty = defect_tolerance_curve(&spec, &cfg).unwrap();
        for (p, q) in permanent.iter().zip(&full_duty) {
            assert_eq!(
                p.mean_accuracy.to_bits(),
                q.mean_accuracy.to_bits(),
                "count {} diverged from the permanent curve",
                p.defects
            );
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn unwritable_journal_aborts_the_campaign_with_a_typed_error() {
        // Point the journal writer at /dev/full (every write ENOSPCs):
        // the campaign must surface a typed checkpoint error instead of
        // finishing with silently lost resume state.
        let spec = iris();
        let cfg = tiny_cfg();
        let path = tmp("unwritable");
        let _ = std::fs::remove_file(&path);
        let ck = Checkpoint::open(&path, &cfg.fingerprint()).unwrap();
        let full = std::fs::OpenOptions::new()
            .write(true)
            .open("/dev/full")
            .unwrap();
        ck.replace_writer_for_tests(full);
        let err = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap_err();
        assert!(matches!(err, CampaignError::Checkpoint { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    /// Zero-defect bit-identity through the memory path: attaching a
    /// healthy weight store to every cell must reproduce the operator
    /// campaign byte-for-byte, for every activation class (mirrors the
    /// `disable_lut_backend` A/B guard).
    #[test]
    fn zero_defect_memory_campaign_is_bit_identical() {
        let spec = iris();
        for activation in [
            Activation::Permanent,
            Activation::Transient {
                per_eval_probability: 0.3,
            },
            Activation::Intermittent { period: 4, duty: 2 },
        ] {
            for profile in [
                MemProfile::default(),
                MemProfile {
                    ecc: false,
                    ..MemProfile::default()
                },
            ] {
                let cfg = CampaignConfig {
                    defect_counts: vec![0],
                    activation,
                    ..tiny_cfg()
                };
                let bare = defect_tolerance_curve(&spec, &cfg).unwrap();
                let with_mem = CampaignConfig {
                    mem: Some(profile),
                    ..cfg
                };
                let routed = defect_tolerance_curve(&spec, &with_mem).unwrap();
                assert_eq!(
                    bare[0].mean_accuracy.to_bits(),
                    routed[0].mean_accuracy.to_bits(),
                    "{activation:?} {profile:?}"
                );
            }
        }
    }

    #[test]
    fn memory_campaign_is_deterministic_and_defects_bite() {
        let spec = iris();
        let cfg = CampaignConfig {
            defect_counts: vec![0, 60],
            mem: Some(MemProfile {
                ecc: false,
                ..MemProfile::default()
            }),
            ..tiny_cfg()
        };
        let a = defect_tolerance_curve(&spec, &cfg).unwrap();
        let b = defect_tolerance_curve(&spec, &cfg).unwrap();
        assert_eq!(a, b);
        for p in &a {
            assert!((0.0..=1.0).contains(&p.mean_accuracy));
            assert_eq!(p.failed, 0);
        }
        // 60 raw-array defects must actually reach the datapath.
        assert_ne!(
            a[0].mean_accuracy.to_bits(),
            a[1].mean_accuracy.to_bits(),
            "memory defects never touched the computation"
        );
    }

    #[test]
    fn fingerprint_covers_memory_profile_only_when_present() {
        let bare = tiny_cfg();
        assert!(
            !bare.fingerprint().contains("mem="),
            "operator-campaign fingerprints must stay byte-identical: {}",
            bare.fingerprint()
        );
        let with_mem = CampaignConfig {
            mem: Some(MemProfile::default()),
            ..tiny_cfg()
        };
        assert!(with_mem
            .fingerprint()
            .contains("mem=rows:2,cols:8,ecc:true"));
        let raw = CampaignConfig {
            mem: Some(MemProfile {
                ecc: false,
                ..MemProfile::default()
            }),
            ..tiny_cfg()
        };
        assert_ne!(with_mem.fingerprint(), raw.fingerprint());

        // The journal guard: a checkpoint written by the memory
        // campaign refuses an operator campaign and vice versa.
        let path = tmp("memguard");
        let _ = std::fs::remove_file(&path);
        drop(Checkpoint::open(&path, &with_mem.fingerprint()).unwrap());
        assert!(Checkpoint::open(&path, &bare.fingerprint()).is_err());
        assert!(Checkpoint::open(&path, &raw.fingerprint()).is_err());
        assert!(Checkpoint::open(&path, &with_mem.fingerprint()).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn combined_cells_damage_both_surfaces_at_once() {
        let spec = iris();
        let mem_only = CampaignConfig {
            defect_counts: vec![0, 16],
            mem: Some(MemProfile {
                ecc: false,
                ..MemProfile::default()
            }),
            ..tiny_cfg()
        };
        let combined = CampaignConfig {
            combined: true,
            ..mem_only.clone()
        };
        let a = defect_tolerance_curve(&spec, &mem_only).unwrap();
        let b = defect_tolerance_curve(&spec, &combined).unwrap();
        // Zero defects: the split is 0 + 0, so the curves coincide bit
        // for bit.
        assert_eq!(a[0].mean_accuracy.to_bits(), b[0].mean_accuracy.to_bits());
        // Sixteen defects: 8 land in the operators instead of the
        // store, which the memory-only campaign can never produce.
        assert_ne!(
            a[1].mean_accuracy.to_bits(),
            b[1].mean_accuracy.to_bits(),
            "combined cells must not reduce to memory-only cells"
        );
        // Determinism holds through the split draw order.
        assert_eq!(b, defect_tolerance_curve(&spec, &combined).unwrap());
    }

    #[test]
    fn combined_fingerprint_extends_only_with_both_knobs() {
        // `combined` without a store changes nothing — pre-existing
        // operator journals must stay valid.
        let dangling = CampaignConfig {
            combined: true,
            ..tiny_cfg()
        };
        assert_eq!(dangling.fingerprint(), tiny_cfg().fingerprint());

        let mem_only = CampaignConfig {
            mem: Some(MemProfile::default()),
            ..tiny_cfg()
        };
        let combined = CampaignConfig {
            combined: true,
            ..mem_only.clone()
        };
        assert!(combined.fingerprint().contains("combined=true"));
        assert!(!mem_only.fingerprint().contains("combined"));

        // The journal guard separates the two experiments.
        let path = tmp("combinedguard");
        let _ = std::fs::remove_file(&path);
        drop(Checkpoint::open(&path, &combined.fingerprint()).unwrap());
        assert!(Checkpoint::open(&path, &mem_only.fingerprint()).is_err());
        assert!(Checkpoint::open(&path, &combined.fingerprint()).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_combined_campaign_resumes_byte_identical() {
        let spec = iris();
        let cfg = CampaignConfig {
            defect_counts: vec![0, 12],
            repetitions: 2,
            mem: Some(MemProfile::default()),
            combined: true,
            ..tiny_cfg()
        };
        let fingerprint = cfg.fingerprint();
        let baseline = defect_tolerance_curve(&spec, &cfg).unwrap();

        let path = tmp("combinedresume");
        let _ = std::fs::remove_file(&path);
        {
            let ck = Checkpoint::open(&path, &fingerprint).unwrap();
            let full = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
            assert_eq!(full, baseline);
        }
        let journal = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = journal.lines().take(3).collect();
        assert_eq!(truncated.len(), 3, "expected header + >=2 cells");
        std::fs::write(&path, format!("{}\n", truncated.join("\n"))).unwrap();

        let ck = Checkpoint::open(&path, &fingerprint).unwrap();
        assert_eq!(ck.completed(), 2);
        let resumed = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
        assert_eq!(resumed, baseline, "resumed curve must be byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_memory_campaign_resumes_byte_identical() {
        // The kill-and-resume drill through the memory-defect path:
        // truncate the journal mid-grid and re-run; the resumed curve
        // must be byte-identical to the uninterrupted one.
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.defect_counts = vec![0, 30];
        cfg.repetitions = 2;
        cfg.mem = Some(MemProfile::default());
        let fingerprint = cfg.fingerprint();
        let baseline = defect_tolerance_curve(&spec, &cfg).unwrap();

        let path = tmp("memresume");
        let _ = std::fs::remove_file(&path);
        {
            let ck = Checkpoint::open(&path, &fingerprint).unwrap();
            let full = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
            assert_eq!(full, baseline);
        }
        let journal = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = journal.lines().take(3).collect();
        assert_eq!(truncated.len(), 3, "expected header + >=2 cells");
        std::fs::write(&path, format!("{}\n", truncated.join("\n"))).unwrap();

        let ck = Checkpoint::open(&path, &fingerprint).unwrap();
        assert_eq!(ck.completed(), 2);
        let resumed = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
        assert_eq!(resumed, baseline, "resumed curve must be byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cell_seeds_are_distinct_over_documented_ranges() {
        // The `<< 24` / `<< 8` packing keeps every (defect_count, rep)
        // pair on its own RNG stream for counts ≤ 300 and reps ≤ 1500
        // (well past any plausible campaign; the paper uses 27 × 100).
        let mut seen = std::collections::HashSet::new();
        for master in [0u64, 0xD7A] {
            seen.clear();
            for d in 0..=300usize {
                for rep in 0..=1500usize {
                    assert!(
                        seen.insert(cell_seed(master, d, rep)),
                        "seed collision at master={master:#x} defects={d} rep={rep}"
                    );
                }
            }
        }
    }

    #[test]
    fn panicking_cell_degrades_to_failed_point() {
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.chaos = vec![ChaosCell {
            defects: 8,
            rep: 0,
            attempts: 2, // first run and retry both panic
        }];
        let curve = defect_tolerance_curve(&spec, &cfg).unwrap();
        assert_eq!(curve[0].failed, 0);
        assert_eq!(curve[1].failed, 1);
        // The only repetition failed → no statistics for that point.
        assert_eq!(curve[1].mean_accuracy, 0.0);
    }

    #[test]
    fn panicking_cell_is_retried_once_and_recovers() {
        let spec = iris();
        let clean = defect_tolerance_curve(&spec, &tiny_cfg()).unwrap();
        let mut cfg = tiny_cfg();
        cfg.chaos = vec![ChaosCell {
            defects: 8,
            rep: 0,
            attempts: 1, // only the first run panics
        }];
        let curve = defect_tolerance_curve(&spec, &cfg).unwrap();
        assert_eq!(curve[1].retried, 1);
        assert_eq!(curve[1].failed, 0);
        // The retry uses the same derived seed, so the accuracy is the
        // clean run's, bit for bit.
        assert_eq!(curve[1].mean_accuracy, clean[1].mean_accuracy);
    }

    #[test]
    fn interrupted_campaign_resumes_byte_identical() {
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.repetitions = 2;
        let fingerprint = cfg.fingerprint();
        let baseline = defect_tolerance_curve(&spec, &cfg).unwrap();

        let path = tmp("resume");
        let _ = std::fs::remove_file(&path);
        {
            let ck = Checkpoint::open(&path, &fingerprint).unwrap();
            let full = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
            assert_eq!(full, baseline, "checkpointing must not change results");
            assert_eq!(ck.completed(), 0, "lookups hit nothing on a fresh journal");
        }

        // Simulate a campaign killed mid-grid: keep the header and the
        // first two journaled cells, drop the rest.
        let journal = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = journal.lines().take(3).collect();
        assert_eq!(truncated.len(), 3, "expected header + >=2 cells");
        std::fs::write(&path, format!("{}\n", truncated.join("\n"))).unwrap();

        let ck = Checkpoint::open(&path, &fingerprint).unwrap();
        assert_eq!(ck.completed(), 2);
        let resumed = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
        assert_eq!(resumed, baseline, "resumed curve must be byte-identical");

        // And a second resume from the now-complete journal recomputes
        // nothing yet still reproduces the curve.
        drop(ck);
        let ck = Checkpoint::open(&path, &fingerprint).unwrap();
        assert_eq!(ck.completed(), 4);
        let replayed = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
        assert_eq!(replayed, baseline);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_cells_are_journaled_and_replayed_on_resume() {
        let spec = iris();
        let mut cfg = tiny_cfg();
        cfg.chaos = vec![ChaosCell {
            defects: 8,
            rep: 0,
            attempts: 2,
        }];
        let path = tmp("failed");
        let _ = std::fs::remove_file(&path);
        let fingerprint = cfg.fingerprint(); // chaos excluded from fingerprint
        {
            let ck = Checkpoint::open(&path, &fingerprint).unwrap();
            let curve = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
            assert_eq!(curve[1].failed, 1);
        }
        // Re-run with chaos disabled: the journaled failure is replayed
        // rather than recomputed (resume never silently un-fails cells).
        cfg.chaos.clear();
        let ck = Checkpoint::open(&path, &fingerprint).unwrap();
        let curve = defect_tolerance_curve_resumable(&spec, &cfg, Some(&ck)).unwrap();
        assert_eq!(curve[1].failed, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_fingerprint_guards_config_changes() {
        let cfg = tiny_cfg();
        let path = tmp("guard");
        let _ = std::fs::remove_file(&path);
        drop(Checkpoint::open(&path, &cfg.fingerprint()).unwrap());
        let changed = CampaignConfig {
            seed: 8,
            ..tiny_cfg()
        };
        let err = Checkpoint::open(&path, &changed.fingerprint()).unwrap_err();
        assert!(matches!(err, CampaignError::Checkpoint { .. }), "{err}");
        // Thread count is *not* part of the fingerprint.
        let rethreaded = CampaignConfig {
            threads: 4,
            ..tiny_cfg()
        };
        assert!(Checkpoint::open(&path, &rethreaded.fingerprint()).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
