//! The topology-independent accelerator surface.
//!
//! The campaign, self-test and recovery pipelines were written against
//! the spatially expanded array of [`crate::accelerator`]; the systolic
//! MAC grid of `dta-systolic` is a second silicon organization that
//! must run under the *same* pipelines unchanged. [`Accel`] captures
//! exactly the contract those pipelines need:
//!
//! * network mapping and commissioning (`map_network`, `retrain`,
//!   `evaluate`),
//! * the BIST entry point (`self_test`),
//! * the recovery ladder's *structural* rungs — everything between the
//!   universal retrain-around-defect rung and the universal graceful-
//!   degradation rung is topology-specific (spare-lane remapping and
//!   memory repair on the spatial array; PE bypass and grid remap on
//!   the systolic array), so each topology advertises its own rung list
//!   and applies each rung itself (`structural_rungs`,
//!   `apply_structural_rung`),
//! * the label-free degradation estimate (`degradation`).
//!
//! [`crate::recover::recover`] and [`crate::selftest::run_selftest`]
//! are generic over this trait; every bench binary picks a topology by
//! picking a constructor.

use std::sync::atomic::AtomicBool;

use rand_chacha::ChaCha8Rng;

use dta_ann::{Layer, Mlp, Topology};
use dta_datasets::Dataset;
use dta_mem::{apply_repairs, march_cminus};

use crate::accelerator::{AccelError, Accelerator};
use crate::recover::{
    DegradationEstimate, MemRungStats, RecoveryError, RecoveryPolicy, RecoveryRung,
};
use crate::selftest::{BistConfig, Diagnosis};

/// What a topology-specific structural rung did to the silicon, and
/// whether the ladder should retrain afterwards.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StructuralOutcome {
    /// Logical lanes re-routed onto spare hardware.
    pub remapped: usize,
    /// Hardware units forced fail-silent (masked/bypassed).
    pub masked: usize,
    /// Weight-store statistics, for memory-native rungs.
    pub memory: Option<MemRungStats>,
    /// `true` if the repair changed the network's routing and a retrain
    /// under the remap budget should follow; `false` for repairs that
    /// are transparent to the mapped weights (re-evaluate only).
    pub retrain_after: bool,
}

/// A defect-tolerant accelerator topology the detect/diagnose/recover
/// pipeline can drive.
///
/// Implementations: the spatially expanded array
/// ([`crate::accelerator::Accelerator`]) and the weight-stationary
/// systolic MAC grid (`dta_systolic::SystolicAccelerator`).
pub trait Accel {
    /// The physical geometry networks must fit inside.
    fn geometry(&self) -> Topology;

    /// The mapped network, if any.
    fn network(&self) -> Option<&Mlp>;

    /// Maps a network onto the silicon.
    ///
    /// # Errors
    ///
    /// [`AccelError::DoesNotFit`] when the topology exceeds the
    /// physical geometry.
    fn map_network(&mut self, mlp: Mlp) -> Result<(), AccelError>;

    /// Removes and returns the mapped network.
    fn unmap_network(&mut self) -> Option<Mlp>;

    /// Classification accuracy over the selected dataset rows, running
    /// every forward pass through the (possibly faulty) silicon.
    ///
    /// # Errors
    ///
    /// [`AccelError`] when no network is mapped, the selection is empty
    /// or the dataset does not match the mapped topology.
    fn evaluate(&mut self, ds: &Dataset, idx: &[usize]) -> Result<f64, AccelError>;

    /// Companion-core retraining *through* the faulty silicon.
    ///
    /// # Errors
    ///
    /// [`AccelError`] on bad hyperparameters or a dataset/topology
    /// mismatch.
    #[allow(clippy::too_many_arguments)]
    fn retrain(
        &mut self,
        ds: &Dataset,
        idx: &[usize],
        learning_rate: f64,
        momentum: f64,
        epochs: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<(), AccelError>;

    /// Runs the topology's built-in self-test, returning a diagnosis
    /// and leaving the fault state reset to power-on.
    ///
    /// # Errors
    ///
    /// Propagates [`AccelError`] from the diagnostic datapath (cannot
    /// occur for a well-formed accelerator).
    fn self_test(&mut self, cfg: &BistConfig) -> Result<Diagnosis, AccelError>;

    /// The topology-specific rungs the recovery ladder should try, in
    /// order, between the universal retrain and degrade rungs.
    fn structural_rungs(&self, policy: &RecoveryPolicy) -> Vec<RecoveryRung>;

    /// Applies one structural rung's repair.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::NoSpareLane`] when the rung needs more spare
    /// hardware than exists (recorded, ladder continues);
    /// [`RecoveryError::UnsupportedRung`] when the rung does not belong
    /// to this topology; [`RecoveryError::Accel`] on setup errors
    /// (aborts the ladder).
    fn apply_structural_rung(
        &mut self,
        rung: RecoveryRung,
        diagnosis: &Diagnosis,
        policy: &RecoveryPolicy,
    ) -> Result<StructuralOutcome, RecoveryError>;

    /// Label-free estimate of the residual serving accuracy given the
    /// still-active flagged sites — the graceful-degradation report.
    fn degradation(&mut self, diagnosis: &Diagnosis, baseline: f64) -> DegradationEstimate;

    /// Opens a traffic-batch window: until [`Accel::end_batch`], the
    /// array is serving and structural mutations (defect injection,
    /// weight-store attach/detach) must fail typed instead of mutating
    /// the silicon under in-flight rows. The mission runtime brackets
    /// every served batch with this pair.
    ///
    /// # Errors
    ///
    /// [`AccelError::NotQuiescent`] if a window is already open.
    fn begin_batch(&mut self) -> Result<(), AccelError>;

    /// Closes the traffic-batch window; idempotent.
    fn end_batch(&mut self);

    /// Lightweight incremental BIST probe for mission mode: screens
    /// only the units the serving stream actually exercises (the mapped
    /// network's routed lanes / active grid rows, plus the attached
    /// weight store), instead of the full-geometry power-on self-test.
    /// Checks `abort` as it walks, so a watchdog can stop a stalling
    /// probe: returns `Ok(None)` when aborted, with the fault state
    /// reset to power-on either way.
    ///
    /// # Errors
    ///
    /// Propagates [`AccelError`] from the diagnostic datapath (cannot
    /// occur for a well-formed accelerator).
    fn probe_touched(
        &mut self,
        cfg: &BistConfig,
        abort: &AtomicBool,
    ) -> Result<Option<Diagnosis>, AccelError>;

    /// Forces every unit the diagnosis implicates fail-silent (lane
    /// masks on the spatial array, PE bypasses on the systolic grid) —
    /// the terminal quarantine action once recovery retries are
    /// exhausted. Returns how many units were newly silenced; the
    /// stream keeps serving whatever the surviving fabric delivers.
    ///
    /// # Errors
    ///
    /// [`AccelError`] when a flagged unit does not exist in this
    /// topology (cannot occur for a diagnosis this accelerator
    /// produced).
    fn quarantine(&mut self, diagnosis: &Diagnosis) -> Result<usize, AccelError>;
}

impl Accel for Accelerator {
    fn geometry(&self) -> Topology {
        Accelerator::geometry(self)
    }

    fn network(&self) -> Option<&Mlp> {
        Accelerator::network(self)
    }

    fn map_network(&mut self, mlp: Mlp) -> Result<(), AccelError> {
        Accelerator::map_network(self, mlp)
    }

    fn unmap_network(&mut self) -> Option<Mlp> {
        Accelerator::unmap_network(self)
    }

    fn evaluate(&mut self, ds: &Dataset, idx: &[usize]) -> Result<f64, AccelError> {
        Accelerator::evaluate(self, ds, idx)
    }

    fn retrain(
        &mut self,
        ds: &Dataset,
        idx: &[usize],
        learning_rate: f64,
        momentum: f64,
        epochs: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<(), AccelError> {
        Accelerator::retrain(self, ds, idx, learning_rate, momentum, epochs, rng)
    }

    fn self_test(&mut self, cfg: &BistConfig) -> Result<Diagnosis, AccelError> {
        crate::selftest::spatial_selftest(self, cfg)
    }

    fn structural_rungs(&self, policy: &RecoveryPolicy) -> Vec<RecoveryRung> {
        let mut rungs = Vec::new();
        if policy.use_memory_repair && self.memory().is_some() {
            rungs.extend([
                RecoveryRung::EccScrub,
                RecoveryRung::SpareSteer,
                RecoveryRung::Place,
            ]);
        }
        if policy.use_remap {
            rungs.push(RecoveryRung::Remap);
        }
        rungs
    }

    fn apply_structural_rung(
        &mut self,
        rung: RecoveryRung,
        diagnosis: &Diagnosis,
        policy: &RecoveryPolicy,
    ) -> Result<StructuralOutcome, RecoveryError> {
        match rung {
            // ECC scrub: count what the code absorbs, pin down what it
            // cannot; transparent to the mapped weights.
            RecoveryRung::EccScrub => {
                let scrub = self
                    .memory_mut()
                    .ok_or(RecoveryError::Accel(AccelError::NoMemory))?
                    .scrub();
                Ok(StructuralOutcome {
                    memory: Some(MemRungStats {
                        words_scrubbed: scrub.words,
                        corrected: scrub.corrected,
                        uncorrectable: scrub.uncorrectable.len(),
                        ..MemRungStats::default()
                    }),
                    ..StructuralOutcome::default()
                })
            }
            // Spare steer: retire march-diagnosed rows/columns onto the
            // store's spares; also weight-transparent.
            RecoveryRung::SpareSteer => {
                let march = match &diagnosis.memory {
                    Some(m) => m.clone(),
                    None => march_cminus(
                        self.memory_mut()
                            .ok_or(RecoveryError::Accel(AccelError::NoMemory))?,
                    ),
                };
                let summary = apply_repairs(
                    self.memory_mut()
                        .ok_or(RecoveryError::Accel(AccelError::NoMemory))?,
                    &march,
                );
                Ok(StructuralOutcome {
                    memory: Some(MemRungStats {
                        rows_steered: summary.rows_steered,
                        cols_steered: summary.cols_steered,
                        unrepaired: summary.unrepaired,
                        ..MemRungStats::default()
                    }),
                    ..StructuralOutcome::default()
                })
            }
            // Sensitivity-aware placement changes the lane routing, so
            // a retrain to the new rows follows.
            RecoveryRung::Place => {
                let moved = crate::recover::place_by_sensitivity(self)?;
                Ok(StructuralOutcome {
                    memory: Some(MemRungStats {
                        moved,
                        ..MemRungStats::default()
                    }),
                    retrain_after: true,
                    ..StructuralOutcome::default()
                })
            }
            RecoveryRung::Remap => {
                let (remapped, masked) = crate::recover::install_remaps(self, diagnosis, policy)?;
                Ok(StructuralOutcome {
                    remapped,
                    masked,
                    retrain_after: true,
                    ..StructuralOutcome::default()
                })
            }
            RecoveryRung::Retrain
            | RecoveryRung::Degrade
            | RecoveryRung::PeBypass
            | RecoveryRung::GridRemap => Err(RecoveryError::UnsupportedRung { rung }),
        }
    }

    fn degradation(&mut self, diagnosis: &Diagnosis, baseline: f64) -> DegradationEstimate {
        crate::recover::estimate_degradation(self, diagnosis, baseline)
    }

    fn begin_batch(&mut self) -> Result<(), AccelError> {
        Accelerator::begin_batch(self)
    }

    fn end_batch(&mut self) {
        Accelerator::end_batch(self)
    }

    fn probe_touched(
        &mut self,
        cfg: &BistConfig,
        abort: &AtomicBool,
    ) -> Result<Option<Diagnosis>, AccelError> {
        crate::selftest::spatial_probe_touched(self, cfg, abort)
    }

    fn quarantine(&mut self, diagnosis: &Diagnosis) -> Result<usize, AccelError> {
        let mut silenced = 0usize;
        for lane in diagnosis.faulty_hidden_lanes() {
            if !self.faults().is_masked(Layer::Hidden, lane) {
                self.mask_hidden(lane)?;
                silenced += 1;
            }
        }
        // Output-stage evidence (screened output lanes or flagged
        // output operators) is quarantined the same way; the forward
        // path gates masked output lanes to 0.
        let outputs = self.geometry().outputs;
        let out_lanes: std::collections::BTreeSet<usize> = diagnosis
            .screened_lanes
            .iter()
            .filter(|(l, _)| *l == Layer::Output)
            .map(|&(_, k)| k)
            .chain(
                diagnosis
                    .flagged
                    .iter()
                    .filter(|s| s.layer == Layer::Output)
                    .map(|s| s.neuron),
            )
            .collect();
        for k in out_lanes {
            if k >= outputs {
                return Err(AccelError::BadLane {
                    lane: k,
                    lanes: outputs,
                });
            }
            if !self.faults().is_masked(Layer::Output, k) {
                self.faults_mut().mask(Layer::Output, k);
                silenced += 1;
            }
        }
        Ok(silenced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_rung_list_follows_policy_and_memory() {
        let mut accel = Accelerator::new();
        let policy = RecoveryPolicy::default();
        // No memory attached: memory rungs are absent even when allowed.
        assert_eq!(accel.structural_rungs(&policy), vec![RecoveryRung::Remap]);
        accel.attach_weight_memory().unwrap();
        assert_eq!(
            accel.structural_rungs(&policy),
            vec![
                RecoveryRung::EccScrub,
                RecoveryRung::SpareSteer,
                RecoveryRung::Place,
                RecoveryRung::Remap,
            ]
        );
        let blind = RecoveryPolicy {
            use_remap: false,
            use_memory_repair: false,
            ..policy
        };
        assert!(accel.structural_rungs(&blind).is_empty());
    }

    #[test]
    fn foreign_rungs_are_rejected_with_a_typed_error() {
        let mut accel = Accelerator::new();
        let policy = RecoveryPolicy::default();
        let diag = Diagnosis::default();
        for rung in [RecoveryRung::PeBypass, RecoveryRung::GridRemap] {
            assert_eq!(
                accel.apply_structural_rung(rung, &diag, &policy),
                Err(RecoveryError::UnsupportedRung { rung })
            );
        }
    }
}
