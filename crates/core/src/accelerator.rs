//! The spatially expanded accelerator model.

use std::fmt;

use rand::Rng;
use rand::SeedableRng;

use dta_ann::{FaultPlan, ForwardMode, Mlp, Topology, Trainer};
use dta_circuits::FaultModel;
use dta_datasets::Dataset;
use dta_fixed::SigmoidLut;
use dta_mem::{Activation, MemGeometry, WeightMemory};

use crate::cost::{CostModel, CostReport};

/// Errors returned by accelerator operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccelError {
    /// The logical network does not fit the physical array.
    DoesNotFit {
        /// The logical network dimensions.
        logical: Topology,
        /// The physical array dimensions.
        physical: Topology,
    },
    /// No network has been mapped yet.
    NoNetwork,
    /// An input row has the wrong number of attributes.
    WrongRowWidth {
        /// Attributes provided.
        got: usize,
        /// Attributes expected by the mapped network.
        expected: usize,
    },
    /// The mapped network has no outputs to classify with.
    NoOutputs,
    /// An empty sample selection was passed to an accuracy measurement.
    EmptySelection,
    /// A training label is outside the mapped network's output range.
    BadLabel {
        /// The offending label.
        label: usize,
        /// Output count of the mapped network.
        outputs: usize,
    },
    /// A training hyperparameter is out of range.
    BadHyperparameter {
        /// Which parameter, and why it was rejected.
        what: String,
    },
    /// A remap/mask referenced a lane outside the physical array.
    BadLane {
        /// The offending lane index.
        lane: usize,
        /// Physical lanes available.
        lanes: usize,
    },
    /// A remap targeted a physical lane another logical neuron already
    /// occupies.
    LaneInUse {
        /// The contested physical lane.
        lane: usize,
    },
    /// A memory operation was requested but no weight store is attached.
    NoMemory,
    /// A structural mutation (defect injection, weight-store attach or
    /// detach) was requested while a traffic batch is in flight. Fault
    /// arrival in mission mode must land on batch boundaries: the
    /// forward datapath assumes its fault plan and weight store are
    /// frozen for the duration of a batch, so mutating them mid-batch
    /// would silently corrupt in-flight rows.
    NotQuiescent {
        /// The rejected operation.
        op: &'static str,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::DoesNotFit { logical, physical } => {
                write!(f, "network {logical} does not fit the {physical} array")
            }
            AccelError::NoNetwork => write!(f, "no network mapped"),
            AccelError::WrongRowWidth { got, expected } => {
                write!(f, "row has {got} attributes, network expects {expected}")
            }
            AccelError::NoOutputs => write!(f, "mapped network has no outputs"),
            AccelError::EmptySelection => {
                write!(f, "cannot measure accuracy over an empty sample selection")
            }
            AccelError::BadLabel { label, outputs } => {
                write!(f, "label {label} out of range for {outputs} outputs")
            }
            AccelError::BadHyperparameter { what } => {
                write!(f, "bad hyperparameter: {what}")
            }
            AccelError::BadLane { lane, lanes } => {
                write!(f, "lane {lane} outside the physical array ({lanes} lanes)")
            }
            AccelError::LaneInUse { lane } => {
                write!(f, "physical lane {lane} is already occupied")
            }
            AccelError::NoMemory => write!(f, "no weight memory attached"),
            AccelError::NotQuiescent { op } => {
                write!(
                    f,
                    "{op} requires a quiescent array (traffic batch in flight)"
                )
            }
        }
    }
}

/// Validates training hyperparameters shared by [`Accelerator::retrain`]
/// and [`Accelerator::online_step`].
fn check_hyperparameters(
    learning_rate: f64,
    momentum: f64,
    epochs: usize,
) -> Result<(), AccelError> {
    if !(learning_rate > 0.0 && learning_rate.is_finite()) {
        return Err(AccelError::BadHyperparameter {
            what: format!("learning rate {learning_rate} must be positive and finite"),
        });
    }
    if !(0.0..1.0).contains(&momentum) {
        return Err(AccelError::BadHyperparameter {
            what: format!("momentum {momentum} must be in [0, 1)"),
        });
    }
    if epochs == 0 {
        return Err(AccelError::BadHyperparameter {
            what: "epochs must be at least 1".to_string(),
        });
    }
    Ok(())
}

impl std::error::Error for AccelError {}

/// The spatially expanded hardware ANN accelerator (physical geometry
/// 90-10-10 by default): every neuron exists in silicon, every synapse
/// owns a multiplier and a weight latch, and data flows combinationally
/// from the input latches to the output latches.
///
/// A trained [`Mlp`] is *mapped* onto the array (its dimensions must fit
/// the physical geometry); rows are then processed through the Q6.10
/// datapath. Defects injected with [`Accelerator::inject_defects`]
/// persist in the silicon: retraining with
/// [`Accelerator::retrain`] runs the companion-core training loop
/// *through the faulty forward hardware*, which is how the paper's
/// networks learn to silence out defective elements.
///
/// # Example
///
/// ```
/// use dta_core::accelerator::Accelerator;
/// use dta_ann::{Mlp, Topology};
///
/// let mut accel = Accelerator::new();
/// accel.map_network(Mlp::new(Topology::new(13, 4, 3), 7)).unwrap();
/// let outputs = accel.process_row(&vec![0.5; 13]).unwrap();
/// assert_eq!(outputs.len(), 3);
/// ```
#[derive(Debug)]
pub struct Accelerator {
    physical: Topology,
    network: Option<Mlp>,
    faults: FaultPlan,
    lut: SigmoidLut,
    rows_processed: u64,
    in_flight: bool,
}

impl Accelerator {
    /// Builds the paper's 90-10-10 accelerator.
    pub fn new() -> Accelerator {
        Accelerator::with_geometry(Topology::accelerator())
    }

    /// Builds an accelerator with a custom physical geometry (used by
    /// the cost-model sweeps).
    pub fn with_geometry(physical: Topology) -> Accelerator {
        Accelerator {
            physical,
            network: None,
            faults: FaultPlan::new(physical.inputs),
            lut: SigmoidLut::new(),
            rows_processed: 0,
            in_flight: false,
        }
    }

    /// Opens a traffic-batch window. While the window is open the array
    /// is *not quiescent*: structural mutations (defect injection,
    /// weight-store attach/detach) return
    /// [`AccelError::NotQuiescent`] instead of silently changing the
    /// silicon under in-flight rows. The mission runtime brackets every
    /// served batch with `begin_batch`/[`Accelerator::end_batch`].
    ///
    /// # Errors
    ///
    /// [`AccelError::NotQuiescent`] if a window is already open
    /// (unbalanced bracketing is a runtime logic error).
    pub fn begin_batch(&mut self) -> Result<(), AccelError> {
        if self.in_flight {
            return Err(AccelError::NotQuiescent { op: "begin_batch" });
        }
        self.in_flight = true;
        Ok(())
    }

    /// Closes the traffic-batch window opened by
    /// [`Accelerator::begin_batch`]; idempotent.
    pub fn end_batch(&mut self) {
        self.in_flight = false;
    }

    /// True while a traffic-batch window is open.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    fn ensure_quiescent(&self, op: &'static str) -> Result<(), AccelError> {
        if self.in_flight {
            return Err(AccelError::NotQuiescent { op });
        }
        Ok(())
    }

    /// The physical array dimensions.
    pub fn geometry(&self) -> Topology {
        self.physical
    }

    /// The currently mapped network, if any.
    pub fn network(&self) -> Option<&Mlp> {
        self.network.as_ref()
    }

    /// Maps a trained network onto the array. The logical dimensions
    /// must fit the physical geometry (larger networks go through
    /// [`crate::large::LargeNetworkMapper`]).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::DoesNotFit`] if any logical dimension
    /// exceeds the physical one.
    pub fn map_network(&mut self, mlp: Mlp) -> Result<(), AccelError> {
        let l = mlp.topology();
        let p = self.physical;
        if l.inputs > p.inputs || l.hidden > p.hidden || l.outputs > p.outputs {
            return Err(AccelError::DoesNotFit {
                logical: l,
                physical: p,
            });
        }
        self.network = Some(mlp);
        Ok(())
    }

    /// Removes the mapped network, returning it.
    pub fn unmap_network(&mut self) -> Option<Mlp> {
        self.network.take()
    }

    /// Injects `n` random defects into the input/hidden stage of the
    /// silicon (the Figure 10 procedure) and returns their descriptions.
    /// Defects accumulate across calls.
    ///
    /// # Errors
    ///
    /// [`AccelError::NotQuiescent`] while a traffic batch is in flight
    /// (see [`Accelerator::begin_batch`]): mid-stream fault arrival is
    /// legal only on batch boundaries.
    pub fn inject_defects<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        model: FaultModel,
        rng: &mut R,
    ) -> Result<Vec<String>, AccelError> {
        self.ensure_quiescent("inject_defects")?;
        let before = self.faults.len();
        for _ in 0..n {
            self.faults
                .inject_random_hidden(self.physical.hidden, model, rng);
        }
        Ok(self.faults.records()[before..].to_vec())
    }

    /// The accumulated fault state (for output-layer injections and
    /// inspection).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Shared view of the accumulated fault state (ground-truth sites,
    /// lane map, masks).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Number of injected defects.
    pub fn defect_count(&self) -> usize {
        self.faults.len()
    }

    /// Backs the weight latches with an explicit bit-cell weight store
    /// sized for this array's physical geometry (ECC on, the paper-scale
    /// spare budget). Every subsequent weight/bias fetch on the forward
    /// path round-trips through the array, so memory defects injected
    /// with [`Accelerator::inject_memory_defects`] corrupt computation
    /// exactly where a real SRAM fault would.
    ///
    /// # Errors
    ///
    /// [`AccelError::NotQuiescent`] while a traffic batch is in flight:
    /// rerouting every weight fetch under in-flight rows would corrupt
    /// them silently.
    pub fn attach_weight_memory(&mut self) -> Result<(), AccelError> {
        self.ensure_quiescent("attach_weight_memory")?;
        let geom = MemGeometry::for_network(
            self.physical.inputs,
            self.physical.hidden,
            self.physical.outputs,
            true,
        );
        self.faults.attach_memory(WeightMemory::new(geom));
        Ok(())
    }

    /// Backs the weight latches with a caller-built array (custom
    /// geometry, ECC off, different spare budget).
    ///
    /// # Errors
    ///
    /// [`AccelError::NotQuiescent`] while a traffic batch is in flight.
    pub fn attach_weight_memory_with(&mut self, mem: WeightMemory) -> Result<(), AccelError> {
        self.ensure_quiescent("attach_weight_memory")?;
        self.faults.attach_memory(mem);
        Ok(())
    }

    /// Removes the attached weight store, returning it; weights revert
    /// to the ideal distributed latches.
    ///
    /// # Errors
    ///
    /// [`AccelError::NotQuiescent`] while a traffic batch is in flight.
    pub fn detach_weight_memory(&mut self) -> Result<Option<WeightMemory>, AccelError> {
        self.ensure_quiescent("detach_weight_memory")?;
        Ok(self.faults.detach_memory())
    }

    /// The attached weight store, if any.
    pub fn memory(&self) -> Option<&WeightMemory> {
        self.faults.memory()
    }

    /// Mutable access to the attached weight store (scrub, BIST,
    /// steering).
    pub fn memory_mut(&mut self) -> Option<&mut WeightMemory> {
        self.faults.memory_mut()
    }

    /// Injects `n` random bit-cell array defects (stuck cells, row and
    /// column failures, sense-amp/write-driver faults, bitline bridges)
    /// into the attached weight store and returns their descriptions.
    /// Defects accumulate across calls.
    ///
    /// # Errors
    ///
    /// [`AccelError::NoMemory`] if no weight store is attached;
    /// [`AccelError::NotQuiescent`] while a traffic batch is in flight.
    pub fn inject_memory_defects<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Result<Vec<String>, AccelError> {
        self.ensure_quiescent("inject_memory_defects")?;
        let mem = self.faults.memory_mut().ok_or(AccelError::NoMemory)?;
        let before = mem.records().len();
        mem.inject_many(n, activation, rng);
        Ok(mem.records()[before..].to_vec())
    }

    /// Injects memory defects at `density` faulty cells per data cell
    /// (the Figure-10-style sweep axis), returning the descriptions.
    ///
    /// # Errors
    ///
    /// [`AccelError::NoMemory`] if no weight store is attached;
    /// [`AccelError::NotQuiescent`] while a traffic batch is in flight.
    pub fn inject_memory_density<R: Rng + ?Sized>(
        &mut self,
        density: f64,
        activation: Activation,
        rng: &mut R,
    ) -> Result<Vec<String>, AccelError> {
        self.ensure_quiescent("inject_memory_defects")?;
        let mem = self.faults.memory_mut().ok_or(AccelError::NoMemory)?;
        let before = mem.records().len();
        mem.inject_density(density, activation, rng);
        Ok(mem.records()[before..].to_vec())
    }

    /// Number of injected memory defects (0 when no store is attached).
    pub fn memory_defect_count(&self) -> usize {
        self.faults.memory().map_or(0, |m| m.defects().len())
    }

    /// Routes logical hidden neuron `logical` of the mapped network onto
    /// physical lane `physical` — the spare-lane repair of the recovery
    /// ladder. An identity remap clears a previous override.
    ///
    /// # Errors
    ///
    /// [`AccelError::NoNetwork`] if nothing is mapped;
    /// [`AccelError::BadLane`] if either index is outside the mapped
    /// network (logical) or the physical array (physical);
    /// [`AccelError::LaneInUse`] if another logical neuron already
    /// routes to `physical`.
    pub fn remap_hidden(&mut self, logical: usize, physical: usize) -> Result<(), AccelError> {
        let topo = self
            .network
            .as_ref()
            .ok_or(AccelError::NoNetwork)?
            .topology();
        if logical >= topo.hidden {
            return Err(AccelError::BadLane {
                lane: logical,
                lanes: topo.hidden,
            });
        }
        if physical >= self.physical.hidden {
            return Err(AccelError::BadLane {
                lane: physical,
                lanes: self.physical.hidden,
            });
        }
        if (0..topo.hidden).any(|j| j != logical && self.faults.hidden_lane(j) == physical) {
            return Err(AccelError::LaneInUse { lane: physical });
        }
        self.faults.remap_hidden(logical, physical);
        Ok(())
    }

    /// Gates a physical hidden lane's output to 0 (fail-silent masking,
    /// the fallback when no spare lane is available).
    ///
    /// # Errors
    ///
    /// [`AccelError::BadLane`] if `lane` is outside the physical array.
    pub fn mask_hidden(&mut self, lane: usize) -> Result<(), AccelError> {
        if lane >= self.physical.hidden {
            return Err(AccelError::BadLane {
                lane,
                lanes: self.physical.hidden,
            });
        }
        self.faults.mask(dta_ann::Layer::Hidden, lane);
        Ok(())
    }

    /// Processes one row and scans out the full forward trace (hidden
    /// activations included) — the diagnostic access a self-test uses,
    /// as opposed to the outputs-only [`Accelerator::process_row`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Accelerator::process_row`].
    pub fn diagnose_row(&mut self, row: &[f64]) -> Result<dta_ann::ForwardTrace, AccelError> {
        let mlp = self.network.as_ref().ok_or(AccelError::NoNetwork)?;
        let expected = mlp.topology().inputs;
        if row.len() != expected {
            return Err(AccelError::WrongRowWidth {
                got: row.len(),
                expected,
            });
        }
        self.rows_processed += 1;
        Ok(mlp.forward_faulty(row, &self.lut, &mut self.faults))
    }

    /// Processes one input row through the (possibly faulty) datapath,
    /// returning the output activations.
    ///
    /// # Errors
    ///
    /// [`AccelError::NoNetwork`] if nothing is mapped,
    /// [`AccelError::WrongRowWidth`] on a width mismatch.
    pub fn process_row(&mut self, row: &[f64]) -> Result<Vec<f64>, AccelError> {
        let mlp = self.network.as_ref().ok_or(AccelError::NoNetwork)?;
        let expected = mlp.topology().inputs;
        if row.len() != expected {
            return Err(AccelError::WrongRowWidth {
                got: row.len(),
                expected,
            });
        }
        self.rows_processed += 1;
        let trace = mlp.forward_faulty(row, &self.lut, &mut self.faults);
        Ok(trace.output)
    }

    /// Classifies one input row (argmax of the outputs).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Accelerator::process_row`], plus
    /// [`AccelError::NoOutputs`] for a degenerate zero-output network.
    pub fn classify(&mut self, row: &[f64]) -> Result<usize, AccelError> {
        let outputs = self.process_row(row)?;
        outputs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .ok_or(AccelError::NoOutputs)
    }

    /// Companion-core retraining: trains the mapped network on `ds`
    /// with the forward pass running through this accelerator's faulty
    /// silicon, so the network adapts to the defects.
    ///
    /// # Errors
    ///
    /// [`AccelError::NoNetwork`] if nothing is mapped;
    /// [`AccelError::BadHyperparameter`] for a non-positive or
    /// non-finite learning rate, a momentum outside `[0, 1)`, or zero
    /// epochs.
    pub fn retrain<R: Rng + ?Sized>(
        &mut self,
        ds: &Dataset,
        idx: &[usize],
        learning_rate: f64,
        momentum: f64,
        epochs: usize,
        rng: &mut R,
    ) -> Result<(), AccelError> {
        check_hyperparameters(learning_rate, momentum, epochs)?;
        let mut mlp = self.network.take().ok_or(AccelError::NoNetwork)?;
        let trainer = Trainer::new(learning_rate, momentum, epochs, ForwardMode::Fixed);
        self.faults.reset_state();
        trainer.train(&mut mlp, ds, idx, Some(&mut self.faults), rng);
        self.network = Some(mlp);
        Ok(())
    }

    /// One on-line training step (§IV's continuous-training scenario:
    /// smart sensors, industrial control): a single SGD update from one
    /// labelled row, forward through the faulty silicon.
    ///
    /// # Errors
    ///
    /// [`AccelError::NoNetwork`] if nothing is mapped;
    /// [`AccelError::WrongRowWidth`] on a width mismatch;
    /// [`AccelError::BadLabel`] if `label` is not below the network's
    /// output count; [`AccelError::BadHyperparameter`] for a
    /// non-positive or non-finite learning rate.
    pub fn online_step(
        &mut self,
        row: &[f64],
        label: usize,
        learning_rate: f64,
    ) -> Result<(), AccelError> {
        check_hyperparameters(learning_rate, 0.0, 1)?;
        let mut mlp = self.network.take().ok_or(AccelError::NoNetwork)?;
        let topo = mlp.topology();
        if row.len() != topo.inputs {
            self.network = Some(mlp);
            return Err(AccelError::WrongRowWidth {
                got: row.len(),
                expected: topo.inputs,
            });
        }
        if label >= topo.outputs {
            self.network = Some(mlp);
            return Err(AccelError::BadLabel {
                label,
                outputs: topo.outputs,
            });
        }
        let ds = Dataset::new(
            "online",
            topo.inputs,
            topo.outputs.max(2),
            vec![dta_datasets::Sample {
                features: row.to_vec(),
                label,
            }],
        );
        // Momentum is meaningless for isolated steps; one epoch = one
        // SGD update.
        let trainer = Trainer::new(learning_rate, 0.0, 1, ForwardMode::Fixed);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        trainer.train(&mut mlp, &ds, &[0], Some(&mut self.faults), &mut rng);
        self.rows_processed += 1;
        self.network = Some(mlp);
        Ok(())
    }

    /// Classification accuracy over the selected samples.
    ///
    /// # Errors
    ///
    /// [`AccelError::NoNetwork`] if nothing is mapped;
    /// [`AccelError::EmptySelection`] if `idx` is empty (the mean would
    /// be 0/0); any [`Accelerator::classify`] error for the individual
    /// rows (e.g. a dataset whose rows don't match the mapped network).
    pub fn evaluate(&mut self, ds: &Dataset, idx: &[usize]) -> Result<f64, AccelError> {
        let Some(mlp) = self.network.as_ref() else {
            return Err(AccelError::NoNetwork);
        };
        if idx.is_empty() {
            return Err(AccelError::EmptySelection);
        }
        let expected = mlp.topology().inputs;
        let mut rows: Vec<&[f64]> = Vec::with_capacity(idx.len());
        for &s in idx {
            let row = ds.samples()[s].features.as_slice();
            if row.len() != expected {
                return Err(AccelError::WrongRowWidth {
                    got: row.len(),
                    expected,
                });
            }
            rows.push(row);
        }
        if mlp.topology().outputs == 0 {
            return Err(AccelError::NoOutputs);
        }
        // Batched faulty forward: 64 rows per circuit settle when the
        // fault set vectorizes, the scalar sample order otherwise.
        let traces = mlp.forward_faulty_batch(&rows, &self.lut, &mut self.faults);
        self.rows_processed += idx.len() as u64;
        let correct = idx
            .iter()
            .zip(&traces)
            .filter(|&(&s, t)| t.predicted() == ds.samples()[s].label)
            .count();
        Ok(correct as f64 / idx.len() as f64)
    }

    /// Number of rows processed since construction.
    pub fn rows_processed(&self) -> u64 {
        self.rows_processed
    }

    /// The 90 nm cost report for this array's geometry.
    pub fn cost(&self) -> CostReport {
        CostModel::calibrated_90nm().report(self.physical)
    }

    /// Total energy spent so far (nJ), from the cost model.
    pub fn energy_spent_nj(&self) -> f64 {
        self.cost().energy_per_row_nj * self.rows_processed as f64
    }
}

impl Default for Accelerator {
    fn default() -> Accelerator {
        Accelerator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_datasets::suite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mapping_validates_dimensions() {
        let mut accel = Accelerator::new();
        assert!(accel
            .map_network(Mlp::new(Topology::new(90, 10, 10), 1))
            .is_ok());
        let err = accel
            .map_network(Mlp::new(Topology::new(91, 10, 10), 1))
            .unwrap_err();
        assert!(matches!(err, AccelError::DoesNotFit { .. }));
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn processing_requires_network_and_width() {
        let mut accel = Accelerator::new();
        assert_eq!(accel.process_row(&[0.0; 4]), Err(AccelError::NoNetwork));
        accel
            .map_network(Mlp::new(Topology::new(4, 3, 2), 2))
            .unwrap();
        assert!(matches!(
            accel.process_row(&[0.0; 5]),
            Err(AccelError::WrongRowWidth {
                got: 5,
                expected: 4
            })
        ));
        let out = accel.process_row(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(accel.rows_processed(), 1);
        assert!(accel.energy_spent_nj() > 0.0);
    }

    #[test]
    fn train_inject_retrain_recovers_accuracy() {
        // The paper's core loop in miniature: train clean, inject
        // defects, observe degradation risk, retrain on the faulty
        // silicon, recover.
        let ds = suite::load("iris").unwrap();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);

        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 8, 3), 11))
            .unwrap();
        accel.retrain(&ds, &idx, 0.2, 0.1, 40, &mut rng).unwrap();
        let clean_acc = accel.evaluate(&ds, &idx).unwrap();
        assert!(clean_acc > 0.85, "clean accuracy {clean_acc}");

        let reports = accel
            .inject_defects(5, FaultModel::TransistorLevel, &mut rng)
            .unwrap();
        assert_eq!(reports.len(), 5);
        assert_eq!(accel.defect_count(), 5);

        accel.retrain(&ds, &idx, 0.2, 0.1, 40, &mut rng).unwrap();
        let faulty_acc = accel.evaluate(&ds, &idx).unwrap();
        assert!(
            faulty_acc > clean_acc - 0.15,
            "retraining should recover: clean {clean_acc}, faulty {faulty_acc}"
        );
    }

    #[test]
    fn unmap_returns_network() {
        let mut accel = Accelerator::new();
        let mlp = Mlp::new(Topology::new(4, 3, 2), 9);
        accel.map_network(mlp.clone()).unwrap();
        assert_eq!(accel.unmap_network(), Some(mlp));
        assert!(accel.network().is_none());
    }

    #[test]
    fn remap_and_mask_validate_lanes() {
        let mut accel = Accelerator::new();
        assert_eq!(accel.remap_hidden(0, 9), Err(AccelError::NoNetwork));
        accel
            .map_network(Mlp::new(Topology::new(4, 3, 2), 2))
            .unwrap();
        // Logical index bounded by the mapped network, physical by the
        // array.
        assert_eq!(
            accel.remap_hidden(3, 9),
            Err(AccelError::BadLane { lane: 3, lanes: 3 })
        );
        assert_eq!(
            accel.remap_hidden(0, 10),
            Err(AccelError::BadLane {
                lane: 10,
                lanes: 10
            })
        );
        accel.remap_hidden(0, 9).unwrap();
        assert_eq!(accel.faults().hidden_lane(0), 9);
        // Lane 9 is now occupied; identity lanes of other neurons too.
        assert_eq!(
            accel.remap_hidden(1, 9),
            Err(AccelError::LaneInUse { lane: 9 })
        );
        assert_eq!(
            accel.remap_hidden(1, 2),
            Err(AccelError::LaneInUse { lane: 2 })
        );
        accel.remap_hidden(0, 0).unwrap(); // identity clears
        assert!(accel.faults().remapped_hidden().is_empty());
        assert_eq!(
            accel.mask_hidden(10),
            Err(AccelError::BadLane {
                lane: 10,
                lanes: 10
            })
        );
        accel.mask_hidden(2).unwrap();
        assert!(accel.faults().is_masked(dta_ann::Layer::Hidden, 2));
    }

    #[test]
    fn diagnose_row_scans_out_hidden_lanes() {
        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 3, 2), 2))
            .unwrap();
        let trace = accel.diagnose_row(&[0.1, 0.4, -0.2, 0.9]).unwrap();
        assert_eq!(trace.hidden.len(), 3);
        assert_eq!(trace.output.len(), 2);
        assert_eq!(accel.rows_processed(), 1);
        assert!(matches!(
            accel.diagnose_row(&[0.0; 5]),
            Err(AccelError::WrongRowWidth { .. })
        ));
    }

    #[test]
    fn cost_matches_geometry() {
        let accel = Accelerator::new();
        let report = accel.cost();
        assert!((report.area_mm2 - 9.02).abs() < 1e-9);
    }

    #[test]
    fn online_training_improves_over_steps() {
        // Continuous training: stream labelled rows one at a time and
        // watch accuracy climb without any batch retraining.
        let ds = suite::load("iris").unwrap();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 8, 3), 17))
            .unwrap();
        let before = accel.evaluate(&ds, &idx).unwrap();
        for pass in 0..14 {
            for s in 0..ds.len() {
                let sample = &ds.samples()[(s * 7 + pass) % ds.len()];
                accel
                    .online_step(&sample.features, sample.label, 0.3)
                    .unwrap();
            }
        }
        let after = accel.evaluate(&ds, &idx).unwrap();
        assert!(
            after > before + 0.2 && after > 0.8,
            "online training {before} -> {after}"
        );
    }

    #[test]
    fn online_step_validates() {
        let mut accel = Accelerator::new();
        assert_eq!(
            accel.online_step(&[0.0; 4], 0, 0.1),
            Err(AccelError::NoNetwork)
        );
        accel
            .map_network(Mlp::new(Topology::new(4, 3, 2), 0))
            .unwrap();
        assert!(matches!(
            accel.online_step(&[0.0; 5], 0, 0.1),
            Err(AccelError::WrongRowWidth { .. })
        ));
        // Network survives a failed step.
        assert!(accel.network().is_some());
        // Out-of-range labels are an error, not a panic.
        assert_eq!(
            accel.online_step(&[0.0; 4], 2, 0.1),
            Err(AccelError::BadLabel {
                label: 2,
                outputs: 2
            })
        );
        assert!(accel.network().is_some());
        // Bad learning rates are rejected before any state is touched.
        for lr in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                accel.online_step(&[0.0; 4], 0, lr),
                Err(AccelError::BadHyperparameter { .. })
            ));
        }
    }

    #[test]
    fn retrain_rejects_bad_hyperparameters() {
        let ds = suite::load("iris").unwrap();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 3, 3), 5))
            .unwrap();
        for (lr, momentum, epochs) in [
            (0.0, 0.1, 10),
            (f64::NAN, 0.1, 10),
            (0.2, -0.1, 10),
            (0.2, 1.0, 10),
            (0.2, 0.1, 0),
        ] {
            let err = accel
                .retrain(&ds, &idx, lr, momentum, epochs, &mut rng)
                .unwrap_err();
            assert!(
                matches!(err, AccelError::BadHyperparameter { .. }),
                "({lr}, {momentum}, {epochs}) gave {err}"
            );
            // The mapped network is untouched by a rejected call.
            assert!(accel.network().is_some());
        }
    }

    #[test]
    fn transparent_weight_memory_leaves_evaluation_bit_identical() {
        // A/B guard mirroring the LUT-backend one: attaching a
        // defect-free weight store must not move a single output bit,
        // so the memory fault surface costs nothing when unused.
        let ds = suite::load("iris").unwrap();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(21);

        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 8, 3), 11))
            .unwrap();
        accel.retrain(&ds, &idx, 0.2, 0.1, 30, &mut rng).unwrap();

        let baseline: Vec<Vec<f64>> = ds
            .samples()
            .iter()
            .map(|s| accel.process_row(&s.features).unwrap())
            .collect();
        let base_acc = accel.evaluate(&ds, &idx).unwrap();

        accel.attach_weight_memory().unwrap();
        assert!(accel.memory().unwrap().is_transparent());
        assert_eq!(accel.memory_defect_count(), 0);
        let routed: Vec<Vec<f64>> = ds
            .samples()
            .iter()
            .map(|s| accel.process_row(&s.features).unwrap())
            .collect();
        assert_eq!(baseline, routed);
        assert_eq!(accel.evaluate(&ds, &idx).unwrap(), base_acc);

        let mem = accel.detach_weight_memory().unwrap().unwrap();
        assert!(mem.geometry().ecc);
        assert!(accel.memory().is_none());
    }

    #[test]
    fn memory_defects_require_attachment_and_accumulate() {
        let mut accel = Accelerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            accel.inject_memory_defects(1, dta_mem::Activation::Permanent, &mut rng),
            Err(AccelError::NoMemory)
        );
        accel.attach_weight_memory().unwrap();
        let reports = accel
            .inject_memory_defects(4, dta_mem::Activation::Permanent, &mut rng)
            .unwrap();
        assert_eq!(reports.len(), 4);
        let more = accel
            .inject_memory_density(1e-4, dta_mem::Activation::Permanent, &mut rng)
            .unwrap();
        assert!(!more.is_empty());
        assert_eq!(accel.memory_defect_count(), 4 + more.len());
        assert!(!accel.memory().unwrap().is_transparent());
    }

    #[test]
    fn structural_mutation_mid_batch_is_a_typed_error() {
        // Satellite fix: every structural mutation used to assume
        // quiescence silently; now a traffic-batch window makes the
        // assumption explicit and violations typed.
        let mut accel = Accelerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        accel.begin_batch().unwrap();
        assert!(accel.in_flight());
        // Re-opening an open window is itself a bracketing bug.
        assert_eq!(
            accel.begin_batch(),
            Err(AccelError::NotQuiescent { op: "begin_batch" })
        );
        assert_eq!(
            accel.inject_defects(1, FaultModel::TransistorLevel, &mut rng),
            Err(AccelError::NotQuiescent {
                op: "inject_defects"
            })
        );
        assert_eq!(
            accel.attach_weight_memory(),
            Err(AccelError::NotQuiescent {
                op: "attach_weight_memory"
            })
        );
        assert_eq!(
            accel.detach_weight_memory().map(|m| m.is_some()),
            Err(AccelError::NotQuiescent {
                op: "detach_weight_memory"
            })
        );
        assert_eq!(
            accel.inject_memory_defects(1, dta_mem::Activation::Permanent, &mut rng),
            Err(AccelError::NotQuiescent {
                op: "inject_memory_defects"
            })
        );
        assert_eq!(accel.defect_count(), 0, "rejected mutations left no state");
        // Serving is unaffected by the window; mutation works again
        // once it closes.
        accel
            .map_network(Mlp::new(Topology::new(4, 3, 2), 2))
            .unwrap();
        accel.process_row(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        accel.end_batch();
        assert!(!accel.in_flight());
        accel
            .inject_defects(1, FaultModel::TransistorLevel, &mut rng)
            .unwrap();
        assert_eq!(accel.defect_count(), 1);
        let err = AccelError::NotQuiescent {
            op: "inject_defects",
        };
        assert!(err.to_string().contains("quiescent"));
    }

    #[test]
    fn evaluate_rejects_empty_selection_and_bad_rows() {
        let ds = suite::load("iris").unwrap();
        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 3, 3), 5))
            .unwrap();
        assert_eq!(accel.evaluate(&ds, &[]), Err(AccelError::EmptySelection));
        // A dataset whose rows don't match the mapped network surfaces
        // as an error instead of a panic.
        let wide = Dataset::new(
            "wide",
            6,
            2,
            vec![dta_datasets::Sample {
                features: vec![0.0; 6],
                label: 0,
            }],
        );
        assert!(matches!(
            accel.evaluate(&wide, &[0]),
            Err(AccelError::WrongRowWidth {
                got: 6,
                expected: 4
            })
        ));
    }
}
