//! The online recovery ladder: what to do once a self-test
//! ([`crate::selftest`]) has localized defects in the array.
//!
//! Policy rungs, tried in order, each under an epoch budget and a
//! wall-clock watchdog:
//!
//! 1. **Retrain-around-defect** — the paper's Figure 10 mechanism: the
//!    companion core retrains the mapped network *through* the faulty
//!    silicon, letting gradient descent silence defective elements.
//! 2. **ECC scrub** (memory-native, when a weight store backs the
//!    latches) — a full scrub pass over the live words: counts the
//!    single-bit errors the SEC-DED code absorbs transparently and
//!    pins down the words it cannot protect.
//! 3. **Spare steer** (memory-native) — the March C- localization from
//!    the diagnosis (or a fresh march) drives row/column steering onto
//!    the array's spares, retiring wordline/bitline-class damage in
//!    hardware.
//! 4. **Sensitivity-aware placement** (memory-native) — the logical
//!    hidden neurons that matter most to the outputs are re-placed on
//!    the least-damaged surviving memory rows, then a retrain under
//!    its own budget adapts the network to the new placement.
//! 5. **Remap/mask** — faulty hidden lanes named by the diagnosis are
//!    remapped onto spare healthy lanes (physical lanes beyond the
//!    logical width); when spares run out, lanes can be masked to 0
//!    (fail-silent) instead. A retrain under its own budget follows, so
//!    the network adapts to the new routing.
//! 6. **Graceful degradation** — no further repair is attempted; the
//!    expected residual accuracy is *estimated* from the output-
//!    visibility of the flagged operators (no labeled data needed), so
//!    the accelerator reports how wrong it expects to be instead of
//!    serving silently-wrong results.
//!
//! Each rung's wall-clock deadline is enforced by a watchdog thread
//! (the same scoped-thread machinery as [`crate::parallel`]) that trips
//! an atomic flag; the training loop checks it between epochs, so a
//! deadline overrun yields a typed [`RecoveryError::Timeout`] and the
//! ladder falls through to the next rung instead of hanging.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_ann::{FaultSite, Layer, UnitKind};
use dta_circuits::visibility::{adder_visibility, multiplier_visibility};
use dta_datasets::Dataset;
use dta_fixed::Fx;
use dta_mem::{march_cminus, MarchReport};

use crate::accel::Accel;
use crate::accelerator::{AccelError, Accelerator};
use crate::selftest::Diagnosis;

/// One rung of the recovery ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryRung {
    /// Retrain the mapped network through the faulty silicon.
    Retrain,
    /// Scrub the weight store through its SEC-DED code, counting what
    /// the code absorbs and localizing what it cannot.
    EccScrub,
    /// Steer march-diagnosed bad rows/columns of the weight store onto
    /// its spare rows/columns.
    SpareSteer,
    /// Re-place the most output-sensitive logical neurons on the
    /// least-damaged memory rows, then retrain.
    Place,
    /// Remap faulty hidden lanes onto spares (mask when none), then
    /// retrain.
    Remap,
    /// Bypass flagged systolic PEs (fail-silent pass-through of the
    /// incoming partial sum), then retrain around the holes.
    PeBypass,
    /// Re-point systolic schedule rows through flagged PEs at healthy
    /// spare physical rows, then retrain.
    GridRemap,
    /// Stop repairing; estimate and report the expected accuracy loss.
    Degrade,
}

impl fmt::Display for RecoveryRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryRung::Retrain => write!(f, "retrain"),
            RecoveryRung::EccScrub => write!(f, "ecc-scrub"),
            RecoveryRung::SpareSteer => write!(f, "spare-steer"),
            RecoveryRung::Place => write!(f, "place"),
            RecoveryRung::Remap => write!(f, "remap"),
            RecoveryRung::PeBypass => write!(f, "pe-bypass"),
            RecoveryRung::GridRemap => write!(f, "grid-remap"),
            RecoveryRung::Degrade => write!(f, "degrade"),
        }
    }
}

/// Deadline/budget for one recovery rung.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RungBudget {
    /// Maximum retraining epochs before the rung gives up.
    pub max_epochs: usize,
    /// Wall-clock watchdog deadline for the whole rung, in
    /// milliseconds.
    pub wall_clock_ms: u64,
}

/// Typed outcomes of a recovery step that did not reach its target.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoveryError {
    /// The rung's wall-clock watchdog expired before the epoch budget
    /// was spent.
    Timeout {
        /// Which rung timed out.
        rung: RecoveryRung,
        /// The deadline that was exceeded.
        budget_ms: u64,
        /// Epochs completed before the deadline hit.
        epochs_done: usize,
    },
    /// The rung spent its full epoch budget without reaching the
    /// accuracy target.
    AccuracyShortfall {
        /// Which rung fell short.
        rung: RecoveryRung,
        /// Best accuracy the rung measured (`None` if it never
        /// completed an epoch).
        achieved: Option<f64>,
        /// The target it was asked to reach.
        target: f64,
    },
    /// The remap rung needed more spare lanes than the array has and
    /// masking was not permitted.
    NoSpareLane {
        /// Faulty in-use lanes needing relocation.
        needed: usize,
        /// Healthy spare lanes available.
        spares: usize,
    },
    /// A structural rung was applied to a topology that does not
    /// implement it (setup error; aborts the ladder).
    UnsupportedRung {
        /// The rung the topology rejected.
        rung: RecoveryRung,
    },
    /// An accelerator operation failed (setup error; aborts the
    /// ladder).
    Accel(AccelError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Timeout {
                rung,
                budget_ms,
                epochs_done,
            } => write!(
                f,
                "{rung} rung exceeded its {budget_ms} ms deadline after {epochs_done} epoch(s)"
            ),
            RecoveryError::AccuracyShortfall {
                rung,
                achieved,
                target,
            } => match achieved {
                Some(a) => write!(f, "{rung} rung reached {a:.3}, target {target:.3}"),
                None => write!(f, "{rung} rung finished no epoch, target {target:.3}"),
            },
            RecoveryError::NoSpareLane { needed, spares } => {
                write!(
                    f,
                    "{needed} lane(s) need relocation, {spares} spare(s) free"
                )
            }
            RecoveryError::UnsupportedRung { rung } => {
                write!(f, "{rung} rung is not implemented by this topology")
            }
            RecoveryError::Accel(e) => write!(f, "accelerator error: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<AccelError> for RecoveryError {
    fn from(e: AccelError) -> RecoveryError {
        RecoveryError::Accel(e)
    }
}

/// Retry/backoff policy for rungs that hit their wall-clock watchdog.
///
/// A rung whose attempt ends in [`RecoveryError::Timeout`] is retried
/// up to `max_retries_per_rung` more times (every attempt's partial
/// [`RungReport`] is kept); once the retries are spent the ladder falls
/// through to the next rung — repeated timeouts never abort it. The
/// backoff fields are measured in *skipped traffic batches*: the
/// mission runtime ([`crate::mission`]) charges
/// [`backoff_batches`](RetryPolicy::backoff_batches) of unavailability
/// per failed recovery attempt, doubling (by `backoff_factor`) up to
/// the cap, so a persistently failing unit backs off instead of
/// stealing the whole stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts granted to a rung after a [`RecoveryError::Timeout`]
    /// (0 = the pre-retry ladder: one attempt, then fall through).
    pub max_retries_per_rung: usize,
    /// Traffic batches skipped after the first failed recovery attempt.
    pub backoff_base_batches: u64,
    /// Multiplier applied to the backoff on each further failure.
    pub backoff_factor: u64,
    /// Ceiling on the per-attempt backoff, in batches.
    pub max_backoff_batches: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            // No retries by default: the offline campaigns journaled
            // before this policy existed stay byte-identical.
            max_retries_per_rung: 0,
            backoff_base_batches: 4,
            backoff_factor: 2,
            max_backoff_batches: 64,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged for failed recovery attempt number `attempt`
    /// (0-based): `base · factor^attempt`, saturating at the cap.
    pub fn backoff_batches(&self, attempt: usize) -> u64 {
        let mut b = self.backoff_base_batches;
        for _ in 0..attempt {
            b = b.saturating_mul(self.backoff_factor);
            if b >= self.max_backoff_batches {
                return self.max_backoff_batches;
            }
        }
        b.min(self.max_backoff_batches)
    }
}

/// Configuration of the whole ladder.
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Budget for the retrain-around-defect rung.
    pub retrain: RungBudget,
    /// Budget for the post-remap retrain.
    pub remap: RungBudget,
    /// Accuracy at which a rung declares success and stops the ladder.
    pub target_accuracy: f64,
    /// Companion-core learning rate.
    pub learning_rate: f64,
    /// Companion-core momentum.
    pub momentum: f64,
    /// Seed for the per-rung training streams (deterministic ladder).
    pub seed: u64,
    /// Whether the remap rung runs at all (`false` = the blind-retrain
    /// baseline the paper's mechanism is compared against).
    pub use_remap: bool,
    /// Whether the memory-native rungs (ECC scrub, spare steer,
    /// sensitivity-aware placement) run when a weight store is
    /// attached. `false` together with `use_remap = false` is the
    /// blind-retrain baseline of the memory-defect campaign.
    pub use_memory_repair: bool,
    /// Whether faulty lanes with no spare may be masked to 0 instead of
    /// failing the remap rung with [`RecoveryError::NoSpareLane`].
    pub mask_unmappable: bool,
    /// Retry/backoff for rungs that hit their watchdog (see
    /// [`RetryPolicy`]). The default grants no retries, which is the
    /// pre-retry ladder exactly.
    pub retry: RetryPolicy,
    /// Test hook: stall the named rung's epoch loop by this many
    /// milliseconds per epoch, to exercise the watchdog path.
    pub chaos_stall: Option<(RecoveryRung, u64)>,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            retrain: RungBudget {
                max_epochs: 24,
                wall_clock_ms: 60_000,
            },
            remap: RungBudget {
                max_epochs: 24,
                wall_clock_ms: 60_000,
            },
            target_accuracy: 0.9,
            learning_rate: 0.2,
            momentum: 0.1,
            seed: 0x5EC0,
            use_remap: true,
            use_memory_repair: true,
            mask_unmappable: true,
            retry: RetryPolicy::default(),
            chaos_stall: None,
        }
    }
}

/// What a memory-native rung did to the weight store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemRungStats {
    /// Words the ECC scrub visited.
    pub words_scrubbed: usize,
    /// Words where the scrub's SEC-DED pass fixed a single-bit error.
    pub corrected: usize,
    /// Words the code could not protect (double or worse).
    pub uncorrectable: usize,
    /// Memory rows steered onto spares.
    pub rows_steered: usize,
    /// Memory columns steered onto spares.
    pub cols_steered: usize,
    /// March-diagnosed units left unrepaired (spares exhausted).
    pub unrepaired: usize,
    /// Logical hidden neurons moved by sensitivity-aware placement.
    pub moved: usize,
}

/// What one rung did.
#[derive(Clone, Debug, PartialEq)]
pub struct RungReport {
    /// Which rung.
    pub rung: RecoveryRung,
    /// Best test accuracy the rung measured, if it completed an epoch.
    pub accuracy: Option<f64>,
    /// Epochs it ran.
    pub epochs_used: usize,
    /// Why it stopped short of the target, if it did.
    pub error: Option<RecoveryError>,
    /// Logical lanes remapped onto spares (remap rung only).
    pub remapped: usize,
    /// Physical lanes masked to 0 (remap rung only).
    pub masked: usize,
    /// Weight-store statistics (memory-native rungs only).
    pub memory: Option<MemRungStats>,
}

/// The graceful-degradation estimate: expected residual accuracy from
/// the output-visibility of the still-active flagged operators, with no
/// labeled data.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradationEstimate {
    /// Predicted serving accuracy (floored at chance level).
    pub expected_accuracy: f64,
    /// Flagged sites still active after any remap/mask repairs.
    pub active_sites: usize,
    /// Of those, sites whose damage is visible at the operator output.
    pub visible_sites: usize,
    /// Mean visible fraction across the active sites (0 when none).
    pub mean_visible_fraction: f64,
}

/// The ladder's overall outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Per-rung reports, in execution order.
    pub rungs: Vec<RungReport>,
    /// Test accuracy before any rung ran.
    pub pre_recovery_accuracy: f64,
    /// Best measured accuracy across the pre-recovery state and every
    /// rung — what the accelerator actually serves with.
    pub accuracy: f64,
    /// True if some rung reached the accuracy target.
    pub succeeded: bool,
    /// Present when the ladder fell through to graceful degradation.
    pub degradation: Option<DegradationEstimate>,
}

impl RecoveryReport {
    /// The last rung that ran.
    pub fn final_rung(&self) -> Option<RecoveryRung> {
        self.rungs.last().map(|r| r.rung)
    }
}

/// Runs `body` with a watchdog that trips `expired` once `budget`
/// elapses; the watchdog thread exits as soon as `body` returns.
pub(crate) fn with_watchdog<T>(budget: Duration, body: impl FnOnce(&AtomicBool) -> T) -> T {
    let expired = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let deadline = Instant::now() + budget;
            while !done.load(Ordering::Acquire) {
                if Instant::now() >= deadline {
                    expired.store(true, Ordering::Release);
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let out = body(&expired);
        done.store(true, Ordering::Release);
        out
    })
}

/// Epoch-at-a-time retraining under a budget: early-outs on the target,
/// returns a typed [`RecoveryError::Timeout`] report when the watchdog
/// trips first, an [`RecoveryError::AccuracyShortfall`] report when the
/// epoch budget runs dry below target.
fn retrain_under_budget<A: Accel>(
    accel: &mut A,
    ds: &Dataset,
    train_idx: &[usize],
    test_idx: &[usize],
    policy: &RecoveryPolicy,
    budget: &RungBudget,
    rung: RecoveryRung,
) -> Result<RungReport, AccelError> {
    let salt = match rung {
        RecoveryRung::Retrain => 0x517A,
        RecoveryRung::EccScrub => 0xECC5,
        RecoveryRung::SpareSteer => 0x57EE,
        RecoveryRung::Place => 0x97AC,
        RecoveryRung::Remap => 0x9E3A,
        RecoveryRung::PeBypass => 0xB97A,
        RecoveryRung::GridRemap => 0x6E1D,
        RecoveryRung::Degrade => 0xDE64,
    };
    let stall = match policy.chaos_stall {
        Some((r, ms)) if r == rung => ms,
        _ => 0,
    };
    with_watchdog(Duration::from_millis(budget.wall_clock_ms), |expired| {
        let mut rng = ChaCha8Rng::seed_from_u64(policy.seed ^ salt);
        let mut best: Option<f64> = None;
        let mut epochs_used = 0usize;
        for _ in 0..budget.max_epochs {
            if stall > 0 {
                std::thread::sleep(Duration::from_millis(stall));
            }
            if expired.load(Ordering::Acquire) {
                return Ok(RungReport {
                    rung,
                    accuracy: best,
                    epochs_used,
                    error: Some(RecoveryError::Timeout {
                        rung,
                        budget_ms: budget.wall_clock_ms,
                        epochs_done: epochs_used,
                    }),
                    remapped: 0,
                    masked: 0,
                    memory: None,
                });
            }
            accel.retrain(
                ds,
                train_idx,
                policy.learning_rate,
                policy.momentum,
                1,
                &mut rng,
            )?;
            epochs_used += 1;
            let acc = accel.evaluate(ds, test_idx)?;
            if best.is_none_or(|b| acc > b) {
                best = Some(acc);
            }
            if acc >= policy.target_accuracy {
                return Ok(RungReport {
                    rung,
                    accuracy: best,
                    epochs_used,
                    error: None,
                    remapped: 0,
                    masked: 0,
                    memory: None,
                });
            }
        }
        Ok(RungReport {
            rung,
            accuracy: best,
            epochs_used,
            error: Some(RecoveryError::AccuracyShortfall {
                rung,
                achieved: best,
                target: policy.target_accuracy,
            }),
            remapped: 0,
            masked: 0,
            memory: None,
        })
    })
}

/// Re-measures accuracy after a weight-transparent repair (ECC scrub,
/// spare steering) under the rung watchdog, so a stalled memory
/// operation (the `chaos_stall` hook, or real pathological silicon)
/// surfaces as a typed [`RecoveryError::Timeout`] with the repair's
/// partial stats attached instead of an unbounded hang.
fn measure_under_watchdog<A: Accel>(
    accel: &mut A,
    ds: &Dataset,
    test_idx: &[usize],
    policy: &RecoveryPolicy,
    budget: &RungBudget,
    rung: RecoveryRung,
    outcome: &crate::accel::StructuralOutcome,
) -> Result<RungReport, AccelError> {
    let stall = match policy.chaos_stall {
        Some((r, ms)) if r == rung => ms,
        _ => 0,
    };
    with_watchdog(Duration::from_millis(budget.wall_clock_ms), |expired| {
        if stall > 0 {
            std::thread::sleep(Duration::from_millis(stall));
        }
        if expired.load(Ordering::Acquire) {
            return Ok(RungReport {
                rung,
                accuracy: None,
                epochs_used: 0,
                error: Some(RecoveryError::Timeout {
                    rung,
                    budget_ms: budget.wall_clock_ms,
                    epochs_done: 0,
                }),
                remapped: outcome.remapped,
                masked: outcome.masked,
                memory: outcome.memory.clone(),
            });
        }
        let acc = accel.evaluate(ds, test_idx)?;
        let reached = acc >= policy.target_accuracy;
        Ok(RungReport {
            rung,
            accuracy: Some(acc),
            epochs_used: 0,
            error: (!reached).then_some(RecoveryError::AccuracyShortfall {
                rung,
                achieved: Some(acc),
                target: policy.target_accuracy,
            }),
            remapped: outcome.remapped,
            masked: outcome.masked,
            memory: outcome.memory.clone(),
        })
    })
}

/// Installs the remap/mask repairs for the diagnosed faulty hidden
/// lanes. Returns `(remapped, masked)` or [`RecoveryError::NoSpareLane`].
pub(crate) fn install_remaps(
    accel: &mut Accelerator,
    diagnosis: &Diagnosis,
    policy: &RecoveryPolicy,
) -> Result<(usize, usize), RecoveryError> {
    let logical = accel
        .network()
        .ok_or(RecoveryError::Accel(AccelError::NoNetwork))?
        .topology();
    let phys = accel.geometry();
    let faulty = diagnosis.faulty_hidden_lanes();
    // Lanes the logical network currently routes through and that the
    // diagnosis implicated.
    let need: Vec<usize> = (0..logical.hidden)
        .filter(|&j| faulty.contains(&accel.faults().hidden_lane(j)))
        .collect();
    // Spares: physical lanes beyond the logical width, healthy and not
    // already the target of a remap.
    let spares: Vec<usize> = (logical.hidden..phys.hidden)
        .filter(|lane| !faulty.contains(lane))
        .filter(|&lane| (0..logical.hidden).all(|j| accel.faults().hidden_lane(j) != lane))
        .collect();
    if need.len() > spares.len() && !policy.mask_unmappable {
        return Err(RecoveryError::NoSpareLane {
            needed: need.len(),
            spares: spares.len(),
        });
    }
    let mut remapped = 0usize;
    let mut masked = 0usize;
    for (i, &j) in need.iter().enumerate() {
        if let Some(&spare) = spares.get(i) {
            accel.remap_hidden(j, spare)?;
            remapped += 1;
        } else {
            accel.mask_hidden(accel.faults().hidden_lane(j))?;
            masked += 1;
        }
    }
    Ok((remapped, masked))
}

/// Residual damage score of one hidden-bank memory row: a whole-row
/// failure dominates any count of residual bad cells.
fn row_badness(march: &MarchReport, row: usize) -> usize {
    let cells = march.bad_cells.iter().filter(|&&(r, _)| r == row).count();
    if march.bad_rows.contains(&row) {
        cells + 1_000_000
    } else {
        cells
    }
}

/// Sensitivity-aware placement: permutes the logical hidden neurons
/// across the physical lanes they currently occupy so that the neurons
/// the output layer leans on hardest (largest summed |output weight|)
/// land on the least-damaged memory rows. Returns how many logical
/// neurons moved.
pub(crate) fn place_by_sensitivity(accel: &mut Accelerator) -> Result<usize, RecoveryError> {
    let net = accel
        .network()
        .ok_or(RecoveryError::Accel(AccelError::NoNetwork))?;
    let topo = net.topology();
    // Output-sensitivity of each logical hidden neuron.
    let mut by_sensitivity: Vec<(usize, f64)> = (0..topo.hidden)
        .map(|j| {
            let s: f64 = (0..topo.outputs).map(|k| net.w_output(k, j).abs()).sum();
            (j, s)
        })
        .collect();
    by_sensitivity.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    // Residual row damage after any steering, from a fresh march (the
    // march rewinds the store's activation streams when it finishes).
    let march = march_cminus(accel.memory_mut().ok_or(AccelError::NoMemory)?);
    // The lanes currently in use, healthiest memory row first. A hidden
    // lane's weights live on the hidden-bank row of the same index.
    let mut lanes: Vec<(usize, usize)> = (0..topo.hidden)
        .map(|j| {
            let lane = accel.faults().hidden_lane(j);
            (lane, row_badness(&march, lane))
        })
        .collect();
    lanes.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));

    // Most sensitive neuron → healthiest row. Both sides draw from the
    // same lane set, so the assignment stays a bijection.
    let mut moved = 0usize;
    for (&(j, _), &(lane, _)) in by_sensitivity.iter().zip(&lanes) {
        if accel.faults().hidden_lane(j) != lane {
            moved += 1;
        }
        accel.faults_mut().remap_hidden(j, lane);
    }
    Ok(moved)
}

/// Estimates residual accuracy without labeled data: each flagged,
/// still-active operator contributes an expected loss proportional to
/// its measured output visibility, scaled by how much of the neuron's
/// accumulation it touches. A deliberately simple, monotone heuristic —
/// the point is an honest "how wrong to expect", not a tight bound.
pub(crate) fn estimate_degradation(
    accel: &mut Accelerator,
    diagnosis: &Diagnosis,
    baseline_accuracy: f64,
) -> DegradationEstimate {
    let logical = accel.network().map(|m| m.topology());
    let phys = accel.geometry();
    // Physical hidden lanes the logical network actually routes through.
    let active_hidden: Vec<usize> = match logical {
        Some(l) => (0..l.hidden)
            .map(|j| accel.faults().hidden_lane(j))
            .collect(),
        None => (0..phys.hidden).collect(),
    };
    let outputs = logical.map_or(phys.outputs, |l| l.outputs);
    let chance = 1.0 / outputs.max(1) as f64;
    let hw_inputs = accel.faults().hw_inputs() as f64;

    let mut active_sites = 0usize;
    let mut visible_sites = 0usize;
    let mut vf_sum = 0.0f64;
    let mut loss = 0.0f64;
    let samples = 256;
    for (i, site) in diagnosis.flagged.iter().enumerate() {
        let lane_active = match site.layer {
            Layer::Hidden => {
                active_hidden.contains(&site.neuron)
                    && !accel.faults().is_masked(Layer::Hidden, site.neuron)
            }
            Layer::Output => {
                site.neuron < outputs && !accel.faults().is_masked(Layer::Output, site.neuron)
            }
        };
        if !lane_active {
            continue;
        }
        active_sites += 1;
        let seed = 0xD156_0000 ^ i as u64;
        let vf = site_visibility(accel, site, samples, seed);
        if vf > 0.0 {
            visible_sites += 1;
        }
        vf_sum += vf;
        // Per-synapse operators corrupt one of `hw_inputs` accumulation
        // terms; adders and activation units sit on the whole sum.
        let sensitivity = match site.unit {
            UnitKind::Adder | UnitKind::Activation => 0.25,
            UnitKind::Multiplier | UnitKind::Latch | UnitKind::Pe => 0.25 / hw_inputs.sqrt(),
        };
        loss += vf * sensitivity;
    }
    let expected = (baseline_accuracy - loss).clamp(chance, baseline_accuracy.max(chance));
    DegradationEstimate {
        expected_accuracy: expected,
        active_sites,
        visible_sites,
        mean_visible_fraction: if active_sites > 0 {
            vf_sum / active_sites as f64
        } else {
            0.0
        },
    }
}

/// Visible fraction of one flagged operator's output, via the
/// `dta-circuits` visibility model (latches measured inline: fraction
/// of random weight words the stuck bits alter).
fn site_visibility(accel: &mut Accelerator, site: &FaultSite, samples: usize, seed: u64) -> f64 {
    let plan = accel.faults_mut();
    let Some(nf) = plan.neuron_mut(site.layer, site.neuron) else {
        return 0.0;
    };
    match (site.unit, site.synapse) {
        (UnitKind::Multiplier, Some(s)) => nf.multiplier_mut(s).map_or(0.0, |hw| {
            multiplier_visibility(hw, samples, seed).visible_fraction
        }),
        (UnitKind::Adder, Some(s)) => nf.adder_mut(s).map_or(0.0, |hw| {
            adder_visibility(hw, samples, seed).visible_fraction
        }),
        (UnitKind::Activation, _) => {
            // `activation` falls back to the native LUT when no faulty
            // unit is installed, making the measurement vacuous there;
            // flagged sites always have one.
            let lut = dta_fixed::SigmoidLut::new();
            sigmoid_visibility_of(nf, &lut, samples, seed)
        }
        (UnitKind::Latch, Some(s)) => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut visible = 0usize;
            for _ in 0..samples {
                let w = Fx::from_raw(rand::Rng::random::<i16>(&mut rng));
                if nf.latch_filter(s, w) != w {
                    visible += 1;
                }
            }
            visible as f64 / samples.max(1) as f64
        }
        _ => 0.0,
    }
}

/// Sigmoid-unit visibility through the `NeuronFaults` wrapper (the
/// faulty unit is not directly reachable, but its behavior is).
fn sigmoid_visibility_of(
    nf: &mut dta_ann::NeuronFaults,
    lut: &dta_fixed::SigmoidLut,
    samples: usize,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let xs: Vec<Fx> = (0..samples)
        .map(|_| Fx::from_raw(rand::Rng::random::<i16>(&mut rng)))
        .collect();
    // Batch entry point: rides the compiled-LUT / cone-pruned paths
    // instead of one event-driven settle per sample.
    let got = nf.activation_batch(&xs, lut);
    let visible = got
        .iter()
        .zip(&xs)
        .filter(|&(&y, &x)| y != lut.eval(x))
        .count();
    visible as f64 / samples.max(1) as f64
}

/// Runs the recovery ladder on a diagnosed accelerator.
///
/// Rungs execute in order: the universal retrain-around-defect rung
/// first, then the topology's own structural rungs
/// ([`Accel::structural_rungs`]: ecc-scrub → spare-steer → place →
/// remap on the spatial array, pe-bypass → grid-remap on the systolic
/// grid), then graceful degradation; a rung that reaches
/// `policy.target_accuracy` stops the ladder. The report's
/// `accuracy` is the best *measured* accuracy across the pre-recovery
/// state and every rung — recovery never serves a worse network than it
/// started with.
///
/// # Errors
///
/// [`RecoveryError::Accel`] on accelerator setup errors (no network
/// mapped, mismatched dataset). Rung-level failures (timeout,
/// shortfall, no spare lane) are recorded in the per-rung reports and
/// do *not* abort the ladder — that is the fall-through the ladder
/// exists for.
pub fn recover<A: Accel>(
    accel: &mut A,
    ds: &Dataset,
    train_idx: &[usize],
    test_idx: &[usize],
    diagnosis: &Diagnosis,
    policy: &RecoveryPolicy,
) -> Result<RecoveryReport, RecoveryError> {
    let pre = accel.evaluate(ds, test_idx)?;
    let mut rungs: Vec<RungReport> = Vec::new();
    let mut best = pre;
    let mut succeeded = false;

    // Runs one rung attempt up to `1 + max_retries_per_rung` times:
    // an attempt ending in a typed Timeout is retried with its partial
    // report kept; any other outcome ends the loop. Returns the final
    // attempt's report.
    let retries = policy.retry.max_retries_per_rung;
    macro_rules! with_retries {
        ($attempt:expr) => {{
            let mut left = retries;
            loop {
                let r: RungReport = $attempt?;
                if matches!(r.error, Some(RecoveryError::Timeout { .. })) && left > 0 {
                    left -= 1;
                    rungs.push(r);
                    continue;
                }
                break r;
            }
        }};
    }

    // Rung 1: retrain around the defects.
    let r1 = with_retries!(retrain_under_budget(
        accel,
        ds,
        train_idx,
        test_idx,
        policy,
        &policy.retrain,
        RecoveryRung::Retrain,
    ));
    if let Some(a) = r1.accuracy {
        best = best.max(a);
    }
    succeeded |= r1.error.is_none();
    let mut stop = r1.error.is_none();
    rungs.push(r1);

    // Topology-specific structural rungs, in the topology's order.
    for rung in accel.structural_rungs(policy) {
        if stop {
            break;
        }
        match accel.apply_structural_rung(rung, diagnosis, policy) {
            // Routing changed: retrain to the new configuration under
            // the remap budget.
            Ok(outcome) if outcome.retrain_after => {
                let rp = with_retries!(retrain_under_budget(
                    accel,
                    ds,
                    train_idx,
                    test_idx,
                    policy,
                    &policy.remap,
                    rung,
                )
                .map(|mut r| {
                    r.remapped = outcome.remapped;
                    r.masked = outcome.masked;
                    r.memory = outcome.memory.clone();
                    r
                }));
                if let Some(a) = rp.accuracy {
                    best = best.max(a);
                }
                succeeded |= rp.error.is_none();
                stop |= rp.error.is_none();
                rungs.push(rp);
            }
            // Weight-transparent repair: re-measure under the rung
            // watchdog (a stalled store must fall through, not hang).
            Ok(outcome) => {
                let rp = with_retries!(measure_under_watchdog(
                    accel,
                    ds,
                    test_idx,
                    policy,
                    &policy.remap,
                    rung,
                    &outcome,
                ));
                if let Some(a) = rp.accuracy {
                    best = best.max(a);
                }
                succeeded |= rp.error.is_none();
                stop |= rp.error.is_none();
                rungs.push(rp);
            }
            // Spares ran out: record the typed failure, keep climbing.
            Err(e @ RecoveryError::NoSpareLane { .. }) => {
                rungs.push(RungReport {
                    rung,
                    accuracy: None,
                    epochs_used: 0,
                    error: Some(e),
                    remapped: 0,
                    masked: 0,
                    memory: None,
                });
            }
            Err(e) => return Err(e),
        }
    }

    // Final rung: graceful degradation — always "succeeds" at reporting.
    let degradation = if succeeded {
        None
    } else {
        let est = accel.degradation(diagnosis, best);
        rungs.push(RungReport {
            rung: RecoveryRung::Degrade,
            accuracy: None,
            epochs_used: 0,
            error: None,
            remapped: 0,
            masked: 0,
            memory: None,
        });
        Some(est)
    };

    Ok(RecoveryReport {
        rungs,
        pre_recovery_accuracy: pre,
        accuracy: best,
        succeeded,
        degradation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selftest::{run_selftest, BistConfig};
    use dta_ann::{Mlp, Topology};
    use dta_circuits::FaultModel;
    use dta_datasets::suite;

    fn iris_split() -> (Dataset, Vec<usize>, Vec<usize>) {
        let ds = suite::load("iris").unwrap();
        let train: Vec<usize> = (0..ds.len()).filter(|i| i % 3 != 0).collect();
        let test: Vec<usize> = (0..ds.len()).step_by(3).collect();
        (ds, train, test)
    }

    fn commissioned_accel(
        seed: u64,
        defects: usize,
    ) -> (Accelerator, Dataset, Vec<usize>, Vec<usize>) {
        let (ds, train, test) = iris_split();
        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 6, 3), seed))
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        accel.retrain(&ds, &train, 0.2, 0.1, 30, &mut rng).unwrap();
        accel
            .inject_defects(defects, FaultModel::TransistorLevel, &mut rng)
            .unwrap();
        (accel, ds, train, test)
    }

    #[test]
    fn retrain_rung_recovers_a_damaged_network() {
        let (mut accel, ds, train, test) = commissioned_accel(3, 4);
        let diagnosis = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        let policy = RecoveryPolicy {
            target_accuracy: 0.85,
            ..RecoveryPolicy::default()
        };
        let report = recover(&mut accel, &ds, &train, &test, &diagnosis, &policy).unwrap();
        assert!(report.accuracy >= report.pre_recovery_accuracy);
        assert!(!report.rungs.is_empty());
        assert_eq!(report.rungs[0].rung, RecoveryRung::Retrain);
    }

    #[test]
    fn timeout_is_typed_and_falls_through() {
        // Chaos hook: stall the retrain rung past its deadline. The
        // rung must return a typed Timeout and the ladder must continue
        // to the next rung instead of hanging or aborting.
        let (mut accel, ds, train, test) = commissioned_accel(5, 6);
        let diagnosis = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        let policy = RecoveryPolicy {
            retrain: RungBudget {
                max_epochs: 5,
                wall_clock_ms: 30,
            },
            target_accuracy: 2.0, // unreachable: forces the full ladder
            chaos_stall: Some((RecoveryRung::Retrain, 100)),
            ..RecoveryPolicy::default()
        };
        let report = recover(&mut accel, &ds, &train, &test, &diagnosis, &policy).unwrap();
        let r1 = &report.rungs[0];
        assert_eq!(r1.rung, RecoveryRung::Retrain);
        assert!(
            matches!(
                r1.error,
                Some(RecoveryError::Timeout {
                    rung: RecoveryRung::Retrain,
                    budget_ms: 30,
                    ..
                })
            ),
            "expected a typed timeout, got {:?}",
            r1.error
        );
        // Fall-through: the remap rung ran (unstalled) and then the
        // unreachable target forced graceful degradation.
        assert!(report.rungs.len() >= 2, "ladder stopped at the timeout");
        assert_eq!(report.rungs[1].rung, RecoveryRung::Remap);
        assert!(
            report.rungs[1].epochs_used > 0,
            "next rung did real work after the timeout"
        );
        assert_eq!(report.final_rung(), Some(RecoveryRung::Degrade));
        assert!(!report.succeeded);
        let est = report.degradation.expect("degradation estimate present");
        assert!(est.expected_accuracy >= 1.0 / 3.0 - 1e-12);
        assert!(est.expected_accuracy <= 1.0);
    }

    #[test]
    fn every_spatial_rung_times_out_typed_and_falls_through() {
        // Satellite: drive the chaos stall through each rung of the
        // spatial ladder in turn. Whatever rung stalls, the ladder must
        // record a typed Timeout on it — keeping any partial repair
        // stats the rung accrued before the watchdog hit — and keep
        // climbing to graceful degradation instead of hanging.
        let tight = RungBudget {
            max_epochs: 3,
            wall_clock_ms: 30,
        };
        let table = [
            RecoveryRung::Retrain,
            RecoveryRung::EccScrub,
            RecoveryRung::SpareSteer,
            RecoveryRung::Place,
            RecoveryRung::Remap,
        ];
        for &stalled in &table {
            let (mut accel, ds, train, test) = commissioned_accel(9, 4);
            accel.attach_weight_memory().unwrap();
            accel
                .memory_mut()
                .unwrap()
                .push_defect(dta_mem::MemDefect::RowStuck { row: 2 }, None);
            let diagnosis = run_selftest(&mut accel, &BistConfig::default()).unwrap();
            let policy = RecoveryPolicy {
                retrain: tight,
                remap: tight,
                target_accuracy: 2.0, // unreachable: forces the full ladder
                chaos_stall: Some((stalled, 80)),
                ..RecoveryPolicy::default()
            };
            let report = recover(&mut accel, &ds, &train, &test, &diagnosis, &policy).unwrap();
            let pos = report
                .rungs
                .iter()
                .position(|r| r.rung == stalled)
                .unwrap_or_else(|| panic!("{stalled} never ran"));
            let hit = &report.rungs[pos];
            assert!(
                matches!(hit.error, Some(RecoveryError::Timeout { .. })),
                "{stalled}: expected a typed timeout, got {:?}",
                hit.error
            );
            if stalled == RecoveryRung::SpareSteer {
                // The repair itself landed before the watchdog hit: the
                // timed-out report still carries the steering stats.
                let stats = hit.memory.as_ref().expect("steer stats on the timeout");
                assert!(stats.rows_steered > 0, "{stalled}: {stats:?}");
            }
            assert!(
                report.rungs.len() > pos + 1,
                "{stalled}: ladder stopped at the timeout"
            );
            assert_eq!(report.final_rung(), Some(RecoveryRung::Degrade));
            assert!(!report.succeeded);
        }
    }

    #[test]
    fn timed_out_mask_fallback_keeps_partial_remap_stats() {
        // The "mask" flavor of the remap rung: 6 faulty in-use lanes on
        // a 10-lane array leaves 4 spares, so 4 remaps + 2 masks land
        // before the post-remap retrain stalls out. The typed Timeout
        // report must still carry those partial repair stats.
        let (mut accel, ds, train, test) = commissioned_accel(9, 0);
        let diagnosis = Diagnosis {
            screened_lanes: (0..6).map(|n| (Layer::Hidden, n)).collect(),
            ..Diagnosis::default()
        };
        let tight = RungBudget {
            max_epochs: 3,
            wall_clock_ms: 30,
        };
        let policy = RecoveryPolicy {
            retrain: tight,
            remap: tight,
            target_accuracy: 2.0,
            chaos_stall: Some((RecoveryRung::Remap, 80)),
            ..RecoveryPolicy::default()
        };
        let report = recover(&mut accel, &ds, &train, &test, &diagnosis, &policy).unwrap();
        let hit = report
            .rungs
            .iter()
            .find(|r| r.rung == RecoveryRung::Remap)
            .expect("remap rung ran");
        assert!(matches!(hit.error, Some(RecoveryError::Timeout { .. })));
        assert_eq!(hit.remapped, 4);
        assert_eq!(hit.masked, 2);
        assert_eq!(report.final_rung(), Some(RecoveryRung::Degrade));
    }

    #[test]
    fn repeated_timeouts_retry_then_fall_through() {
        // RetryPolicy: a rung that times out is retried up to the
        // budget, every attempt's partial report kept, and the ladder
        // still falls through after the last one.
        let (mut accel, ds, train, test) = commissioned_accel(5, 6);
        let diagnosis = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        let policy = RecoveryPolicy {
            retrain: RungBudget {
                max_epochs: 5,
                wall_clock_ms: 30,
            },
            target_accuracy: 2.0,
            chaos_stall: Some((RecoveryRung::Retrain, 100)),
            retry: RetryPolicy {
                max_retries_per_rung: 2,
                ..RetryPolicy::default()
            },
            ..RecoveryPolicy::default()
        };
        let report = recover(&mut accel, &ds, &train, &test, &diagnosis, &policy).unwrap();
        let retrain_attempts: Vec<&RungReport> = report
            .rungs
            .iter()
            .filter(|r| r.rung == RecoveryRung::Retrain)
            .collect();
        assert_eq!(retrain_attempts.len(), 3, "1 attempt + 2 retries");
        for attempt in &retrain_attempts {
            assert!(
                matches!(attempt.error, Some(RecoveryError::Timeout { .. })),
                "{:?}",
                attempt.error
            );
        }
        // After the retries are spent, the ladder keeps climbing.
        assert!(report.rungs.iter().any(|r| r.rung == RecoveryRung::Remap));
        assert_eq!(report.final_rung(), Some(RecoveryRung::Degrade));
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.backoff_batches(0), 4);
        assert_eq!(retry.backoff_batches(1), 8);
        assert_eq!(retry.backoff_batches(2), 16);
        assert_eq!(retry.backoff_batches(4), 64);
        assert_eq!(retry.backoff_batches(40), 64, "cap holds, no overflow");
    }

    #[test]
    fn no_spare_lane_is_typed_when_masking_forbidden() {
        // 6 logical neurons on a 10-lane array leaves 4 spares; flag 5
        // in-use lanes so the remap rung cannot relocate them all.
        let (mut accel, ds, train, test) = commissioned_accel(7, 0);
        let diagnosis = Diagnosis {
            flagged: Vec::new(),
            screened_lanes: (0..5).map(|n| (Layer::Hidden, n)).collect(),
            operators_probed: 0,
            memory: None,
        };
        let policy = RecoveryPolicy {
            retrain: RungBudget {
                max_epochs: 1,
                wall_clock_ms: 60_000,
            },
            target_accuracy: 2.0,
            mask_unmappable: false,
            ..RecoveryPolicy::default()
        };
        let report = recover(&mut accel, &ds, &train, &test, &diagnosis, &policy).unwrap();
        let r2 = report
            .rungs
            .iter()
            .find(|r| r.rung == RecoveryRung::Remap)
            .expect("remap rung attempted");
        assert_eq!(
            r2.error,
            Some(RecoveryError::NoSpareLane {
                needed: 5,
                spares: 4
            })
        );
        assert_eq!(report.final_rung(), Some(RecoveryRung::Degrade));
    }

    #[test]
    fn memory_rungs_run_and_never_lose_to_blind_retraining() {
        // Twin arrays with the same memory damage: the full ladder
        // (ECC scrub, spare steer, placement) must never end below the
        // blind-retrain arm, because the rungs are strictly additive
        // over the same rung-1 trajectory.
        for seed in [2u64, 13] {
            let build = || {
                let (mut accel, ds, train, test) = commissioned_accel(seed, 0);
                accel.attach_weight_memory().unwrap();
                let mem = accel.memory_mut().unwrap();
                // A wordline failure on an in-use hidden row plus a
                // spread of stuck cells: enough to hurt, repairable.
                mem.push_defect(
                    dta_mem::MemDefect::RowStuck {
                        row: 1 + (seed as usize % 4),
                    },
                    None,
                );
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFEED);
                mem.inject_many(6, dta_mem::Activation::Permanent, &mut rng);
                (accel, ds, train, test)
            };
            let base = RecoveryPolicy {
                retrain: RungBudget {
                    max_epochs: 6,
                    wall_clock_ms: 60_000,
                },
                remap: RungBudget {
                    max_epochs: 6,
                    wall_clock_ms: 60_000,
                },
                target_accuracy: 0.97,
                seed,
                ..RecoveryPolicy::default()
            };
            let blind_policy = RecoveryPolicy {
                use_remap: false,
                use_memory_repair: false,
                ..base.clone()
            };

            let (mut blind_accel, ds, train, test) = build();
            let blind = recover(
                &mut blind_accel,
                &ds,
                &train,
                &test,
                &Diagnosis::default(),
                &blind_policy,
            )
            .unwrap();

            let (mut full_accel, _, _, _) = build();
            let diagnosis = run_selftest(&mut full_accel, &BistConfig::default()).unwrap();
            assert!(
                diagnosis.memory.as_ref().is_some_and(|m| !m.clean()),
                "seed {seed}: march missed the planted damage"
            );
            let full = recover(&mut full_accel, &ds, &train, &test, &diagnosis, &base).unwrap();

            assert_eq!(
                blind.pre_recovery_accuracy, full.pre_recovery_accuracy,
                "seed {seed}: twins diverged before recovery"
            );
            assert!(
                full.accuracy >= blind.accuracy,
                "seed {seed}: recovered {} < blind {}",
                full.accuracy,
                blind.accuracy
            );
            // Unless rung 1 already hit the target, the memory rungs
            // must appear in order with their stats populated.
            if full.rungs[0].error.is_some() {
                let kinds: Vec<RecoveryRung> = full.rungs.iter().map(|r| r.rung).collect();
                assert!(kinds.contains(&RecoveryRung::EccScrub), "{kinds:?}");
                assert!(kinds.contains(&RecoveryRung::SpareSteer), "{kinds:?}");
                let steer = full
                    .rungs
                    .iter()
                    .find(|r| r.rung == RecoveryRung::SpareSteer)
                    .unwrap();
                let stats = steer.memory.as_ref().unwrap();
                assert!(
                    stats.rows_steered > 0,
                    "seed {seed}: row failure not steered: {stats:?}"
                );
            }
        }
    }

    #[test]
    fn remap_rung_repairs_what_blind_retraining_cannot() {
        // A deterministic ladder comparison on the same damaged array:
        // the remap arm must never end below the blind arm, because the
        // rungs are strictly additive over the same rung-1 trajectory.
        for seed in [11u64, 23, 31] {
            let build = || commissioned_accel(seed, 8);
            let (mut blind_accel, ds, train, test) = build();
            let (mut remap_accel, _, _, _) = build();
            let diagnosis = run_selftest(&mut remap_accel, &BistConfig::default()).unwrap();
            let base = RecoveryPolicy {
                retrain: RungBudget {
                    max_epochs: 6,
                    wall_clock_ms: 60_000,
                },
                remap: RungBudget {
                    max_epochs: 6,
                    wall_clock_ms: 60_000,
                },
                target_accuracy: 0.97,
                seed,
                ..RecoveryPolicy::default()
            };
            let blind_policy = RecoveryPolicy {
                use_remap: false,
                ..base.clone()
            };
            let blind = recover(
                &mut blind_accel,
                &ds,
                &train,
                &test,
                &Diagnosis::default(),
                &blind_policy,
            )
            .unwrap();
            let full = recover(&mut remap_accel, &ds, &train, &test, &diagnosis, &base).unwrap();
            assert_eq!(
                blind.pre_recovery_accuracy, full.pre_recovery_accuracy,
                "seed {seed}: twins diverged before recovery"
            );
            assert!(
                full.accuracy >= blind.accuracy,
                "seed {seed}: recovered {} < blind {}",
                full.accuracy,
                blind.accuracy
            );
        }
    }
}
