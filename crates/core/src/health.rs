//! The per-accelerator **health-state machine** driven by the
//! mission-mode runtime ([`crate::mission`]).
//!
//! States and legal transitions (everything else is a typed error —
//! the runtime must never "teleport" an accelerator between states):
//!
//! | from | event | to |
//! |---|---|---|
//! | `Healthy` | `ProbeMismatch` | `Suspect` |
//! | `Suspect` | `RecoveryStarted` | `Recovering` |
//! | `Recovering` | `RecoverySucceeded` | `Healthy` |
//! | `Recovering` | `RecoveryFellShort` | `Degraded` |
//! | `Recovering` | `RetriesExhausted` | `Quarantined` |
//! | `Degraded` | `ProbeMismatch` | `Suspect` |
//! | `Degraded` | `RecoveryStarted` | `Recovering` |
//!
//! `Quarantined` is terminal: the implicated units have been masked
//! fail-silent ([`crate::accel::Accel::quarantine`]) and the stream
//! keeps serving whatever accuracy the surviving fabric delivers; no
//! further probes or repairs are attempted. `ProbeClean` is legal in
//! every non-terminal state and never changes it — a clean probe is
//! evidence, not a transition.

use std::fmt;

/// Where an accelerator stands in the degrade-and-recover lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Serving at commissioned accuracy; no unresolved probe evidence.
    Healthy,
    /// A BIST probe mismatched its signature; recovery has not started.
    Suspect,
    /// The recovery ladder is running (modeled as a batch-boundary
    /// action by the mission loop).
    Recovering,
    /// Recovery ran but fell short of the accuracy target; the stream
    /// serves at reduced accuracy and further probe evidence re-arms
    /// recovery (with backoff).
    Degraded,
    /// Recovery attempts are exhausted; implicated units are masked
    /// fail-silent and the state is terminal.
    Quarantined,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Suspect => write!(f, "suspect"),
            HealthState::Recovering => write!(f, "recovering"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// Evidence the mission runtime feeds the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthEvent {
    /// A periodic BIST probe matched every signature.
    ProbeClean,
    /// A periodic BIST probe flagged at least one unit.
    ProbeMismatch,
    /// The recovery ladder is about to run.
    RecoveryStarted,
    /// The ladder reached its accuracy target.
    RecoverySucceeded,
    /// The ladder completed but below target.
    RecoveryFellShort,
    /// The per-episode retry budget is spent; quarantine follows.
    RetriesExhausted,
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthEvent::ProbeClean => write!(f, "probe-clean"),
            HealthEvent::ProbeMismatch => write!(f, "probe-mismatch"),
            HealthEvent::RecoveryStarted => write!(f, "recovery-started"),
            HealthEvent::RecoverySucceeded => write!(f, "recovery-succeeded"),
            HealthEvent::RecoveryFellShort => write!(f, "recovery-fell-short"),
            HealthEvent::RetriesExhausted => write!(f, "retries-exhausted"),
        }
    }
}

/// An event that is not legal in the machine's current state — a
/// runtime logic error, surfaced typed instead of silently absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The state the machine was in.
    pub from: HealthState,
    /// The event that is not legal there.
    pub event: HealthEvent,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {} is illegal in state {}", self.event, self.from)
    }
}

impl std::error::Error for IllegalTransition {}

/// The state machine plus its full transition log (batch-stamped), so
/// a mission trace can reconstruct *when* the accelerator was in each
/// state.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    state: HealthState,
    log: Vec<(u64, HealthState)>,
}

impl Default for HealthMonitor {
    fn default() -> HealthMonitor {
        HealthMonitor::new()
    }
}

impl HealthMonitor {
    /// A fresh monitor: `Healthy` at batch 0.
    pub fn new() -> HealthMonitor {
        HealthMonitor {
            state: HealthState::Healthy,
            log: vec![(0, HealthState::Healthy)],
        }
    }

    /// The current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The batch-stamped transition log, oldest first (the initial
    /// `Healthy` entry included).
    pub fn log(&self) -> &[(u64, HealthState)] {
        &self.log
    }

    /// True once the machine has reached the terminal state.
    pub fn is_quarantined(&self) -> bool {
        self.state == HealthState::Quarantined
    }

    /// Feeds one piece of evidence observed at `batch`; returns the
    /// state after the transition.
    ///
    /// # Errors
    ///
    /// [`IllegalTransition`] when `event` is not legal in the current
    /// state (see the module-level transition table). The state is
    /// unchanged on error.
    pub fn on_event(
        &mut self,
        event: HealthEvent,
        batch: u64,
    ) -> Result<HealthState, IllegalTransition> {
        use HealthEvent as E;
        use HealthState as S;
        let next = match (self.state, event) {
            // A clean probe is legal wherever probes run and changes
            // nothing.
            (s, E::ProbeClean) if s != S::Quarantined => s,
            (S::Healthy, E::ProbeMismatch) => S::Suspect,
            (S::Suspect, E::RecoveryStarted) => S::Recovering,
            (S::Recovering, E::RecoverySucceeded) => S::Healthy,
            (S::Recovering, E::RecoveryFellShort) => S::Degraded,
            (S::Recovering, E::RetriesExhausted) => S::Quarantined,
            (S::Degraded, E::ProbeMismatch) => S::Suspect,
            (S::Degraded, E::RecoveryStarted) => S::Recovering,
            (from, event) => return Err(IllegalTransition { from, event }),
        };
        if next != self.state {
            self.log.push((batch, next));
        }
        self.state = next;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use HealthEvent as E;
    use HealthState as S;

    #[test]
    fn full_lifecycle_walks_the_table() {
        let mut m = HealthMonitor::new();
        assert_eq!(m.state(), S::Healthy);
        assert_eq!(m.on_event(E::ProbeClean, 1), Ok(S::Healthy));
        assert_eq!(m.on_event(E::ProbeMismatch, 2), Ok(S::Suspect));
        assert_eq!(m.on_event(E::RecoveryStarted, 2), Ok(S::Recovering));
        assert_eq!(m.on_event(E::RecoverySucceeded, 3), Ok(S::Healthy));
        assert_eq!(m.on_event(E::ProbeMismatch, 7), Ok(S::Suspect));
        assert_eq!(m.on_event(E::RecoveryStarted, 7), Ok(S::Recovering));
        assert_eq!(m.on_event(E::RecoveryFellShort, 8), Ok(S::Degraded));
        assert_eq!(m.on_event(E::ProbeMismatch, 9), Ok(S::Suspect));
        assert_eq!(m.on_event(E::RecoveryStarted, 9), Ok(S::Recovering));
        assert_eq!(m.on_event(E::RetriesExhausted, 10), Ok(S::Quarantined));
        assert!(m.is_quarantined());
        // The log records each change with its batch stamp.
        let states: Vec<S> = m.log().iter().map(|&(_, s)| s).collect();
        assert_eq!(
            states,
            vec![
                S::Healthy,
                S::Suspect,
                S::Recovering,
                S::Healthy,
                S::Suspect,
                S::Recovering,
                S::Degraded,
                S::Suspect,
                S::Recovering,
                S::Quarantined,
            ]
        );
        assert_eq!(m.log()[0], (0, S::Healthy));
        assert_eq!(*m.log().last().unwrap(), (10, S::Quarantined));
    }

    #[test]
    fn illegal_transitions_are_typed_and_leave_state_unchanged() {
        let mut m = HealthMonitor::new();
        // Recovery cannot start without probe evidence.
        let err = m.on_event(E::RecoveryStarted, 1).unwrap_err();
        assert_eq!(err.from, S::Healthy);
        assert_eq!(err.event, E::RecoveryStarted);
        assert_eq!(m.state(), S::Healthy);
        // Quarantined is terminal: even a clean probe is rejected.
        m.on_event(E::ProbeMismatch, 1).unwrap();
        m.on_event(E::RecoveryStarted, 1).unwrap();
        m.on_event(E::RetriesExhausted, 2).unwrap();
        assert!(m.on_event(E::ProbeClean, 3).is_err());
        assert!(m.on_event(E::ProbeMismatch, 3).is_err());
        assert_eq!(m.state(), S::Quarantined);
        assert_eq!(m.log().len(), 4);
    }

    #[test]
    fn clean_probes_do_not_grow_the_log() {
        let mut m = HealthMonitor::new();
        for b in 1..20 {
            m.on_event(E::ProbeClean, b).unwrap();
        }
        assert_eq!(m.log().len(), 1);
    }
}
