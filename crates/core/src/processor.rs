//! The Intel Stealey-class processor model behind Table IV.
//!
//! The paper runs a trimmed-down C version of the 90-10-10 ANN on a
//! Wattch/SimpleScalar configuration emulating an Intel Stealey (A110):
//! 800 MHz, ~3 W, 90 nm, with a perfect 1-cycle L1 so the comparison
//! isolates compute from the memory system. We reproduce that as an
//! operation-count × per-operation-cycle model calibrated to Table IV's
//! 19 680 cycles per 90-10-10 row at 2.78 W average power.

use std::fmt;

use dta_ann::Topology;

use crate::cost::CostReport;

/// Execution characteristics of the software ANN on the modeled core.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcessorRun {
    /// Cycles to process one input row.
    pub cycles_per_row: u64,
    /// Wall-clock time per row in ns.
    pub time_per_row_ns: f64,
    /// Energy per row in nJ.
    pub energy_per_row_nj: f64,
}

impl fmt::Display for ProcessorRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles/row | {:.0} ns/row | {:.0} nJ/row",
            self.cycles_per_row, self.time_per_row_ns, self.energy_per_row_nj
        )
    }
}

/// An in-order low-power core executing the trimmed-down software ANN.
///
/// The per-operation cycle counts model the inner loop of the C version
/// (load weight, load activation, multiply, accumulate, loop bookkeeping
/// — a handful of instructions on a 2-wide in-order core without FMA)
/// and are calibrated so the 90-10-10 network costs exactly the paper's
/// 19 680 cycles per row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcessorModel {
    /// Core clock in Hz (the Stealey's maximum, also used for the DMA).
    pub clock_hz: f64,
    /// Average power per cycle in W (Wattch measurement in the paper).
    pub avg_power_w: f64,
    /// Cycles per multiply-accumulate (incl. loads and loop overhead).
    pub cycles_per_mac: u64,
    /// Cycles per activation-function evaluation.
    pub cycles_per_activation: u64,
    /// Fixed per-row overhead cycles (row setup, output readout).
    pub row_overhead_cycles: u64,
}

impl ProcessorModel {
    /// The Stealey-class configuration of the paper (800 MHz, 2.78 W
    /// measured average power, Table IV calibration).
    pub fn stealey() -> ProcessorModel {
        ProcessorModel {
            clock_hz: 800e6,
            avg_power_w: 2.78,
            cycles_per_mac: 19,
            cycles_per_activation: 24,
            row_overhead_cycles: 20,
        }
    }

    /// Cycles to process one input row of a network.
    pub fn cycles_per_row(&self, topo: Topology) -> u64 {
        let macs = (topo.inputs as u64 + 1) * topo.hidden as u64
            + (topo.hidden as u64 + 1) * topo.outputs as u64;
        // The +1 bias terms are loads+adds folded into the MAC loop in
        // the C version; count them at MAC cost minus the multiply.
        let activations = (topo.hidden + topo.outputs) as u64;
        let plain_macs =
            (topo.inputs as u64) * topo.hidden as u64 + (topo.hidden as u64) * topo.outputs as u64;
        let bias_adds = macs - plain_macs;
        plain_macs * self.cycles_per_mac
            + bias_adds * (self.cycles_per_mac / 2)
            + activations * self.cycles_per_activation
            + self.row_overhead_cycles
    }

    /// The full Table IV characterization for a network.
    pub fn run(&self, topo: Topology) -> ProcessorRun {
        let cycles = self.cycles_per_row(topo);
        let time_ns = cycles as f64 / self.clock_hz * 1e9;
        let energy_nj = self.avg_power_w * time_ns; // W × ns = nJ
        ProcessorRun {
            cycles_per_row: cycles,
            time_per_row_ns: time_ns,
            energy_per_row_nj: energy_nj,
        }
    }

    /// Accelerator-vs-processor energy ratio for a geometry (the paper's
    /// headline ~1000×).
    pub fn energy_ratio(&self, topo: Topology, accel: &CostReport) -> f64 {
        self.run(topo).energy_per_row_nj / accel.energy_per_row_nj
    }

    /// Accelerator-vs-processor speedup for a geometry.
    pub fn speedup(&self, topo: Topology, accel: &CostReport) -> f64 {
        self.run(topo).time_per_row_ns / accel.latency_ns
    }
}

impl Default for ProcessorModel {
    fn default() -> ProcessorModel {
        ProcessorModel::stealey()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn table4_cycles_reproduced() {
        let p = ProcessorModel::stealey();
        let cycles = p.cycles_per_row(Topology::accelerator());
        // Paper: 19 680 cycles per 90-input row.
        assert_eq!(cycles, 19_680);
    }

    #[test]
    fn table4_energy_reproduced() {
        let p = ProcessorModel::stealey();
        let run = p.run(Topology::accelerator());
        // Paper: 24 600 ns and 68 388 nJ per row at 800 MHz / 2.78 W.
        assert!((run.time_per_row_ns - 24_600.0).abs() < 1.0);
        assert!((run.energy_per_row_nj - 68_388.0).abs() < 2.0);
    }

    #[test]
    fn energy_ratio_is_three_orders_of_magnitude() {
        let p = ProcessorModel::stealey();
        let accel = CostModel::calibrated_90nm().report(Topology::accelerator());
        let ratio = p.energy_ratio(Topology::accelerator(), &accel);
        // 68388 / 70.16 ≈ 975×.
        assert!((900.0..1050.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn speedup_is_three_orders_of_magnitude() {
        let p = ProcessorModel::stealey();
        let accel = CostModel::calibrated_90nm().report(Topology::accelerator());
        let s = p.speedup(Topology::accelerator(), &accel);
        // 24600 ns / 14.92 ns ≈ 1650×.
        assert!((1500.0..1800.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn smaller_networks_cost_fewer_cycles() {
        let p = ProcessorModel::stealey();
        assert!(
            p.cycles_per_row(Topology::new(4, 8, 3))
                < p.cycles_per_row(Topology::accelerator()) / 10
        );
    }

    #[test]
    fn display_mentions_cycles() {
        let p = ProcessorModel::stealey();
        assert!(p.run(Topology::accelerator()).to_string().contains("19680"));
    }
}
