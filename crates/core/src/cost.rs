//! The 90 nm cost model behind Table III.
//!
//! The paper synthesizes the accelerator with Synopsys Design Compiler on
//! the TSMC 90 nm library; that toolchain is not reproducible here, so
//! this module provides a **structurally derived, point-calibrated**
//! model:
//!
//! * transistor counts come from the *actual netlists* of `dta-circuits`
//!   (multipliers, adders, activation units, latch words), composed
//!   according to the accelerator geometry;
//! * critical-path depth comes from the netlists' longest combinational
//!   paths;
//! * three coefficients (area per transistor, energy per transistor per
//!   row, delay per gate level) are calibrated once so the 90-10-10
//!   design point reproduces Table III exactly (9.02 mm², 14.92 ns/row,
//!   70.16 nJ/row ⇒ 4.70 W);
//! * every other geometry is then *predicted* by structure.
//!
//! Our ripple-carry arithmetic is deliberately unoptimized compared to
//! what Design Compiler synthesizes, so the per-gate-level delay
//! coefficient absorbs that difference; ratios across geometries and
//! blocks are what the model is for, not absolute silicon truth.

use std::fmt;
use std::sync::OnceLock;

use dta_ann::Topology;
use dta_circuits::{FxMulCircuit, SatAdderCircuit, SigmoidUnitCircuit};

/// Table III targets for the 90-10-10 design point at 90 nm.
pub mod table3 {
    /// Accelerator area (mm²).
    pub const AREA_MM2: f64 = 9.02;
    /// Time to process one input row (ns).
    pub const LATENCY_NS: f64 = 14.92;
    /// Energy per input row (nJ).
    pub const ENERGY_PER_ROW_NJ: f64 = 70.16;
    /// Total dissipated power (W) — consistent with energy/latency.
    pub const POWER_W: f64 = 4.70;
    /// Memory interface area (mm²).
    pub const INTERFACE_AREA_MM2: f64 = 0.047;
    /// Memory interface power (W).
    pub const INTERFACE_POWER_W: f64 = 0.0054;
    /// Memory interface energy per row (nJ).
    pub const INTERFACE_ENERGY_NJ: f64 = 0.0021;
    /// One activation unit: area (mm²).
    pub const ACTIVATION_AREA_MM2: f64 = 0.017;
    /// One activation unit: power (W).
    pub const ACTIVATION_POWER_W: f64 = 0.0019;
    /// One activation unit: energy per row (nJ).
    pub const ACTIVATION_ENERGY_NJ: f64 = 0.0053;
    /// One activation unit: latency (ns).
    pub const ACTIVATION_LATENCY_NS: f64 = 2.84;
}

/// Per-operator structural measurements taken from the gate-level
/// netlists (transistor counts and critical-path depths).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OperatorMetrics {
    /// Transistors in one Q6.10 synaptic multiplier.
    pub mul_transistors: u64,
    /// Transistors in one 16-bit saturating adder.
    pub add_transistors: u64,
    /// Transistors in one activation unit.
    pub act_transistors: u64,
    /// Transistors in one 16-bit latch word.
    pub latch_word_transistors: u64,
    /// Critical-path depth (gate levels) of the multiplier.
    pub mul_depth: usize,
    /// Critical-path depth of the saturating adder.
    pub add_depth: usize,
    /// Critical-path depth of the activation unit.
    pub act_depth: usize,
}

impl OperatorMetrics {
    /// Measures the operator netlists (built once per process).
    pub fn measured() -> &'static OperatorMetrics {
        static METRICS: OnceLock<OperatorMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let mul = FxMulCircuit::new();
            let add = SatAdderCircuit::new();
            let act = SigmoidUnitCircuit::new();
            OperatorMetrics {
                mul_transistors: mul.netlist().transistor_count(),
                add_transistors: add.netlist().transistor_count(),
                act_transistors: act.netlist().transistor_count(),
                latch_word_transistors: 16 * 8,
                mul_depth: mul.netlist().logic_depth(),
                add_depth: add.netlist().logic_depth(),
                act_depth: act.netlist().logic_depth(),
            }
        })
    }
}

/// Structural inventory of an accelerator geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Inventory {
    /// Synaptic multipliers (both layers).
    pub multipliers: u64,
    /// Accumulation adders (both layers, including bias adds).
    pub adders: u64,
    /// Activation units (both layers).
    pub activations: u64,
    /// 16-bit latch words (weights + I/O double buffers + the partial
    /// time-multiplexing add-on latches).
    pub latch_words: u64,
    /// Total datapath transistors.
    pub transistors: u64,
    /// Critical-path depth in gate levels (hidden stage + output stage).
    pub depth: usize,
}

impl Inventory {
    /// Builds the inventory for a geometry.
    pub fn for_geometry(g: Topology) -> Inventory {
        let m = OperatorMetrics::measured();
        let (i, h, o) = (g.inputs as u64, g.hidden as u64, g.outputs as u64);
        let multipliers = i * h + h * o;
        // Per neuron: a tree of (fan-in - 1) adders plus one bias add.
        let adders = h * i + o * h;
        let activations = h + o;
        // Weights, input/output double buffers, TM add-on latches.
        let latch_words = (i * h + h * o) + 2 * (i + o) + 2 * h;
        let transistors = multipliers * m.mul_transistors
            + adders * m.add_transistors
            + activations * m.act_transistors
            + latch_words * m.latch_word_transistors;
        let tree = |n: u64| (64 - (n.max(1) - 1).leading_zeros().min(63)) as usize;
        let depth = m.mul_depth
            + tree(i + 1) * m.add_depth
            + m.act_depth
            + m.mul_depth
            + tree(h + 1) * m.add_depth
            + m.act_depth;
        Inventory {
            multipliers,
            adders,
            activations,
            latch_words,
            transistors,
            depth,
        }
    }
}

/// One block of the cost report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubBlock {
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in W.
    pub power_w: f64,
    /// Energy per processed row in nJ.
    pub energy_per_row_nj: f64,
    /// Latency contribution in ns.
    pub latency_ns: f64,
}

/// Full cost report for one geometry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostReport {
    /// Datapath area in mm².
    pub area_mm2: f64,
    /// Total power in W (energy/row ÷ latency).
    pub power_w: f64,
    /// Time to process one row in ns.
    pub latency_ns: f64,
    /// Energy per row in nJ.
    pub energy_per_row_nj: f64,
    /// One activation unit, derived from its own netlist.
    pub activation: SubBlock,
    /// The memory interface + key logic (Table III calibration).
    pub interface: SubBlock,
    /// Total datapath transistors.
    pub transistors: u64,
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "area {:.2} mm² | power {:.2} W | {:.2} ns/row | {:.2} nJ/row",
            self.area_mm2, self.power_w, self.latency_ns, self.energy_per_row_nj
        )?;
        write!(f, "({} transistors)", self.transistors)
    }
}

/// The calibrated 90 nm cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    area_per_transistor_mm2: f64,
    energy_per_transistor_nj: f64,
    delay_per_level_ns: f64,
}

impl CostModel {
    /// Calibrates the three coefficients so the 90-10-10 point matches
    /// Table III exactly.
    pub fn calibrated_90nm() -> CostModel {
        let inv = Inventory::for_geometry(Topology::accelerator());
        CostModel {
            area_per_transistor_mm2: table3::AREA_MM2 / inv.transistors as f64,
            energy_per_transistor_nj: table3::ENERGY_PER_ROW_NJ / inv.transistors as f64,
            delay_per_level_ns: table3::LATENCY_NS / inv.depth as f64,
        }
    }

    /// Predicts the cost of an arbitrary geometry.
    pub fn report(&self, geometry: Topology) -> CostReport {
        let m = OperatorMetrics::measured();
        let inv = Inventory::for_geometry(geometry);
        let area_mm2 = inv.transistors as f64 * self.area_per_transistor_mm2;
        let energy_per_row_nj = inv.transistors as f64 * self.energy_per_transistor_nj;
        let latency_ns = inv.depth as f64 * self.delay_per_level_ns;
        let power_w = energy_per_row_nj / latency_ns;

        let act_t = m.act_transistors as f64;
        let activation = SubBlock {
            area_mm2: act_t * self.area_per_transistor_mm2,
            energy_per_row_nj: act_t * self.energy_per_transistor_nj,
            power_w: act_t * self.energy_per_transistor_nj / latency_ns,
            latency_ns: m.act_depth as f64 * self.delay_per_level_ns,
        };
        let interface = SubBlock {
            area_mm2: table3::INTERFACE_AREA_MM2,
            power_w: table3::INTERFACE_POWER_W,
            energy_per_row_nj: table3::INTERFACE_ENERGY_NJ,
            latency_ns: 0.0, // overlapped with compute by double buffering
        };
        CostReport {
            area_mm2,
            power_w,
            latency_ns,
            energy_per_row_nj,
            activation,
            interface,
            transistors: inv.transistors,
        }
    }

    /// Area overhead of extending the array with on-line training
    /// hardware (paper §IV: "the accelerator can also be extended to
    /// include training hardware for tackling both the on-line and
    /// off-line scenarios"), as a fraction of the base area.
    ///
    /// The back-propagation datapath needs, per synapse, a gradient
    /// multiplier, a weight-update adder and a velocity/gradient latch
    /// word, plus one derivative multiplier per neuron — roughly
    /// doubling the array. This is why the paper ships training to the
    /// companion core for the high-performance (off-line) scenario.
    pub fn training_hardware_overhead(&self, geometry: Topology) -> f64 {
        let m = OperatorMetrics::measured();
        let (i, h, o) = (
            geometry.inputs as u64,
            geometry.hidden as u64,
            geometry.outputs as u64,
        );
        let synapses = i * h + h * o;
        let neurons = h + o;
        let extra = synapses * (m.mul_transistors + m.add_transistors + m.latch_word_transistors)
            + neurons * m.mul_transistors;
        let base = Inventory::for_geometry(geometry).transistors;
        extra as f64 / base as f64
    }

    /// Fraction of total area that is non-scalable key logic (interface,
    /// write decode, TM control) after `generations` technology nodes,
    /// assuming datapath area halves per node while key logic stays
    /// constant — the paper's §VI-A scalability argument (<10 % after 4
    /// generations, 25 % at the 6th).
    pub fn key_logic_area_fraction(&self, generations: u32) -> f64 {
        let datapath = table3::AREA_MM2 * 0.5f64.powi(generations as i32);
        table3::INTERFACE_AREA_MM2 / (table3::INTERFACE_AREA_MM2 + datapath)
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::calibrated_90nm()
    }
}

/// The §VI-C defect-sensitivity analysis: the output layer's adders and
/// activation functions directly sway the predicted class, so they are
/// the accelerator's defect-sensitive region. The paper reports them at
/// 25.9 % of the output layer and 2.3 % of the total area, and weighs
/// two mitigations: treating them as key logic (hardened, non-scaling
/// transistors) vs. adding spare output neurons.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensitiveAreaReport {
    /// Transistors in the sensitive units (output adders + activations).
    pub sensitive_transistors: u64,
    /// Transistors in the whole output layer.
    pub output_layer_transistors: u64,
    /// Sensitive fraction of the output layer.
    pub fraction_of_output_layer: f64,
    /// Sensitive fraction of the total datapath.
    pub fraction_of_total: f64,
    /// Area overhead of hardening the sensitive units as key logic
    /// (modeled as doubling their transistor area), as a fraction of
    /// total area.
    pub harden_overhead: f64,
    /// Area overhead of one spare (redundant) output neuron, as a
    /// fraction of total area.
    pub spare_neuron_overhead: f64,
}

impl SensitiveAreaReport {
    /// Computes the report for a geometry.
    pub fn for_geometry(g: Topology) -> SensitiveAreaReport {
        let m = OperatorMetrics::measured();
        let (h, o) = (g.hidden as u64, g.outputs as u64);
        let out_muls = h * o * m.mul_transistors;
        let out_adds = h * o * m.add_transistors;
        let out_acts = o * m.act_transistors;
        let out_latches = h * o * m.latch_word_transistors;
        let output_layer = out_muls + out_adds + out_acts + out_latches;
        let sensitive = out_adds + out_acts;
        let total = Inventory::for_geometry(g).transistors;
        // One spare output neuron: its synapses, adders, latches and one
        // activation unit.
        let spare = h * (m.mul_transistors + m.add_transistors + m.latch_word_transistors)
            + m.act_transistors;
        SensitiveAreaReport {
            sensitive_transistors: sensitive,
            output_layer_transistors: output_layer,
            fraction_of_output_layer: sensitive as f64 / output_layer as f64,
            fraction_of_total: sensitive as f64 / total as f64,
            harden_overhead: sensitive as f64 / total as f64,
            spare_neuron_overhead: spare as f64 / total as f64,
        }
    }

    /// The paper's recommendation: key-logic hardening "is preferable as
    /// long as the fraction of the overall area covered by the output
    /// adders and activation functions is small"; spare neurons win once
    /// a spare costs less than the hardening.
    pub fn hardening_preferable(&self) -> bool {
        self.harden_overhead < self.spare_neuron_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_table3_point() {
        let model = CostModel::calibrated_90nm();
        let report = model.report(Topology::accelerator());
        assert!((report.area_mm2 - table3::AREA_MM2).abs() < 1e-9);
        assert!((report.latency_ns - table3::LATENCY_NS).abs() < 1e-9);
        assert!((report.energy_per_row_nj - table3::ENERGY_PER_ROW_NJ).abs() < 1e-9);
        // Power is energy/latency, which Table III is consistent with.
        assert!((report.power_w - table3::POWER_W).abs() < 0.01);
    }

    #[test]
    fn smaller_geometry_costs_less() {
        let model = CostModel::calibrated_90nm();
        let big = model.report(Topology::accelerator());
        let small = model.report(Topology::new(30, 6, 4));
        assert!(small.area_mm2 < big.area_mm2 / 3.0);
        assert!(small.energy_per_row_nj < big.energy_per_row_nj / 3.0);
        assert!(small.latency_ns < big.latency_ns);
        assert!(small.transistors < big.transistors);
    }

    #[test]
    fn area_scales_roughly_with_synapse_count() {
        // Synaptic multipliers dominate; doubling the hidden layer about
        // doubles the area.
        let model = CostModel::calibrated_90nm();
        let base = model.report(Topology::new(90, 5, 10));
        let doubled = model.report(Topology::new(90, 10, 10));
        let ratio = doubled.area_mm2 / base.area_mm2;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn activation_subblock_in_table3_ballpark() {
        // The derived activation-unit numbers must land within a small
        // factor of Table III (the paper's unit is a synthesized macro,
        // ours is a structural estimate).
        let model = CostModel::calibrated_90nm();
        let report = model.report(Topology::accelerator());
        let act = report.activation;
        assert!(
            act.area_mm2 / table3::ACTIVATION_AREA_MM2 < 4.0
                && table3::ACTIVATION_AREA_MM2 / act.area_mm2 < 4.0,
            "activation area {} vs {}",
            act.area_mm2,
            table3::ACTIVATION_AREA_MM2
        );
        assert!(
            act.latency_ns / table3::ACTIVATION_LATENCY_NS < 4.0
                && table3::ACTIVATION_LATENCY_NS / act.latency_ns < 4.0,
            "activation latency {} vs {}",
            act.latency_ns,
            table3::ACTIVATION_LATENCY_NS
        );
    }

    #[test]
    fn key_logic_scaling_claims() {
        let model = CostModel::calibrated_90nm();
        // Paper: "less than 10% ... after 4 technology generations
        // (22nm), and 25% at the 6th generation (11nm)".
        let g4 = model.key_logic_area_fraction(4);
        assert!(g4 < 0.10, "22nm fraction {g4}");
        let g6 = model.key_logic_area_fraction(6);
        assert!((0.15..0.35).contains(&g6), "11nm fraction {g6}");
        // Monotonically growing as the datapath shrinks.
        assert!(model.key_logic_area_fraction(0) < g4 && g4 < g6);
    }

    #[test]
    fn inventory_counts_are_structural() {
        let inv = Inventory::for_geometry(Topology::accelerator());
        assert_eq!(inv.multipliers, 90 * 10 + 10 * 10);
        assert_eq!(inv.adders, 90 * 10 + 10 * 10);
        assert_eq!(inv.activations, 20);
        assert_eq!(inv.latch_words, (90 * 10 + 100) + 2 * (90 + 10) + 2 * 10);
        assert!(inv.transistors > 1_000_000, "it is a real array");
        assert!(inv.depth > 100, "combinational path through two stages");
    }

    #[test]
    fn report_display_nonempty() {
        let model = CostModel::calibrated_90nm();
        let s = model.report(Topology::accelerator()).to_string();
        assert!(s.contains("mm²") && s.contains("nJ/row"));
    }

    #[test]
    fn sensitive_area_matches_paper_shape() {
        // Paper §VI-C: output adders + activation functions are 25.9% of
        // the output layer and 2.3% of total area. Our structural model
        // must land in the same regime (small single-digit percent of
        // the total, a visible chunk of the output layer).
        let r = SensitiveAreaReport::for_geometry(Topology::accelerator());
        assert!(
            (0.05..0.40).contains(&r.fraction_of_output_layer),
            "output-layer fraction {}",
            r.fraction_of_output_layer
        );
        assert!(
            (0.005..0.05).contains(&r.fraction_of_total),
            "total fraction {}",
            r.fraction_of_total
        );
        assert!(r.sensitive_transistors < r.output_layer_transistors);
    }

    #[test]
    fn mitigation_overheads_are_small_and_consistent() {
        // Both §VI-C mitigations cost low single-digit percent of the
        // total area; `hardening_preferable` must agree with the raw
        // overheads. (The paper prefers hardening at 90 nm; in our
        // structural model the activation unit is transistor-heavy —
        // it embeds a full multiplier — so the crossover toward spare
        // neurons arrives earlier. Recorded in EXPERIMENTS.md.)
        let r = SensitiveAreaReport::for_geometry(Topology::accelerator());
        assert!(r.harden_overhead < 0.05, "harden {}", r.harden_overhead);
        assert!(
            r.spare_neuron_overhead < 0.05,
            "spare {}",
            r.spare_neuron_overhead
        );
        assert_eq!(
            r.hardening_preferable(),
            r.harden_overhead < r.spare_neuron_overhead
        );
    }

    #[test]
    fn training_hardware_roughly_doubles_the_array() {
        let model = CostModel::calibrated_90nm();
        let overhead = model.training_hardware_overhead(Topology::accelerator());
        assert!(
            (0.5..1.5).contains(&overhead),
            "training hardware overhead {overhead}"
        );
    }
}
