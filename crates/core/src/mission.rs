//! Mission-mode runtime: **degrade-and-recover operation under
//! mid-stream fault arrival**.
//!
//! The offline campaigns ([`crate::campaign`]) commission an array,
//! damage it once, and measure the repaired steady state. A deployed
//! accelerator does not get that luxury: defects arrive *while it is
//! serving traffic* — latchup in a multiplier mid-batch, a weight-store
//! row failing after months of electromigration, a systolic PE going
//! quiet. This module runs that scenario end to end:
//!
//! 1. A sustained inference stream is served in **traffic batches**
//!    (each bracketed by [`Accel::begin_batch`] / [`Accel::end_batch`],
//!    so structural mutation mid-batch is a typed error).
//! 2. A seeded **Poisson arrival process** injects defect events
//!    between batches, each event drawn from its own per-event RNG so a
//!    blind arm and a mission arm of the same seed see *identical*
//!    fault sets.
//! 3. Periodic lightweight **incremental BIST probes**
//!    ([`Accel::probe_touched`]) run under a wall-clock watchdog; a
//!    stalling probe (chaos hooks on the weight store's March walk or
//!    the grid's PE walk) falls through as a typed
//!    [`MissionEvent::ProbeTimedOut`] instead of hanging the stream.
//! 4. Probe evidence drives the per-accelerator
//!    [`HealthMonitor`](crate::health::HealthMonitor) through
//!    Healthy → Suspect → Recovering → {Healthy, Degraded,
//!    Quarantined}; recovery runs the full ladder
//!    ([`crate::recover::recover`]) with its [`RetryPolicy`], failed
//!    episodes charge **exponential backoff in skipped traffic
//!    batches**, and a unit whose retry budget is spent is
//!    **quarantined** ([`Accel::quarantine`]) — masked fail-silent
//!    while the stream keeps serving.
//! 5. The outcome is an **accuracy/availability-over-time trace** with
//!    detection latency, recovery time, and availability metrics.
//!
//! Every decision (arrival schedule, fault draws, probe stimuli,
//! backoff) is derived from seeds and batch indices — never from wall
//! clock — so a mission trace is bit-reproducible and a blind arm is a
//! true control.

use std::fmt;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use dta_circuits::FaultModel;
use dta_datasets::Dataset;
use dta_mem::Activation as MemActivation;

use crate::accel::Accel;
use crate::accelerator::{AccelError, Accelerator};
use crate::health::{HealthEvent, HealthMonitor, HealthState, IllegalTransition};
use crate::recover::{recover, with_watchdog, RecoveryError, RecoveryPolicy};
use crate::selftest::BistConfig;

/// Salt for the arrival-schedule RNG (inter-arrival gaps only).
const ARRIVAL_SALT: u64 = 0xA331_7E4F;
/// Salt for the per-event fault-draw RNGs.
const EVENT_SALT: u64 = 0xFA17_0B57;
/// Odd multiplier spreading event indices across the seed space.
const EVENT_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// How many defects one arrival event plants on each fault surface.
///
/// The mix is what makes an event *combined-surface*: one arrival can
/// carry datapath damage and weight-store damage at once, which is the
/// hard case for a recovery ladder tuned per surface. The interpreting
/// injector decides what "datapath" means for its topology (transistor
/// -level cell defects on the spatial array, PE faults on the systolic
/// grid).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SurfaceMix {
    /// Datapath defects per event (operator cells / PEs).
    pub datapath: usize,
    /// Weight-store bit-cell defects per event (ignored by injectors
    /// whose accelerator has no store attached).
    pub memory: usize,
}

impl SurfaceMix {
    /// All `n` defects on the datapath surface.
    pub fn datapath_only(n: usize) -> SurfaceMix {
        SurfaceMix {
            datapath: n,
            memory: 0,
        }
    }

    /// `n` defects split across both surfaces: `ceil(n/2)` datapath,
    /// `floor(n/2)` memory — the same split the combined-surface
    /// campaign cells use.
    pub fn combined(n: usize) -> SurfaceMix {
        SurfaceMix {
            datapath: n.div_ceil(2),
            memory: n / 2,
        }
    }

    /// Total defects per event.
    pub fn total(&self) -> usize {
        self.datapath + self.memory
    }

    /// Plants one event's worth of defects on a spatial
    /// [`Accelerator`]: transistor-level cell defects on the datapath
    /// plus permanent bit-cell defects on the attached weight store.
    /// The memory share is silently dropped when no store is attached
    /// (the surface does not exist on that unit).
    ///
    /// # Errors
    ///
    /// Propagates [`AccelError`] from the injection APIs — notably
    /// [`AccelError::NotQuiescent`] if called mid-batch.
    pub fn inject_spatial(
        &self,
        accel: &mut Accelerator,
        rng: &mut ChaCha8Rng,
    ) -> Result<Vec<String>, AccelError> {
        let mut records = accel.inject_defects(self.datapath, FaultModel::TransistorLevel, rng)?;
        if self.memory > 0 && accel.memory().is_some() {
            records.extend(accel.inject_memory_defects(
                self.memory,
                MemActivation::Permanent,
                rng,
            )?);
        }
        Ok(records)
    }
}

/// Configuration of one mission run.
#[derive(Clone, Debug)]
pub struct MissionConfig {
    /// Reporting windows in the accuracy/availability trace.
    pub windows: usize,
    /// Traffic batches per window.
    pub batches_per_window: u64,
    /// Dataset rows served per batch (cycled deterministically through
    /// the evaluation split).
    pub rows_per_batch: usize,
    /// Expected fault-arrival events per batch (Poisson; 0 disables
    /// arrivals).
    pub arrival_rate: f64,
    /// Batches between incremental BIST probes (0 disables probing).
    pub probe_interval: u64,
    /// Wall-clock watchdog on each probe, in milliseconds; a probe
    /// that overruns is aborted and logged as
    /// [`MissionEvent::ProbeTimedOut`].
    pub probe_budget_ms: u64,
    /// Whether this arm detects and recovers at all. `false` is the
    /// **blind arm**: same traffic, same fault arrivals, no probes, no
    /// repair — the control the mission arm's floor is asserted
    /// against.
    pub detection: bool,
    /// Failed recovery episodes tolerated per fault before the unit is
    /// quarantined (`0` = quarantine on the first failure).
    pub max_recovery_attempts: usize,
    /// Master seed; the arrival schedule and every event's fault draw
    /// derive from it.
    pub seed: u64,
    /// Probe configuration (stimulus rows, vectors, probe seed).
    pub bist: BistConfig,
    /// Recovery-ladder configuration, including the
    /// [`RetryPolicy`](crate::recover::RetryPolicy) whose backoff
    /// schedule is charged in skipped batches.
    pub recovery: RecoveryPolicy,
}

impl Default for MissionConfig {
    fn default() -> MissionConfig {
        MissionConfig {
            windows: 8,
            batches_per_window: 16,
            rows_per_batch: 8,
            arrival_rate: 0.02,
            probe_interval: 4,
            probe_budget_ms: 10_000,
            detection: true,
            max_recovery_attempts: 2,
            seed: 0xD7A_CAFE,
            bist: BistConfig::default(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// One batch-stamped entry in a mission's event log.
#[derive(Clone, Debug, PartialEq)]
pub enum MissionEvent {
    /// A Poisson arrival planted defects before batch `batch` ran.
    FaultArrival {
        /// Batch index the event landed on.
        batch: u64,
        /// Ordinal of the event in the arrival stream.
        event: u64,
        /// Defect records the injector reported.
        records: usize,
    },
    /// A probe matched every signature.
    ProbeClean {
        /// Batch index after which the probe ran.
        batch: u64,
    },
    /// A probe flagged at least one unit.
    ProbeMismatch {
        /// Batch index after which the probe ran.
        batch: u64,
        /// Operator instances flagged.
        flagged: usize,
        /// Lanes flagged by the array screen.
        screened: usize,
        /// Whether the March walk found weight-store damage.
        memory_dirty: bool,
    },
    /// A probe overran its watchdog and was aborted; the stream kept
    /// serving (the typed fall-through for a stalling March walk or PE
    /// probe).
    ProbeTimedOut {
        /// Batch index after which the probe ran.
        batch: u64,
        /// The watchdog budget it overran.
        budget_ms: u64,
    },
    /// One run of the recovery ladder.
    RecoveryEpisode {
        /// Batch index at whose boundary the ladder ran.
        batch: u64,
        /// Failed-attempt count for the current fault *after* this
        /// episode (resets on success).
        attempt: usize,
        /// Whether the ladder reached its accuracy target.
        succeeded: bool,
        /// Retraining epochs the ladder consumed (its recovery time).
        epochs: usize,
        /// Whether the pre-episode weight snapshot evaluated better
        /// than the ladder's result and was served instead.
        rolled_back: bool,
    },
    /// A failed episode charged backoff: the next `skipped` batches are
    /// not served.
    BackoffSkip {
        /// Batch index at whose boundary the backoff was charged.
        batch: u64,
        /// Batches skipped.
        skipped: u64,
    },
    /// Retries exhausted: implicated units masked fail-silent.
    Quarantined {
        /// Batch index at whose boundary quarantine was applied.
        batch: u64,
        /// Units silenced by [`Accel::quarantine`].
        silenced: usize,
    },
}

/// Why a mission run aborted (distinct from degraded service, which is
/// an *outcome*, not an error).
#[derive(Debug)]
pub enum MissionError {
    /// The configuration cannot describe a runnable mission.
    BadConfig(String),
    /// The accelerator refused an operation.
    Accel(AccelError),
    /// The recovery ladder failed structurally (not merely below
    /// target).
    Recovery(RecoveryError),
    /// The runtime drove the health machine through an illegal
    /// transition — a logic error, surfaced typed.
    Health(IllegalTransition),
}

impl fmt::Display for MissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissionError::BadConfig(what) => write!(f, "bad mission config: {what}"),
            MissionError::Accel(e) => write!(f, "accelerator error: {e}"),
            MissionError::Recovery(e) => write!(f, "recovery error: {e}"),
            MissionError::Health(e) => write!(f, "health-machine error: {e}"),
        }
    }
}

impl std::error::Error for MissionError {}

impl From<AccelError> for MissionError {
    fn from(e: AccelError) -> MissionError {
        MissionError::Accel(e)
    }
}

impl From<RecoveryError> for MissionError {
    fn from(e: RecoveryError) -> MissionError {
        MissionError::Recovery(e)
    }
}

impl From<IllegalTransition> for MissionError {
    fn from(e: IllegalTransition) -> MissionError {
        MissionError::Health(e)
    }
}

/// The accuracy/availability-over-time trace plus summary metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct MissionOutcome {
    /// Mean served accuracy per window (a window with no served batch
    /// carries the last served accuracy forward).
    pub window_accuracy: Vec<f64>,
    /// Served-batch fraction per window.
    pub window_availability: Vec<f64>,
    /// The batch-stamped event log, oldest first.
    pub events: Vec<MissionEvent>,
    /// Fault-arrival events that fired.
    pub arrivals: usize,
    /// Arrivals a later probe detected.
    pub detected: usize,
    /// Mean batches from arrival to the detecting probe (`None` when
    /// nothing was detected).
    pub mean_detection_latency: Option<f64>,
    /// Recovery-ladder episodes run.
    pub recovery_episodes: usize,
    /// Mean retraining epochs per episode (`None` when none ran).
    pub mean_recovery_epochs: Option<f64>,
    /// Served batches over total batches.
    pub availability: f64,
    /// Health state at end of mission.
    pub final_state: HealthState,
    /// Units masked fail-silent by quarantine.
    pub quarantined_units: usize,
    /// Accuracy over the full evaluation split after the last batch.
    pub final_accuracy: f64,
    /// The health machine's batch-stamped transition log.
    pub health_log: Vec<(u64, HealthState)>,
}

/// One scheduled fault arrival and whether a probe has caught it yet.
struct Arrival {
    batch: u64,
    detected: bool,
}

/// Draws an exponential inter-arrival gap in whole batches (≥ 1).
fn exp_gap(rng: &mut ChaCha8Rng, rate: f64) -> u64 {
    let u: f64 = rng.random();
    let gap = (-(1.0 - u).ln() / rate).ceil();
    if gap.is_finite() && gap >= 1.0 {
        gap as u64
    } else {
        1
    }
}

/// The evaluation rows batch `t` serves: `rows` indices cycled through
/// the split starting at `t * rows mod len`.
fn batch_rows(eval_idx: &[usize], t: u64, rows: usize) -> Vec<usize> {
    let len = eval_idx.len();
    let start = (t as usize * rows) % len;
    (0..rows.min(len))
        .map(|k| eval_idx[(start + k) % len])
        .collect()
}

/// Runs one mission: serves `windows × batches_per_window` traffic
/// batches on `accel` while `inject` plants each Poisson arrival's
/// defects, probing / recovering / quarantining per `cfg`.
///
/// `inject` receives the accelerator (quiescent, between batches), the
/// event ordinal, and a fresh RNG seeded from `(cfg.seed, event)` only
/// — so two arms of the same seed see identical fault sets regardless
/// of what else each arm does. It returns the defect records planted.
///
/// # Errors
///
/// [`MissionError::BadConfig`] for an unrunnable configuration, and
/// typed wrappers for accelerator, ladder, or health-machine failures.
/// Degraded accuracy, failed recovery, and quarantine are *outcomes*
/// (see [`MissionOutcome`]), not errors.
pub fn run_mission<A, F>(
    accel: &mut A,
    ds: &Dataset,
    train_idx: &[usize],
    eval_idx: &[usize],
    cfg: &MissionConfig,
    mut inject: F,
) -> Result<MissionOutcome, MissionError>
where
    A: Accel,
    F: FnMut(&mut A, u64, &mut ChaCha8Rng) -> Result<Vec<String>, AccelError>,
{
    if cfg.windows == 0 || cfg.batches_per_window == 0 {
        return Err(MissionError::BadConfig(
            "windows and batches_per_window must be nonzero".into(),
        ));
    }
    if cfg.rows_per_batch == 0 {
        return Err(MissionError::BadConfig(
            "rows_per_batch must be nonzero".into(),
        ));
    }
    if eval_idx.is_empty() {
        return Err(MissionError::BadConfig("empty evaluation split".into()));
    }
    if !cfg.arrival_rate.is_finite() || cfg.arrival_rate < 0.0 {
        return Err(MissionError::BadConfig(format!(
            "arrival_rate {} is not a finite non-negative rate",
            cfg.arrival_rate
        )));
    }

    let total = cfg.windows as u64 * cfg.batches_per_window;
    let mut arrival_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ ARRIVAL_SALT);
    let mut next_arrival = if cfg.arrival_rate > 0.0 {
        exp_gap(&mut arrival_rng, cfg.arrival_rate)
    } else {
        u64::MAX
    };

    let mut monitor = HealthMonitor::new();
    let mut events: Vec<MissionEvent> = Vec::new();
    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut event_idx: u64 = 0;

    let mut served: u64 = 0;
    let mut skip_remaining: u64 = 0;
    let mut last_acc = 0.0_f64;
    let mut ever_served = false;

    let mut window_accuracy = Vec::with_capacity(cfg.windows);
    let mut window_availability = Vec::with_capacity(cfg.windows);
    let mut win_acc_sum = 0.0_f64;
    let mut win_served: u64 = 0;

    let mut detected = 0usize;
    let mut latency_sum: u64 = 0;
    let mut episodes = 0usize;
    let mut epochs_sum = 0usize;
    let mut attempts = 0usize;
    let mut quarantined_units = 0usize;

    for t in 0..total {
        // Fault arrivals tick on the batch clock — backoff does not
        // pause the physics. Injection happens here, between batches,
        // where the array is quiescent.
        while next_arrival <= t {
            let mut event_rng = ChaCha8Rng::seed_from_u64(
                cfg.seed ^ EVENT_SALT ^ event_idx.wrapping_mul(EVENT_STRIDE),
            );
            let records = inject(accel, event_idx, &mut event_rng)?;
            events.push(MissionEvent::FaultArrival {
                batch: t,
                event: event_idx,
                records: records.len(),
            });
            arrivals.push(Arrival {
                batch: t,
                detected: false,
            });
            event_idx += 1;
            next_arrival = next_arrival.saturating_add(exp_gap(&mut arrival_rng, cfg.arrival_rate));
        }

        if skip_remaining > 0 {
            // Backoff: the unit rests; the batch is lost to
            // availability.
            skip_remaining -= 1;
        } else {
            accel.begin_batch()?;
            let sel = batch_rows(eval_idx, t, cfg.rows_per_batch);
            let acc = accel.evaluate(ds, &sel);
            accel.end_batch();
            let acc = acc?;
            served += 1;
            win_served += 1;
            win_acc_sum += acc;
            last_acc = acc;
            ever_served = true;

            // Probe at the configured cadence — only on served batches
            // (a resting or quarantined unit is not probed).
            let due = cfg.detection
                && cfg.probe_interval > 0
                && (t + 1) % cfg.probe_interval == 0
                && !monitor.is_quarantined();
            if due {
                let probe = with_watchdog(Duration::from_millis(cfg.probe_budget_ms), |expired| {
                    accel.probe_touched(&cfg.bist, expired)
                })?;
                match probe {
                    None => events.push(MissionEvent::ProbeTimedOut {
                        batch: t,
                        budget_ms: cfg.probe_budget_ms,
                    }),
                    Some(diagnosis) if diagnosis.detected() => {
                        for a in arrivals.iter_mut() {
                            if !a.detected && a.batch <= t {
                                a.detected = true;
                                detected += 1;
                                latency_sum += t - a.batch;
                            }
                        }
                        events.push(MissionEvent::ProbeMismatch {
                            batch: t,
                            flagged: diagnosis.flagged.len(),
                            screened: diagnosis.screened_lanes.len(),
                            memory_dirty: diagnosis.memory.as_ref().is_some_and(|m| !m.clean()),
                        });
                        monitor.on_event(HealthEvent::ProbeMismatch, t)?;
                        monitor.on_event(HealthEvent::RecoveryStarted, t)?;

                        // Snapshot the weights: a ladder that makes
                        // serving accuracy *worse* is rolled back, so
                        // a recovery attempt never costs more than the
                        // epochs it burned.
                        let snapshot = accel.network().cloned();
                        let report =
                            recover(accel, ds, train_idx, eval_idx, &diagnosis, &cfg.recovery)?;
                        let epochs: usize = report.rungs.iter().map(|r| r.epochs_used).sum();
                        episodes += 1;
                        epochs_sum += epochs;

                        let mut rolled_back = false;
                        if let Some(snap) = snapshot {
                            let ladder_acc = accel.evaluate(ds, eval_idx)?;
                            let ladder_net = accel.unmap_network();
                            accel.map_network(snap)?;
                            let snap_acc = accel.evaluate(ds, eval_idx)?;
                            if ladder_acc >= snap_acc {
                                let net = ladder_net.expect("ladder left a mapped network");
                                accel.unmap_network();
                                accel.map_network(net)?;
                            } else {
                                rolled_back = true;
                            }
                        }

                        if report.succeeded {
                            attempts = 0;
                            monitor.on_event(HealthEvent::RecoverySucceeded, t)?;
                        } else {
                            attempts += 1;
                        }
                        events.push(MissionEvent::RecoveryEpisode {
                            batch: t,
                            attempt: attempts,
                            succeeded: report.succeeded,
                            epochs,
                            rolled_back,
                        });
                        if !report.succeeded {
                            if attempts > cfg.max_recovery_attempts {
                                monitor.on_event(HealthEvent::RetriesExhausted, t)?;
                                let silenced = accel.quarantine(&diagnosis)?;
                                quarantined_units += silenced;
                                events.push(MissionEvent::Quarantined { batch: t, silenced });
                            } else {
                                monitor.on_event(HealthEvent::RecoveryFellShort, t)?;
                                let skipped = cfg.recovery.retry.backoff_batches(attempts - 1);
                                skip_remaining = skipped;
                                events.push(MissionEvent::BackoffSkip { batch: t, skipped });
                            }
                        }
                    }
                    Some(_) => {
                        events.push(MissionEvent::ProbeClean { batch: t });
                        monitor.on_event(HealthEvent::ProbeClean, t)?;
                    }
                }
            }
        }

        if (t + 1) % cfg.batches_per_window == 0 {
            let acc = if win_served > 0 {
                win_acc_sum / win_served as f64
            } else {
                last_acc
            };
            window_accuracy.push(acc);
            window_availability.push(win_served as f64 / cfg.batches_per_window as f64);
            win_acc_sum = 0.0;
            win_served = 0;
        }
    }

    let final_accuracy = accel.evaluate(ds, eval_idx)?;
    if !ever_served {
        // Degenerate config (everything backed off): report the final
        // full-split accuracy rather than a stale 0.
        for w in window_accuracy.iter_mut() {
            *w = final_accuracy;
        }
    }

    Ok(MissionOutcome {
        window_accuracy,
        window_availability,
        events,
        arrivals: arrivals.len(),
        detected,
        mean_detection_latency: (detected > 0).then(|| latency_sum as f64 / detected as f64),
        recovery_episodes: episodes,
        mean_recovery_epochs: (episodes > 0).then(|| epochs_sum as f64 / episodes as f64),
        availability: served as f64 / total as f64,
        final_state: monitor.state(),
        quarantined_units,
        final_accuracy,
        health_log: monitor.log().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::RungBudget;
    use dta_ann::{Mlp, Topology};
    use dta_datasets::suite;

    fn iris_split() -> (Dataset, Vec<usize>, Vec<usize>) {
        let ds = suite::load("iris").unwrap();
        let train: Vec<usize> = (0..ds.len()).filter(|i| i % 3 != 0).collect();
        let eval: Vec<usize> = (0..ds.len()).step_by(3).collect();
        (ds, train, eval)
    }

    fn commissioned(seed: u64) -> (Accelerator, Dataset, Vec<usize>, Vec<usize>) {
        let (ds, train, eval) = iris_split();
        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 6, 3), seed))
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        accel.retrain(&ds, &train, 0.2, 0.1, 30, &mut rng).unwrap();
        (accel, ds, train, eval)
    }

    fn fast_recovery(target: f64) -> RecoveryPolicy {
        RecoveryPolicy {
            retrain: RungBudget {
                max_epochs: 4,
                wall_clock_ms: 30_000,
            },
            remap: RungBudget {
                max_epochs: 4,
                wall_clock_ms: 30_000,
            },
            target_accuracy: target,
            ..RecoveryPolicy::default()
        }
    }

    #[test]
    fn blind_and_mission_arms_see_identical_fault_streams() {
        let mix = SurfaceMix::datapath_only(2);
        let mut streams: Vec<Vec<(u64, Vec<String>)>> = Vec::new();
        for detection in [false, true] {
            let (mut accel, ds, train, eval) = commissioned(11);
            let cfg = MissionConfig {
                windows: 4,
                batches_per_window: 10,
                rows_per_batch: 6,
                arrival_rate: 0.08,
                probe_interval: 5,
                detection,
                recovery: fast_recovery(0.8),
                seed: 0xBEEF,
                ..MissionConfig::default()
            };
            let mut log: Vec<(u64, Vec<String>)> = Vec::new();
            run_mission(&mut accel, &ds, &train, &eval, &cfg, |a, ev, rng| {
                let records = mix.inject_spatial(a, rng)?;
                log.push((ev, records.clone()));
                Ok(records)
            })
            .unwrap();
            streams.push(log);
        }
        assert!(!streams[0].is_empty(), "no arrivals fired");
        // Identical event ordinals AND identical defect records: the
        // blind arm is a true control.
        assert_eq!(streams[0], streams[1]);
    }

    #[test]
    fn mission_detects_recovers_and_beats_the_blind_arm() {
        let mix = SurfaceMix::datapath_only(3);
        let cfg_base = MissionConfig {
            windows: 5,
            batches_per_window: 12,
            rows_per_batch: 8,
            arrival_rate: 0.05,
            probe_interval: 4,
            detection: true,
            max_recovery_attempts: 2,
            recovery: fast_recovery(0.8),
            seed: 0x5151,
            ..MissionConfig::default()
        };

        let (mut blind_accel, ds, train, eval) = commissioned(7);
        let blind_cfg = MissionConfig {
            detection: false,
            ..cfg_base.clone()
        };
        let blind = run_mission(
            &mut blind_accel,
            &ds,
            &train,
            &eval,
            &blind_cfg,
            |a, _, rng| mix.inject_spatial(a, rng),
        )
        .unwrap();

        let (mut accel, ds, train, eval) = commissioned(7);
        let mission = run_mission(&mut accel, &ds, &train, &eval, &cfg_base, |a, _, rng| {
            mix.inject_spatial(a, rng)
        })
        .unwrap();

        assert_eq!(mission.arrivals, blind.arrivals);
        assert!(mission.arrivals > 0, "no arrivals fired");
        assert!(mission.detected > 0, "nothing detected");
        assert!(mission.mean_detection_latency.is_some());
        assert!(mission.recovery_episodes > 0, "no recovery ran");
        assert_eq!(mission.window_accuracy.len(), cfg_base.windows);
        assert_eq!(mission.window_availability.len(), cfg_base.windows);
        // The blind arm never repairs, so it serves every batch.
        assert!((blind.availability - 1.0).abs() < 1e-12);
        assert!(blind.recovery_episodes == 0 && blind.detected == 0);
        assert_eq!(blind.health_log, vec![(0, HealthState::Healthy)]);
        // The floor: a detected-and-repaired stream must not end below
        // the blind stream carrying the same damage.
        assert!(
            mission.final_accuracy >= blind.final_accuracy,
            "mission {} < blind {}",
            mission.final_accuracy,
            blind.final_accuracy
        );
    }

    #[test]
    fn stalling_march_probe_times_out_typed_and_the_stream_keeps_serving() {
        // Satellite regression: chaos-stall the weight store's March
        // walk so every probe overruns its watchdog. The mission must
        // log typed ProbeTimedOut events and keep serving — never hang.
        let (mut accel, ds, train, eval) = commissioned(13);
        accel.attach_weight_memory().unwrap();
        accel.memory_mut().unwrap().set_chaos_stall(Some(25));
        let cfg = MissionConfig {
            windows: 2,
            batches_per_window: 6,
            rows_per_batch: 6,
            arrival_rate: 0.0,
            probe_interval: 3,
            probe_budget_ms: 20,
            detection: true,
            recovery: fast_recovery(0.8),
            seed: 3,
            ..MissionConfig::default()
        };
        let out = run_mission(&mut accel, &ds, &train, &eval, &cfg, |_, _, _| Ok(vec![])).unwrap();
        let timeouts = out
            .events
            .iter()
            .filter(|e| matches!(e, MissionEvent::ProbeTimedOut { budget_ms: 20, .. }))
            .count();
        assert!(timeouts > 0, "no probe timed out: {:?}", out.events);
        assert!((out.availability - 1.0).abs() < 1e-12);
        assert_eq!(out.final_state, HealthState::Healthy);
    }

    #[test]
    fn exhausted_retries_quarantine_and_the_stream_stays_alive() {
        let (mut accel, ds, train, eval) = commissioned(17);
        let mix = SurfaceMix::datapath_only(10);
        let cfg = MissionConfig {
            windows: 4,
            batches_per_window: 8,
            rows_per_batch: 6,
            arrival_rate: 0.2,
            probe_interval: 2,
            detection: true,
            max_recovery_attempts: 0,
            // Unreachable target: every episode fails, so the first
            // failure quarantines.
            recovery: fast_recovery(2.0),
            seed: 0x0A11,
            ..MissionConfig::default()
        };
        let out = run_mission(&mut accel, &ds, &train, &eval, &cfg, |a, _, rng| {
            mix.inject_spatial(a, rng)
        })
        .unwrap();
        assert_eq!(out.final_state, HealthState::Quarantined);
        let q_batch = out
            .events
            .iter()
            .find_map(|e| match e {
                MissionEvent::Quarantined { batch, .. } => Some(*batch),
                _ => None,
            })
            .expect("no quarantine event");
        // Quarantine is terminal: no probe or recovery events after it.
        for e in &out.events {
            match e {
                MissionEvent::ProbeClean { batch }
                | MissionEvent::ProbeMismatch { batch, .. }
                | MissionEvent::RecoveryEpisode { batch, .. } => {
                    assert!(*batch <= q_batch, "activity after quarantine: {e:?}");
                }
                _ => {}
            }
        }
        // Fail-silent, not fail-stop: the stream served every batch
        // (quarantine charges no backoff).
        assert!((out.availability - 1.0).abs() < 1e-12);
        assert_eq!(
            *out.health_log.last().unwrap(),
            (q_batch, HealthState::Quarantined)
        );
    }

    #[test]
    fn failed_episodes_charge_exponential_backoff_against_availability() {
        let (mut accel, ds, train, eval) = commissioned(19);
        let mix = SurfaceMix::datapath_only(8);
        let cfg = MissionConfig {
            windows: 4,
            batches_per_window: 10,
            rows_per_batch: 6,
            arrival_rate: 0.1,
            probe_interval: 2,
            detection: true,
            max_recovery_attempts: 10,
            recovery: fast_recovery(2.0),
            seed: 0xACC,
            ..MissionConfig::default()
        };
        let out = run_mission(&mut accel, &ds, &train, &eval, &cfg, |a, _, rng| {
            mix.inject_spatial(a, rng)
        })
        .unwrap();
        let skips: Vec<u64> = out
            .events
            .iter()
            .filter_map(|e| match e {
                MissionEvent::BackoffSkip { skipped, .. } => Some(*skipped),
                _ => None,
            })
            .collect();
        assert!(!skips.is_empty(), "no backoff charged: {:?}", out.events);
        // The schedule doubles from the base per consecutive failure.
        let retry = cfg.recovery.retry;
        for (i, s) in skips.iter().enumerate() {
            assert_eq!(*s, retry.backoff_batches(i));
        }
        assert!(out.availability < 1.0);
        let lost: u64 = skips.iter().sum();
        let total = cfg.windows as u64 * cfg.batches_per_window;
        // Backoff that runs past the mission end is truncated, so the
        // availability loss is at most the charged skips.
        assert!(out.availability >= (total.saturating_sub(lost)) as f64 / total as f64 - 1e-12);
        assert!(out.window_availability.iter().any(|w| *w < 1.0));
    }

    #[test]
    fn mission_traces_are_deterministic() {
        let mix = SurfaceMix::combined(4);
        let mut outs = Vec::new();
        for _ in 0..2 {
            let (mut accel, ds, train, eval) = commissioned(23);
            accel.attach_weight_memory().unwrap();
            let cfg = MissionConfig {
                windows: 3,
                batches_per_window: 8,
                rows_per_batch: 6,
                arrival_rate: 0.07,
                probe_interval: 4,
                detection: true,
                recovery: fast_recovery(0.8),
                seed: 0xD5,
                ..MissionConfig::default()
            };
            outs.push(
                run_mission(&mut accel, &ds, &train, &eval, &cfg, |a, _, rng| {
                    mix.inject_spatial(a, rng)
                })
                .unwrap(),
            );
        }
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let (mut accel, ds, train, eval) = commissioned(1);
        for cfg in [
            MissionConfig {
                windows: 0,
                ..MissionConfig::default()
            },
            MissionConfig {
                rows_per_batch: 0,
                ..MissionConfig::default()
            },
            MissionConfig {
                arrival_rate: f64::NAN,
                ..MissionConfig::default()
            },
        ] {
            let err = run_mission(&mut accel, &ds, &train, &eval, &cfg, |_, _, _| Ok(vec![]))
                .unwrap_err();
            assert!(matches!(err, MissionError::BadConfig(_)), "{err}");
        }
        let err = run_mission(
            &mut accel,
            &ds,
            &train,
            &[],
            &MissionConfig::default(),
            |_, _, _| Ok(vec![]),
        )
        .unwrap_err();
        assert!(matches!(err, MissionError::BadConfig(_)));
    }

    #[test]
    fn surface_mix_split_matches_the_campaign_convention() {
        assert_eq!(
            SurfaceMix::combined(5),
            SurfaceMix {
                datapath: 3,
                memory: 2
            }
        );
        assert_eq!(
            SurfaceMix::combined(4),
            SurfaceMix {
                datapath: 2,
                memory: 2
            }
        );
        assert_eq!(
            SurfaceMix::combined(1),
            SurfaceMix {
                datapath: 1,
                memory: 0
            }
        );
        assert_eq!(SurfaceMix::datapath_only(7).total(), 7);
    }
}
