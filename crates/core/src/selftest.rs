//! Signature-based built-in self-test (BIST) for the spatially
//! expanded accelerator: detect that the silicon is defective, and
//! localize the damage to operator/neuron granularity so the recovery
//! ladder ([`crate::recover`]) can act on it.
//!
//! The self-test has two levels, mirroring how a real array BIST is
//! staged:
//!
//! 1. **Array-level screen** — the user's network is unmapped, a
//!    diagnostic network spanning the *full physical geometry* is
//!    mapped in its place, and seeded stimulus rows are pushed through
//!    the (possibly faulty) datapath. Per hidden lane, the scanned-out
//!    activation is compared against the native Q6.10 reference: lane
//!    `j`'s activation depends only on lane `j`'s operators, so a
//!    mismatch localizes to that lane with no false accusations. The
//!    output stage is checked against a native recomputation from the
//!    *observed* hidden values, so an upstream defect cannot falsely
//!    implicate an output lane.
//! 2. **Operator-level diagnosis** — each operator instance of every
//!    suspect neuron is driven with deterministic test vectors (Q6.10
//!    corner words plus seeded randoms) and its responses compared
//!    against the native arithmetic the healthy silicon is bit-exact
//!    with. A mismatching multiplier/adder/latch/activation unit is
//!    flagged as a [`FaultSite`].
//! 3. **Memory march** — when a [`dta_mem::WeightMemory`] backs the
//!    weight latches, a March C- pass walks every word of the store in
//!    both address orders under complementary backgrounds and folds the
//!    raw failure bitmap into bad rows, bad columns, and residual bad
//!    cells — the row/column granularity the ECC-scrub and spare-steer
//!    rungs of the recovery ladder act on.
//!
//! Because every healthy operator is bit-exact with the native
//! datapath (a crate-level invariant tested in `dta-circuits`), a
//! flagged site is necessarily defective: localization has no false
//! positives by construction, and [`localization_precision`] measures
//! exactly that. Detection is bounded away from 1.0 by *invisible*
//! defects — the paper's Figure 5 shows a large fraction of injected
//! transistor defects never corrupt any output word, and those are
//! legitimately undetectable (and harmless).
//!
//! The self-test runs on the power-on fault state and resets it
//! afterwards, so a subsequent evaluation sees the same activation
//! streams whether or not a BIST ran first.

use std::collections::BTreeSet;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use dta_ann::{FaultSite, Layer, Mlp, UnitKind};
use dta_fixed::{Fx, SigmoidLut};
use dta_mem::{march_cminus, MarchReport};

use crate::accelerator::{AccelError, Accelerator};

/// Tuning knobs for one self-test run. The defaults detect the large
/// majority of visible single defects in well under a millisecond of
/// simulated array time.
#[derive(Clone, Copy, Debug)]
pub struct BistConfig {
    /// Stimulus rows pushed through the array for the lane-level screen.
    pub screen_rows: usize,
    /// Test vectors applied per operator instance in the diagnosis
    /// stage (corner words first, seeded randoms for the remainder).
    pub vectors_per_operator: usize,
    /// Seed for the stimulus and vector generators (and the diagnostic
    /// network's weights).
    pub seed: u64,
}

impl Default for BistConfig {
    fn default() -> BistConfig {
        BistConfig {
            screen_rows: 16,
            vectors_per_operator: 24,
            seed: 0xB157,
        }
    }
}

/// The outcome of one self-test: which lanes failed the array-level
/// screen, and which operator instances failed the vector-level
/// diagnosis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnosis {
    /// Operator instances whose vector responses diverged from the
    /// native arithmetic, sorted.
    pub flagged: Vec<FaultSite>,
    /// Lanes whose scanned-out signature diverged from the reference
    /// during the array screen, sorted.
    pub screened_lanes: Vec<(Layer, usize)>,
    /// Operator probes executed by the diagnosis stage.
    pub operators_probed: usize,
    /// March C- report for the attached weight store (`None` when no
    /// store is attached): bad rows, bad columns, and residual bad
    /// cells, localized to row/column granularity for the memory rungs
    /// of the recovery ladder.
    pub memory: Option<MarchReport>,
}

impl Diagnosis {
    /// True if anything at all was flagged.
    pub fn detected(&self) -> bool {
        !self.flagged.is_empty()
            || !self.screened_lanes.is_empty()
            || self.memory.as_ref().is_some_and(|m| !m.clean())
    }

    /// The physical hidden lanes implicated by either stage, sorted and
    /// deduplicated — the unit the remap/mask rung of the recovery
    /// ladder operates on.
    pub fn faulty_hidden_lanes(&self) -> Vec<usize> {
        let mut lanes: BTreeSet<usize> = self
            .flagged
            .iter()
            .filter(|s| s.layer == Layer::Hidden)
            .map(|s| s.neuron)
            .collect();
        lanes.extend(
            self.screened_lanes
                .iter()
                .filter(|(l, _)| *l == Layer::Hidden)
                .map(|(_, n)| *n),
        );
        lanes.into_iter().collect()
    }
}

/// Deterministic operator test vectors: Q6.10 corner words (zero, ±LSB,
/// ±1.0, the extremes, alternating bit patterns) crossed pairwise,
/// padded with seeded random words up to `n` pairs. Shared by the
/// spatial operator probes and the systolic per-PE MAC probes.
pub fn bist_vectors(n: usize, seed: u64) -> Vec<(Fx, Fx)> {
    const CORNERS: [u16; 9] = [
        0x0000, 0x0001, 0xFFFF, 0x7FFF, 0x8000, 0x5555, 0xAAAA, 0x0400, 0xFC00,
    ];
    let mut v: Vec<(Fx, Fx)> = Vec::with_capacity(n.max(CORNERS.len()));
    for (i, &a) in CORNERS.iter().enumerate() {
        let b = CORNERS[(i + 3) % CORNERS.len()];
        v.push((Fx::from_bits(a), Fx::from_bits(b)));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    while v.len() < n {
        v.push((
            Fx::from_raw(rng.random::<i16>()),
            Fx::from_raw(rng.random::<i16>()),
        ));
    }
    v.truncate(n.max(CORNERS.len()));
    v
}

/// Runs the topology's built-in self-test.
///
/// Dispatches to the topology's own BIST via [`crate::accel::Accel`]:
/// the spatial array runs the two-stage screen/probe described in the
/// module docs (plus the memory march when a weight store is attached);
/// the systolic grid runs per-PE MAC vector probes. Either way the
/// fault state is reset to power-on afterwards and any mapped user
/// network is preserved, so the test is invisible to subsequent
/// evaluations. Run it *before* installing recovery remaps, masks or
/// bypasses — the screens exercise the identity mapping.
///
/// # Errors
///
/// Propagates [`AccelError`] from the diagnostic datapath (cannot
/// occur for a well-formed accelerator).
pub fn run_selftest<A: crate::accel::Accel>(
    accel: &mut A,
    cfg: &BistConfig,
) -> Result<Diagnosis, AccelError> {
    accel.self_test(cfg)
}

/// The spatial array's two-stage self-test: array-level lane screen,
/// operator-level vector diagnosis, memory march.
pub(crate) fn spatial_selftest(
    accel: &mut Accelerator,
    cfg: &BistConfig,
) -> Result<Diagnosis, AccelError> {
    let saved = accel.unmap_network();
    let screen = screen_lanes(accel, cfg);
    // Restore the user's network before the `?` so an error cannot
    // leave the accelerator holding the diagnostic network.
    accel.unmap_network();
    if let Some(mlp) = saved {
        accel
            .map_network(mlp)
            .expect("previously mapped network still fits");
    }
    let screened = screen?;

    let flagged = probe_operators(accel, cfg);
    // Memory BIST stage: march the attached weight store (if any) and
    // localize failures to row/column granularity. `march_cminus` ends
    // by rewinding the store's activation streams, so the stage is as
    // invisible to later evaluations as the operator probes are.
    let memory = accel.memory_mut().map(march_cminus);
    accel.faults_mut().reset_state();
    Ok(Diagnosis {
        flagged: flagged.0,
        screened_lanes: screened,
        operators_probed: flagged.1,
        memory,
    })
}

/// The spatial array's mission-mode incremental probe
/// ([`crate::accel::Accel::probe_touched`]): screens only the units the
/// serving stream exercises, under an abort flag.
///
/// Instead of unmapping the user's network for a full-geometry
/// diagnostic screen, the probe pushes seeded stimulus rows through the
/// *mapped* network's own routing and compares each routed lane against
/// the native Q6.10 reference — masked (quarantined) lanes are skipped,
/// remapped lanes are judged on their spare silicon, and flagged units
/// are reported as *physical* lanes so quarantine can act on them.
/// Operator probes then cover the neurons carrying fault state, and a
/// guarded March C- walks the attached weight store (if any). Returns
/// `None` as soon as `abort` trips; the fault state is reset to
/// power-on either way, so the probe is invisible to later batches.
pub(crate) fn spatial_probe_touched(
    accel: &mut Accelerator,
    cfg: &BistConfig,
    abort: &std::sync::atomic::AtomicBool,
) -> Result<Option<Diagnosis>, AccelError> {
    use std::sync::atomic::Ordering;
    accel.faults_mut().reset_state();
    let lut = SigmoidLut::new();
    let mut screened: BTreeSet<(Layer, usize)> = BTreeSet::new();
    if accel.network().is_some() {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7060);
        let inputs = accel.network().expect("checked").topology().inputs;
        for _ in 0..cfg.screen_rows {
            if abort.load(Ordering::Acquire) {
                accel.faults_mut().reset_state();
                return Ok(None);
            }
            let row: Vec<f64> = (0..inputs).map(|_| rng.random_range(-4.0..4.0)).collect();
            let observed = accel.diagnose_row(&row)?;
            let net = accel.network().expect("checked");
            let topo = net.topology();
            let reference = net.forward_fixed(&row, &lut);
            for j in 0..topo.hidden {
                let lane = accel.faults().hidden_lane(j);
                if accel.faults().is_masked(Layer::Hidden, lane) {
                    continue;
                }
                if observed.hidden[j] != reference.hidden[j] {
                    screened.insert((Layer::Hidden, lane));
                }
            }
            // Output lanes against a native recomputation from the
            // observed hidden words (masked hidden zeros included), so
            // upstream damage cannot falsely implicate an output lane.
            let hq: Vec<Fx> = observed.hidden.iter().map(|&h| Fx::from_f64(h)).collect();
            for k in 0..topo.outputs {
                if accel.faults().is_masked(Layer::Output, k) {
                    continue;
                }
                let mut acc = Fx::from_f64(net.w_output(k, topo.hidden));
                for (j, &hj) in hq.iter().enumerate() {
                    acc += Fx::from_f64(net.w_output(k, j)) * hj;
                }
                if observed.output[k] != lut.eval(acc).to_f64() {
                    screened.insert((Layer::Output, k));
                }
            }
        }
    }
    if abort.load(Ordering::Acquire) {
        accel.faults_mut().reset_state();
        return Ok(None);
    }
    let (mut flagged, operators_probed) = probe_operators(accel, cfg);
    // A quarantined unit is fail-silent: its masked lane no longer
    // reaches the outputs, so the probe must not keep raising alarms
    // for it (the full commissioning BIST still reports everything).
    flagged.retain(|site| !accel.faults().is_masked(site.layer, site.neuron));
    let memory = match accel.memory_mut() {
        Some(mem) => match dta_mem::march_cminus_guarded(mem, abort) {
            Some(report) => Some(report),
            None => {
                accel.faults_mut().reset_state();
                return Ok(None);
            }
        },
        None => None,
    };
    accel.faults_mut().reset_state();
    Ok(Some(Diagnosis {
        flagged,
        screened_lanes: screened.into_iter().collect(),
        operators_probed,
        memory,
    }))
}

/// Array-level screen: full-geometry diagnostic network, seeded
/// stimulus rows, per-lane comparison against the native reference.
fn screen_lanes(
    accel: &mut Accelerator,
    cfg: &BistConfig,
) -> Result<Vec<(Layer, usize)>, AccelError> {
    let phys = accel.geometry();
    let mut diag = Mlp::new(phys, cfg.seed);
    // Xavier weights under-excite the high Q6.10 bits on a 90-input
    // array; rescale to ±2 so stuck bits anywhere in the word matter.
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5EED);
    for j in 0..phys.hidden {
        for i in 0..=phys.inputs {
            *diag.w_hidden_mut(j, i) = rng.random_range(-2.0..2.0);
        }
    }
    for k in 0..phys.outputs {
        for j in 0..=phys.hidden {
            *diag.w_output_mut(k, j) = rng.random_range(-2.0..2.0);
        }
    }
    accel
        .map_network(diag)
        .expect("diagnostic network spans exactly the physical geometry");
    accel.faults_mut().reset_state();

    let lut = SigmoidLut::new();
    let mut screened: BTreeSet<(Layer, usize)> = BTreeSet::new();
    for _ in 0..cfg.screen_rows {
        let row: Vec<f64> = (0..phys.inputs)
            .map(|_| rng.random_range(-4.0..4.0))
            .collect();
        let observed = accel.diagnose_row(&row)?;
        let net = accel.network().expect("diagnostic network is mapped");
        let reference = net.forward_fixed(&row, &lut);
        for j in 0..phys.hidden {
            if observed.hidden[j] != reference.hidden[j] {
                screened.insert((Layer::Hidden, j));
            }
        }
        // Output lanes are judged against a native recomputation from
        // the *observed* hidden words, so hidden-stage damage cannot
        // cascade into false output-lane accusations.
        let hq: Vec<Fx> = observed.hidden.iter().map(|&h| Fx::from_f64(h)).collect();
        for k in 0..phys.outputs {
            let mut acc = Fx::from_f64(net.w_output(k, phys.hidden));
            for (j, &hj) in hq.iter().enumerate() {
                acc += Fx::from_f64(net.w_output(k, j)) * hj;
            }
            if observed.output[k] != lut.eval(acc).to_f64() {
                screened.insert((Layer::Output, k));
            }
        }
    }
    Ok(screened.into_iter().collect())
}

/// Operator-level diagnosis: drive each operator instance of every
/// neuron carrying fault state with the vector set and flag behavioral
/// divergence from the native arithmetic. Healthy operators are
/// native-by-construction, so only instances present in the plan need
/// probing.
fn probe_operators(accel: &mut Accelerator, cfg: &BistConfig) -> (Vec<FaultSite>, usize) {
    let phys = accel.geometry();
    let vectors = bist_vectors(cfg.vectors_per_operator, cfg.seed ^ 0x0B15);
    let (va, vb): (Vec<Fx>, Vec<Fx>) = vectors.iter().copied().unzip();
    let lut = SigmoidLut::new();
    let plan = accel.faults_mut();
    plan.reset_state();
    let hw_inputs = plan.hw_inputs();

    let mut flagged: BTreeSet<FaultSite> = BTreeSet::new();
    let mut probed = 0usize;
    let lanes: Vec<(Layer, usize)> = plan
        .faulty_neurons(Layer::Hidden)
        .into_iter()
        .map(|n| (Layer::Hidden, n))
        .chain(
            plan.faulty_neurons(Layer::Output)
                .into_iter()
                .map(|n| (Layer::Output, n)),
        )
        .collect();
    for (layer, neuron) in lanes {
        let span = match layer {
            Layer::Hidden => hw_inputs,
            Layer::Output => phys.hidden,
        };
        let nf = plan
            .neuron_mut(layer, neuron)
            .expect("faulty_neurons listed it");
        let span = span.max(nf.max_synapse_excl());
        for s in 0..span {
            probed += 1;
            if vectors.iter().any(|&(w, _)| nf.latch_filter(s, w) != w) {
                flagged.insert(FaultSite {
                    layer,
                    neuron,
                    unit: UnitKind::Latch,
                    synapse: Some(s),
                });
            }
            if let Some(hw) = nf.multiplier_mut(s) {
                probed += 1;
                // Batch entry point: rides the compiled-LUT / cone-pruned
                // paths instead of one event-driven settle per vector.
                let got = hw.mul_batch(&va, &vb);
                if got.iter().zip(&vectors).any(|(&p, &(a, b))| p != a * b) {
                    flagged.insert(FaultSite {
                        layer,
                        neuron,
                        unit: UnitKind::Multiplier,
                        synapse: Some(s),
                    });
                }
            }
            if let Some(hw) = nf.adder_mut(s) {
                probed += 1;
                let got = hw.add_batch(&va, &vb);
                if got.iter().zip(&vectors).any(|(&s, &(a, b))| s != a + b) {
                    flagged.insert(FaultSite {
                        layer,
                        neuron,
                        unit: UnitKind::Adder,
                        synapse: Some(s),
                    });
                }
            }
        }
        probed += 1;
        let got = nf.activation_batch(&va, &lut);
        if got.iter().zip(&va).any(|(&y, &x)| y != lut.eval(x)) {
            flagged.insert(FaultSite {
                layer,
                neuron,
                unit: UnitKind::Activation,
                synapse: None,
            });
        }
    }
    (flagged.into_iter().collect(), probed)
}

/// Fraction of distinct ground-truth sites present in `flagged`; `None`
/// when the truth is empty (nothing to detect).
pub fn detection_rate(truth: &[FaultSite], flagged: &[FaultSite]) -> Option<f64> {
    let truth: BTreeSet<FaultSite> = truth.iter().copied().collect();
    if truth.is_empty() {
        return None;
    }
    let flagged: BTreeSet<FaultSite> = flagged.iter().copied().collect();
    Some(truth.intersection(&flagged).count() as f64 / truth.len() as f64)
}

/// Fraction of flagged sites that are genuine ground-truth sites;
/// `None` when nothing was flagged (no accusation to be wrong about).
pub fn localization_precision(truth: &[FaultSite], flagged: &[FaultSite]) -> Option<f64> {
    let flagged: BTreeSet<FaultSite> = flagged.iter().copied().collect();
    if flagged.is_empty() {
        return None;
    }
    let truth: BTreeSet<FaultSite> = truth.iter().copied().collect();
    Some(truth.intersection(&flagged).count() as f64 / flagged.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_ann::Topology;
    use dta_circuits::FaultModel;

    #[test]
    fn clean_array_passes_selftest() {
        let mut accel = Accelerator::new();
        let diag = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        assert!(!diag.detected());
        assert!(diag.faulty_hidden_lanes().is_empty());
        assert_eq!(diag.operators_probed, 0, "no fault state, no probes");
    }

    #[test]
    fn selftest_restores_user_network() {
        let mut accel = Accelerator::new();
        let mlp = Mlp::new(Topology::new(4, 3, 2), 5);
        accel.map_network(mlp.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        accel
            .inject_defects(3, FaultModel::TransistorLevel, &mut rng)
            .unwrap();
        let _ = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        assert_eq!(accel.network(), Some(&mlp), "user network restored");
    }

    #[test]
    fn flagged_sites_are_always_genuine() {
        // The structural no-false-positives property: across many
        // single- and multi-defect arrays, every flagged site must be a
        // ground-truth site (precision exactly 1.0 whenever anything is
        // flagged), and most visible defects must be caught.
        let cfg = BistConfig::default();
        let mut detected_any = 0usize;
        for seed in 0..30u64 {
            let mut accel = Accelerator::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = 1 + (seed as usize % 4);
            accel
                .inject_defects(n, FaultModel::TransistorLevel, &mut rng)
                .unwrap();
            let truth = accel.faults().sites().to_vec();
            let diag = run_selftest(&mut accel, &cfg).unwrap();
            if let Some(p) = localization_precision(&truth, &diag.flagged) {
                assert_eq!(p, 1.0, "seed {seed}: false accusation {:?}", diag.flagged);
            }
            // Screened lanes must also be genuinely faulty lanes.
            let truth_lanes: BTreeSet<(Layer, usize)> =
                truth.iter().map(|s| (s.layer, s.neuron)).collect();
            for lane in &diag.screened_lanes {
                assert!(truth_lanes.contains(lane), "seed {seed}: {lane:?}");
            }
            if diag.detected() {
                detected_any += 1;
            }
        }
        assert!(
            detected_any >= 15,
            "only {detected_any}/30 arrays detected anything"
        );
    }

    #[test]
    fn selftest_is_deterministic_and_state_clean() {
        let cfg = BistConfig::default();
        let build = || {
            let mut accel = Accelerator::new();
            let mut rng = ChaCha8Rng::seed_from_u64(77);
            accel
                .inject_defects(6, FaultModel::TransistorLevel, &mut rng)
                .unwrap();
            accel
        };
        let mut a = build();
        let mut b = build();
        let da = run_selftest(&mut a, &cfg).unwrap();
        let db = run_selftest(&mut b, &cfg).unwrap();
        assert_eq!(da, db);
        // Running the BIST must not perturb subsequent evaluation: a
        // fresh twin and the tested array produce identical rows.
        let mlp = Mlp::new(Topology::new(4, 3, 2), 5);
        a.map_network(mlp.clone()).unwrap();
        let mut fresh = build();
        fresh.map_network(mlp).unwrap();
        let row = [0.3, -0.1, 0.8, 0.5];
        assert_eq!(a.process_row(&row), fresh.process_row(&row));
    }

    #[test]
    fn march_stage_localizes_memory_defects() {
        let mut accel = Accelerator::new();
        // No weight store attached: no memory report at all.
        let diag = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        assert_eq!(diag.memory, None);

        accel.attach_weight_memory().unwrap();
        let diag = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        assert!(diag.memory.as_ref().unwrap().clean());
        assert!(!diag.detected());

        // Plant a wordline failure and a lone stuck cell; the march
        // localizes each at its own granularity.
        let mem = accel.memory_mut().unwrap();
        mem.push_defect(dta_mem::MemDefect::RowStuck { row: 3 }, None);
        mem.push_defect(
            dta_mem::MemDefect::StuckCell {
                row: 7,
                col: 11,
                value: true,
            },
            None,
        );
        let diag = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        assert!(diag.detected());
        let report = diag.memory.as_ref().unwrap();
        assert_eq!(report.bad_rows, vec![3]);
        assert_eq!(report.bad_cells, vec![(7, 11)]);
        assert!(report.bad_cols.is_empty());
    }

    #[test]
    fn incremental_probe_screens_routed_lanes_and_respects_masks() {
        use crate::accel::Accel;
        use std::sync::atomic::AtomicBool;
        let clear = AtomicBool::new(false);
        let cfg = BistConfig::default();
        // Find a seed whose single defect the probe screens on the
        // mapped network's own routing.
        let mut hit = None;
        for seed in 0..40u64 {
            let mut accel = Accelerator::new();
            accel
                .map_network(Mlp::new(Topology::new(4, 8, 3), 11))
                .unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            accel
                .inject_defects(1, FaultModel::TransistorLevel, &mut rng)
                .unwrap();
            let diag = accel.probe_touched(&cfg, &clear).unwrap().unwrap();
            let lanes = diag.faulty_hidden_lanes();
            // Only lanes the mapped network routes through (0..8) can
            // be screened, and every screened lane is genuinely faulty.
            let truth: Vec<usize> = accel
                .faults()
                .sites()
                .iter()
                .filter(|s| s.layer == Layer::Hidden)
                .map(|s| s.neuron)
                .collect();
            for &lane in &lanes {
                assert!(truth.contains(&lane), "seed {seed}: lane {lane}");
            }
            if !lanes.is_empty() && lanes[0] < 8 {
                hit = Some((accel, lanes[0], seed));
                break;
            }
        }
        let (mut accel, lane, seed) = hit.expect("some defect visible to the probe");
        // Quarantining the flagged lane silences it: the next probe
        // skips the masked lane and reports clean.
        let evidence = accel.probe_touched(&cfg, &clear).unwrap().unwrap();
        let silenced = accel.quarantine(&evidence).unwrap();
        assert!(silenced >= 1, "seed {seed}");
        let diag = accel.probe_touched(&cfg, &clear).unwrap().unwrap();
        assert!(
            !diag.faulty_hidden_lanes().contains(&lane),
            "seed {seed}: masked lane {lane} re-flagged"
        );
        // A tripped abort flag stops the probe with None.
        let tripped = AtomicBool::new(true);
        assert_eq!(accel.probe_touched(&cfg, &tripped).unwrap(), None);
    }

    #[test]
    fn incremental_probe_is_state_clean_and_walks_the_memory() {
        use crate::accel::Accel;
        use std::sync::atomic::AtomicBool;
        let clear = AtomicBool::new(false);
        let cfg = BistConfig::default();
        let mut accel = Accelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 6, 3), 7))
            .unwrap();
        accel.attach_weight_memory().unwrap();
        accel
            .memory_mut()
            .unwrap()
            .push_defect(dta_mem::MemDefect::RowStuck { row: 2 }, None);
        let diag = accel.probe_touched(&cfg, &clear).unwrap().unwrap();
        assert_eq!(diag.memory.as_ref().unwrap().bad_rows, vec![2]);
        assert!(diag.detected());
        // State-clean: a probed array and a fresh twin serve identical
        // rows afterwards.
        let mut fresh = Accelerator::new();
        fresh
            .map_network(Mlp::new(Topology::new(4, 6, 3), 7))
            .unwrap();
        fresh.attach_weight_memory().unwrap();
        fresh
            .memory_mut()
            .unwrap()
            .push_defect(dta_mem::MemDefect::RowStuck { row: 2 }, None);
        let row = [0.4, -0.2, 0.9, 0.1];
        assert_eq!(accel.process_row(&row), fresh.process_row(&row));
    }

    #[test]
    fn scoring_helpers() {
        let site = |n: usize| FaultSite {
            layer: Layer::Hidden,
            neuron: n,
            unit: UnitKind::Adder,
            synapse: Some(0),
        };
        assert_eq!(detection_rate(&[], &[]), None);
        assert_eq!(localization_precision(&[site(1)], &[]), None);
        assert_eq!(detection_rate(&[site(1), site(2)], &[site(1)]), Some(0.5));
        // Duplicate truth sites (two defects on one operator) count once.
        assert_eq!(detection_rate(&[site(1), site(1)], &[site(1)]), Some(1.0));
        assert_eq!(
            localization_precision(&[site(1)], &[site(1), site(3)]),
            Some(0.5)
        );
    }
}
