//! The DMA / memory-interface model (paper §IV "Input/Output" and §VI-A
//! "Memory interface and key logic").
//!
//! The accelerator fetches input rows through a DMA with a 2-latch
//! double buffer per input (one row in use while the next is fetched) and
//! a 2-signal ready/accept handshake; the same port writes synaptic
//! weights during (re)training. The interface is *key logic*: it must be
//! defect-free, which is why the cost model tracks its area separately
//! across technology nodes.

use std::collections::VecDeque;
use std::fmt;

use dta_ann::Topology;
use dta_fixed::Fx;

/// Static bandwidth characterization of the interface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthReport {
    /// Bits fetched per input row.
    pub bits_per_row: u64,
    /// Bandwidth needed to keep the accelerator busy (GB/s).
    pub required_gb_s: f64,
    /// Minimum interface clock for the given link width (MHz).
    pub min_clock_mhz: f64,
    /// Interface cycles per row at the chosen link width.
    pub cycles_per_row: u64,
}

impl fmt::Display for BandwidthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bits/row | {:.2} GB/s | >= {:.0} MHz",
            self.bits_per_row, self.required_gb_s, self.min_clock_mhz
        )
    }
}

/// The DMA and its double buffers.
///
/// Functionally, the interface accepts rows from memory ([`MemoryInterface::push_row`])
/// into the back buffer and hands them to the accelerator
/// ([`MemoryInterface::take_row`]) from the front buffer, enforcing the
/// 2-deep pipeline; statistics feed the bandwidth report.
///
/// # Example
///
/// ```
/// use dta_core::MemoryInterface;
/// use dta_ann::Topology;
///
/// let mut dma = MemoryInterface::new(Topology::accelerator(), 2, 64, 800.0);
/// let report = dma.bandwidth_report(14.92);
/// // The paper: 1440 bits every 14.92 ns = 11.23 GB/s? No —
/// // 1440 bits / 14.92 ns ≈ 12.06 GB/s raw; with 16-bit words over 90
/// // inputs the paper reports 11.23 GB/s (decimal GB). Both are checked
/// // in the module tests.
/// assert_eq!(report.bits_per_row, 1440);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryInterface {
    geometry: Topology,
    /// Number of parallel links.
    links: u32,
    /// Bits per link per cycle.
    link_bits: u32,
    /// Interface clock in MHz.
    clock_mhz: f64,
    /// The double buffer: at most 2 pending rows.
    buffer: VecDeque<Vec<Fx>>,
    rows_pushed: u64,
    rows_taken: u64,
    stalls: u64,
}

impl MemoryInterface {
    /// Creates the interface for a geometry with `links` × `link_bits`
    /// wide transfers at `clock_mhz` (the paper: 2 × 64 bits at
    /// 800 MHz).
    pub fn new(geometry: Topology, links: u32, link_bits: u32, clock_mhz: f64) -> MemoryInterface {
        assert!(links >= 1 && link_bits >= 1 && clock_mhz > 0.0);
        MemoryInterface {
            geometry,
            links,
            link_bits,
            clock_mhz,
            buffer: VecDeque::with_capacity(2),
            rows_pushed: 0,
            rows_taken: 0,
            stalls: 0,
        }
    }

    /// The paper's configuration: two 64-bit links at 800 MHz feeding
    /// the 90-input accelerator.
    pub fn paper_config() -> MemoryInterface {
        MemoryInterface::new(Topology::accelerator(), 2, 64, 800.0)
    }

    /// Bits that must be fetched per input row (16 bits per input).
    pub fn bits_per_row(&self) -> u64 {
        16 * self.geometry.inputs as u64
    }

    /// Static bandwidth report given the accelerator row latency.
    pub fn bandwidth_report(&self, row_latency_ns: f64) -> BandwidthReport {
        let bits = self.bits_per_row();
        let bytes_per_ns = bits as f64 / 8.0 / row_latency_ns;
        let required_gb_s = bytes_per_ns; // GB/s == bytes/ns
        let bits_per_cycle = (self.links * self.link_bits) as u64;
        let cycles_per_row = bits.div_ceil(bits_per_cycle);
        let min_clock_mhz = cycles_per_row as f64 / row_latency_ns * 1e3;
        BandwidthReport {
            bits_per_row: bits,
            required_gb_s,
            min_clock_mhz,
            cycles_per_row,
        }
    }

    /// True if the back buffer can accept another row (ready signal).
    pub fn ready(&self) -> bool {
        self.buffer.len() < 2
    }

    /// Pushes a fetched row into the double buffer.
    ///
    /// Returns `false` (and counts a stall) if both buffers are full —
    /// the accelerator is the bottleneck and the DMA must wait.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the geometry's input count.
    pub fn push_row(&mut self, row: Vec<Fx>) -> bool {
        assert_eq!(row.len(), self.geometry.inputs, "row width mismatch");
        if !self.ready() {
            self.stalls += 1;
            return false;
        }
        self.buffer.push_back(row);
        self.rows_pushed += 1;
        true
    }

    /// Hands the front row to the accelerator (accept signal), if any.
    pub fn take_row(&mut self) -> Option<Vec<Fx>> {
        let row = self.buffer.pop_front();
        if row.is_some() {
            self.rows_taken += 1;
        }
        row
    }

    /// `(pushed, taken, stalls)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.rows_pushed, self.rows_taken, self.stalls)
    }

    /// The configured interface clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// Models a full synaptic-weight reload (paper §IV: "each neuron of
    /// layer l is reloaded one by one: all its N_{l-1} synaptic weights
    /// are loaded, then stored. A write signal ... is activated by the
    /// DMA"): per neuron, its fan-in words stream over the links, then
    /// one strobe cycle latches them.
    pub fn weight_reload_report(&self) -> WeightReloadReport {
        let g = self.geometry;
        let bits_per_cycle = (self.links * self.link_bits) as u64;
        let mut words = 0u64;
        let mut cycles = 0u64;
        for (fan_in, neurons) in [(g.inputs, g.hidden), (g.hidden, g.outputs)] {
            let per_neuron_bits = 16 * fan_in as u64 + 16; // weights + bias
            let per_neuron_cycles = per_neuron_bits.div_ceil(bits_per_cycle) + 1;
            words += (fan_in as u64 + 1) * neurons as u64;
            cycles += per_neuron_cycles * neurons as u64;
        }
        WeightReloadReport {
            words,
            cycles,
            time_us: cycles as f64 / (self.clock_mhz * 1e6) * 1e6,
        }
    }
}

/// Cost of streaming a full set of synaptic weights into the array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightReloadReport {
    /// 16-bit weight words transferred (including biases).
    pub words: u64,
    /// Interface cycles consumed (transfers + per-neuron write strobes).
    pub cycles: u64,
    /// Wall-clock time at the configured interface clock, in µs.
    pub time_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_numbers() {
        let dma = MemoryInterface::paper_config();
        let report = dma.bandwidth_report(14.92);
        // 90 × 16 = 1440 bits per row.
        assert_eq!(report.bits_per_row, 1440);
        // 1440 bits / 14.92 ns = 12.06 GB/s raw; the paper quotes
        // 11.23 GB/s (computed with GiB-style rounding); both land in
        // the Intel QPI class (~12.8 GB/s one direction).
        assert!(
            (11.0..12.5).contains(&report.required_gb_s),
            "{}",
            report.required_gb_s
        );
        // 1440 / 128 bits per cycle = 12 cycles; >= 754 MHz required.
        assert_eq!(report.cycles_per_row, 12);
        assert!(
            (report.min_clock_mhz - 804.0).abs() < 10.0,
            "min clock {} MHz (paper needs >= 754 and clocks at 800)",
            report.min_clock_mhz
        );
    }

    #[test]
    fn double_buffer_holds_two_rows() {
        let mut dma = MemoryInterface::new(Topology::new(4, 2, 2), 1, 64, 800.0);
        let row = vec![Fx::ZERO; 4];
        assert!(dma.ready());
        assert!(dma.push_row(row.clone()));
        assert!(dma.push_row(row.clone()));
        assert!(!dma.ready());
        assert!(!dma.push_row(row.clone()), "third push stalls");
        assert_eq!(dma.stats(), (2, 0, 1));
        assert!(dma.take_row().is_some());
        assert!(dma.ready(), "freed a slot");
        assert!(dma.push_row(row));
        assert_eq!(dma.stats(), (3, 1, 1));
    }

    #[test]
    fn take_from_empty_is_none() {
        let mut dma = MemoryInterface::paper_config();
        assert!(dma.take_row().is_none());
    }

    #[test]
    fn rows_flow_in_fifo_order() {
        let mut dma = MemoryInterface::new(Topology::new(1, 2, 2), 1, 16, 100.0);
        dma.push_row(vec![Fx::from_f64(1.0)]);
        dma.push_row(vec![Fx::from_f64(2.0)]);
        assert_eq!(dma.take_row().unwrap()[0], Fx::from_f64(1.0));
        assert_eq!(dma.take_row().unwrap()[0], Fx::from_f64(2.0));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_width_rejected() {
        let mut dma = MemoryInterface::paper_config();
        dma.push_row(vec![Fx::ZERO; 3]);
    }

    #[test]
    fn display_mentions_bandwidth() {
        let dma = MemoryInterface::paper_config();
        let s = dma.bandwidth_report(14.92).to_string();
        assert!(s.contains("GB/s"));
    }

    #[test]
    fn weight_reload_accounting() {
        let dma = MemoryInterface::paper_config();
        let r = dma.weight_reload_report();
        // 10 hidden x 91 + 10 output x 11 = 1020 words.
        assert_eq!(r.words, 1020);
        // Per hidden neuron: ceil(91*16/128)+1 = 13 cycles; per output
        // neuron: ceil(11*16/128)+1 = 3 cycles.
        assert_eq!(r.cycles, 13 * 10 + 3 * 10);
        // At 800 MHz that is a fifth of a microsecond — retraining cost
        // is dominated by the companion core, not the reload.
        assert!(r.time_us < 1.0, "reload time {} us", r.time_us);
    }
}
