#![warn(missing_docs)]

//! The paper's primary contribution: a **spatially expanded, defect-
//! tolerant hardware ANN accelerator**, with everything needed to
//! reproduce its evaluation.
//!
//! * [`accelerator`] — the spatially expanded 90-10-10 accelerator: all
//!   neurons in silicon, synaptic weights in distributed latches next to
//!   their multipliers, combinational data flow from inputs to outputs.
//!   Supports transistor-level defect injection and companion-core
//!   retraining.
//! * [`time_multiplexed`] — the conventional baseline: a few shared
//!   hardware neurons, an SRAM weight bank and the control logic that a
//!   single defect can wreck; used by the spatial-vs-time-multiplexed
//!   ablation.
//! * [`large`] — partial time-multiplexing of networks larger than the
//!   physical array (paper §IV), with pass counting and the defect
//!   multiplication effect.
//! * [`interface`] — the DMA / memory-interface model: double buffering,
//!   handshake, and the bandwidth arithmetic behind the 11.23 GB/s
//!   requirement.
//! * [`cost`] — the 90 nm area/power/latency/energy model calibrated to
//!   the paper's synthesis results (Table III), including technology-node
//!   scaling of the key-logic fraction.
//! * [`processor`] — the Intel Stealey-class in-order core model behind
//!   Table IV and the ~1000× energy ratio.
//! * [`campaign`] — the defect-injection campaigns of Figures 10 and 11:
//!   accuracy vs. defect count with retraining, and output-layer
//!   sensitivity vs. error amplitude.
//! * [`selftest`] — signature-based BIST: array-level lane screen plus
//!   operator-level vector diagnosis, localizing defects to
//!   operator/neuron granularity with structurally perfect precision.
//! * [`recover`] — the online recovery ladder driven by a diagnosis:
//!   retrain-around-defect, remap/mask onto spare lanes, graceful
//!   degradation — each rung under an epoch budget and a wall-clock
//!   watchdog with typed timeout errors.
//! * [`health`] — the per-accelerator health-state machine
//!   (Healthy → Suspect → Recovering → Degraded → Quarantined) the
//!   mission runtime drives, with a typed-error transition table.
//! * [`mission`] — the mission-mode runtime: a sustained inference
//!   stream served in traffic batches while a seeded Poisson
//!   fault-arrival process injects mid-stream defects; periodic
//!   incremental BIST probes, watchdogged recovery with bounded
//!   retries and exponential backoff, quarantine, and an
//!   accuracy/availability-over-time trace.
//!
//! # Example
//!
//! ```
//! use dta_core::accelerator::Accelerator;
//! use dta_ann::{Mlp, Topology};
//!
//! let mut accel = Accelerator::new();
//! let mlp = Mlp::new(Topology::new(4, 8, 3), 42);
//! accel.map_network(mlp).unwrap();
//! let class = accel.classify(&[0.1, 0.9, 0.4, 0.2]).unwrap();
//! assert!(class < 3);
//! ```

pub mod accel;
pub mod accelerator;
pub mod campaign;
pub mod checkpoint;
pub mod cost;
pub mod dark_silicon;
pub mod health;
pub mod interface;
pub mod large;
pub mod lutpar;
pub mod mission;
pub mod parallel;
pub mod processor;
pub mod recover;
pub mod selftest;
pub mod time_multiplexed;

pub use accel::{Accel, StructuralOutcome};
pub use accelerator::{AccelError, Accelerator};
pub use campaign::{
    AmplitudePoint, CampaignConfig, CampaignError, CellOutcome, ChaosCell, CurvePoint,
};
pub use checkpoint::Checkpoint;
pub use cost::{CostModel, CostReport, SensitiveAreaReport};
pub use dark_silicon::{DarkSiliconReport, HeterogeneousChip};
pub use health::{HealthEvent, HealthMonitor, HealthState, IllegalTransition};
pub use interface::MemoryInterface;
pub use lutpar::{PartitionedFusedExec, PartitionedLutExec};
pub use mission::{
    run_mission, MissionConfig, MissionError, MissionEvent, MissionOutcome, SurfaceMix,
};
pub use parallel::parallel_map;
pub use processor::ProcessorModel;
pub use recover::{
    DegradationEstimate, MemRungStats, RecoveryError, RecoveryPolicy, RecoveryReport, RecoveryRung,
    RetryPolicy, RungBudget,
};
pub use selftest::{detection_rate, localization_precision, run_selftest, BistConfig, Diagnosis};
pub use time_multiplexed::TimeMultiplexedAccelerator;

// The weight-store fault surface (re-exported so campaign and bench
// code can drive it without a direct `dta-mem` dependency).
pub use dta_mem::{
    Activation as MemActivation, MarchReport, MemDefect, MemGeometry, ScrubReport, WeightMemory,
};
