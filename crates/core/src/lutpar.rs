//! Rank-synchronized parallel execution of compiled LUT instruction
//! streams.
//!
//! [`PartitionedLutExec`] partitions each *rank* of a
//! [`dta_logic::LutProgram`]'s schedule across the scoped-thread pool
//! conventions of [`crate::parallel`]: every worker sweeps a contiguous
//! chunk of the rank's instructions, then all workers meet at a
//! [`Barrier`] before anyone starts the next rank. An instruction at
//! rank `r` reads only slots written at ranks `< r` (or primary
//! input/latch slots, which the schedule never writes), so within a
//! rank there are no read-write conflicts at all, and the per-rank
//! barrier provides the happens-before edge that publishes one rank's
//! writes to the next. Register slots are [`AtomicU64`]s accessed with
//! [`Ordering::Relaxed`] — on x86 a plain `mov` — because the barrier,
//! not the atomics, carries the synchronization.
//!
//! Only truth-word *patches* (permanent defects) are supported: per-lane
//! behavioral overrides are inherently sequential in lane order, so
//! stateful plans stay on the single-threaded [`LutExec`] / cone paths.
//! Construct via [`PartitionedLutExec::from_exec`] to inherit a lowered
//! plan, or [`PartitionedLutExec::new`] for a healthy stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use dta_logic::{FusedProgram, LutExec, LutInstr, LutProgram, Netlist, Node, NodeId, DEAD_SLOT};

use crate::parallel::effective_threads;

/// A 64-lane LUT instruction-stream executor that splits every rank of
/// the schedule across scoped OS threads, synchronizing with one
/// barrier per rank. Bit-identical to [`LutExec`] on the same stream.
#[derive(Debug)]
pub struct PartitionedLutExec {
    prog: Arc<LutProgram>,
    /// Private copy of the stream so truth words can be patched without
    /// touching the shared program.
    instrs: Vec<LutInstr>,
    regs: Vec<AtomicU64>,
    threads: usize,
}

impl PartitionedLutExec {
    /// Creates a partitioned executor over a healthy compiled program.
    /// `threads == 0` uses every available core; `threads <= 1` runs
    /// the schedule inline on the calling thread (no pool, no barrier).
    pub fn new(prog: Arc<LutProgram>, threads: usize) -> PartitionedLutExec {
        let regs: Vec<AtomicU64> = (0..prog.n_slots()).map(|_| AtomicU64::new(0)).collect();
        let mut ex = PartitionedLutExec {
            instrs: prog.instrs().to_vec(),
            regs,
            prog,
            threads: effective_threads(threads),
        };
        ex.reset_state();
        ex
    }

    /// Adopts the (possibly patched) stream of a single-threaded
    /// executor. Returns `None` unless the plan lowered entirely to
    /// truth-word patches ([`LutExec::fully_patched`]): per-lane
    /// behavioral overrides advance state in lane order and cannot be
    /// partitioned.
    pub fn from_exec(ex: &LutExec, threads: usize) -> Option<PartitionedLutExec> {
        if !ex.fully_patched() {
            return None;
        }
        let prog = Arc::clone(ex.program());
        let regs: Vec<AtomicU64> = (0..prog.n_slots()).map(|_| AtomicU64::new(0)).collect();
        let mut par = PartitionedLutExec {
            instrs: ex.instrs().to_vec(),
            regs,
            prog,
            threads: effective_threads(threads),
        };
        par.reset_state();
        Some(par)
    }

    /// The compiled program this executor runs.
    pub fn program(&self) -> &Arc<LutProgram> {
        &self.prog
    }

    /// The netlist behind the program.
    pub fn netlist(&self) -> &Arc<Netlist> {
        self.prog.netlist()
    }

    /// The resolved worker count (after [`effective_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Patches the truth word of a gate's instruction in place — the
    /// permanent-defect lowering, same semantics as
    /// [`LutExec::patch_gate`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gate node.
    pub fn patch_gate(&mut self, id: NodeId, table: u16) {
        let pos = self
            .prog
            .instr_index(id)
            .unwrap_or_else(|| panic!("{id} is not a gate"));
        self.instrs[pos].table = table;
    }

    /// Drives a primary input with a 64-lane mask (bit `l` = lane `l`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a primary input.
    pub fn set_input_lanes(&mut self, id: NodeId, lanes: u64) {
        assert!(
            matches!(self.netlist().node(id), Node::Input { .. }),
            "{id} is not a primary input"
        );
        self.regs[id.index()].store(lanes, Ordering::Relaxed);
    }

    /// Drives a bus so lane `l` carries `words[l]` (LSB-first bus);
    /// fewer than 64 words leave the remaining lanes at zero.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 words are supplied.
    pub fn set_input_words(&mut self, bus: &[NodeId], words: &[u64]) {
        assert!(words.len() <= 64, "at most 64 lanes");
        for (bit, &id) in bus.iter().enumerate() {
            let mut lanes = 0u64;
            for (l, &w) in words.iter().enumerate() {
                lanes |= ((w >> bit) & 1) << l;
            }
            self.set_input_lanes(id, lanes);
        }
    }

    /// Executes the straight-line schedule once, settling all lanes:
    /// each rank's instructions are split into contiguous per-worker
    /// chunks, with a barrier between ranks.
    pub fn exec(&mut self) {
        let threads = self.threads;
        if threads <= 1 {
            for ins in &self.instrs {
                let v = ins.eval_with(|i| self.regs[i as usize].load(Ordering::Relaxed));
                self.regs[ins.out as usize].store(v, Ordering::Relaxed);
            }
            return;
        }
        let barrier = Barrier::new(threads);
        let regs = &self.regs;
        let instrs = &self.instrs;
        let prog = &self.prog;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let barrier = &barrier;
                scope.spawn(move || {
                    for rank in 0..prog.n_ranks() {
                        let range = prog.rank_range(rank);
                        let len = range.len();
                        let chunk = len.div_ceil(threads);
                        let lo = range.start + (t * chunk).min(len);
                        let hi = range.start + ((t + 1) * chunk).min(len);
                        for ins in &instrs[lo..hi] {
                            let v = ins.eval_with(|i| regs[i as usize].load(Ordering::Relaxed));
                            regs[ins.out as usize].store(v, Ordering::Relaxed);
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    /// Latch capture across all lanes, in declaration order — matching
    /// [`LutExec::tick`] exactly (runs on the calling thread; latch
    /// copies are far too cheap to partition).
    pub fn tick(&mut self) {
        for ls in self.prog.latch_slots() {
            let v = self.regs[ls.data as usize].load(Ordering::Relaxed);
            self.regs[ls.latch as usize].store(v, Ordering::Relaxed);
        }
    }

    /// Resets latch slots to their init values. Truth-word patches
    /// persist (permanent defects survive reset).
    pub fn reset_state(&mut self) {
        for ls in self.prog.latch_slots() {
            let v = if ls.init { !0 } else { 0 };
            self.regs[ls.latch as usize].store(v, Ordering::Relaxed);
        }
    }

    /// The 64-lane word of any node slot.
    pub fn lanes(&self, id: NodeId) -> u64 {
        self.regs[id.index()].load(Ordering::Relaxed)
    }

    /// Reads lane `lane` of a bus back as a word (LSB-first).
    pub fn read_word_lane(&self, bus: &[NodeId], lane: usize) -> u64 {
        assert!(lane < 64);
        bus.iter().enumerate().fold(0u64, |acc, (bit, &id)| {
            acc | (((self.regs[id.index()].load(Ordering::Relaxed) >> lane) & 1) << bit)
        })
    }

    /// Reads the first `n_lanes` lanes of a bus back as words.
    pub fn read_words(&self, bus: &[NodeId], n_lanes: usize) -> Vec<u64> {
        (0..n_lanes).map(|l| self.read_word_lane(bus, l)).collect()
    }
}

/// Rank-partitioned executor for a *fused* network-level instruction
/// stream ([`dta_logic::FusedProgram`], typically compiled by
/// `dta_ann::FusedForward` and optimized by [`dta_logic::optimize`]).
/// The same per-rank barrier discipline as [`PartitionedLutExec`], but
/// stage-aware: [`PartitionedFusedExec::exec_stage`] sweeps one stage's
/// rank window so a runner can interleave native work between stages,
/// exactly like the single-threaded [`dta_logic::FusedExec`]. Fault
/// patches are already baked into the fused truth words, so there is
/// nothing to patch at run time.
#[derive(Debug)]
pub struct PartitionedFusedExec {
    prog: Arc<FusedProgram>,
    regs: Vec<AtomicU64>,
    threads: usize,
}

impl PartitionedFusedExec {
    /// Creates a partitioned executor over a fused program. `threads ==
    /// 0` uses every available core; `threads <= 1` runs inline on the
    /// calling thread (no pool, no barrier).
    pub fn new(prog: Arc<FusedProgram>, threads: usize) -> PartitionedFusedExec {
        let regs: Vec<AtomicU64> = (0..prog.n_slots()).map(|_| AtomicU64::new(0)).collect();
        let mut ex = PartitionedFusedExec {
            regs,
            prog,
            threads: effective_threads(threads),
        };
        ex.reset_state();
        ex
    }

    /// The fused program this executor runs.
    pub fn program(&self) -> &Arc<FusedProgram> {
        &self.prog
    }

    /// The resolved worker count (after [`effective_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes the whole stream once, settling all lanes.
    pub fn exec(&mut self) {
        self.run_ranks(0..self.prog.n_ranks());
    }

    /// Executes one stage's rank window; earlier stages' results stay
    /// in the register file for later stages to read.
    pub fn exec_stage(&mut self, stage: usize) {
        self.run_ranks(self.prog.stage_rank_range(stage));
    }

    fn run_ranks(&self, ranks: std::ops::Range<usize>) {
        if ranks.is_empty() {
            return;
        }
        let threads = self.threads;
        let regs = &self.regs;
        let prog = &self.prog;
        if threads <= 1 {
            let lo = prog.rank_range(ranks.start).start;
            let hi = prog.rank_range(ranks.end - 1).end;
            for ins in &prog.instrs()[lo..hi] {
                let v = ins.eval_with(|i| regs[i as usize].load(Ordering::Relaxed));
                regs[ins.out as usize].store(v, Ordering::Relaxed);
            }
            return;
        }
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let barrier = &barrier;
                let ranks = ranks.clone();
                scope.spawn(move || {
                    for rank in ranks {
                        let range = prog.rank_range(rank);
                        let len = range.len();
                        let chunk = len.div_ceil(threads);
                        let lo = range.start + (t * chunk).min(len);
                        let hi = range.start + ((t + 1) * chunk).min(len);
                        for ins in &prog.instrs()[lo..hi] {
                            let v = ins.eval_with(|i| regs[i as usize].load(Ordering::Relaxed));
                            regs[ins.out as usize].store(v, Ordering::Relaxed);
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    /// Writes a slot's 64-lane word, skipping [`dta_logic::DEAD_SLOT`].
    #[inline]
    pub fn set_slot(&mut self, slot: u32, lanes: u64) {
        if slot != DEAD_SLOT {
            self.regs[slot as usize].store(lanes, Ordering::Relaxed);
        }
    }

    /// Broadcasts a word across all lanes of a bus (LSB-first),
    /// skipping dead slots — the uniform-weight lowering.
    pub fn set_bus_uniform(&mut self, bus: &[u32], word: u64) {
        for (bit, &slot) in bus.iter().enumerate() {
            let lanes = if (word >> bit) & 1 == 1 { !0 } else { 0 };
            self.set_slot(slot, lanes);
        }
    }

    /// Drives a bus so lane `l` carries `words[l]` (LSB-first); fewer
    /// than 64 words leave the remaining lanes at zero. Dead slots are
    /// skipped.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 words are supplied.
    pub fn set_bus_words(&mut self, bus: &[u32], words: &[u64]) {
        assert!(words.len() <= 64, "at most 64 lanes");
        for (bit, &slot) in bus.iter().enumerate() {
            if slot == DEAD_SLOT {
                continue;
            }
            let mut lanes = 0u64;
            for (l, &w) in words.iter().enumerate() {
                lanes |= ((w >> bit) & 1) << l;
            }
            self.regs[slot as usize].store(lanes, Ordering::Relaxed);
        }
    }

    /// Reads lane `lane` of a bus back as a word (LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if the bus contains a dead slot or `lane >= 64`.
    pub fn read_word_lane(&self, bus: &[u32], lane: usize) -> u64 {
        assert!(lane < 64);
        bus.iter().enumerate().fold(0u64, |acc, (bit, &slot)| {
            acc | (((self.regs[slot as usize].load(Ordering::Relaxed) >> lane) & 1) << bit)
        })
    }

    /// Reads the first `n_lanes` lanes of a bus back as words.
    pub fn read_words(&self, bus: &[u32], n_lanes: usize) -> Vec<u64> {
        (0..n_lanes).map(|l| self.read_word_lane(bus, l)).collect()
    }

    /// Latch capture across all lanes — two-phase, matching
    /// [`dta_logic::FusedExec::tick`] (fused streams can chain one
    /// segment's latch output into another segment's latch data).
    pub fn tick(&mut self) {
        let sampled: Vec<u64> = self
            .prog
            .latch_slots()
            .iter()
            .map(|ls| self.regs[ls.data as usize].load(Ordering::Relaxed))
            .collect();
        for (ls, v) in self.prog.latch_slots().iter().zip(sampled) {
            self.regs[ls.latch as usize].store(v, Ordering::Relaxed);
        }
    }

    /// Resets latch slots to their init values and re-materializes
    /// constant registers.
    pub fn reset_state(&mut self) {
        for &(slot, bit) in self.prog.consts() {
            self.regs[slot as usize].store(if bit { !0 } else { 0 }, Ordering::Relaxed);
        }
        for ls in self.prog.latch_slots() {
            let v = if ls.init { !0 } else { 0 };
            self.regs[ls.latch as usize].store(v, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_circuits::multiplier::FxMulCircuit;
    use dta_circuits::{DefectPlan, FaultModel};
    use dta_fixed::Fx;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn batch(seed: u64, n: usize) -> (Vec<u64>, Vec<u64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = (0..n).map(|_| u64::from(rng.random::<u16>())).collect();
        let b = (0..n).map(|_| u64::from(rng.random::<u16>())).collect();
        (a, b)
    }

    #[test]
    fn healthy_partitioned_exec_is_bit_identical_across_thread_counts() {
        let mul = FxMulCircuit::new();
        let mut reference = mul.lut_exec();
        let (a, b) = batch(7, 64);
        reference.set_input_words(mul.a_bus(), &a);
        reference.set_input_words(mul.b_bus(), &b);
        reference.exec();
        let want = reference.read_words(mul.out_bus(), 64);
        for threads in [1, 2, 4] {
            let mut par =
                PartitionedLutExec::new(dta_logic::LutProgram::cached(mul.netlist()), threads);
            par.set_input_words(mul.a_bus(), &a);
            par.set_input_words(mul.b_bus(), &b);
            par.exec();
            assert_eq!(
                par.read_words(mul.out_bus(), 64),
                want,
                "{threads} threads diverged from LutExec"
            );
        }
    }

    #[test]
    fn patched_partitioned_exec_matches_single_threaded() {
        let mul = FxMulCircuit::new();
        for seed in 0..10u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::GateLevel);
            for _ in 0..3 {
                plan.add_random(mul.netlist(), mul.cells(), &mut rng);
            }
            let mut ex = mul.lut_exec();
            assert!(plan.apply_lut(&mut ex), "gate-level permanents patch");
            let (a, b) = batch(seed ^ 0x51, 64);
            ex.set_input_words(mul.a_bus(), &a);
            ex.set_input_words(mul.b_bus(), &b);
            ex.exec();
            let want = ex.read_words(mul.out_bus(), 64);
            for threads in [2, 4] {
                let mut par = PartitionedLutExec::from_exec(&ex, threads)
                    .expect("fully patched stream partitions");
                par.set_input_words(mul.a_bus(), &a);
                par.set_input_words(mul.b_bus(), &b);
                par.exec();
                assert_eq!(
                    par.read_words(mul.out_bus(), 64),
                    want,
                    "seed {seed}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn from_exec_refuses_stateful_streams() {
        let mul = FxMulCircuit::new();
        for seed in 0..30u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            plan.add_random_with(
                mul.netlist(),
                mul.cells(),
                dta_transistor::Activation::Transient {
                    per_eval_probability: 0.5,
                },
                &mut rng,
            );
            let mut ex = mul.lut_exec();
            assert!(!plan.apply_lut(&mut ex));
            assert!(
                PartitionedLutExec::from_exec(&ex, 4).is_none(),
                "seed {seed}: overrides cannot be partitioned"
            );
        }
    }

    #[test]
    fn direct_patch_matches_lut_exec_patch() {
        // Patching through either executor must produce the same faulty
        // outputs. Inverting the truth word of the gate driving output
        // bit 0 is guaranteed visible: every product's LSB flips.
        let mul = FxMulCircuit::new();
        let prog = dta_logic::LutProgram::cached(mul.netlist());
        let gate = mul.out_bus()[0];
        let pos = prog.instr_index(gate).expect("out bit 0 is a gate");
        let ins = prog.instrs()[pos];
        let mask = ((1u32 << (1usize << ins.arity)) - 1) as u16;
        let inverted = !ins.table & mask;
        let mut ex = mul.lut_exec();
        ex.patch_gate(gate, inverted);
        let mut par = PartitionedLutExec::new(Arc::clone(&prog), 2);
        par.patch_gate(gate, inverted);
        let (a, b) = batch(99, 64);
        ex.set_input_words(mul.a_bus(), &a);
        ex.set_input_words(mul.b_bus(), &b);
        ex.exec();
        par.set_input_words(mul.a_bus(), &a);
        par.set_input_words(mul.b_bus(), &b);
        par.exec();
        assert_eq!(
            par.read_words(mul.out_bus(), 64),
            ex.read_words(mul.out_bus(), 64)
        );
        // And the patch actually changed something vs. healthy.
        let healthy: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                u64::from((Fx::from_bits(x as u16) * Fx::from_bits(y as u16)).to_bits())
            })
            .collect();
        assert_ne!(par.read_words(mul.out_bus(), 64), healthy);
    }

    /// A fused program plus its `a`/`b`/`c` input buses and output bus.
    type FusedChain = (
        Arc<dta_logic::FusedProgram>,
        Vec<u32>,
        Vec<u32>,
        Vec<u32>,
        Vec<u32>,
    );

    /// Two multipliers fused into a two-stage stream — stage 0 a
    /// defect-patched `a*b`, stage 1 a healthy `(a*b)*c` reading stage
    /// 0's fused output directly. Returns the program plus the fused
    /// input/output buses.
    fn fused_mul_chain() -> FusedChain {
        let mul = FxMulCircuit::new();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut plan = DefectPlan::new(FaultModel::GateLevel);
        for _ in 0..2 {
            plan.add_random(mul.netlist(), mul.cells(), &mut rng);
        }
        let mut patched = mul.lut_exec();
        assert!(plan.apply_lut(&mut patched), "gate-level permanents patch");

        let local = |bus: &[dta_logic::NodeId]| -> Vec<u32> {
            bus.iter().map(|n| n.index() as u32).collect()
        };
        let mut fb = dta_logic::FuseBuilder::new();
        let a = fb.fresh_bus(16);
        let b = fb.fresh_bus(16);
        let bind1: Vec<(u32, u32)> = local(mul.a_bus())
            .into_iter()
            .zip(a.iter().copied())
            .chain(local(mul.b_bus()).into_iter().zip(b.iter().copied()))
            .collect();
        let m1 = fb.append(
            patched.instrs(),
            patched.program().n_slots(),
            patched.program().latch_slots(),
            &bind1,
        );
        fb.barrier();
        // Healthy second multiplier: a-operand wired to the patched
        // product, b-operand a fresh runtime bus written between stages.
        let c = fb.fresh_bus(16);
        let healthy = mul.lut_exec();
        let bind2: Vec<(u32, u32)> = local(mul.a_bus())
            .into_iter()
            .zip(local(mul.out_bus()).iter().map(|&s| m1[s as usize]))
            .chain(local(mul.b_bus()).into_iter().zip(c.iter().copied()))
            .collect();
        let m2 = fb.append(
            healthy.instrs(),
            healthy.program().n_slots(),
            healthy.program().latch_slots(),
            &bind2,
        );
        let out: Vec<u32> = local(mul.out_bus())
            .iter()
            .map(|&s| m2[s as usize])
            .collect();
        (Arc::new(fb.finish()), a, b, c, out)
    }

    #[test]
    fn partitioned_fused_matches_fused_exec_across_thread_counts() {
        let (prog, a, b, c, out) = fused_mul_chain();
        assert_eq!(prog.n_stages(), 2);
        let (av, bv) = batch(21, 64);
        let (cv, _) = batch(22, 64);

        let mut reference = dta_logic::FusedExec::new(Arc::clone(&prog));
        reference.set_bus_words(&a, &av);
        reference.set_bus_words(&b, &bv);
        reference.set_bus_words(&c, &cv);
        reference.exec();
        let want = reference.read_words(&out, 64);

        for threads in [1, 2, 4] {
            let mut par = PartitionedFusedExec::new(Arc::clone(&prog), threads);
            par.set_bus_words(&a, &av);
            par.set_bus_words(&b, &bv);
            par.set_bus_words(&c, &cv);
            par.exec();
            assert_eq!(
                par.read_words(&out, 64),
                want,
                "{threads} threads diverged from FusedExec"
            );
        }
    }

    #[test]
    fn partitioned_fused_stage_interleave_matches_whole_stream() {
        // Drive the stream stage by stage, writing the second operand
        // only after stage 0 settles (the runner's native-interleave
        // pattern), and check it equals the all-at-once execution.
        let (prog, a, b, c, out) = fused_mul_chain();
        let (av, bv) = batch(31, 64);

        let mut par = PartitionedFusedExec::new(Arc::clone(&prog), 2);
        par.set_bus_words(&a, &av);
        par.set_bus_words(&b, &bv);
        par.exec_stage(0);
        // Write the stage-1 operand only now, the way the fused runner
        // injects natively-computed values between gate stages.
        let cv: Vec<u64> = av
            .iter()
            .zip(&bv)
            .map(|(&x, &y)| {
                u64::from((Fx::from_bits(x as u16) * Fx::from_bits(y as u16)).to_bits())
            })
            .collect();
        par.set_bus_words(&c, &cv);
        par.exec_stage(1);
        let staged = par.read_words(&out, 64);

        let mut whole = dta_logic::FusedExec::new(Arc::clone(&prog));
        whole.set_bus_words(&a, &av);
        whole.set_bus_words(&b, &bv);
        whole.set_bus_words(&c, &cv);
        whole.exec();
        assert_eq!(staged, whole.read_words(&out, 64));
    }
}
