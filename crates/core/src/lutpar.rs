//! Rank-synchronized parallel execution of compiled LUT instruction
//! streams.
//!
//! [`PartitionedLutExec`] partitions each *rank* of a
//! [`dta_logic::LutProgram`]'s schedule across the scoped-thread pool
//! conventions of [`crate::parallel`]: every worker sweeps a contiguous
//! chunk of the rank's instructions, then all workers meet at a
//! [`Barrier`] before anyone starts the next rank. An instruction at
//! rank `r` reads only slots written at ranks `< r` (or primary
//! input/latch slots, which the schedule never writes), so within a
//! rank there are no read-write conflicts at all, and the per-rank
//! barrier provides the happens-before edge that publishes one rank's
//! writes to the next. Register slots are [`AtomicU64`]s accessed with
//! [`Ordering::Relaxed`] — on x86 a plain `mov` — because the barrier,
//! not the atomics, carries the synchronization.
//!
//! Only truth-word *patches* (permanent defects) are supported: per-lane
//! behavioral overrides are inherently sequential in lane order, so
//! stateful plans stay on the single-threaded [`LutExec`] / cone paths.
//! Construct via [`PartitionedLutExec::from_exec`] to inherit a lowered
//! plan, or [`PartitionedLutExec::new`] for a healthy stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use dta_logic::{LutExec, LutInstr, LutProgram, Netlist, Node, NodeId};

use crate::parallel::effective_threads;

/// A 64-lane LUT instruction-stream executor that splits every rank of
/// the schedule across scoped OS threads, synchronizing with one
/// barrier per rank. Bit-identical to [`LutExec`] on the same stream.
#[derive(Debug)]
pub struct PartitionedLutExec {
    prog: Arc<LutProgram>,
    /// Private copy of the stream so truth words can be patched without
    /// touching the shared program.
    instrs: Vec<LutInstr>,
    regs: Vec<AtomicU64>,
    threads: usize,
}

impl PartitionedLutExec {
    /// Creates a partitioned executor over a healthy compiled program.
    /// `threads == 0` uses every available core; `threads <= 1` runs
    /// the schedule inline on the calling thread (no pool, no barrier).
    pub fn new(prog: Arc<LutProgram>, threads: usize) -> PartitionedLutExec {
        let regs: Vec<AtomicU64> = (0..prog.n_slots()).map(|_| AtomicU64::new(0)).collect();
        let mut ex = PartitionedLutExec {
            instrs: prog.instrs().to_vec(),
            regs,
            prog,
            threads: effective_threads(threads),
        };
        ex.reset_state();
        ex
    }

    /// Adopts the (possibly patched) stream of a single-threaded
    /// executor. Returns `None` unless the plan lowered entirely to
    /// truth-word patches ([`LutExec::fully_patched`]): per-lane
    /// behavioral overrides advance state in lane order and cannot be
    /// partitioned.
    pub fn from_exec(ex: &LutExec, threads: usize) -> Option<PartitionedLutExec> {
        if !ex.fully_patched() {
            return None;
        }
        let prog = Arc::clone(ex.program());
        let regs: Vec<AtomicU64> = (0..prog.n_slots()).map(|_| AtomicU64::new(0)).collect();
        let mut par = PartitionedLutExec {
            instrs: ex.instrs().to_vec(),
            regs,
            prog,
            threads: effective_threads(threads),
        };
        par.reset_state();
        Some(par)
    }

    /// The compiled program this executor runs.
    pub fn program(&self) -> &Arc<LutProgram> {
        &self.prog
    }

    /// The netlist behind the program.
    pub fn netlist(&self) -> &Arc<Netlist> {
        self.prog.netlist()
    }

    /// The resolved worker count (after [`effective_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Patches the truth word of a gate's instruction in place — the
    /// permanent-defect lowering, same semantics as
    /// [`LutExec::patch_gate`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a gate node.
    pub fn patch_gate(&mut self, id: NodeId, table: u16) {
        let pos = self
            .prog
            .instr_index(id)
            .unwrap_or_else(|| panic!("{id} is not a gate"));
        self.instrs[pos].table = table;
    }

    /// Drives a primary input with a 64-lane mask (bit `l` = lane `l`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a primary input.
    pub fn set_input_lanes(&mut self, id: NodeId, lanes: u64) {
        assert!(
            matches!(self.netlist().node(id), Node::Input { .. }),
            "{id} is not a primary input"
        );
        self.regs[id.index()].store(lanes, Ordering::Relaxed);
    }

    /// Drives a bus so lane `l` carries `words[l]` (LSB-first bus);
    /// fewer than 64 words leave the remaining lanes at zero.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 words are supplied.
    pub fn set_input_words(&mut self, bus: &[NodeId], words: &[u64]) {
        assert!(words.len() <= 64, "at most 64 lanes");
        for (bit, &id) in bus.iter().enumerate() {
            let mut lanes = 0u64;
            for (l, &w) in words.iter().enumerate() {
                lanes |= ((w >> bit) & 1) << l;
            }
            self.set_input_lanes(id, lanes);
        }
    }

    /// Executes the straight-line schedule once, settling all lanes:
    /// each rank's instructions are split into contiguous per-worker
    /// chunks, with a barrier between ranks.
    pub fn exec(&mut self) {
        let threads = self.threads;
        if threads <= 1 {
            for ins in &self.instrs {
                let v = ins.eval_with(|i| self.regs[i as usize].load(Ordering::Relaxed));
                self.regs[ins.out as usize].store(v, Ordering::Relaxed);
            }
            return;
        }
        let barrier = Barrier::new(threads);
        let regs = &self.regs;
        let instrs = &self.instrs;
        let prog = &self.prog;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let barrier = &barrier;
                scope.spawn(move || {
                    for rank in 0..prog.n_ranks() {
                        let range = prog.rank_range(rank);
                        let len = range.len();
                        let chunk = len.div_ceil(threads);
                        let lo = range.start + (t * chunk).min(len);
                        let hi = range.start + ((t + 1) * chunk).min(len);
                        for ins in &instrs[lo..hi] {
                            let v = ins.eval_with(|i| regs[i as usize].load(Ordering::Relaxed));
                            regs[ins.out as usize].store(v, Ordering::Relaxed);
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    /// Latch capture across all lanes, in declaration order — matching
    /// [`LutExec::tick`] exactly (runs on the calling thread; latch
    /// copies are far too cheap to partition).
    pub fn tick(&mut self) {
        for ls in self.prog.latch_slots() {
            let v = self.regs[ls.data as usize].load(Ordering::Relaxed);
            self.regs[ls.latch as usize].store(v, Ordering::Relaxed);
        }
    }

    /// Resets latch slots to their init values. Truth-word patches
    /// persist (permanent defects survive reset).
    pub fn reset_state(&mut self) {
        for ls in self.prog.latch_slots() {
            let v = if ls.init { !0 } else { 0 };
            self.regs[ls.latch as usize].store(v, Ordering::Relaxed);
        }
    }

    /// The 64-lane word of any node slot.
    pub fn lanes(&self, id: NodeId) -> u64 {
        self.regs[id.index()].load(Ordering::Relaxed)
    }

    /// Reads lane `lane` of a bus back as a word (LSB-first).
    pub fn read_word_lane(&self, bus: &[NodeId], lane: usize) -> u64 {
        assert!(lane < 64);
        bus.iter().enumerate().fold(0u64, |acc, (bit, &id)| {
            acc | (((self.regs[id.index()].load(Ordering::Relaxed) >> lane) & 1) << bit)
        })
    }

    /// Reads the first `n_lanes` lanes of a bus back as words.
    pub fn read_words(&self, bus: &[NodeId], n_lanes: usize) -> Vec<u64> {
        (0..n_lanes).map(|l| self.read_word_lane(bus, l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_circuits::multiplier::FxMulCircuit;
    use dta_circuits::{DefectPlan, FaultModel};
    use dta_fixed::Fx;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn batch(seed: u64, n: usize) -> (Vec<u64>, Vec<u64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = (0..n).map(|_| u64::from(rng.random::<u16>())).collect();
        let b = (0..n).map(|_| u64::from(rng.random::<u16>())).collect();
        (a, b)
    }

    #[test]
    fn healthy_partitioned_exec_is_bit_identical_across_thread_counts() {
        let mul = FxMulCircuit::new();
        let mut reference = mul.lut_exec();
        let (a, b) = batch(7, 64);
        reference.set_input_words(mul.a_bus(), &a);
        reference.set_input_words(mul.b_bus(), &b);
        reference.exec();
        let want = reference.read_words(mul.out_bus(), 64);
        for threads in [1, 2, 4] {
            let mut par =
                PartitionedLutExec::new(dta_logic::LutProgram::cached(mul.netlist()), threads);
            par.set_input_words(mul.a_bus(), &a);
            par.set_input_words(mul.b_bus(), &b);
            par.exec();
            assert_eq!(
                par.read_words(mul.out_bus(), 64),
                want,
                "{threads} threads diverged from LutExec"
            );
        }
    }

    #[test]
    fn patched_partitioned_exec_matches_single_threaded() {
        let mul = FxMulCircuit::new();
        for seed in 0..10u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::GateLevel);
            for _ in 0..3 {
                plan.add_random(mul.netlist(), mul.cells(), &mut rng);
            }
            let mut ex = mul.lut_exec();
            assert!(plan.apply_lut(&mut ex), "gate-level permanents patch");
            let (a, b) = batch(seed ^ 0x51, 64);
            ex.set_input_words(mul.a_bus(), &a);
            ex.set_input_words(mul.b_bus(), &b);
            ex.exec();
            let want = ex.read_words(mul.out_bus(), 64);
            for threads in [2, 4] {
                let mut par = PartitionedLutExec::from_exec(&ex, threads)
                    .expect("fully patched stream partitions");
                par.set_input_words(mul.a_bus(), &a);
                par.set_input_words(mul.b_bus(), &b);
                par.exec();
                assert_eq!(
                    par.read_words(mul.out_bus(), 64),
                    want,
                    "seed {seed}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn from_exec_refuses_stateful_streams() {
        let mul = FxMulCircuit::new();
        for seed in 0..30u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
            plan.add_random_with(
                mul.netlist(),
                mul.cells(),
                dta_transistor::Activation::Transient {
                    per_eval_probability: 0.5,
                },
                &mut rng,
            );
            let mut ex = mul.lut_exec();
            assert!(!plan.apply_lut(&mut ex));
            assert!(
                PartitionedLutExec::from_exec(&ex, 4).is_none(),
                "seed {seed}: overrides cannot be partitioned"
            );
        }
    }

    #[test]
    fn direct_patch_matches_lut_exec_patch() {
        // Patching through either executor must produce the same faulty
        // outputs. Inverting the truth word of the gate driving output
        // bit 0 is guaranteed visible: every product's LSB flips.
        let mul = FxMulCircuit::new();
        let prog = dta_logic::LutProgram::cached(mul.netlist());
        let gate = mul.out_bus()[0];
        let pos = prog.instr_index(gate).expect("out bit 0 is a gate");
        let ins = prog.instrs()[pos];
        let mask = ((1u32 << (1usize << ins.arity)) - 1) as u16;
        let inverted = !ins.table & mask;
        let mut ex = mul.lut_exec();
        ex.patch_gate(gate, inverted);
        let mut par = PartitionedLutExec::new(Arc::clone(&prog), 2);
        par.patch_gate(gate, inverted);
        let (a, b) = batch(99, 64);
        ex.set_input_words(mul.a_bus(), &a);
        ex.set_input_words(mul.b_bus(), &b);
        ex.exec();
        par.set_input_words(mul.a_bus(), &a);
        par.set_input_words(mul.b_bus(), &b);
        par.exec();
        assert_eq!(
            par.read_words(mul.out_bus(), 64),
            ex.read_words(mul.out_bus(), 64)
        );
        // And the patch actually changed something vs. healthy.
        let healthy: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                u64::from((Fx::from_bits(x as u16) * Fx::from_bits(y as u16)).to_bits())
            })
            .collect();
        assert_ne!(par.read_words(mul.out_bus(), 64), healthy);
    }
}
