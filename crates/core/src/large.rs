//! Partial time-multiplexing of networks larger than the physical array
//! (paper §IV).
//!
//! "For the problems which do not fit in the spatially expanded network,
//! we can still resort to time-multiplexing. All neurons of the network
//! are then considered to belong to one large layer" — extra input
//! latches feed the output-stage neurons directly and the hidden-stage
//! outputs are exposed, so every physical neuron becomes a slot of a
//! single pool. A logical neuron with more inputs than the array width is
//! split into chunks whose partial sums accumulate through the add-on
//! latches.
//!
//! Two consequences modeled here:
//!
//! * **throughput**: a network that needs `N` passes takes at least `N`
//!   times the single-row latency;
//! * **defect multiplication**: a defect in one physical slot affects
//!   every logical chunk scheduled onto it.

use dta_ann::{FaultPlan, ForwardTrace, Layer, Mlp, Topology};
use dta_circuits::FaultModel;
use dta_fixed::{Fx, SigmoidLut};
use rand::Rng;

use crate::cost::CostModel;

/// Maps arbitrarily large 2-layer networks onto the fixed physical array
/// by partial time-multiplexing.
///
/// # Example
///
/// ```
/// use dta_core::large::LargeNetworkMapper;
/// use dta_ann::{Mlp, Topology};
///
/// let mut mapper = LargeNetworkMapper::new(Topology::accelerator());
/// // A 784-input network (MNIST-sized) does not fit the 90-input array.
/// let logical = Topology::new(784, 30, 10);
/// assert!(mapper.passes(logical) > 1);
/// let mlp = Mlp::new(logical, 5);
/// let trace = mapper.forward(&mlp, &vec![0.1; 784]);
/// assert_eq!(trace.output.len(), 10);
/// ```
#[derive(Debug)]
pub struct LargeNetworkMapper {
    physical: Topology,
    /// Faults of the physical slots (keyed in `Layer::Hidden` space by
    /// slot index `0..hidden+outputs`).
    faults: FaultPlan,
    lut: SigmoidLut,
}

impl LargeNetworkMapper {
    /// Creates a mapper over a physical array.
    pub fn new(physical: Topology) -> LargeNetworkMapper {
        LargeNetworkMapper {
            faults: FaultPlan::new(physical.inputs),
            physical,
            lut: SigmoidLut::new(),
        }
    }

    /// The physical array.
    pub fn physical(&self) -> Topology {
        self.physical
    }

    /// Number of physical neuron slots in single-large-layer mode.
    pub fn slots(&self) -> usize {
        self.physical.hidden + self.physical.outputs
    }

    /// Jobs (neuron-chunks) one row of the logical network requires.
    pub fn jobs(&self, logical: Topology) -> usize {
        let w = self.physical.inputs;
        let hidden_jobs = logical.hidden * logical.inputs.div_ceil(w);
        let output_jobs = logical.outputs * logical.hidden.div_ceil(w);
        hidden_jobs + output_jobs
    }

    /// Passes over the array per input row (≥ 1); the row latency is
    /// multiplied by this factor.
    pub fn passes(&self, logical: Topology) -> usize {
        self.jobs(logical).div_ceil(self.slots()).max(1)
    }

    /// Jobs for an arbitrary-depth network with layer widths `dims =
    /// [inputs, h1, ..., outputs]` — the deep-network mapping of the
    /// paper's §VIII follow-up.
    pub fn jobs_for_layers(&self, dims: &[usize]) -> usize {
        assert!(dims.len() >= 2, "need at least input and output layers");
        let w = self.physical.inputs;
        dims.windows(2)
            .map(|pair| pair[1] * pair[0].div_ceil(w))
            .sum()
    }

    /// Passes for an arbitrary-depth network.
    pub fn passes_for_layers(&self, dims: &[usize]) -> usize {
        self.jobs_for_layers(dims).div_ceil(self.slots()).max(1)
    }

    /// Row latency of an arbitrary-depth network, in ns.
    pub fn latency_ns_for_layers(&self, dims: &[usize]) -> f64 {
        let base = CostModel::calibrated_90nm()
            .report(self.physical)
            .latency_ns;
        base * self.passes_for_layers(dims) as f64
    }

    /// Row latency of the logical network on this array, in ns.
    pub fn latency_ns(&self, logical: Topology) -> f64 {
        let base = CostModel::calibrated_90nm()
            .report(self.physical)
            .latency_ns;
        base * self.passes(logical) as f64
    }

    /// Injects one random transistor-level defect into a random physical
    /// slot's operators.
    pub fn inject_random_defect<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.faults
            .inject_random_hidden(self.slots(), FaultModel::TransistorLevel, rng);
    }

    /// Number of injected defects.
    pub fn defect_count(&self) -> usize {
        self.faults.len()
    }

    /// How many jobs land on each faulty slot — the defect
    /// multiplication factor of §II/§IV.
    pub fn defect_multiplier(&self, logical: Topology) -> usize {
        self.jobs(logical).div_ceil(self.slots())
    }

    /// Forward pass of a logical network of any size, chunked over the
    /// array. Jobs are scheduled round-robin over the physical slots, so
    /// a defective slot corrupts every chunk assigned to it.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the logical input count.
    pub fn forward(&mut self, mlp: &Mlp, x: &[f64]) -> ForwardTrace {
        let topo = mlp.topology();
        assert_eq!(x.len(), topo.inputs);
        let xq: Vec<Fx> = x.iter().map(|&v| Fx::from_f64(v)).collect();
        let w = self.physical.inputs;
        let slots = self.slots();
        let mut job = 0usize;

        let mut hidden_fx = Vec::with_capacity(topo.hidden);
        for j in 0..topo.hidden {
            let mut acc = Fx::from_f64(mlp.w_hidden(j, topo.inputs));
            for chunk_start in (0..topo.inputs).step_by(w) {
                let chunk_end = (chunk_start + w).min(topo.inputs);
                let slot = job % slots;
                job += 1;
                acc = self.chunk_sum(slot, acc, chunk_start, chunk_end, |i| {
                    (Fx::from_f64(mlp.w_hidden(j, i)), xq[i])
                });
            }
            let y = match self.faults.neuron_mut(Layer::Hidden, (job - 1) % slots) {
                Some(nf) => nf.activation(acc, &self.lut),
                None => self.lut.eval(acc),
            };
            hidden_fx.push(y);
        }

        let mut output_pre = Vec::with_capacity(topo.outputs);
        let mut output = Vec::with_capacity(topo.outputs);
        for k in 0..topo.outputs {
            let mut acc = Fx::from_f64(mlp.w_output(k, topo.hidden));
            for chunk_start in (0..topo.hidden).step_by(w) {
                let chunk_end = (chunk_start + w).min(topo.hidden);
                let slot = job % slots;
                job += 1;
                acc = self.chunk_sum(slot, acc, chunk_start, chunk_end, |j| {
                    (Fx::from_f64(mlp.w_output(k, j)), hidden_fx[j])
                });
            }
            output_pre.push(acc.to_f64());
            let y = match self.faults.neuron_mut(Layer::Hidden, (job - 1) % slots) {
                Some(nf) => nf.activation(acc, &self.lut),
                None => self.lut.eval(acc),
            };
            output.push(y.to_f64());
        }
        ForwardTrace {
            hidden: hidden_fx.iter().map(|h| h.to_f64()).collect(),
            output_pre,
            output,
        }
    }

    /// Accumulates one chunk through a physical slot; the physical
    /// synapse index is the position within the chunk.
    fn chunk_sum(
        &mut self,
        slot: usize,
        mut acc: Fx,
        start: usize,
        end: usize,
        operand_of: impl Fn(usize) -> (Fx, Fx),
    ) -> Fx {
        let operands: Vec<(Fx, Fx)> = (start..end).map(operand_of).collect();
        let Some(nf) = self.faults.neuron_mut(Layer::Hidden, slot) else {
            for (wq, xi) in operands {
                acc += wq * xi;
            }
            return acc;
        };
        let n_logical = operands.len();
        let n_eff = n_logical.max(nf.max_synapse_excl());
        // The physical synapse range can extend past `operands` (defective
        // columns beyond the task width), so this cannot iterate the slice.
        #[allow(clippy::needless_range_loop)]
        for p in 0..n_eff {
            let (wq, xi) = if p < n_logical {
                operands[p]
            } else {
                (Fx::ZERO, Fx::ZERO)
            };
            let wq = nf.latch_filter(p, wq);
            let prod = match nf.multiplier_mut(p) {
                Some(hw) => hw.mul(wq, xi),
                None => wq * xi,
            };
            acc = match nf.adder_mut(p) {
                Some(hw) => hw.add(acc, prod),
                None => acc + prod,
            };
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn small_networks_take_one_pass() {
        let mapper = LargeNetworkMapper::new(Topology::accelerator());
        assert_eq!(mapper.passes(Topology::new(90, 10, 10)), 1);
        assert_eq!(mapper.passes(Topology::new(4, 8, 3)), 1);
    }

    #[test]
    fn mnist_sized_network_needs_many_passes() {
        let mapper = LargeNetworkMapper::new(Topology::accelerator());
        let logical = Topology::new(784, 30, 10);
        // 30 neurons × ceil(784/90)=9 chunks + 10 × 1 = 280 jobs over 20
        // slots = 14 passes.
        assert_eq!(mapper.jobs(logical), 280);
        assert_eq!(mapper.passes(logical), 14);
        let base = CostModel::calibrated_90nm()
            .report(Topology::accelerator())
            .latency_ns;
        assert!((mapper.latency_ns(logical) - base * 14.0).abs() < 1e-9);
    }

    #[test]
    fn healthy_mapper_matches_fixed_forward() {
        // Chunked accumulation must be bit-identical to the straight
        // fixed path (saturating adds associate over the same order).
        let mut mapper = LargeNetworkMapper::new(Topology::new(10, 2, 2));
        let logical = Topology::new(25, 3, 2);
        let mlp = Mlp::new(logical, 21);
        let lut = SigmoidLut::new();
        let x: Vec<f64> = (0..25).map(|i| (i as f64) / 25.0).collect();
        let direct = mlp.forward_fixed(&x, &lut);
        let mapped = mapper.forward(&mlp, &x);
        assert_eq!(direct, mapped);
    }

    #[test]
    fn defect_multiplier_grows_with_network() {
        let mut mapper = LargeNetworkMapper::new(Topology::accelerator());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        mapper.inject_random_defect(&mut rng);
        assert_eq!(mapper.defect_count(), 1);
        assert_eq!(mapper.defect_multiplier(Topology::new(90, 10, 10)), 1);
        assert_eq!(mapper.defect_multiplier(Topology::new(784, 30, 10)), 14);
    }

    #[test]
    fn faulty_slot_affects_large_forward_deterministically() {
        let mut mapper = LargeNetworkMapper::new(Topology::new(10, 2, 2));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..6 {
            mapper.inject_random_defect(&mut rng);
        }
        let logical = Topology::new(25, 3, 2);
        let mlp = Mlp::new(logical, 21);
        let x: Vec<f64> = (0..25).map(|i| (i as f64) / 25.0).collect();
        let a = mapper.forward(&mlp, &x);
        let b = mapper.forward(&mlp, &x);
        // Deterministic (memory effects settle to the same steady state
        // on identical input streams).
        assert_eq!(a.output.len(), b.output.len());
    }
}
