//! Line-oriented campaign checkpoints: every finished grid cell is
//! appended to a journal file, so an interrupted campaign resumes by
//! replaying recorded outcomes instead of recomputing them.
//!
//! The journal is one JSON object per line. The first line is a header
//! carrying the campaign's configuration fingerprint (everything that
//! determines cell results — thread count deliberately excluded, since
//! it never changes them); each following line is one completed cell:
//!
//! ```text
//! {"campaign_checkpoint":1,"fingerprint":"v1 seed=0xd7a ..."}
//! {"task":"iris","defects":8,"rep":2,"status":"ok","retried":false,"acc":0.9333333333333333}
//! {"task":"iris","defects":8,"rep":3,"status":"failed","panic":"..."}
//! ```
//!
//! Accuracies are written with Rust's `{:?}` float formatting — the
//! shortest string that round-trips — and parsed back with
//! `str::parse::<f64>`, so a resumed curve is **byte-identical** to an
//! uninterrupted run. No JSON dependency: the writer emits the fixed
//! shape above and the reader is a small scanner over it.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::campaign::{CampaignError, CellOutcome};

const HEADER_KEY: &str = "campaign_checkpoint";

/// An append-only journal of completed campaign cells, keyed by
/// `(task, defect count, repetition)`. Open it with the campaign's
/// [fingerprint](crate::campaign::CampaignConfig::fingerprint); cells
/// already journaled are skipped on the next run and their recorded
/// outcomes replayed verbatim.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    writer: Mutex<File>,
    done: HashMap<(String, usize, usize), CellOutcome>,
}

impl Checkpoint {
    /// Opens (or creates) a journal at `path` for a campaign with the
    /// given configuration fingerprint.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] if the file cannot be read or
    /// created, if its header carries a different fingerprint (the
    /// journal belongs to a different campaign), or if an entry line is
    /// malformed.
    pub fn open(path: impl AsRef<Path>, fingerprint: &str) -> Result<Checkpoint, CampaignError> {
        let path = path.as_ref().to_path_buf();
        let fail = |detail: String| CampaignError::Checkpoint {
            path: path.display().to_string(),
            detail,
        };

        let mut done = HashMap::new();
        let exists = path.exists();
        if exists {
            let reader =
                BufReader::new(File::open(&path).map_err(|e| fail(format!("open failed: {e}")))?);
            let mut lines = reader.lines();
            let header = lines
                .next()
                .ok_or_else(|| fail("journal is empty (missing header)".into()))?
                .map_err(|e| fail(format!("read failed: {e}")))?;
            if raw_field(&header, HEADER_KEY).is_none() {
                return Err(fail("first line is not a checkpoint header".into()));
            }
            let found = str_field(&header, "fingerprint")
                .ok_or_else(|| fail("header has no fingerprint".into()))?;
            if found != fingerprint {
                return Err(fail(format!(
                    "fingerprint mismatch: journal was written by a different campaign \
                     configuration (journal: {found:?}, current: {fingerprint:?})"
                )));
            }
            for (lineno, line) in lines.enumerate() {
                let line = line.map_err(|e| fail(format!("read failed: {e}")))?;
                if line.trim().is_empty() {
                    // A run killed mid-write can leave a final empty
                    // line; everything before it is intact.
                    continue;
                }
                match parse_entry(&line) {
                    Some((key, outcome)) => {
                        done.insert(key, outcome);
                    }
                    None => {
                        // A torn final line (the process died mid-append)
                        // is tolerated; a torn middle line means the file
                        // is corrupt.
                        if lines_remaining_hint(&line) {
                            return Err(fail(format!("malformed entry at line {}", lineno + 2)));
                        }
                    }
                }
            }
        }

        let mut writer = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| fail(format!("open for append failed: {e}")))?;
        if !exists {
            writeln!(
                writer,
                "{{\"{HEADER_KEY}\":1,\"fingerprint\":\"{}\"}}",
                escape(fingerprint)
            )
            .map_err(|e| fail(format!("header write failed: {e}")))?;
            writer
                .flush()
                .map_err(|e| fail(format!("flush failed: {e}")))?;
        }
        Ok(Checkpoint {
            path,
            writer: Mutex::new(writer),
            done,
        })
    }

    /// The journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cells already journaled.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// The recorded outcome of a cell, if it was already journaled.
    pub fn lookup(&self, task: &str, defects: usize, rep: usize) -> Option<CellOutcome> {
        self.done.get(&(task.to_string(), defects, rep)).cloned()
    }

    /// Appends one finished cell to the journal (flushed and synced to
    /// the device immediately, so a killed process — or a power cut —
    /// loses at most the cell being written).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] if the journal can no longer be
    /// written (e.g. disk full). The campaign propagates this instead
    /// of continuing: losing resume state silently would make a later
    /// resume recompute — or worse, half-recompute — the curve.
    pub fn record(
        &self,
        task: &str,
        defects: usize,
        rep: usize,
        outcome: &CellOutcome,
    ) -> Result<(), CampaignError> {
        let fail = |detail: String| CampaignError::Checkpoint {
            path: self.path.display().to_string(),
            detail,
        };
        let mut line = format!(
            "{{\"task\":\"{}\",\"defects\":{defects},\"rep\":{rep}",
            escape(task)
        );
        match outcome {
            CellOutcome::Completed { accuracy, retried } => {
                // `{:?}` prints the shortest representation that parses
                // back to the identical f64 — the byte-identity of
                // resumed curves rests on this.
                write!(
                    line,
                    ",\"status\":\"ok\",\"retried\":{retried},\"acc\":{accuracy:?}"
                )
                .expect("writing to a String cannot fail");
            }
            CellOutcome::Failed { panic } => {
                write!(
                    line,
                    ",\"status\":\"failed\",\"panic\":\"{}\"",
                    escape(panic)
                )
                .expect("writing to a String cannot fail");
            }
        }
        line.push('}');
        // A thread that panicked mid-`record` poisons the mutex but
        // leaves at most a torn trailing line, which the reader already
        // tolerates — recover the guard instead of panicking every
        // subsequent writer.
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(w, "{line}").map_err(|e| fail(format!("append failed: {e}")))?;
        w.flush().map_err(|e| fail(format!("flush failed: {e}")))?;
        // `flush` only drains the userspace buffer; `sync_data` pushes
        // the bytes to the device, so the journal survives power loss,
        // not just process death.
        w.sync_data().map_err(|e| fail(format!("sync failed: {e}")))
    }

    /// Swaps the journal writer for an arbitrary open file — lets tests
    /// point `record` at a device like `/dev/full` that fails on write.
    #[cfg(test)]
    pub(crate) fn replace_writer_for_tests(&self, file: File) {
        *self.writer.lock().unwrap() = file;
    }
}

/// Heuristic used when a line fails to parse: a line ending in `}` was
/// written completely and is genuinely malformed; anything else looks
/// like a torn final append and is ignored.
fn lines_remaining_hint(line: &str) -> bool {
    line.trim_end().ends_with('}')
}

fn parse_entry(line: &str) -> Option<((String, usize, usize), CellOutcome)> {
    let task = str_field(line, "task")?;
    let defects: usize = raw_field(line, "defects")?.parse().ok()?;
    let rep: usize = raw_field(line, "rep")?.parse().ok()?;
    let outcome = match str_field(line, "status")?.as_str() {
        "ok" => CellOutcome::Completed {
            accuracy: raw_field(line, "acc")?.parse().ok()?,
            retried: raw_field(line, "retried")?.parse().ok()?,
        },
        "failed" => CellOutcome::Failed {
            panic: str_field(line, "panic")?,
        },
        _ => return None,
    };
    Some(((task, defects, rep), outcome))
}

/// Extracts the raw (unquoted) value after `"key":`, up to the next
/// `,` or `}`. The writer emits numeric/bool fields before any string
/// that could contain a lookalike pattern, and `find` returns the
/// first occurrence, so this never reads inside a string value.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Extracts and unescapes the string value after `"key":"`.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (&mut chars).take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dta_ckpt_{}_{name}.jsonl", std::process::id()))
    }

    #[test]
    fn round_trips_outcomes_exactly() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let ck = Checkpoint::open(&path, "fp-a").unwrap();
            ck.record(
                "iris",
                8,
                2,
                &CellOutcome::Completed {
                    accuracy: 0.933_333_333_333_333_3,
                    retried: false,
                },
            )
            .unwrap();
            ck.record(
                "iris",
                8,
                3,
                &CellOutcome::Failed {
                    panic: "weird \"quoted\"\nmulti-line\tpayload \\ with slash".into(),
                },
            )
            .unwrap();
            ck.record(
                "wine",
                0,
                0,
                &CellOutcome::Completed {
                    accuracy: 1.0,
                    retried: true,
                },
            )
            .unwrap();
        }
        let ck = Checkpoint::open(&path, "fp-a").unwrap();
        assert_eq!(ck.completed(), 3);
        assert_eq!(
            ck.lookup("iris", 8, 2),
            Some(CellOutcome::Completed {
                accuracy: 0.933_333_333_333_333_3,
                retried: false,
            })
        );
        assert_eq!(
            ck.lookup("iris", 8, 3),
            Some(CellOutcome::Failed {
                panic: "weird \"quoted\"\nmulti-line\tpayload \\ with slash".into(),
            })
        );
        assert_eq!(
            ck.lookup("wine", 0, 0),
            Some(CellOutcome::Completed {
                accuracy: 1.0,
                retried: true,
            })
        );
        assert_eq!(ck.lookup("iris", 8, 4), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let path = tmp("fpmismatch");
        let _ = std::fs::remove_file(&path);
        drop(Checkpoint::open(&path, "fp-a").unwrap());
        let err = Checkpoint::open(&path, "fp-b").unwrap_err();
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_not_recorded() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let ck = Checkpoint::open(&path, "fp").unwrap();
            ck.record(
                "iris",
                3,
                0,
                &CellOutcome::Completed {
                    accuracy: 0.5,
                    retried: false,
                },
            )
            .unwrap();
        }
        // Simulate a crash mid-append: a partial trailing line.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"task\":\"iris\",\"defe").unwrap();
        }
        let ck = Checkpoint::open(&path, "fp").unwrap();
        assert_eq!(ck.completed(), 1, "torn line must be dropped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn full_disk_surfaces_a_typed_checkpoint_error() {
        // `/dev/full` fails every write with ENOSPC — exactly the
        // journal-on-a-full-disk case. The error must be a typed
        // `CampaignError::Checkpoint`, not a panic.
        let path = tmp("enospc");
        let _ = std::fs::remove_file(&path);
        let ck = Checkpoint::open(&path, "fp").unwrap();
        let full = OpenOptions::new().write(true).open("/dev/full").unwrap();
        ck.replace_writer_for_tests(full);
        let err = ck
            .record(
                "iris",
                0,
                0,
                &CellOutcome::Completed {
                    accuracy: 0.5,
                    retried: false,
                },
            )
            .unwrap_err();
        match &err {
            CampaignError::Checkpoint { detail, .. } => {
                assert!(
                    detail.contains("failed") || detail.contains("sync"),
                    "unexpected detail: {detail}"
                );
            }
            other => panic!("expected a checkpoint error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exact_float_round_trip_across_the_journal() {
        // A spread of awkward accuracies must come back bit-identical.
        let path = tmp("floats");
        let _ = std::fs::remove_file(&path);
        let values = [
            0.0,
            1.0,
            1.0 / 3.0,
            2.0 / 3.0,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            0.966_666_666_666_666_7,
        ];
        {
            let ck = Checkpoint::open(&path, "fp").unwrap();
            for (i, &v) in values.iter().enumerate() {
                ck.record(
                    "t",
                    i,
                    0,
                    &CellOutcome::Completed {
                        accuracy: v,
                        retried: false,
                    },
                )
                .unwrap();
            }
        }
        let ck = Checkpoint::open(&path, "fp").unwrap();
        for (i, &v) in values.iter().enumerate() {
            match ck.lookup("t", i, 0).unwrap() {
                CellOutcome::Completed { accuracy, .. } => {
                    assert_eq!(accuracy.to_bits(), v.to_bits(), "value {v} lost bits");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
