//! Dark-silicon accounting — the paper's framing context (§I).
//!
//! "The lack of voltage scaling is breeding the so-called 'Dark Silicon'
//! constraint where only a fraction of transistors can be used
//! simultaneously due to the limited on-chip power budget. That
//! constraint, in turn, is likely to induce a novel shift towards
//! heterogeneous multi-cores, composed of a mix of cores and
//! accelerators, where only a few accelerators are used at any given
//! time." This module quantifies that trade for a chip mixing
//! Stealey-class cores with ANN accelerators.

use dta_ann::Topology;

use crate::cost::CostReport;
use crate::processor::ProcessorModel;

/// A heterogeneous chip: an area budget populated with cores and
/// accelerators, and a power budget that limits how many can run at
/// once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeterogeneousChip {
    /// Total die area available for compute units, in mm².
    pub area_budget_mm2: f64,
    /// Total power budget (TDP), in W.
    pub power_budget_w: f64,
    /// Area of one general-purpose core, in mm² (a Stealey-class core
    /// at 90 nm is in the tens of mm²; 25 by default).
    pub core_area_mm2: f64,
}

/// How the chip splits between lit and dark silicon for a given unit mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DarkSiliconReport {
    /// Compute units of this type that fit the area budget.
    pub units_placeable: u64,
    /// Units that can be powered simultaneously.
    pub units_lit: u64,
    /// Fraction of the placed units' area that must stay dark.
    pub dark_fraction: f64,
    /// Aggregate throughput of the lit units, rows per second.
    pub lit_rows_per_s: f64,
}

impl HeterogeneousChip {
    /// A 90 nm mobile-class chip: 100 mm² of compute area, 10 W budget,
    /// 25 mm² cores.
    pub fn mobile_90nm() -> HeterogeneousChip {
        HeterogeneousChip {
            area_budget_mm2: 100.0,
            power_budget_w: 10.0,
            core_area_mm2: 25.0,
        }
    }

    /// Fills the area budget with accelerators of the given cost and
    /// lights as many as the power budget allows.
    pub fn accelerators_only(&self, accel: &CostReport) -> DarkSiliconReport {
        let placeable = (self.area_budget_mm2 / accel.area_mm2).floor() as u64;
        let powerable = (self.power_budget_w / accel.power_w).floor() as u64;
        let lit = placeable.min(powerable);
        DarkSiliconReport {
            units_placeable: placeable,
            units_lit: lit,
            dark_fraction: if placeable == 0 {
                0.0
            } else {
                1.0 - lit as f64 / placeable as f64
            },
            lit_rows_per_s: lit as f64 * 1e9 / accel.latency_ns,
        }
    }

    /// Fills the area budget with cores running the software ANN.
    pub fn cores_only(&self, proc: &ProcessorModel, topo: Topology) -> DarkSiliconReport {
        let placeable = (self.area_budget_mm2 / self.core_area_mm2).floor() as u64;
        let powerable = (self.power_budget_w / proc.avg_power_w).floor() as u64;
        let lit = placeable.min(powerable);
        let run = proc.run(topo);
        DarkSiliconReport {
            units_placeable: placeable,
            units_lit: lit,
            dark_fraction: if placeable == 0 {
                0.0
            } else {
                1.0 - lit as f64 / placeable as f64
            },
            lit_rows_per_s: lit as f64 * 1e9 / run.time_per_row_ns,
        }
    }

    /// Throughput advantage of filling the chip with accelerators
    /// instead of cores, under the same area and power budgets.
    pub fn accelerator_advantage(
        &self,
        accel: &CostReport,
        proc: &ProcessorModel,
        topo: Topology,
    ) -> f64 {
        let a = self.accelerators_only(accel);
        let c = self.cores_only(proc, topo);
        if c.lit_rows_per_s == 0.0 {
            f64::INFINITY
        } else {
            a.lit_rows_per_s / c.lit_rows_per_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn setup() -> (HeterogeneousChip, CostReport, ProcessorModel) {
        (
            HeterogeneousChip::mobile_90nm(),
            CostModel::calibrated_90nm().report(Topology::accelerator()),
            ProcessorModel::stealey(),
        )
    }

    #[test]
    fn accelerators_hit_the_power_wall_first() {
        let (chip, accel, _) = setup();
        let report = chip.accelerators_only(&accel);
        // 100/9.02 = 11 placeable; 10/4.70 = 2 powerable -> dark silicon.
        assert_eq!(report.units_placeable, 11);
        assert_eq!(report.units_lit, 2);
        assert!(report.dark_fraction > 0.7, "dark {}", report.dark_fraction);
    }

    #[test]
    fn cores_are_area_limited_not_power_limited() {
        let (chip, _, proc) = setup();
        let report = chip.cores_only(&proc, Topology::accelerator());
        // 100/25 = 4 placeable; 10/2.78 = 3 powerable.
        assert_eq!(report.units_placeable, 4);
        assert_eq!(report.units_lit, 3);
        assert!(report.dark_fraction < 0.5);
    }

    #[test]
    fn accelerator_chip_wins_on_throughput_by_orders_of_magnitude() {
        let (chip, accel, proc) = setup();
        let adv = chip.accelerator_advantage(&accel, &proc, Topology::accelerator());
        // 2 accelerators at 14.92 ns/row vs 3 cores at 24.6 us/row:
        // ~1100x. Even power-starved, the dark-silicon bet pays.
        assert!(adv > 500.0, "advantage {adv}");
    }

    #[test]
    fn zero_power_chip_lights_nothing() {
        let (mut chip, accel, _) = setup();
        chip.power_budget_w = 0.5; // below one accelerator
        let report = chip.accelerators_only(&accel);
        assert_eq!(report.units_lit, 0);
        assert_eq!(report.lit_rows_per_s, 0.0);
    }
}
