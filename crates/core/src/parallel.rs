//! Dependency-free parallel execution for embarrassingly parallel
//! campaign grids.
//!
//! [`parallel_map`] fans a function over the index range `0..n` on
//! scoped OS threads ([`std::thread::scope`]), with workers claiming
//! indices through a shared [`AtomicUsize`] cursor — classic chunked
//! work-stealing without any external crate. Results are written to
//! their own pre-allocated slots, so the output order is always
//! `f(0), f(1), …, f(n-1)` regardless of which worker computed what.
//! Campaign cells each derive their RNG from the master seed and the
//! cell index alone, which is what makes the parallel schedule
//! bit-identical to the serial one.
//!
//! The chunk size is 1: campaign cells are seconds-scale (train +
//! cross-validate a network), so cursor contention is irrelevant and
//! the finest granularity gives the best load balance across cells of
//! very different cost (0 defects trains faster than 27).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `0` means "all available cores".
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `0..n` on up to `threads` scoped worker threads and
/// returns the results in index order.
///
/// * `threads == 0` uses every available core.
/// * `threads <= 1` (or `n <= 1`) degrades to a plain serial loop on
///   the calling thread — no pool, no atomics.
/// * `f` must be [`Sync`] because all workers share it; any per-cell
///   state (RNGs, simulators, fault plans) belongs inside the call.
///
/// A panic inside `f` propagates to the caller once the scope joins,
/// like the serial loop would.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = match handle.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, value) in local {
                slots[i] = Some(value);
            }
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("cell {i} never computed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_threads_resolves_to_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn runs_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let out = parallel_map(64, 4, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out.len(), 64);
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn empty_and_tiny_grids() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        parallel_map(8, 2, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn panicking_cell_does_not_deadlock_the_remaining_workers() {
        // One poisoned cell must not stall the pool: the other workers
        // keep draining the cursor, the scope joins, and the panic —
        // message intact — reaches the caller only afterwards.
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(32, 4, |i| {
                if i == 3 {
                    panic!("cell {i} exploded");
                }
                done.fetch_add(1, Ordering::SeqCst);
                i
            })
        }));
        let payload = result.expect_err("the panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload should be a string");
        assert!(msg.contains("cell 3 exploded"), "payload was {msg:?}");
        assert_eq!(
            done.load(Ordering::SeqCst),
            31,
            "every healthy cell must still run"
        );
    }
}
