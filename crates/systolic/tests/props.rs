//! Property tests for the systolic topology: bit-identity of the
//! defect-free grid against the reference fixed-point forward pass
//! (scalar and 64-lane batched), transparency of spare-row routing,
//! and the repair-rung floor (bypass/remap can never end below the
//! blind-retrain baseline).

use dta_ann::{Mlp, Topology};
use dta_circuits::Activation;
use dta_core::accel::Accel;
use dta_core::recover::{recover, RecoveryPolicy};
use dta_core::{run_selftest, BistConfig, Diagnosis, RungBudget};
use dta_datasets::{Dataset, GaussianMixture};
use dta_fixed::SigmoidLut;
use dta_systolic::SystolicAccelerator;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Topologies inside the systolic envelope (90-10-10), sized so every
/// case exercises partial tiles without taking seconds.
fn envelope_topology() -> impl Strategy<Value = Topology> {
    (1usize..36, 1usize..11, 1usize..11).prop_map(|(i, h, o)| Topology::new(i, h, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn defect_free_forward_is_bit_identical_to_reference(
        topo in envelope_topology(),
        seed in any::<u64>(),
        xs in prop::collection::vec(-2.0f64..3.0, 1..16),
    ) {
        let mlp = Mlp::new(topo, seed);
        let lut = SigmoidLut::new();
        let x: Vec<f64> = (0..topo.inputs).map(|i| xs[i % xs.len()]).collect();
        let want = mlp.forward_fixed(&x, &lut);
        let mut accel = SystolicAccelerator::new();
        accel.map_network(mlp).unwrap();
        // Fast path and the explicit tile walk must both agree.
        prop_assert_eq!(accel.forward(&x).unwrap(), want.clone());
        prop_assert_eq!(accel.forward_tiled(&x).unwrap(), want);
    }

    #[test]
    fn defect_free_batch_walk_is_bit_identical_to_reference(
        topo in envelope_topology(),
        seed in any::<u64>(),
        n_rows in 65usize..120,
    ) {
        let mlp = Mlp::new(topo, seed);
        let lut = SigmoidLut::new();
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|r| {
                (0..topo.inputs)
                    .map(|i| ((r * 7 + i * 13) as f64 * 0.037) % 2.0 - 1.0)
                    .collect()
            })
            .collect();
        let want: Vec<_> = rows.iter().map(|r| mlp.forward_fixed(r, &lut)).collect();
        let mut accel = SystolicAccelerator::new();
        accel.map_network(mlp).unwrap();
        // Steer schedule row 0 through the first spare row: the grid is
        // still defect-free, but the fast path is off, so this drives
        // the real batched tile walk (several 64-lane blocks) AND
        // checks that healthy spare-row routing is transparent.
        let spare = accel.grid().geometry().rows;
        accel.grid_mut().remap_row(0, spare);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(accel.forward_batch(&refs).unwrap(), want);
    }
}

/// Builds the tiny classification task the recovery property trains on.
fn prop_task(seed: u64) -> (Dataset, Vec<usize>, Vec<usize>) {
    let ds = GaussianMixture::new(4, 3)
        .samples(60)
        .generate("prop", seed);
    let train: Vec<usize> = (0..ds.len()).filter(|i| i % 3 != 0).collect();
    let test: Vec<usize> = (0..ds.len()).step_by(3).collect();
    (ds, train, test)
}

proptest! {
    // Each case runs three commissionings plus two recovery ladders —
    // keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn repair_rungs_never_fall_below_blind(
        seed in any::<u64>(),
        defects in 1usize..24,
    ) {
        let (ds, train, test) = prop_task(seed % 1000);
        let topo = Topology::new(4, 5, 3);
        let arm = || {
            let mut accel = SystolicAccelerator::new();
            accel.map_network(Mlp::new(topo, seed)).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Accel::retrain(&mut accel, &ds, &train, 0.2, 0.1, 8, &mut rng).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA11);
            accel
                .inject_defects(defects, Activation::Permanent, &mut rng)
                .unwrap();
            accel
        };
        let mut blind_accel = arm();
        let mut full_accel = arm();

        let diagnosis = run_selftest(&mut full_accel, &BistConfig::default()).unwrap();
        let budget = RungBudget { max_epochs: 3, wall_clock_ms: 10_000 };
        // An unattainable target keeps the ladder from stopping after
        // the retrain rung, so bypass and grid-remap run every case.
        let policy = RecoveryPolicy {
            retrain: budget,
            remap: budget,
            target_accuracy: 0.999,
            seed,
            ..RecoveryPolicy::default()
        };
        let blind_policy = RecoveryPolicy {
            use_remap: false,
            use_memory_repair: false,
            ..policy.clone()
        };
        let blind = recover(
            &mut blind_accel, &ds, &train, &test, &Diagnosis::default(), &blind_policy,
        ).unwrap();
        let full = recover(
            &mut full_accel, &ds, &train, &test, &diagnosis, &policy,
        ).unwrap();

        // Shared-seed floor: the same rung-1 trajectory plus extra
        // repair options can only help.
        prop_assert_eq!(blind.pre_recovery_accuracy, full.pre_recovery_accuracy);
        prop_assert!(
            full.accuracy >= blind.accuracy,
            "recovered {} < blind {} (seed {seed}, {defects} defects)",
            full.accuracy,
            blind.accuracy
        );
    }
}
