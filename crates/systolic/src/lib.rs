//! # dta-systolic — weight-stationary systolic MAC array
//!
//! The repo's second accelerator topology. Where `dta-core`'s spatial
//! array gives every synapse its own multiplier, this crate time-shares
//! a small `rows × cols` grid of multiply-accumulate processing
//! elements (PEs): weights are pinned onto the grid one tile at a time,
//! activations stream through, and each neuron's partial sum rides down
//! its column (weight-stationary dataflow, output-stationary
//! accumulation).
//!
//! The crate implements `dta-core`'s [`Accel`](dta_core::accel::Accel)
//! trait, so the existing self-test driver, recovery ladder and
//! campaign machinery run on it unmodified. Its fault surface is
//! topology-native — per-PE stuck multiplier/adder/accumulator bits and
//! dead PEs under the shared permanent/transient/intermittent
//! activation taxonomy — and so are its repair rungs: PE bypass
//! (fail-silent, Zhang-style) and fault-aware row remap onto spare PE
//! rows.
//!
//! A defect-free grid is **bit-identical** to the reference
//! `Mlp::forward_fixed`: the tile walk accumulates synapses in
//! ascending index order with the same saturating Q6.10 arithmetic.
//!
//! - [`grid`] — PE grid, defect model, bypass/remap state
//! - [`schedule`] — weight-tile schedule and the (batched) tile walk
//! - [`SystolicAccelerator`] — the `Accel` implementation

#![warn(missing_docs)]

pub mod grid;
pub mod schedule;

mod accel;

pub use accel::{SystolicAccelerator, BATCH_LANES};
pub use grid::{GridGeometry, PeDefect, PeFaultKind, PeGrid};
pub use schedule::TileSchedule;
