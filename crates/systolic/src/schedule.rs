//! Weight-tile scheduling: how an MLP layer's `n_out × n_in` weight
//! matrix maps onto the fixed `rows × cols` PE grid.
//!
//! The grid is **weight-stationary** and **output-stationary**: a tile
//! pins `rows` consecutive synapse positions × `cols` consecutive
//! neurons onto the PEs, the weights stay put while activations stream
//! through, and each neuron's partial sum rides down its column —
//! entering pre-loaded with the bias and leaving with `rows` more
//! products accumulated. Column tiles walk the neuron axis, row tiles
//! walk the synapse axis *in ascending order*, so the accumulation
//! order per neuron is exactly the reference `Mlp::forward_fixed` order
//! and a defect-free grid is bit-identical to it.
//!
//! The batch entry point keeps a weight loaded across all lanes of a
//! 64-sample block before moving on — the weight-stationary payoff: one
//! weight fetch serves 64 MACs.

use dta_fixed::Fx;

use crate::grid::{GridGeometry, PassMask, PeGrid};

/// The tile walk of one layer on one grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileSchedule {
    /// Synapse positions per tile (= grid rows).
    pub rows: usize,
    /// Neurons per tile (= grid cols).
    pub cols: usize,
    /// Fan-in of the layer (synapses per neuron, bias excluded).
    pub n_in: usize,
    /// Neurons in the layer.
    pub n_out: usize,
    /// Tiles along the neuron axis.
    pub col_tiles: usize,
    /// Tiles along the synapse axis.
    pub row_tiles: usize,
}

impl TileSchedule {
    /// Lays a layer out on the grid.
    pub fn for_layer(geom: &GridGeometry, n_in: usize, n_out: usize) -> TileSchedule {
        TileSchedule {
            rows: geom.rows,
            cols: geom.cols,
            n_in,
            n_out,
            col_tiles: n_out.div_ceil(geom.cols),
            row_tiles: n_in.div_ceil(geom.rows),
        }
    }

    /// Weight tiles the walk visits.
    pub fn tiles(&self) -> usize {
        self.col_tiles * self.row_tiles
    }

    /// Genuine multiply-accumulates (one per weight).
    pub fn active_macs(&self) -> usize {
        self.n_in * self.n_out
    }

    /// Idle PE steps: partial-tile positions whose PEs only pass the
    /// partial sum through (still exposed to result-register faults).
    pub fn idle_steps(&self) -> usize {
        let row_slack = self.row_tiles * self.rows - self.n_in;
        // Idle rows run for every *real* neuron of each column tile;
        // columns beyond the layer's width carry no partial sum at all.
        row_slack * self.n_out
    }

    /// Grid occupancy: active MACs over the PE-steps the walk schedules.
    pub fn utilization(&self) -> f64 {
        let scheduled = self.active_macs() + self.idle_steps();
        if scheduled == 0 {
            return 0.0;
        }
        self.active_macs() as f64 / scheduled as f64
    }
}

/// Runs one layer's tile walk for a single sample. `accs[j]` must come
/// in holding neuron `j`'s bias and leaves holding its pre-activation
/// accumulation; `w(j, i)` supplies the stationary weight of neuron `j`
/// at synapse `i`, and `xq` the quantized activations streaming in.
pub fn run_tiles<W: Fn(usize, usize) -> Fx>(
    grid: &PeGrid,
    sched: &TileSchedule,
    w: W,
    xq: &[Fx],
    accs: &mut [Fx],
    mask: &PassMask,
) {
    debug_assert_eq!(xq.len(), sched.n_in);
    debug_assert_eq!(accs.len(), sched.n_out);
    let row_map = grid.row_map();
    for ct in 0..sched.col_tiles {
        for rt in 0..sched.row_tiles {
            for (r, &p) in row_map.iter().enumerate() {
                let i = rt * sched.rows + r;
                for c in 0..sched.cols {
                    let j = ct * sched.cols + c;
                    if j >= sched.n_out {
                        break;
                    }
                    accs[j] = if i < sched.n_in {
                        grid.pe_step(p, c, accs[j], w(j, i), xq[i], mask)
                    } else {
                        grid.pe_idle(p, c, accs[j], mask)
                    };
                }
            }
        }
    }
}

/// The batched tile walk: `lanes[s]` is sample `s`'s activation vector,
/// `accs[j][s]` its accumulator for neuron `j`, `masks[s]` its pass
/// mask. Each stationary weight is fetched once per tile position and
/// applied across every lane before the walk moves on; per-sample
/// arithmetic is untouched, so the result is bit-identical to running
/// [`run_tiles`] per sample.
pub fn run_tiles_batch<W: Fn(usize, usize) -> Fx>(
    grid: &PeGrid,
    sched: &TileSchedule,
    w: W,
    lanes: &[Vec<Fx>],
    accs: &mut [Vec<Fx>],
    masks: &[PassMask],
) {
    debug_assert_eq!(lanes.len(), masks.len());
    debug_assert_eq!(accs.len(), sched.n_out);
    let row_map = grid.row_map();
    for ct in 0..sched.col_tiles {
        for rt in 0..sched.row_tiles {
            for (r, &p) in row_map.iter().enumerate() {
                let i = rt * sched.rows + r;
                for c in 0..sched.cols {
                    let j = ct * sched.cols + c;
                    if j >= sched.n_out {
                        break;
                    }
                    if i < sched.n_in {
                        let wq = w(j, i); // fetched once, reused per lane
                        let accs_j = &mut accs[j];
                        for (s, mask) in masks.iter().enumerate() {
                            accs_j[s] = grid.pe_step(p, c, accs_j[s], wq, lanes[s][i], mask);
                        }
                    } else {
                        let accs_j = &mut accs[j];
                        for (s, mask) in masks.iter().enumerate() {
                            accs_j[s] = grid.pe_idle(p, c, accs_j[s], mask);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_shapes_cover_the_reference_layers() {
        let geom = GridGeometry::default();
        // The paper's 90-input hidden layer: 6 row tiles, 1 col tile.
        let hid = TileSchedule::for_layer(&geom, 90, 10);
        assert_eq!((hid.row_tiles, hid.col_tiles), (6, 1));
        assert_eq!(hid.active_macs(), 900);
        assert_eq!(hid.idle_steps(), (96 - 90) * 10);
        assert!(hid.utilization() > 0.9);
        // Iris-sized 4-6-3: single tile, mostly idle rows.
        let small = TileSchedule::for_layer(&geom, 4, 6);
        assert_eq!((small.row_tiles, small.col_tiles), (1, 1));
        assert_eq!(small.idle_steps(), 12 * 6);
        // A layer wider than the grid walks two column tiles.
        let wide = TileSchedule::for_layer(&geom, 16, 15);
        assert_eq!(wide.col_tiles, 2);
        assert_eq!(wide.tiles(), 2);
    }

    #[test]
    fn healthy_tile_walk_matches_direct_accumulation() {
        let geom = GridGeometry::default();
        let grid = PeGrid::new(geom);
        let (n_in, n_out) = (23, 13); // partial tiles on both axes
        let sched = TileSchedule::for_layer(&geom, n_in, n_out);
        let w = |j: usize, i: usize| Fx::from_f64((j as f64 - i as f64) * 0.07);
        let xq: Vec<Fx> = (0..n_in)
            .map(|i| Fx::from_f64(i as f64 * 0.11 - 1.0))
            .collect();
        let mut accs: Vec<Fx> = (0..n_out).map(|j| Fx::from_f64(j as f64 * 0.01)).collect();
        let want: Vec<Fx> = (0..n_out)
            .map(|j| {
                let mut acc = Fx::from_f64(j as f64 * 0.01);
                for (i, &x) in xq.iter().enumerate() {
                    acc += w(j, i) * x;
                }
                acc
            })
            .collect();
        run_tiles(&grid, &sched, w, &xq, &mut accs, &PassMask::default());
        assert_eq!(accs, want);
    }
}
