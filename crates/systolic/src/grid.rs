//! The physical PE grid: geometry, per-PE defects under the shared
//! activation taxonomy, and the bypass/row-remap repair state the
//! recovery ladder manipulates.
//!
//! A processing element (PE) is one multiply-accumulate stage of a
//! column: it receives a partial sum from the PE above, adds the
//! product of its stationary weight and the streaming activation, and
//! latches the result for the PE below. Defects therefore come in four
//! classes — a stuck product bit, a stuck sum bit, a stuck bit of the
//! result register (which corrupts even idle pass-through), and a dead
//! PE that forwards its incoming partial sum unchanged.

use std::collections::BTreeSet;
use std::fmt;

use rand::Rng;

use dta_ann::{FaultSite, Layer, UnitKind};
use dta_circuits::{Activation, ActivationState};
use dta_fixed::Fx;

/// Shape of the PE grid: `rows × cols` schedule positions plus
/// `spare_rows` physical rows held in reserve for the grid-remap rung.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridGeometry {
    /// Schedule rows (synapse positions per tile).
    pub rows: usize,
    /// Columns (neurons per tile).
    pub cols: usize,
    /// Spare physical rows beyond the schedule rows.
    pub spare_rows: usize,
}

impl GridGeometry {
    /// Physical rows, spares included.
    pub fn phys_rows(&self) -> usize {
        self.rows + self.spare_rows
    }

    /// Total physical PEs, spares included.
    pub fn pes(&self) -> usize {
        self.phys_rows() * self.cols
    }
}

impl Default for GridGeometry {
    /// The reference grid: 16×10 schedule positions with 2 spare rows —
    /// small enough that the 90-input layer needs several row tiles
    /// (exercising the schedule), large enough that one column tile
    /// covers the 10-neuron layers of the paper's geometry.
    fn default() -> GridGeometry {
        GridGeometry {
            rows: 16,
            cols: 10,
            spare_rows: 2,
        }
    }
}

/// The defect classes of one PE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeFaultKind {
    /// One bit of the multiplier's product word is stuck.
    StuckMulBit {
        /// Affected bit position (0..16).
        bit: u32,
        /// `true` = stuck-at-1, `false` = stuck-at-0.
        stuck_one: bool,
    },
    /// One bit of the accumulation adder's sum word is stuck.
    StuckAddBit {
        /// Affected bit position (0..16).
        bit: u32,
        /// `true` = stuck-at-1, `false` = stuck-at-0.
        stuck_one: bool,
    },
    /// One bit of the PE's result register is stuck: corrupts every
    /// word latched through the PE, including idle pass-through.
    StuckAccBit {
        /// Affected bit position (0..16).
        bit: u32,
        /// `true` = stuck-at-1, `false` = stuck-at-0.
        stuck_one: bool,
    },
    /// The PE contributes nothing: the incoming partial sum is
    /// forwarded unchanged (the MAC result is lost).
    DeadPe,
}

impl fmt::Display for PeFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sa = |one: bool| if one { 1 } else { 0 };
        match self {
            PeFaultKind::StuckMulBit { bit, stuck_one } => {
                write!(f, "mul-bit{bit}@{}", sa(*stuck_one))
            }
            PeFaultKind::StuckAddBit { bit, stuck_one } => {
                write!(f, "add-bit{bit}@{}", sa(*stuck_one))
            }
            PeFaultKind::StuckAccBit { bit, stuck_one } => {
                write!(f, "acc-bit{bit}@{}", sa(*stuck_one))
            }
            PeFaultKind::DeadPe => write!(f, "dead"),
        }
    }
}

/// One injected PE defect: location, class, and its activation stream
/// under the shared permanent/transient/intermittent taxonomy.
#[derive(Debug)]
pub struct PeDefect {
    /// Physical row of the host PE.
    pub row: usize,
    /// Column of the host PE.
    pub col: usize,
    /// Defect class.
    pub kind: PeFaultKind,
    state: ActivationState,
}

/// Per-pass activation snapshot: `mask[d]` is whether defect `d` is
/// active during the current forward pass (advanced once per pass, so
/// both layers of an MLP see the same fault state — the pass is one
/// "cycle" of the taxonomy's clock).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassMask(Vec<bool>);

/// Forces one bit of a Q6.10 word — the stuck-at lowering shared by all
/// three stuck-bit classes.
fn force_bit(v: Fx, bit: u32, stuck_one: bool) -> Fx {
    debug_assert!(bit < 16);
    Fx::from_bits((v.to_bits() & !(1u16 << bit)) | ((u16::from(stuck_one)) << bit))
}

/// The weight-stationary PE grid with its defect and repair state.
#[derive(Debug)]
pub struct PeGrid {
    geom: GridGeometry,
    defects: Vec<PeDefect>,
    /// Defect indices per PE (`phys_row * cols + col`), rebuilt on
    /// injection so the MAC inner loop touches only its own faults.
    by_pe: Vec<Vec<u32>>,
    /// Schedule row → physical row (identity until the grid-remap rung
    /// steers rows onto spares).
    row_map: Vec<usize>,
    /// Per-PE bypass latches (`phys_row * cols + col`): a bypassed PE
    /// forwards the partial sum untouched — fail-silent, Zhang-style.
    bypass: Vec<bool>,
    /// Chaos hook: milliseconds each BIST probe of one PE stalls (a
    /// model of pathologically slow silicon; `None` in production).
    chaos_stall_ms: Option<u64>,
}

impl PeGrid {
    /// An all-healthy grid with the identity row mapping.
    pub fn new(geom: GridGeometry) -> PeGrid {
        PeGrid {
            geom,
            defects: Vec::new(),
            by_pe: vec![Vec::new(); geom.pes()],
            row_map: (0..geom.rows).collect(),
            bypass: vec![false; geom.pes()],
            chaos_stall_ms: None,
        }
    }

    /// Chaos hook: make every BIST probe of one PE stall `ms`
    /// milliseconds, so watchdog fall-through paths can be exercised
    /// against a hanging PE self-test. `None` disables the hook.
    pub fn set_chaos_stall(&mut self, ms: Option<u64>) {
        self.chaos_stall_ms = ms;
    }

    /// The configured per-PE probe stall, if any.
    pub fn chaos_stall(&self) -> Option<u64> {
        self.chaos_stall_ms
    }

    /// The grid's shape.
    pub fn geometry(&self) -> GridGeometry {
        self.geom
    }

    /// All injected defects.
    pub fn defects(&self) -> &[PeDefect] {
        &self.defects
    }

    /// The schedule-row → physical-row mapping.
    pub fn row_map(&self) -> &[usize] {
        &self.row_map
    }

    /// True while the grid carries no repairs (identity row map, no
    /// bypassed PE) — together with an empty defect list this enables
    /// the fault-free fast path.
    pub fn is_pristine_routing(&self) -> bool {
        self.row_map.iter().enumerate().all(|(r, &p)| r == p) && self.bypass.iter().all(|&b| !b)
    }

    /// True when any defect is injected.
    pub fn has_defects(&self) -> bool {
        !self.defects.is_empty()
    }

    fn pe_index(&self, row: usize, col: usize) -> usize {
        assert!(row < self.geom.phys_rows(), "row {row} out of grid");
        assert!(col < self.geom.cols, "col {col} out of grid");
        row * self.geom.cols + col
    }

    /// Injects one defect at a specific PE.
    ///
    /// # Panics
    ///
    /// Panics if the PE coordinates are outside the physical grid.
    pub fn inject(
        &mut self,
        row: usize,
        col: usize,
        kind: PeFaultKind,
        activation: Activation,
        seed: u64,
    ) {
        let pe = self.pe_index(row, col);
        let idx = self.defects.len() as u32;
        self.defects.push(PeDefect {
            row,
            col,
            kind,
            state: ActivationState::new(activation, seed),
        });
        self.by_pe[pe].push(idx);
    }

    /// Injects `n` random defects (uniform PE, uniform class, random
    /// stuck bit/polarity) under the given activation model. Returns
    /// one human-readable record per defect, mirroring the spatial
    /// array's `inject_defects`.
    pub fn inject_random<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Vec<String> {
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let row = rng.random_range(0..self.geom.phys_rows());
            let col = rng.random_range(0..self.geom.cols);
            let kind = match rng.random_range(0..4u32) {
                0 => PeFaultKind::StuckMulBit {
                    bit: rng.random_range(0..16u32),
                    stuck_one: rng.random::<bool>(),
                },
                1 => PeFaultKind::StuckAddBit {
                    bit: rng.random_range(0..16u32),
                    stuck_one: rng.random::<bool>(),
                },
                2 => PeFaultKind::StuckAccBit {
                    bit: rng.random_range(0..16u32),
                    stuck_one: rng.random::<bool>(),
                },
                _ => PeFaultKind::DeadPe,
            };
            let seed = rng.random::<u64>();
            self.inject(row, col, kind, activation, seed);
            records.push(format!("pe[{row},{col}] {kind}"));
        }
        records
    }

    /// Ground-truth fault sites, one per injected defect, in the shared
    /// [`FaultSite`] vocabulary: the PE's column doubles as the neuron
    /// index (column-stationary mapping) and the synapse field carries
    /// the physical row.
    pub fn sites(&self) -> Vec<FaultSite> {
        self.defects
            .iter()
            .map(|d| FaultSite {
                layer: Layer::Hidden,
                neuron: d.col,
                unit: UnitKind::Pe,
                synapse: Some(d.row),
            })
            .collect()
    }

    /// The distinct PEs carrying at least one defect.
    pub fn faulty_pes(&self) -> BTreeSet<(usize, usize)> {
        self.defects.iter().map(|d| (d.row, d.col)).collect()
    }

    /// Rewinds every defect's activation stream to power-on.
    pub fn reset_state(&mut self) {
        for d in &mut self.defects {
            d.state.reset();
        }
    }

    /// Advances every defect's activation stream by one pass and
    /// snapshots which are active — call exactly once per forward pass.
    pub fn pass_mask(&mut self) -> PassMask {
        PassMask(self.defects.iter_mut().map(|d| d.state.advance()).collect())
    }

    /// Marks one PE bypassed (fail-silent). Idempotent; returns `true`
    /// if the PE was not already bypassed.
    ///
    /// # Panics
    ///
    /// Panics if the PE coordinates are outside the physical grid.
    pub fn bypass_pe(&mut self, row: usize, col: usize) -> bool {
        let pe = self.pe_index(row, col);
        let fresh = !self.bypass[pe];
        self.bypass[pe] = true;
        fresh
    }

    /// Whether a PE is bypassed.
    pub fn is_bypassed(&self, row: usize, col: usize) -> bool {
        self.bypass[row * self.geom.cols + col]
    }

    /// Bypassed PEs in total.
    pub fn bypassed_pes(&self) -> usize {
        self.bypass.iter().filter(|&&b| b).count()
    }

    /// Re-points schedule row `schedule_row` at physical row
    /// `phys_row`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn remap_row(&mut self, schedule_row: usize, phys_row: usize) {
        assert!(schedule_row < self.geom.rows, "schedule row out of range");
        assert!(
            phys_row < self.geom.phys_rows(),
            "physical row out of range"
        );
        self.row_map[schedule_row] = phys_row;
    }

    /// One MAC step of the (possibly faulty) PE at physical
    /// coordinates `(row, col)`: `acc + w·x` with this pass's active
    /// faults applied in stage order — product bits, then sum bits,
    /// then the dead-PE drop, then the result-register bits. A
    /// bypassed PE forwards `acc` untouched (its register is routed
    /// around entirely).
    pub fn pe_step(&self, row: usize, col: usize, acc: Fx, w: Fx, x: Fx, mask: &PassMask) -> Fx {
        if self.bypass[row * self.geom.cols + col] {
            return acc;
        }
        self.pe_step_raw(row, col, acc, w, x, mask)
    }

    /// The MAC step ignoring the bypass latch — the raw hardware
    /// behavior the BIST probes.
    pub fn pe_step_raw(
        &self,
        row: usize,
        col: usize,
        acc: Fx,
        w: Fx,
        x: Fx,
        mask: &PassMask,
    ) -> Fx {
        let idxs = &self.by_pe[row * self.geom.cols + col];
        if idxs.is_empty() {
            return acc + w * x;
        }
        let active = |di: u32| mask.0.get(di as usize).copied().unwrap_or(false);
        let mut product = w * x;
        let mut dead = false;
        for &di in idxs {
            if !active(di) {
                continue;
            }
            match self.defects[di as usize].kind {
                PeFaultKind::StuckMulBit { bit, stuck_one } => {
                    product = force_bit(product, bit, stuck_one);
                }
                PeFaultKind::DeadPe => dead = true,
                _ => {}
            }
        }
        let mut out = acc + product;
        for &di in idxs {
            if !active(di) {
                continue;
            }
            if let PeFaultKind::StuckAddBit { bit, stuck_one } = self.defects[di as usize].kind {
                out = force_bit(out, bit, stuck_one);
            }
        }
        if dead {
            out = acc;
        }
        for &di in idxs {
            if !active(di) {
                continue;
            }
            if let PeFaultKind::StuckAccBit { bit, stuck_one } = self.defects[di as usize].kind {
                out = force_bit(out, bit, stuck_one);
            }
        }
        out
    }

    /// An idle step (the tile has no synapse for this PE): the partial
    /// sum passes through the PE's result register, so only register
    /// faults can corrupt it. Bypassed PEs forward untouched.
    pub fn pe_idle(&self, row: usize, col: usize, acc: Fx, mask: &PassMask) -> Fx {
        if self.bypass[row * self.geom.cols + col] {
            return acc;
        }
        self.pe_idle_raw(row, col, acc, mask)
    }

    /// The idle step ignoring the bypass latch (BIST probe path).
    pub fn pe_idle_raw(&self, row: usize, col: usize, acc: Fx, mask: &PassMask) -> Fx {
        let mut out = acc;
        for &di in &self.by_pe[row * self.geom.cols + col] {
            if !mask.0.get(di as usize).copied().unwrap_or(false) {
                continue;
            }
            if let PeFaultKind::StuckAccBit { bit, stuck_one } = self.defects[di as usize].kind {
                out = force_bit(out, bit, stuck_one);
            }
        }
        out
    }

    /// Measured visible fraction of one defect: random `(acc, w, x)`
    /// MAC triples with only this defect forced active, compared
    /// against the healthy MAC — the grid analog of the spatial
    /// operator visibility models, feeding the degradation estimate.
    pub fn defect_visibility(&self, defect: usize, samples: usize, seed: u64) -> f64 {
        use rand::SeedableRng;
        let d = &self.defects[defect];
        let mut mask = PassMask(vec![false; self.defects.len()]);
        mask.0[defect] = true;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut visible = 0usize;
        for _ in 0..samples {
            let acc = Fx::from_raw(rng.random::<i16>());
            let w = Fx::from_raw(rng.random::<i16>());
            let x = Fx::from_raw(rng.random::<i16>());
            if self.pe_step_raw(d.row, d.col, acc, w, x, &mask) != acc + w * x {
                visible += 1;
            }
        }
        visible as f64 / samples.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_faults() -> PassMask {
        PassMask::default()
    }

    #[test]
    fn healthy_pe_is_native_mac() {
        let grid = PeGrid::new(GridGeometry::default());
        let (acc, w, x) = (Fx::from_f64(0.5), Fx::from_f64(-1.25), Fx::from_f64(2.0));
        assert_eq!(grid.pe_step(0, 0, acc, w, x, &no_faults()), acc + w * x);
        assert_eq!(grid.pe_idle(3, 7, acc, &no_faults()), acc);
    }

    #[test]
    fn dead_pe_forwards_partial_sum() {
        let mut grid = PeGrid::new(GridGeometry::default());
        grid.inject(2, 3, PeFaultKind::DeadPe, Activation::Permanent, 1);
        let mask = grid.pass_mask();
        let (acc, w, x) = (Fx::from_f64(0.5), Fx::ONE, Fx::ONE);
        assert_eq!(grid.pe_step(2, 3, acc, w, x, &mask), acc);
        // Neighbors are unaffected.
        assert_eq!(grid.pe_step(2, 4, acc, w, x, &mask), acc + w * x);
    }

    #[test]
    fn acc_bit_corrupts_idle_passthrough_but_add_bit_does_not() {
        let mut grid = PeGrid::new(GridGeometry::default());
        grid.inject(
            1,
            1,
            PeFaultKind::StuckAccBit {
                bit: 0,
                stuck_one: true,
            },
            Activation::Permanent,
            7,
        );
        grid.inject(
            1,
            2,
            PeFaultKind::StuckAddBit {
                bit: 0,
                stuck_one: true,
            },
            Activation::Permanent,
            8,
        );
        let mask = grid.pass_mask();
        let acc = Fx::from_bits(0x0100); // LSB clear
        assert_eq!(grid.pe_idle(1, 1, acc, &mask), Fx::from_bits(0x0101));
        assert_eq!(grid.pe_idle(1, 2, acc, &mask), acc, "add fault idle-silent");
    }

    #[test]
    fn bypass_silences_every_fault_class() {
        let mut grid = PeGrid::new(GridGeometry::default());
        grid.inject(
            0,
            0,
            PeFaultKind::StuckAccBit {
                bit: 3,
                stuck_one: true,
            },
            Activation::Permanent,
            9,
        );
        assert!(grid.bypass_pe(0, 0));
        assert!(!grid.bypass_pe(0, 0), "second bypass is a no-op");
        let mask = grid.pass_mask();
        let acc = Fx::from_f64(1.5);
        assert_eq!(grid.pe_step(0, 0, acc, Fx::ONE, Fx::ONE, &mask), acc);
        assert_eq!(grid.pe_idle(0, 0, acc, &mask), acc);
        assert!(!grid.is_pristine_routing());
    }

    #[test]
    fn transient_defects_follow_their_activation_stream() {
        let mut grid = PeGrid::new(GridGeometry::default());
        grid.inject(
            4,
            4,
            PeFaultKind::DeadPe,
            Activation::Transient {
                per_eval_probability: 0.5,
            },
            42,
        );
        let (acc, w, x) = (Fx::ZERO, Fx::ONE, Fx::ONE);
        let run: Vec<bool> = (0..64)
            .map(|_| {
                let mask = grid.pass_mask();
                grid.pe_step(4, 4, acc, w, x, &mask) == acc
            })
            .collect();
        assert!(run.iter().any(|&b| b), "never activated");
        assert!(run.iter().any(|&b| !b), "always active");
        // Reset rewinds the stream exactly.
        grid.reset_state();
        let replay: Vec<bool> = (0..64)
            .map(|_| {
                let mask = grid.pass_mask();
                grid.pe_step(4, 4, acc, w, x, &mask) == acc
            })
            .collect();
        assert_eq!(run, replay);
    }

    #[test]
    fn sites_speak_the_shared_vocabulary() {
        let mut grid = PeGrid::new(GridGeometry::default());
        grid.inject(17, 9, PeFaultKind::DeadPe, Activation::Permanent, 0);
        let sites = grid.sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].layer, Layer::Hidden);
        assert_eq!(sites[0].neuron, 9);
        assert_eq!(sites[0].unit, UnitKind::Pe);
        assert_eq!(sites[0].synapse, Some(17));
        assert_eq!(format!("{}", sites[0]), "hidden[9].pe[17]");
    }

    #[test]
    fn dead_pe_visibility_is_high_and_stuck_bit_partial() {
        let mut grid = PeGrid::new(GridGeometry::default());
        grid.inject(0, 0, PeFaultKind::DeadPe, Activation::Permanent, 0);
        grid.inject(
            0,
            1,
            PeFaultKind::StuckMulBit {
                bit: 0,
                stuck_one: false,
            },
            Activation::Permanent,
            1,
        );
        let dead = grid.defect_visibility(0, 256, 0xD15);
        let lsb = grid.defect_visibility(1, 256, 0xD15);
        assert!(dead > 0.9, "dead PE visibility {dead}");
        assert!((0.0..=1.0).contains(&lsb));
        assert!(lsb < dead, "LSB stuck bit should be less visible");
    }
}
