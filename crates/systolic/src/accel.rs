//! The systolic accelerator: an MLP mapped onto the weight-stationary
//! PE grid tile by tile, behind the same [`Accel`] surface the spatial
//! array implements — campaigns, self-test and the recovery ladder run
//! on it unchanged.
//!
//! Both layers of the network run on the *same* physical grid (the
//! array is time-shared between layers, as a real systolic accelerator
//! would be), so one defective PE can corrupt hidden *and* output
//! accumulations. The activation unit stays host-side: pre-activation
//! sums leave the array and pass through the shared Q6.10 sigmoid LUT,
//! exactly as in the reference `Mlp::forward_fixed` — which the
//! defect-free grid is bit-identical to by construction (tile walks
//! accumulate synapses in ascending index order with the same
//! saturating arithmetic).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use dta_ann::{FaultSite, ForwardTrace, Mlp, Topology, Trainer, UnitKind};
use dta_circuits::Activation;
use dta_core::accel::{Accel, StructuralOutcome};
use dta_core::recover::{DegradationEstimate, RecoveryError, RecoveryPolicy, RecoveryRung};
use dta_core::selftest::{bist_vectors, BistConfig, Diagnosis};
use dta_core::AccelError;
use dta_datasets::Dataset;
use dta_fixed::{Fx, SigmoidLut};

use crate::grid::{GridGeometry, PassMask, PeGrid};
use crate::schedule::{run_tiles, run_tiles_batch, TileSchedule};

/// Samples per batch block: one stationary weight fetch serves up to
/// this many MAC lanes.
pub const BATCH_LANES: usize = 64;

/// The weight-stationary systolic MAC-array accelerator.
#[derive(Debug)]
pub struct SystolicAccelerator {
    grid: PeGrid,
    network: Option<Mlp>,
    lut: SigmoidLut,
    /// Largest network the array is commissioned for (matches the
    /// spatial array's physical geometry so both topologies accept the
    /// same workloads).
    envelope: Topology,
    passes: u64,
    in_flight: bool,
}

impl Default for SystolicAccelerator {
    fn default() -> SystolicAccelerator {
        SystolicAccelerator::new()
    }
}

impl SystolicAccelerator {
    /// An all-healthy grid of the default geometry (16×10 + 2 spare
    /// rows), sized for the same 90-10-10 envelope as the spatial
    /// array.
    pub fn new() -> SystolicAccelerator {
        SystolicAccelerator::with_geometry(GridGeometry::default())
    }

    /// An all-healthy grid of a custom geometry.
    pub fn with_geometry(geom: GridGeometry) -> SystolicAccelerator {
        SystolicAccelerator {
            grid: PeGrid::new(geom),
            network: None,
            lut: SigmoidLut::new(),
            envelope: Topology::accelerator(),
            passes: 0,
            in_flight: false,
        }
    }

    /// The PE grid (defect truth, repair state).
    pub fn grid(&self) -> &PeGrid {
        &self.grid
    }

    /// Mutable access to the PE grid.
    pub fn grid_mut(&mut self) -> &mut PeGrid {
        &mut self.grid
    }

    /// Forward passes executed (scalar or per batch lane).
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Injects `n` random PE defects under the shared activation
    /// taxonomy; returns one record string per defect.
    ///
    /// # Errors
    ///
    /// [`AccelError::NotQuiescent`] while a traffic batch is in flight
    /// (see [`Accel::begin_batch`]): mid-stream fault arrival is legal
    /// only on batch boundaries.
    pub fn inject_defects<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Result<Vec<String>, AccelError> {
        if self.in_flight {
            return Err(AccelError::NotQuiescent {
                op: "inject_defects",
            });
        }
        Ok(self.grid.inject_random(n, activation, rng))
    }

    /// Ground-truth fault sites of every injected defect.
    pub fn fault_sites(&self) -> Vec<FaultSite> {
        self.grid.sites()
    }

    /// True when the grid can take the fault-free fast path: no
    /// defects injected and no repairs installed.
    pub fn fast_path(&self) -> bool {
        !self.grid.has_defects() && self.grid.is_pristine_routing()
    }

    fn require_network(&self) -> Result<&Mlp, AccelError> {
        self.network.as_ref().ok_or(AccelError::NoNetwork)
    }

    /// One forward pass through the grid, fast-pathing to the
    /// reference fixed-point walk when the grid is pristine.
    ///
    /// # Errors
    ///
    /// [`AccelError::NoNetwork`] / [`AccelError::WrongRowWidth`].
    pub fn forward(&mut self, x: &[f64]) -> Result<ForwardTrace, AccelError> {
        let expected = self.require_network()?.topology().inputs;
        if x.len() != expected {
            return Err(AccelError::WrongRowWidth {
                got: x.len(),
                expected,
            });
        }
        self.passes += 1;
        let net = self.network.as_ref().expect("checked above");
        if self.fast_path() {
            return Ok(net.forward_fixed(x, &self.lut));
        }
        let mask = self.grid.pass_mask();
        Ok(forward_with_mask(&self.grid, net, x, &self.lut, &mask))
    }

    /// One forward pass that always takes the tiled grid walk (no fast
    /// path) — the entry point the bit-identity properties probe.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SystolicAccelerator::forward`].
    pub fn forward_tiled(&mut self, x: &[f64]) -> Result<ForwardTrace, AccelError> {
        let expected = self.require_network()?.topology().inputs;
        if x.len() != expected {
            return Err(AccelError::WrongRowWidth {
                got: x.len(),
                expected,
            });
        }
        self.passes += 1;
        let mask = self.grid.pass_mask();
        let net = self.network.as_ref().expect("checked above");
        Ok(forward_with_mask(&self.grid, net, x, &self.lut, &mask))
    }

    /// Batched forward over many rows: samples run in blocks of
    /// [`BATCH_LANES`], tiles outer / lanes inner, each stationary
    /// weight fetched once per block. Pass masks are drawn in sample
    /// order before the block runs, so the result is bit-identical to
    /// calling [`SystolicAccelerator::forward`] row by row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SystolicAccelerator::forward`].
    pub fn forward_batch(&mut self, rows: &[&[f64]]) -> Result<Vec<ForwardTrace>, AccelError> {
        let expected = self.require_network()?.topology().inputs;
        for row in rows {
            if row.len() != expected {
                return Err(AccelError::WrongRowWidth {
                    got: row.len(),
                    expected,
                });
            }
        }
        self.passes += rows.len() as u64;
        if self.fast_path() {
            let net = self.network.as_ref().expect("checked above");
            return Ok(rows
                .iter()
                .map(|r| net.forward_fixed(r, &self.lut))
                .collect());
        }
        let mut traces = Vec::with_capacity(rows.len());
        for block in rows.chunks(BATCH_LANES) {
            // Activation streams advance once per sample, in sample
            // order — exactly as the scalar path would draw them.
            let masks: Vec<PassMask> = block.iter().map(|_| self.grid.pass_mask()).collect();
            let net = self.network.as_ref().expect("checked above");
            traces.extend(forward_block(&self.grid, net, block, &self.lut, &masks));
        }
        Ok(traces)
    }

    /// Bypasses every PE the diagnosis flags (Zhang-style fail-silent
    /// repair). Returns how many PEs were newly bypassed.
    fn install_bypasses(&mut self, diagnosis: &Diagnosis) -> usize {
        let mut fresh = 0usize;
        for site in flagged_pes(diagnosis) {
            if self.grid.bypass_pe(site.1, site.0) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Re-points schedule rows that route through flagged PEs at
    /// healthy spare physical rows; rows left over when spares run out
    /// keep their bypasses. Returns `(remapped_rows, bypassed_left)`.
    fn install_row_remaps(
        &mut self,
        diagnosis: &Diagnosis,
        policy: &RecoveryPolicy,
    ) -> Result<(usize, usize), RecoveryError> {
        use std::collections::BTreeSet;
        let geom = self.grid.geometry();
        let flagged: Vec<(usize, usize)> = flagged_pes(diagnosis);
        let bad_rows: BTreeSet<usize> = flagged.iter().map(|&(_, p)| p).collect();
        let need: Vec<usize> = (0..geom.rows)
            .filter(|&r| bad_rows.contains(&self.grid.row_map()[r]))
            .collect();
        let in_use: BTreeSet<usize> = self.grid.row_map().iter().copied().collect();
        let spares: Vec<usize> = (0..geom.phys_rows())
            .filter(|p| !in_use.contains(p))
            .filter(|p| !bad_rows.contains(p))
            .collect();
        if need.len() > spares.len() && !policy.mask_unmappable {
            return Err(RecoveryError::NoSpareLane {
                needed: need.len(),
                spares: spares.len(),
            });
        }
        let mut remapped = 0usize;
        let mut left = 0usize;
        for (i, &r) in need.iter().enumerate() {
            if let Some(&spare) = spares.get(i) {
                self.grid.remap_row(r, spare);
                remapped += 1;
            } else {
                // No spare: make sure the flagged PEs of this row stay
                // fail-silent (the bypass rung normally did this
                // already; count only fresh bypasses).
                let p = self.grid.row_map()[r];
                let cols: Vec<usize> = flagged
                    .iter()
                    .filter(|&&(_, fp)| fp == p)
                    .map(|&(c, _)| c)
                    .collect();
                for c in cols {
                    if self.grid.bypass_pe(p, c) {
                        left += 1;
                    }
                }
            }
        }
        Ok((remapped, left))
    }

    /// Per-PE BIST: every physical PE is driven with the shared Q6.10
    /// corner/random vector pairs, in MAC and idle modes, and compared
    /// against the native `acc + w·x` arithmetic the healthy grid is
    /// bit-exact with — so a flagged PE is necessarily defective (no
    /// false positives by construction). Fault state is reset to
    /// power-on before and after, and probes ignore installed bypasses
    /// (the BIST measures the silicon, not the repair routing).
    fn pe_selftest(&mut self, cfg: &BistConfig) -> Diagnosis {
        let geom = self.grid.geometry();
        let targets: Vec<(usize, usize)> = (0..geom.phys_rows())
            .flat_map(|p| (0..geom.cols).map(move |c| (p, c)))
            .collect();
        let clear = std::sync::atomic::AtomicBool::new(false);
        self.probe_pes(cfg, &targets, &clear)
            .expect("probe cannot abort with an untripped flag")
    }

    /// Drives the listed `(phys_row, col)` PEs with the shared vector
    /// set, checking `abort` (and honoring the grid's chaos stall)
    /// before each PE so a watchdog can stop a stalling probe. Returns
    /// `None` when aborted; fault state is reset to power-on either
    /// way.
    fn probe_pes(
        &mut self,
        cfg: &BistConfig,
        targets: &[(usize, usize)],
        abort: &std::sync::atomic::AtomicBool,
    ) -> Option<Diagnosis> {
        use std::collections::BTreeSet;
        use std::sync::atomic::Ordering;
        let vectors = bist_vectors(cfg.vectors_per_operator, cfg.seed ^ 0x0B15);
        self.grid.reset_state();
        let mut flagged: BTreeSet<FaultSite> = BTreeSet::new();
        let mut probed = 0usize;
        for &(p, c) in targets {
            if let Some(ms) = self.grid.chaos_stall() {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            if abort.load(Ordering::Acquire) {
                self.grid.reset_state();
                return None;
            }
            probed += 1;
            let mut bad = false;
            for (vi, &(a, b)) in vectors.iter().enumerate() {
                // A third operand for the incoming partial sum,
                // drawn from the same deterministic vector set.
                let acc = vectors[(vi + 1) % vectors.len()].1;
                let mask = self.grid.pass_mask();
                if self.grid.pe_step_raw(p, c, acc, a, b, &mask) != acc + a * b {
                    bad = true;
                }
                if self.grid.pe_idle_raw(p, c, acc, &mask) != acc {
                    bad = true;
                }
            }
            if bad {
                flagged.insert(FaultSite {
                    layer: dta_ann::Layer::Hidden,
                    neuron: c,
                    unit: UnitKind::Pe,
                    synapse: Some(p),
                });
            }
        }
        self.grid.reset_state();
        Some(Diagnosis {
            flagged: flagged.into_iter().collect(),
            screened_lanes: Vec::new(),
            operators_probed: probed,
            memory: None,
        })
    }
}

/// The PEs named by a diagnosis, as `(col, phys_row)` pairs.
fn flagged_pes(diagnosis: &Diagnosis) -> Vec<(usize, usize)> {
    diagnosis
        .flagged
        .iter()
        .filter(|s| s.unit == UnitKind::Pe)
        .filter_map(|s| s.synapse.map(|p| (s.neuron, p)))
        .collect()
}

/// One full two-layer forward pass under a fixed pass mask.
fn forward_with_mask(
    grid: &PeGrid,
    net: &Mlp,
    x: &[f64],
    lut: &SigmoidLut,
    mask: &PassMask,
) -> ForwardTrace {
    let topo = net.topology();
    let geom = grid.geometry();
    let xq: Vec<Fx> = x.iter().map(|&v| Fx::from_f64(v)).collect();

    let sched1 = TileSchedule::for_layer(&geom, topo.inputs, topo.hidden);
    let mut acc1: Vec<Fx> = (0..topo.hidden)
        .map(|j| Fx::from_f64(net.w_hidden(j, topo.inputs)))
        .collect();
    run_tiles(
        grid,
        &sched1,
        |j, i| Fx::from_f64(net.w_hidden(j, i)),
        &xq,
        &mut acc1,
        mask,
    );
    let hidden_fx: Vec<Fx> = acc1.iter().map(|&a| lut.eval(a)).collect();

    let sched2 = TileSchedule::for_layer(&geom, topo.hidden, topo.outputs);
    let mut acc2: Vec<Fx> = (0..topo.outputs)
        .map(|k| Fx::from_f64(net.w_output(k, topo.hidden)))
        .collect();
    run_tiles(
        grid,
        &sched2,
        |k, j| Fx::from_f64(net.w_output(k, j)),
        &hidden_fx,
        &mut acc2,
        mask,
    );

    ForwardTrace {
        hidden: hidden_fx.iter().map(|h| h.to_f64()).collect(),
        output_pre: acc2.iter().map(|a| a.to_f64()).collect(),
        output: acc2.iter().map(|&a| lut.eval(a).to_f64()).collect(),
    }
}

/// One block (≤ [`BATCH_LANES`] samples) of the batched forward pass.
fn forward_block(
    grid: &PeGrid,
    net: &Mlp,
    rows: &[&[f64]],
    lut: &SigmoidLut,
    masks: &[PassMask],
) -> Vec<ForwardTrace> {
    let topo = net.topology();
    let geom = grid.geometry();
    let lanes1: Vec<Vec<Fx>> = rows
        .iter()
        .map(|r| r.iter().map(|&v| Fx::from_f64(v)).collect())
        .collect();

    let sched1 = TileSchedule::for_layer(&geom, topo.inputs, topo.hidden);
    let mut acc1: Vec<Vec<Fx>> = (0..topo.hidden)
        .map(|j| vec![Fx::from_f64(net.w_hidden(j, topo.inputs)); rows.len()])
        .collect();
    run_tiles_batch(
        grid,
        &sched1,
        |j, i| Fx::from_f64(net.w_hidden(j, i)),
        &lanes1,
        &mut acc1,
        masks,
    );
    // Hidden activations become the second layer's streaming lanes.
    let lanes2: Vec<Vec<Fx>> = (0..rows.len())
        .map(|s| acc1.iter().map(|accs| lut.eval(accs[s])).collect())
        .collect();

    let sched2 = TileSchedule::for_layer(&geom, topo.hidden, topo.outputs);
    let mut acc2: Vec<Vec<Fx>> = (0..topo.outputs)
        .map(|k| vec![Fx::from_f64(net.w_output(k, topo.hidden)); rows.len()])
        .collect();
    run_tiles_batch(
        grid,
        &sched2,
        |k, j| Fx::from_f64(net.w_output(k, j)),
        &lanes2,
        &mut acc2,
        masks,
    );

    (0..rows.len())
        .map(|s| ForwardTrace {
            hidden: lanes2[s].iter().map(|h| h.to_f64()).collect(),
            output_pre: acc2.iter().map(|accs| accs[s].to_f64()).collect(),
            output: acc2.iter().map(|accs| lut.eval(accs[s]).to_f64()).collect(),
        })
        .collect()
}

fn check_hyperparameters(
    learning_rate: f64,
    momentum: f64,
    epochs: usize,
) -> Result<(), AccelError> {
    if !(learning_rate > 0.0 && learning_rate.is_finite()) {
        return Err(AccelError::BadHyperparameter {
            what: format!("learning rate {learning_rate} must be positive and finite"),
        });
    }
    if !(0.0..1.0).contains(&momentum) {
        return Err(AccelError::BadHyperparameter {
            what: format!("momentum {momentum} must be in [0, 1)"),
        });
    }
    if epochs == 0 {
        return Err(AccelError::BadHyperparameter {
            what: "epochs must be at least 1".to_string(),
        });
    }
    Ok(())
}

impl Accel for SystolicAccelerator {
    fn geometry(&self) -> Topology {
        self.envelope
    }

    fn network(&self) -> Option<&Mlp> {
        self.network.as_ref()
    }

    fn map_network(&mut self, mlp: Mlp) -> Result<(), AccelError> {
        let logical = mlp.topology();
        if logical.inputs > self.envelope.inputs
            || logical.hidden > self.envelope.hidden
            || logical.outputs > self.envelope.outputs
        {
            return Err(AccelError::DoesNotFit {
                logical,
                physical: self.envelope,
            });
        }
        self.network = Some(mlp);
        Ok(())
    }

    fn unmap_network(&mut self) -> Option<Mlp> {
        self.network.take()
    }

    fn evaluate(&mut self, ds: &Dataset, idx: &[usize]) -> Result<f64, AccelError> {
        let net = self.require_network()?;
        if idx.is_empty() {
            return Err(AccelError::EmptySelection);
        }
        if net.topology().outputs == 0 {
            return Err(AccelError::NoOutputs);
        }
        let rows: Vec<&[f64]> = idx
            .iter()
            .map(|&s| ds.samples()[s].features.as_slice())
            .collect();
        let traces = self.forward_batch(&rows)?;
        let correct = idx
            .iter()
            .zip(&traces)
            .filter(|&(&s, t)| t.predicted() == ds.samples()[s].label)
            .count();
        Ok(correct as f64 / idx.len() as f64)
    }

    fn retrain(
        &mut self,
        ds: &Dataset,
        idx: &[usize],
        learning_rate: f64,
        momentum: f64,
        epochs: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<(), AccelError> {
        check_hyperparameters(learning_rate, momentum, epochs)?;
        let mut mlp = self.network.take().ok_or(AccelError::NoNetwork)?;
        let trainer = Trainer::new(learning_rate, momentum, epochs, dta_ann::ForwardMode::Fixed);
        self.grid.reset_state();
        let fast = self.fast_path();
        let lut = &self.lut;
        let grid = &mut self.grid;
        let mut passes = 0u64;
        trainer.train_with(&mut mlp, ds, idx, rng, |m, x| {
            passes += 1;
            if fast {
                m.forward_fixed(x, lut)
            } else {
                let mask = grid.pass_mask();
                forward_with_mask(grid, m, x, lut, &mask)
            }
        });
        self.passes += passes;
        self.network = Some(mlp);
        Ok(())
    }

    fn self_test(&mut self, cfg: &BistConfig) -> Result<Diagnosis, AccelError> {
        Ok(self.pe_selftest(cfg))
    }

    fn structural_rungs(&self, policy: &RecoveryPolicy) -> Vec<RecoveryRung> {
        if policy.use_remap {
            vec![RecoveryRung::PeBypass, RecoveryRung::GridRemap]
        } else {
            Vec::new()
        }
    }

    fn apply_structural_rung(
        &mut self,
        rung: RecoveryRung,
        diagnosis: &Diagnosis,
        policy: &RecoveryPolicy,
    ) -> Result<StructuralOutcome, RecoveryError> {
        match rung {
            RecoveryRung::PeBypass => {
                let masked = self.install_bypasses(diagnosis);
                Ok(StructuralOutcome {
                    masked,
                    retrain_after: true,
                    ..StructuralOutcome::default()
                })
            }
            RecoveryRung::GridRemap => {
                let (remapped, masked) = self.install_row_remaps(diagnosis, policy)?;
                Ok(StructuralOutcome {
                    remapped,
                    masked,
                    retrain_after: true,
                    ..StructuralOutcome::default()
                })
            }
            _ => Err(RecoveryError::UnsupportedRung { rung }),
        }
    }

    fn degradation(&mut self, diagnosis: &Diagnosis, baseline: f64) -> DegradationEstimate {
        use std::collections::BTreeSet;
        let geom = self.grid.geometry();
        let in_use: BTreeSet<usize> = self.grid.row_map().iter().copied().collect();
        let outputs = self
            .network
            .as_ref()
            .map_or(self.envelope.outputs, |m| m.topology().outputs);
        let chance = 1.0 / outputs.max(1) as f64;
        // A PE serves ~1/rows of each mapped neuron's accumulation.
        let sensitivity = 0.25 / (geom.rows as f64).sqrt();
        let samples = 256;

        let mut active_sites = 0usize;
        let mut visible_sites = 0usize;
        let mut vf_sum = 0.0f64;
        let mut loss = 0.0f64;
        for (i, site) in flagged_pes(diagnosis).iter().enumerate() {
            let (c, p) = *site;
            // Bypassed or steered-away PEs are no longer in the data
            // path; their damage cannot reach an output.
            if !in_use.contains(&p) || self.grid.is_bypassed(p, c) {
                continue;
            }
            active_sites += 1;
            // Match every defect on this PE and take the worst case.
            let mut vf = 0.0f64;
            for (di, d) in self.grid.defects().iter().enumerate() {
                if d.row == p && d.col == c {
                    vf = vf.max(
                        self.grid
                            .defect_visibility(di, samples, 0xD156_0000 ^ i as u64),
                    );
                }
            }
            if vf > 0.0 {
                visible_sites += 1;
            }
            vf_sum += vf;
            loss += vf * sensitivity;
        }
        let expected = (baseline - loss).clamp(chance, baseline.max(chance));
        DegradationEstimate {
            expected_accuracy: expected,
            active_sites,
            visible_sites,
            mean_visible_fraction: if active_sites > 0 {
                vf_sum / active_sites as f64
            } else {
                0.0
            },
        }
    }

    fn begin_batch(&mut self) -> Result<(), AccelError> {
        if self.in_flight {
            return Err(AccelError::NotQuiescent { op: "begin_batch" });
        }
        self.in_flight = true;
        Ok(())
    }

    fn end_batch(&mut self) {
        self.in_flight = false;
    }

    fn probe_touched(
        &mut self,
        cfg: &BistConfig,
        abort: &std::sync::atomic::AtomicBool,
    ) -> Result<Option<Diagnosis>, AccelError> {
        // Only the PEs traffic actually routes through: the physical
        // rows the schedule's row map points at, minus installed
        // bypasses (a bypassed PE is already fail-silent).
        let geom = self.grid.geometry();
        let mut targets: Vec<(usize, usize)> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..geom.rows {
            let p = self.grid.row_map()[r];
            if !seen.insert(p) {
                continue;
            }
            for c in 0..geom.cols {
                if !self.grid.is_bypassed(p, c) {
                    targets.push((p, c));
                }
            }
        }
        Ok(self.probe_pes(cfg, &targets, abort))
    }

    fn quarantine(&mut self, diagnosis: &Diagnosis) -> Result<usize, AccelError> {
        Ok(self.install_bypasses(diagnosis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::PeFaultKind;
    use dta_core::recover::recover;
    use dta_core::selftest::run_selftest;
    use dta_datasets::suite;
    use rand::SeedableRng;

    fn iris_split() -> (Dataset, Vec<usize>, Vec<usize>) {
        let ds = suite::load("iris").unwrap();
        let train: Vec<usize> = (0..ds.len()).filter(|i| i % 3 != 0).collect();
        let test: Vec<usize> = (0..ds.len()).step_by(3).collect();
        (ds, train, test)
    }

    fn commissioned(seed: u64) -> (SystolicAccelerator, Dataset, Vec<usize>, Vec<usize>) {
        let (ds, train, test) = iris_split();
        let mut accel = SystolicAccelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 6, 3), seed))
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        accel.retrain(&ds, &train, 0.2, 0.1, 30, &mut rng).unwrap();
        (accel, ds, train, test)
    }

    #[test]
    fn defect_free_forward_is_bit_identical_to_reference() {
        let mlp = Mlp::new(Topology::new(7, 9, 4), 21);
        let lut = SigmoidLut::new();
        let mut accel = SystolicAccelerator::new();
        accel.map_network(mlp.clone()).unwrap();
        let x: Vec<f64> = (0..7).map(|i| (i as f64) * 0.37 - 1.2).collect();
        let want = mlp.forward_fixed(&x, &lut);
        assert_eq!(accel.forward(&x).unwrap(), want, "fast path");
        assert_eq!(accel.forward_tiled(&x).unwrap(), want, "tiled walk");
        let rows: Vec<&[f64]> = vec![&x; 70];
        for t in accel.forward_batch(&rows).unwrap() {
            assert_eq!(t, want, "batch lane");
        }
    }

    #[test]
    fn commissioning_matches_the_spatial_array_bit_for_bit() {
        // Clean training takes the fast path (== forward_fixed), which
        // is exactly what the spatial array trains through — so both
        // topologies commission to identical weights and accuracy.
        let (mut sys, ds, train, test) = commissioned(11);
        let mut spatial = dta_core::Accelerator::new();
        spatial
            .map_network(Mlp::new(Topology::new(4, 6, 3), 11))
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        spatial
            .retrain(&ds, &train, 0.2, 0.1, 30, &mut rng)
            .unwrap();
        assert_eq!(Accel::network(&sys), spatial.network());
        assert_eq!(
            Accel::evaluate(&mut sys, &ds, &test).unwrap(),
            spatial.evaluate(&ds, &test).unwrap()
        );
    }

    #[test]
    fn selftest_localizes_planted_pe_defects_exactly() {
        let mut accel = SystolicAccelerator::new();
        accel
            .grid_mut()
            .inject(3, 5, PeFaultKind::DeadPe, Activation::Permanent, 1);
        accel.grid_mut().inject(
            12,
            0,
            PeFaultKind::StuckAccBit {
                bit: 9,
                stuck_one: true,
            },
            Activation::Permanent,
            2,
        );
        let diag = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        assert_eq!(diag.flagged, accel.fault_sites_sorted());
        assert_eq!(diag.operators_probed, accel.grid().geometry().pes());
        assert!(diag.memory.is_none());
    }

    impl SystolicAccelerator {
        fn fault_sites_sorted(&self) -> Vec<FaultSite> {
            let mut v = self.fault_sites();
            v.sort();
            v
        }
    }

    #[test]
    fn clean_grid_passes_selftest() {
        let mut accel = SystolicAccelerator::new();
        let diag = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        assert!(!diag.detected());
    }

    #[test]
    fn recovery_ladder_runs_native_rungs_and_beats_blind() {
        for seed in [3u64, 19] {
            let build = || {
                let (mut accel, ds, train, test) = commissioned(seed);
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA11);
                accel
                    .inject_defects(10, Activation::Permanent, &mut rng)
                    .unwrap();
                (accel, ds, train, test)
            };
            let base = RecoveryPolicy {
                retrain: dta_core::RungBudget {
                    max_epochs: 6,
                    wall_clock_ms: 60_000,
                },
                remap: dta_core::RungBudget {
                    max_epochs: 6,
                    wall_clock_ms: 60_000,
                },
                target_accuracy: 0.97,
                seed,
                ..RecoveryPolicy::default()
            };
            let blind_policy = RecoveryPolicy {
                use_remap: false,
                use_memory_repair: false,
                ..base.clone()
            };
            let (mut blind_accel, ds, train, test) = build();
            let blind = recover(
                &mut blind_accel,
                &ds,
                &train,
                &test,
                &Diagnosis::default(),
                &blind_policy,
            )
            .unwrap();
            let (mut full_accel, _, _, _) = build();
            let diagnosis = run_selftest(&mut full_accel, &BistConfig::default()).unwrap();
            assert!(diagnosis.detected(), "seed {seed}: BIST missed everything");
            let full = recover(&mut full_accel, &ds, &train, &test, &diagnosis, &base).unwrap();
            assert_eq!(
                blind.pre_recovery_accuracy, full.pre_recovery_accuracy,
                "seed {seed}: twins diverged before recovery"
            );
            assert!(
                full.accuracy >= blind.accuracy,
                "seed {seed}: recovered {} < blind {}",
                full.accuracy,
                blind.accuracy
            );
            // Unless rung 1 already hit the target, the grid-native
            // rungs must have run.
            if full.rungs[0].error.is_some() {
                let kinds: Vec<RecoveryRung> = full.rungs.iter().map(|r| r.rung).collect();
                assert!(kinds.contains(&RecoveryRung::PeBypass), "{kinds:?}");
                assert!(kinds.contains(&RecoveryRung::GridRemap), "{kinds:?}");
            }
        }
    }

    #[test]
    fn grid_remap_restores_contributions_a_bypass_loses() {
        // Kill a whole schedule row's PE in one column, bypass it, then
        // remap: the remapped grid must evaluate exactly like a healthy
        // grid (the spare row is defect-free).
        let (mut accel, ds, _train, test) = commissioned(5);
        accel
            .grid_mut()
            .inject(2, 4, PeFaultKind::DeadPe, Activation::Permanent, 77);
        let healthy = {
            let (mut h, _, _, _) = commissioned(5);
            Accel::evaluate(&mut h, &ds, &test).unwrap()
        };
        let diagnosis = run_selftest(&mut accel, &BistConfig::default()).unwrap();
        let policy = RecoveryPolicy::default();
        accel
            .apply_structural_rung(RecoveryRung::GridRemap, &diagnosis, &policy)
            .unwrap();
        assert_eq!(accel.grid().row_map()[2], 16, "row 2 steered to spare");
        assert_eq!(Accel::evaluate(&mut accel, &ds, &test).unwrap(), healthy);
    }

    #[test]
    fn no_spare_rows_is_a_typed_error_when_masking_forbidden() {
        let mut accel = SystolicAccelerator::new();
        accel
            .map_network(Mlp::new(Topology::new(4, 6, 3), 9))
            .unwrap();
        // Flag PEs on three distinct schedule rows — more than the two
        // spare rows can absorb.
        let mut diag = Diagnosis::default();
        for p in [0usize, 5, 9] {
            diag.flagged.push(FaultSite {
                layer: dta_ann::Layer::Hidden,
                neuron: 0,
                unit: UnitKind::Pe,
                synapse: Some(p),
            });
        }
        let policy = RecoveryPolicy {
            mask_unmappable: false,
            ..RecoveryPolicy::default()
        };
        assert_eq!(
            accel.apply_structural_rung(RecoveryRung::GridRemap, &diag, &policy),
            Err(RecoveryError::NoSpareLane {
                needed: 3,
                spares: 2
            })
        );
    }

    #[test]
    fn incremental_probe_covers_active_rows_and_quarantine_silences() {
        use std::sync::atomic::AtomicBool;
        let clear = AtomicBool::new(false);
        let cfg = BistConfig::default();
        let mut accel = SystolicAccelerator::new();
        let geom = accel.grid().geometry();
        // Plant one defect on an active row and one on a spare row:
        // the incremental probe must flag the first and skip the second
        // (traffic never routes through a spare).
        accel
            .grid_mut()
            .inject(3, 5, PeFaultKind::DeadPe, Activation::Permanent, 1);
        accel.grid_mut().inject(
            geom.phys_rows() - 1,
            0,
            PeFaultKind::DeadPe,
            Activation::Permanent,
            2,
        );
        let diag = accel.probe_touched(&cfg, &clear).unwrap().unwrap();
        assert_eq!(diag.operators_probed, geom.rows * geom.cols);
        assert_eq!(diag.flagged.len(), 1);
        assert_eq!(diag.flagged[0].synapse, Some(3));
        // Quarantine bypasses the flagged PE; the next probe skips it
        // and comes back clean.
        assert_eq!(accel.quarantine(&diag).unwrap(), 1);
        assert!(accel.grid().is_bypassed(3, 5));
        let after = accel.probe_touched(&cfg, &clear).unwrap().unwrap();
        assert!(!after.detected());
        assert_eq!(after.operators_probed, geom.rows * geom.cols - 1);
        // A tripped abort flag stops the probe with None.
        let tripped = AtomicBool::new(true);
        assert_eq!(accel.probe_touched(&cfg, &tripped).unwrap(), None);
    }

    #[test]
    fn systolic_rungs_time_out_typed_and_fall_through() {
        // Chaos-hook parity on the grid's ladder: stall each
        // grid-native rung past its deadline and check the typed
        // Timeout falls through to graceful degradation.
        for stalled in [RecoveryRung::PeBypass, RecoveryRung::GridRemap] {
            let (mut accel, ds, train, test) = commissioned(3);
            let mut rng = ChaCha8Rng::seed_from_u64(0xFA11);
            accel
                .inject_defects(6, Activation::Permanent, &mut rng)
                .unwrap();
            let diagnosis = run_selftest(&mut accel, &BistConfig::default()).unwrap();
            let tight = dta_core::RungBudget {
                max_epochs: 3,
                wall_clock_ms: 30,
            };
            let policy = RecoveryPolicy {
                retrain: tight,
                remap: tight,
                target_accuracy: 2.0,
                chaos_stall: Some((stalled, 80)),
                ..RecoveryPolicy::default()
            };
            let report = recover(&mut accel, &ds, &train, &test, &diagnosis, &policy).unwrap();
            let pos = report
                .rungs
                .iter()
                .position(|r| r.rung == stalled)
                .unwrap_or_else(|| panic!("{stalled} never ran"));
            assert!(
                matches!(
                    report.rungs[pos].error,
                    Some(dta_core::RecoveryError::Timeout { .. })
                ),
                "{stalled}: {:?}",
                report.rungs[pos].error
            );
            assert!(report.rungs.len() > pos + 1, "{stalled}: ladder stopped");
            assert_eq!(report.final_rung(), Some(RecoveryRung::Degrade));
        }
    }

    #[test]
    fn stalling_pe_probe_falls_through_instead_of_hanging() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cfg = BistConfig::default();
        let mut accel = SystolicAccelerator::new();
        accel.grid_mut().set_chaos_stall(Some(20));
        let abort = AtomicBool::new(false);
        // A watchdog-shaped supervisor: trip the flag mid-walk. The
        // stalling probe must come back `None` instead of walking all
        // 160 PEs at 20 ms each.
        let out = std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(60));
                abort.store(true, Ordering::Release);
            });
            accel.probe_touched(&cfg, &abort).unwrap()
        });
        assert_eq!(out, None, "stalled probe aborted, not completed");
    }

    #[test]
    fn mid_batch_injection_is_a_typed_error() {
        let mut accel = SystolicAccelerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        Accel::begin_batch(&mut accel).unwrap();
        assert_eq!(
            Accel::begin_batch(&mut accel),
            Err(AccelError::NotQuiescent { op: "begin_batch" })
        );
        assert_eq!(
            accel.inject_defects(1, Activation::Permanent, &mut rng),
            Err(AccelError::NotQuiescent {
                op: "inject_defects"
            })
        );
        assert!(!accel.grid().has_defects());
        Accel::end_batch(&mut accel);
        accel
            .inject_defects(1, Activation::Permanent, &mut rng)
            .unwrap();
        assert!(accel.grid().has_defects());
    }

    #[test]
    fn envelope_rejects_oversized_networks() {
        let mut accel = SystolicAccelerator::new();
        let err = accel
            .map_network(Mlp::new(Topology::new(91, 10, 10), 1))
            .unwrap_err();
        assert!(matches!(err, AccelError::DoesNotFit { .. }));
    }
}
