//! March C- memory BIST with row/column fault localization.
//!
//! The classic March C- element sequence
//! `⇑(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇑(r0)` detects
//! stuck-at, transition, address-decoder and state-coupling faults. It is
//! run twice — once with a solid background and once with a checkerboard
//! background — because a wired-OR bridge between two bitlines of the
//! same word is invisible when both bits always carry the same value.
//!
//! Every mismatched bit is logged per `(row, column)` cell and the
//! failure map is condensed to repair granularity: rows with a quarter
//! or more of their bits failing become *bad rows* (wordline faults),
//! columns failing in at least half the remaining rows become *bad
//! columns* (bitline, sense-amp, write-driver and bridge faults), and
//! the rest stay individual *bad cells* — exactly the units the spare
//! row/column steering of [`WeightMemory`] can repair.

use crate::array::{MemRepairError, WeightMemory};

/// Condensed result of a March pass, in logical array coordinates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MarchReport {
    /// Rows dominated by failures (wordline-class faults).
    pub bad_rows: Vec<usize>,
    /// Columns failing across rows (bitline-class faults), excluding
    /// cells already accounted to bad rows.
    pub bad_cols: Vec<usize>,
    /// Residual failing `(row, col)` cells outside bad rows/columns.
    pub bad_cells: Vec<(usize, usize)>,
    /// Total word reads performed.
    pub reads: usize,
    /// Total failing bit observations.
    pub fails: usize,
}

impl MarchReport {
    /// True when the pass observed no failure at all.
    pub fn clean(&self) -> bool {
        self.fails == 0
    }

    /// Number of distinct failing repair units (rows + cols + cells).
    pub fn units(&self) -> usize {
        self.bad_rows.len() + self.bad_cols.len() + self.bad_cells.len()
    }
}

/// Summary of a steering pass driven by a [`MarchReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// Rows steered onto spares.
    pub rows_steered: usize,
    /// Columns steered onto spares.
    pub cols_steered: usize,
    /// Failing units left unrepaired (spares exhausted or cell-level).
    pub unrepaired: usize,
}

/// Run the double-background March C- pass over the live address space
/// (through the current steering maps, so a repaired array tests clean).
/// Leaves the array power-on clean.
pub fn march_cminus(mem: &mut WeightMemory) -> MarchReport {
    let abort = std::sync::atomic::AtomicBool::new(false);
    march_cminus_guarded(mem, &abort).expect("march cannot abort with an untripped flag")
}

/// [`march_cminus`] under an abort flag: a watchdog (or any supervisor)
/// that trips `abort` makes the walk stop at the next address instead
/// of running to completion — the mission runtime uses this so a
/// stalling memory self-test (see
/// [`WeightMemory::set_chaos_stall`]) falls through with a typed
/// timeout rather than hanging the serving loop. Returns `None` when
/// aborted; the array is left power-on clean either way.
pub fn march_cminus_guarded(
    mem: &mut WeightMemory,
    abort: &std::sync::atomic::AtomicBool,
) -> Option<MarchReport> {
    use std::sync::atomic::Ordering;
    let aborted = |mem: &mut WeightMemory| {
        if abort.load(Ordering::Acquire) {
            mem.reset_state();
            true
        } else {
            false
        }
    };
    let stall = |mem: &WeightMemory| {
        if let Some(ms) = mem.chaos_stall() {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    };
    let geom = mem.geometry();
    let rows = geom.data_rows();
    let slots = geom.words_per_row();
    let code = geom.code_bits();
    let mask: u32 = if code == 32 {
        u32::MAX
    } else {
        (1 << code) - 1
    };
    // Per-cell failure map: one bit per (row, col), packed row-major.
    let cols = slots * code;
    let words_per_row_map = cols.div_ceil(64);
    let mut fail_bits = vec![0u64; rows * words_per_row_map];
    let mut report = MarchReport::default();

    let mark =
        |fail_bits: &mut Vec<u64>, report: &mut MarchReport, row: usize, slot: usize, diff: u32| {
            for b in 0..code {
                if diff >> b & 1 == 1 {
                    let col = slot * code + b;
                    let idx = row * words_per_row_map + col / 64;
                    if fail_bits[idx] >> (col % 64) & 1 == 0 {
                        fail_bits[idx] |= 1 << (col % 64);
                    }
                    report.fails += 1;
                }
            }
        };

    // Background value for one address: solid zero or per-row/slot
    // checkerboard so bridged neighbors carry opposite values.
    let backgrounds: [Box<dyn Fn(usize, usize) -> u32>; 2] = [
        Box::new(|_, _| 0u32),
        Box::new(move |row, slot| {
            let alt = 0x2AAAAAu32 & mask;
            if (row + slot) % 2 == 0 {
                alt
            } else {
                !alt & mask
            }
        }),
    ];

    for bg in &backgrounds {
        let asc: Vec<(usize, usize)> = (0..rows)
            .flat_map(|r| (0..slots).map(move |s| (r, s)))
            .collect();
        let desc: Vec<(usize, usize)> = asc.iter().rev().copied().collect();

        // ⇑(w0)
        stall(mem);
        for &(r, s) in &asc {
            if aborted(mem) {
                return None;
            }
            mem.bist_write(r, s, bg(r, s));
        }
        // ⇑(r0, w1); ⇑(r1, w0); ⇓(r0, w1); ⇓(r1, w0)
        for (order, flip) in [(&asc, false), (&asc, true), (&desc, false), (&desc, true)] {
            stall(mem);
            for &(r, s) in order {
                if aborted(mem) {
                    return None;
                }
                let expect = if flip { !bg(r, s) & mask } else { bg(r, s) };
                let got = mem.bist_read(r, s);
                report.reads += 1;
                mark(&mut fail_bits, &mut report, r, s, got ^ expect);
                mem.bist_write(r, s, !expect & mask);
            }
        }
        // ⇑(r0)
        stall(mem);
        for &(r, s) in &asc {
            if aborted(mem) {
                return None;
            }
            let got = mem.bist_read(r, s);
            report.reads += 1;
            mark(&mut fail_bits, &mut report, r, s, got ^ bg(r, s));
        }
    }

    // Condense the per-cell failure map to repair granularity.
    let cell_failed = |row: usize, col: usize| -> bool {
        fail_bits[row * words_per_row_map + col / 64] >> (col % 64) & 1 == 1
    };
    let mut row_counts = vec![0usize; rows];
    let mut col_counts = vec![0usize; cols];
    for (row, row_count) in row_counts.iter_mut().enumerate() {
        for (col, col_count) in col_counts.iter_mut().enumerate() {
            if cell_failed(row, col) {
                *row_count += 1;
                *col_count += 1;
            }
        }
    }
    let bad_row = |r: usize| row_counts[r] >= cols.div_ceil(4);
    report.bad_rows = (0..rows).filter(|&r| bad_row(r)).collect();
    let live_rows = rows - report.bad_rows.len();
    for col in 0..cols {
        let outside = (0..rows)
            .filter(|&r| !bad_row(r) && cell_failed(r, col))
            .count();
        if outside >= (live_rows.max(1)).div_ceil(2).max(2) {
            report.bad_cols.push(col);
        }
    }
    for row in 0..rows {
        if bad_row(row) {
            continue;
        }
        for col in 0..cols {
            if cell_failed(row, col) && !report.bad_cols.contains(&col) {
                report.bad_cells.push((row, col));
            }
        }
    }

    mem.reset_state();
    Some(report)
}

/// Steer the units a March pass flagged onto spare rows/columns:
/// bad rows first, then bad columns, then rows holding cell clusters a
/// SEC-DED word cannot absorb (two or more failing bits in one word, or
/// any failing bit when ECC is off). Stops when spares run out.
pub fn apply_repairs(mem: &mut WeightMemory, report: &MarchReport) -> RepairSummary {
    let code = mem.geometry().code_bits();
    let ecc = mem.geometry().ecc;
    let mut summary = RepairSummary::default();
    for &row in &report.bad_rows {
        match mem.steer_row(row) {
            Ok(()) => summary.rows_steered += 1,
            Err(MemRepairError::NoSpareRow) => summary.unrepaired += 1,
            Err(_) => summary.unrepaired += 1,
        }
    }
    for &col in &report.bad_cols {
        match mem.steer_col(col) {
            Ok(()) => summary.cols_steered += 1,
            Err(_) => summary.unrepaired += 1,
        }
    }
    // Group residual cells by (row, word slot); a single SEC-DED word
    // self-heals one bad bit, so only clusters force a row repair.
    let mut rows_to_fix: Vec<usize> = Vec::new();
    let mut by_word: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for &(row, col) in &report.bad_cells {
        *by_word.entry((row, col / code)).or_insert(0) += 1;
    }
    for (&(row, _), &count) in &by_word {
        let needs_repair = if ecc { count >= 2 } else { count >= 1 };
        if needs_repair && !rows_to_fix.contains(&row) {
            rows_to_fix.push(row);
        }
    }
    rows_to_fix.sort_unstable();
    for row in rows_to_fix {
        match mem.steer_row(row) {
            Ok(()) => summary.rows_steered += 1,
            Err(_) => summary.unrepaired += 1,
        }
    }
    summary
}
