//! Bit-cell array model of the accelerator's weight store.
//!
//! The spatially expanded design keeps one weight row per neuron lane:
//! hidden lanes first, then output lanes, each row wide enough for the
//! largest synapse count plus a bias slot. A [`WeightMemory`] models that
//! store as a physical bit-cell array with optional SEC-DED ECC columns,
//! spare rows/columns for post-test steering, and **array-structured
//! defects** — stuck cells, whole row/column failures, sense-amp and
//! write-driver faults, and bitline bridges — each optionally carrying a
//! [`Activation`] lifetime (permanent / transient / intermittent) on the
//! same seeded-RNG state machine as transistor defects.
//!
//! Weight fetches follow the companion-core discipline: the current
//! weight is written into its word, then the word is read back through
//! the fault pipeline (and the ECC decoder when enabled). With no
//! defects the fetch is exactly the identity on the Q6.10 bit pattern,
//! so attaching a healthy array is bit-invisible.

use std::fmt;

use dta_fixed::Fx;
use dta_transistor::{Activation, ActivationState};
use rand::Rng;

use crate::ecc::{self, EccStatus};

/// Width of a raw (unprotected) weight word in bits.
pub const RAW_BITS: u32 = 16;

/// Which bank of weight rows an address falls in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bank {
    /// Hidden-layer lanes: rows `0..hidden_rows`.
    Hidden,
    /// Output-layer lanes: rows `hidden_rows..hidden_rows + output_rows`.
    Output,
}

/// Physical organization of the weight store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemGeometry {
    /// Rows holding hidden-lane weights (one per physical hidden lane).
    pub hidden_rows: usize,
    /// Rows holding output-lane weights (one per physical output lane).
    pub output_rows: usize,
    /// Synapse slots per hidden row (the bias occupies one more slot).
    pub hidden_synapses: usize,
    /// Synapse slots per output row (the bias occupies one more slot).
    pub output_synapses: usize,
    /// Spare rows available for post-BIST row steering.
    pub spare_rows: usize,
    /// Spare bit columns available for post-BIST column steering.
    pub spare_cols: usize,
    /// Protect every word with the SEC-DED (22,16) code of [`crate::ecc`].
    pub ecc: bool,
}

impl MemGeometry {
    /// Geometry matching the paper's 90-10-10 spatially expanded design,
    /// with ECC on and a small spare budget (2 rows, 8 bit columns).
    pub fn accelerator() -> MemGeometry {
        MemGeometry {
            hidden_rows: 10,
            output_rows: 10,
            hidden_synapses: 90,
            output_synapses: 10,
            spare_rows: 2,
            spare_cols: 8,
            ecc: true,
        }
    }

    /// Geometry for a logical `inputs → hidden → outputs` network mapped
    /// one lane per neuron (used by campaigns without a physical array).
    pub fn for_network(inputs: usize, hidden: usize, outputs: usize, ecc: bool) -> MemGeometry {
        MemGeometry {
            hidden_rows: hidden,
            output_rows: outputs,
            hidden_synapses: inputs,
            output_synapses: hidden,
            spare_rows: 2,
            spare_cols: 8,
            ecc,
        }
    }

    /// Bits per stored word: 22 with ECC, 16 raw.
    pub fn code_bits(&self) -> usize {
        if self.ecc {
            ecc::CODE_BITS as usize
        } else {
            RAW_BITS as usize
        }
    }

    /// Word slots per row (worst-case synapse count plus the bias slot).
    pub fn words_per_row(&self) -> usize {
        self.hidden_synapses.max(self.output_synapses) + 1
    }

    /// Rows holding live weights (hidden + output banks).
    pub fn data_rows(&self) -> usize {
        self.hidden_rows + self.output_rows
    }

    /// Total physical rows including spares.
    pub fn total_rows(&self) -> usize {
        self.data_rows() + self.spare_rows
    }

    /// Bit columns holding live words.
    pub fn data_cols(&self) -> usize {
        self.words_per_row() * self.code_bits()
    }

    /// Total physical bit columns including spares.
    pub fn total_cols(&self) -> usize {
        self.data_cols() + self.spare_cols
    }

    /// Number of live bit cells — the denominator for defect densities.
    pub fn data_cells(&self) -> usize {
        self.data_rows() * self.data_cols()
    }
}

/// One array-structured defect, in **physical** array coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemDefect {
    /// One bit cell reads as `value` regardless of what was written.
    StuckCell {
        /// Physical row of the cell.
        row: usize,
        /// Physical bit column of the cell.
        col: usize,
        /// The value the cell is stuck at.
        value: bool,
    },
    /// A wordline failure: every read of the row returns all ones (the
    /// precharged bitlines are never discharged).
    RowStuck {
        /// Physical row whose wordline is broken.
        row: usize,
    },
    /// A bitline shorted to a rail: every read of the column sees `value`.
    ColStuck {
        /// Physical bit column.
        col: usize,
        /// The rail the bitline is shorted to.
        value: bool,
    },
    /// A faulty sense amplifier: the column's read value is inverted.
    SenseAmp {
        /// Physical bit column.
        col: usize,
    },
    /// A dead write driver: writes to the column are lost and its cells
    /// hold their power-on zero.
    WriteDriver {
        /// Physical bit column.
        col: usize,
    },
    /// A bridge between adjacent bitlines `col` and `col + 1` (within one
    /// word slot): both columns read the wired-OR of the two cells.
    Bridge {
        /// Left column of the bridged pair.
        col: usize,
    },
}

impl fmt::Display for MemDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemDefect::StuckCell { row, col, value } => {
                write!(f, "stuck-cell r{row} c{col} ={}", u8::from(*value))
            }
            MemDefect::RowStuck { row } => write!(f, "row-stuck r{row}"),
            MemDefect::ColStuck { col, value } => {
                write!(f, "col-stuck c{col} ={}", u8::from(*value))
            }
            MemDefect::SenseAmp { col } => write!(f, "sense-amp c{col}"),
            MemDefect::WriteDriver { col } => write!(f, "write-driver c{col}"),
            MemDefect::Bridge { col } => write!(f, "bridge c{col}-c{}", col + 1),
        }
    }
}

/// A defect plus its lifetime state (`None` = permanent, always active).
#[derive(Clone, Debug)]
pub struct MemDefectState {
    /// The defect site and class.
    pub defect: MemDefect,
    /// Lifetime state machine for transient/intermittent defects;
    /// `None` for permanent ones (the vectorizable fast path).
    pub state: Option<ActivationState>,
}

/// Error returned when a repair runs out of spare resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemRepairError {
    /// All spare rows are already in use.
    NoSpareRow,
    /// All spare bit columns are already in use.
    NoSpareCol,
}

impl fmt::Display for MemRepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemRepairError::NoSpareRow => write!(f, "no spare row left"),
            MemRepairError::NoSpareCol => write!(f, "no spare column left"),
        }
    }
}

impl std::error::Error for MemRepairError {}

/// Running ECC bookkeeping for a [`WeightMemory`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EccCounters {
    /// Words whose single-bit error the decoder corrected.
    pub corrected: u64,
    /// Words with a detected-but-uncorrectable double error.
    pub uncorrectable: u64,
}

/// Result of a full ECC scrub pass over the live words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Words visited (rows × slots).
    pub words: usize,
    /// Words where at least one test pattern needed a single-bit fix.
    pub corrected: usize,
    /// `(row, slot)` addresses the code could not protect.
    pub uncorrectable: Vec<(usize, usize)>,
}

/// The weight store: a bit-cell array with defects, ECC, and steering.
#[derive(Clone, Debug)]
pub struct WeightMemory {
    geom: MemGeometry,
    /// Physical cell storage, row-major over `total_rows × total_cols`.
    cells: Vec<bool>,
    defects: Vec<MemDefectState>,
    records: Vec<String>,
    /// Logical data row → physical row (identity until steered).
    row_map: Vec<usize>,
    /// Logical data bit column → physical bit column.
    col_map: Vec<usize>,
    spare_rows_used: usize,
    spare_cols_used: usize,
    ecc_counters: EccCounters,
    /// Scratch activation mask, one slot per defect, reused per access.
    active: Vec<bool>,
    /// Chaos hook: milliseconds each March BIST element walk stalls
    /// (a model of pathologically slow silicon; `None` in production).
    chaos_stall_ms: Option<u64>,
}

impl WeightMemory {
    /// A pristine array with the given geometry (cells at power-on zero).
    pub fn new(geom: MemGeometry) -> WeightMemory {
        WeightMemory {
            geom,
            cells: vec![false; geom.total_rows() * geom.total_cols()],
            defects: Vec::new(),
            records: Vec::new(),
            row_map: (0..geom.data_rows()).collect(),
            col_map: (0..geom.data_cols()).collect(),
            spare_rows_used: 0,
            spare_cols_used: 0,
            ecc_counters: EccCounters::default(),
            active: Vec::new(),
            chaos_stall_ms: None,
        }
    }

    /// Chaos hook: make every March BIST element walk stall `ms`
    /// milliseconds, so watchdog fall-through paths can be exercised
    /// against a hanging memory self-test. `None` disables the hook.
    pub fn set_chaos_stall(&mut self, ms: Option<u64>) {
        self.chaos_stall_ms = ms;
    }

    /// The configured March-walk stall, if any.
    pub fn chaos_stall(&self) -> Option<u64> {
        self.chaos_stall_ms
    }

    /// The array's geometry.
    pub fn geometry(&self) -> MemGeometry {
        self.geom
    }

    /// Injected defects with their lifetime state.
    pub fn defects(&self) -> &[MemDefectState] {
        &self.defects
    }

    /// Human-readable injection log, one line per defect.
    pub fn records(&self) -> &[String] {
        &self.records
    }

    /// ECC correction/detection counters accumulated by fetches.
    pub fn ecc_counters(&self) -> EccCounters {
        self.ecc_counters
    }

    /// `(used, budget)` spare-row accounting.
    pub fn spare_rows(&self) -> (usize, usize) {
        (self.spare_rows_used, self.geom.spare_rows)
    }

    /// `(used, budget)` spare-column accounting.
    pub fn spare_cols(&self) -> (usize, usize) {
        (self.spare_cols_used, self.geom.spare_cols)
    }

    /// True when the array cannot disturb any fetch: no defects injected.
    /// Transparent arrays are skipped entirely on the forward path, so
    /// attaching one is guaranteed bit-invisible.
    pub fn is_transparent(&self) -> bool {
        self.defects.is_empty()
    }

    /// True when every defect is permanent, so fetches are pure functions
    /// of the address and written word and the 64-lane batch path stays
    /// bit-identical to scalar evaluation order.
    pub fn vectorizable(&self) -> bool {
        self.defects.iter().all(|d| d.state.is_none())
    }

    /// Power-on reset: clear every cell, rewind dynamic defect state and
    /// ECC counters. Steering survives (it is a fuse-style repair).
    pub fn reset_state(&mut self) {
        self.cells.fill(false);
        for d in &mut self.defects {
            if let Some(state) = &mut d.state {
                state.reset();
            }
        }
        self.ecc_counters = EccCounters::default();
    }

    // ------------------------------------------------------------------
    // Defect injection
    // ------------------------------------------------------------------

    /// Inject one random defect with the given lifetime, drawing the
    /// class, site and (for dynamic lifetimes) state seed from `rng`.
    /// Returns the record line appended to [`records`](Self::records).
    ///
    /// Class mix: 60 % stuck cells, 10 % sense-amp, 10 % write-driver,
    /// 10 % bitline bridges, 5 % column failures, 5 % row failures —
    /// cell defects dominate, matching published SRAM failure Paretos.
    pub fn inject_random<R: Rng + ?Sized>(
        &mut self,
        activation: Activation,
        rng: &mut R,
    ) -> String {
        let geom = self.geom;
        let code = geom.code_bits();
        let pick = rng.random_range(0..100u32);
        let defect = if pick < 60 {
            MemDefect::StuckCell {
                row: rng.random_range(0..geom.data_rows()),
                col: rng.random_range(0..geom.data_cols()),
                value: rng.random_bool(0.5),
            }
        } else if pick < 70 {
            MemDefect::SenseAmp {
                col: rng.random_range(0..geom.data_cols()),
            }
        } else if pick < 80 {
            MemDefect::WriteDriver {
                col: rng.random_range(0..geom.data_cols()),
            }
        } else if pick < 90 {
            // Keep the bridged pair inside one word slot so a fetch (which
            // writes the whole word before reading it) stays pure.
            let slot = rng.random_range(0..geom.words_per_row());
            let bit = rng.random_range(0..code - 1);
            MemDefect::Bridge {
                col: slot * code + bit,
            }
        } else if pick < 95 {
            MemDefect::ColStuck {
                col: rng.random_range(0..geom.data_cols()),
                value: rng.random_bool(0.5),
            }
        } else {
            MemDefect::RowStuck {
                row: rng.random_range(0..geom.data_rows()),
            }
        };
        let state = if activation.is_permanent() {
            None
        } else {
            Some(ActivationState::new(activation, rng.random::<u64>()))
        };
        let record = format!("mem {defect}: {activation}");
        self.records.push(record.clone());
        self.defects.push(MemDefectState { defect, state });
        record
    }

    /// Place one specific defect (deterministic counterpart of
    /// [`inject_random`](Self::inject_random), used by diagnosis tests
    /// and targeted experiments). `state` carries the lifetime; `None`
    /// means permanent.
    pub fn push_defect(&mut self, defect: MemDefect, state: Option<ActivationState>) {
        let lifetime = match &state {
            None => "permanent".to_string(),
            Some(_) => "dynamic".to_string(),
        };
        self.records.push(format!("mem {defect}: {lifetime}"));
        self.defects.push(MemDefectState { defect, state });
    }

    /// Inject `n` random defects; returns their record lines.
    pub fn inject_many<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Vec<String> {
        (0..n)
            .map(|_| self.inject_random(activation, rng))
            .collect()
    }

    /// Inject defects at a target density (defects per live bit cell),
    /// rounding to the nearest whole count. Returns the record lines.
    pub fn inject_density<R: Rng + ?Sized>(
        &mut self,
        density: f64,
        activation: Activation,
        rng: &mut R,
    ) -> Vec<String> {
        let n = (density * self.geom.data_cells() as f64).round() as usize;
        self.inject_many(n, activation, rng)
    }

    // ------------------------------------------------------------------
    // Cell-level access with the fault pipeline
    // ------------------------------------------------------------------

    fn cell(&self, prow: usize, pcol: usize) -> bool {
        self.cells[prow * self.geom.total_cols() + pcol]
    }

    fn set_cell(&mut self, prow: usize, pcol: usize, v: bool) {
        let idx = prow * self.geom.total_cols() + pcol;
        self.cells[idx] = v;
    }

    /// Advance every dynamic defect by one access and refresh the
    /// activation scratch mask (permanent defects are always active).
    fn advance_access(&mut self) {
        self.active.clear();
        let active = &mut self.active;
        for d in &mut self.defects {
            active.push(match &mut d.state {
                None => true,
                Some(state) => state.advance(),
            });
        }
    }

    /// Write one word through the write-path faults (write drivers lose
    /// the bit, stuck cells ignore it).
    fn write_word_phys(&mut self, prow: usize, slot: usize, bits: u32) {
        let code = self.geom.code_bits();
        for b in 0..code {
            let pcol = self.col_map[slot * code + b];
            let mut v = bits >> b & 1 == 1;
            for i in 0..self.defects.len() {
                if !self.active[i] {
                    continue;
                }
                match self.defects[i].defect {
                    MemDefect::WriteDriver { col } if col == pcol => v = false,
                    MemDefect::StuckCell { row, col, value } if row == prow && col == pcol => {
                        v = value
                    }
                    _ => {}
                }
            }
            self.set_cell(prow, pcol, v);
        }
    }

    /// Read one word through the read-path faults: cell/bridge first,
    /// then bitline (column stuck), wordline (row stuck), sense amp.
    fn read_word_phys(&self, prow: usize, slot: usize) -> u32 {
        let code = self.geom.code_bits();
        let mut bits = 0u32;
        for b in 0..code {
            let pcol = self.col_map[slot * code + b];
            let mut v = self.cell(prow, pcol);
            for (i, d) in self.defects.iter().enumerate() {
                if !self.active[i] {
                    continue;
                }
                match d.defect {
                    MemDefect::StuckCell { row, col, value } if row == prow && col == pcol => {
                        v = value
                    }
                    MemDefect::Bridge { col } if col == pcol => v |= self.cell(prow, col + 1),
                    MemDefect::Bridge { col } if col + 1 == pcol => v |= self.cell(prow, col),
                    _ => {}
                }
            }
            for (i, d) in self.defects.iter().enumerate() {
                if !self.active[i] {
                    continue;
                }
                match d.defect {
                    MemDefect::ColStuck { col, value } if col == pcol => v = value,
                    _ => {}
                }
            }
            for (i, d) in self.defects.iter().enumerate() {
                if !self.active[i] {
                    continue;
                }
                match d.defect {
                    MemDefect::RowStuck { row } if row == prow => v = true,
                    _ => {}
                }
            }
            for (i, d) in self.defects.iter().enumerate() {
                if !self.active[i] {
                    continue;
                }
                match d.defect {
                    MemDefect::SenseAmp { col } if col == pcol => v = !v,
                    _ => {}
                }
            }
            if v {
                bits |= 1 << b;
            }
        }
        bits
    }

    /// Logical data row for a bank-relative lane index.
    pub fn row_of(&self, bank: Bank, lane: usize) -> usize {
        match bank {
            Bank::Hidden => {
                assert!(
                    lane < self.geom.hidden_rows,
                    "hidden lane {lane} out of range"
                );
                lane
            }
            Bank::Output => {
                assert!(
                    lane < self.geom.output_rows,
                    "output lane {lane} out of range"
                );
                self.geom.hidden_rows + lane
            }
        }
    }

    /// The word slot holding the bias for a bank.
    pub fn bias_slot(&self, bank: Bank) -> usize {
        match bank {
            Bank::Hidden => self.geom.hidden_synapses,
            Bank::Output => self.geom.output_synapses,
        }
    }

    /// Fetch one weight through the array: the companion core writes the
    /// current value into its word, then the word is read back through
    /// the fault pipeline (and the ECC decoder when enabled). One fetch
    /// counts as one access for transient/intermittent defects.
    pub fn fetch(&mut self, bank: Bank, lane: usize, slot: usize, w: Fx) -> Fx {
        debug_assert!(slot < self.geom.words_per_row(), "slot {slot} out of range");
        let lrow = self.row_of(bank, lane);
        let prow = self.row_map[lrow];
        let raw = w.to_bits();
        let stored = if self.geom.ecc {
            ecc::encode(raw)
        } else {
            u32::from(raw)
        };
        self.advance_access();
        self.write_word_phys(prow, slot, stored);
        let got = self.read_word_phys(prow, slot);
        if self.geom.ecc {
            let (data, status) = ecc::decode(got);
            match status {
                EccStatus::Clean => {}
                EccStatus::Corrected => self.ecc_counters.corrected += 1,
                EccStatus::DoubleDetected => self.ecc_counters.uncorrectable += 1,
            }
            Fx::from_bits(data)
        } else {
            Fx::from_bits(got as u16)
        }
    }

    /// Raw BIST write of a full code word at a logical `(row, slot)`
    /// address (no ECC involvement). One access.
    pub fn bist_write(&mut self, row: usize, slot: usize, bits: u32) {
        let prow = self.row_map[row];
        self.advance_access();
        self.write_word_phys(prow, slot, bits);
    }

    /// Raw BIST read of a full code word. One access.
    pub fn bist_read(&mut self, row: usize, slot: usize) -> u32 {
        let prow = self.row_map[row];
        self.advance_access();
        self.read_word_phys(prow, slot)
    }

    // ------------------------------------------------------------------
    // Repair: ECC scrub and spare steering
    // ------------------------------------------------------------------

    /// Walk every live word with three test patterns through the full
    /// write/read/decode path and report which addresses the code
    /// corrects and which it cannot protect. Leaves the array power-on
    /// clean (scrubbing is state-neutral).
    pub fn scrub(&mut self) -> ScrubReport {
        let geom = self.geom;
        let mut report = ScrubReport::default();
        for row in 0..geom.data_rows() {
            for slot in 0..geom.words_per_row() {
                report.words += 1;
                let mut corrected = false;
                let mut broken = false;
                for pattern in [0x0000u16, 0xFFFF, 0xA5A5] {
                    let prow = self.row_map[row];
                    let stored = if geom.ecc {
                        ecc::encode(pattern)
                    } else {
                        u32::from(pattern)
                    };
                    self.advance_access();
                    self.write_word_phys(prow, slot, stored);
                    let got = self.read_word_phys(prow, slot);
                    if geom.ecc {
                        let (data, status) = ecc::decode(got);
                        corrected |= status == EccStatus::Corrected;
                        broken |= status == EccStatus::DoubleDetected || data != pattern;
                    } else {
                        broken |= got != u32::from(pattern);
                    }
                }
                if broken {
                    report.uncorrectable.push((row, slot));
                } else if corrected {
                    report.corrected += 1;
                }
            }
        }
        self.reset_state();
        report
    }

    /// Steer a logical data row onto the next spare physical row.
    /// Power-cycles the array so steered-out cells hold benign zeros.
    pub fn steer_row(&mut self, row: usize) -> Result<(), MemRepairError> {
        if self.spare_rows_used >= self.geom.spare_rows {
            return Err(MemRepairError::NoSpareRow);
        }
        assert!(row < self.geom.data_rows(), "row {row} out of range");
        self.row_map[row] = self.geom.data_rows() + self.spare_rows_used;
        self.spare_rows_used += 1;
        self.cells.fill(false);
        Ok(())
    }

    /// Steer a logical bit column onto the next spare physical column.
    /// Power-cycles the array so steered-out cells hold benign zeros.
    pub fn steer_col(&mut self, col: usize) -> Result<(), MemRepairError> {
        if self.spare_cols_used >= self.geom.spare_cols {
            return Err(MemRepairError::NoSpareCol);
        }
        assert!(col < self.geom.data_cols(), "column {col} out of range");
        self.col_map[col] = self.geom.data_cols() + self.spare_cols_used;
        self.spare_cols_used += 1;
        self.cells.fill(false);
        Ok(())
    }
}
