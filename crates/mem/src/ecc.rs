//! SEC-DED extended Hamming (22,16) code for the weight store.
//!
//! Each Q6.10 weight word (16 bits) is protected by 5 Hamming check bits
//! plus one overall-parity bit, the classic single-error-correct /
//! double-error-detect organization used by SRAM macros. Codeword layout
//! (LSB first):
//!
//! * bit 0 — overall parity (makes the XOR of all 22 bits even),
//! * bits at power-of-two positions 1, 2, 4, 8, 16 — Hamming check bits,
//! * the remaining 16 positions — data bits in ascending order.
//!
//! [`decode`] distinguishes three outcomes: a clean word, a corrected
//! single-bit error (any of the 22 positions, including the parity bits
//! themselves), and a detected-but-uncorrectable double error. Triple and
//! heavier errors are outside the code's guarantee and may alias.

/// Data bits per codeword (one Q6.10 weight).
pub const DATA_BITS: u32 = 16;

/// Total bits per codeword: 16 data + 5 Hamming check + 1 overall parity.
pub const CODE_BITS: u32 = 22;

/// Codeword positions holding data bits, LSB of the data word first
/// (every position in `1..22` that is not a power of two).
const DATA_POS: [u32; 16] = [3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15, 17, 18, 19, 20, 21];

/// Outcome of decoding one codeword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EccStatus {
    /// No error detected.
    Clean,
    /// A single-bit error was detected and corrected.
    Corrected,
    /// A double-bit error was detected; the returned data is unreliable.
    DoubleDetected,
}

/// Encode a 16-bit data word into a 22-bit SEC-DED codeword.
pub fn encode(data: u16) -> u32 {
    let mut cw: u32 = 0;
    for (i, &pos) in DATA_POS.iter().enumerate() {
        if data >> i & 1 == 1 {
            cw |= 1 << pos;
        }
    }
    for k in 0..5u32 {
        let check = 1u32 << k;
        let mut parity = 0u32;
        for pos in 1..CODE_BITS {
            if pos & check != 0 {
                parity ^= cw >> pos & 1;
            }
        }
        if parity == 1 {
            cw |= 1 << check;
        }
    }
    let mut overall = 0u32;
    for pos in 1..CODE_BITS {
        overall ^= cw >> pos & 1;
    }
    cw | overall
}

/// Decode a 22-bit codeword back to its data word plus an error verdict.
///
/// Single-bit errors (any position) are corrected; double-bit errors are
/// reported as [`EccStatus::DoubleDetected`] and never silently
/// miscorrected into a different clean word.
pub fn decode(cw: u32) -> (u16, EccStatus) {
    let mut syndrome = 0u32;
    for pos in 1..CODE_BITS {
        if cw >> pos & 1 == 1 {
            syndrome ^= pos;
        }
    }
    let mut overall = 0u32;
    for pos in 0..CODE_BITS {
        overall ^= cw >> pos & 1;
    }
    let mut fixed = cw;
    let status = if syndrome == 0 && overall == 0 {
        EccStatus::Clean
    } else if overall == 1 {
        // A single flipped bit: the syndrome names its position (0 means
        // the overall-parity bit itself). A syndrome above the codeword
        // width can only arise from ≥3 errors, which the code cannot
        // correct; the flip below is then harmless to the data bits.
        fixed ^= 1u32.checked_shl(syndrome).unwrap_or(0);
        EccStatus::Corrected
    } else {
        EccStatus::DoubleDetected
    };
    let mut data = 0u16;
    for (i, &pos) in DATA_POS.iter().enumerate() {
        if fixed >> pos & 1 == 1 {
            data |= 1 << i;
        }
    }
    (data, status)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_identity_for_every_word() {
        for w in 0..=u16::MAX {
            let cw = encode(w);
            assert_eq!(cw >> CODE_BITS, 0, "codeword wider than 22 bits");
            assert_eq!(decode(cw), (w, EccStatus::Clean), "word {w:#06x}");
        }
    }

    #[test]
    fn every_single_flip_is_corrected() {
        for w in [0u16, 0xFFFF, 0xA5A5, 0x1234, 0x8001] {
            let cw = encode(w);
            for bit in 0..CODE_BITS {
                let (data, status) = decode(cw ^ (1 << bit));
                assert_eq!(status, EccStatus::Corrected, "word {w:#06x} bit {bit}");
                assert_eq!(data, w, "word {w:#06x} bit {bit}");
            }
        }
    }

    #[test]
    fn every_double_flip_is_detected() {
        let w = 0x6B2Du16;
        let cw = encode(w);
        for a in 0..CODE_BITS {
            for b in (a + 1)..CODE_BITS {
                let (_, status) = decode(cw ^ (1 << a) ^ (1 << b));
                assert_eq!(status, EccStatus::DoubleDetected, "bits {a},{b}");
            }
        }
    }
}
