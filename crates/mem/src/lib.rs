#![warn(missing_docs)]

//! Bit-cell model of the accelerator's weight/activation store with
//! array-structured SRAM defect injection, SEC-DED ECC, March BIST and
//! spare row/column repair.
//!
//! The paper's defect story (and this reproduction through PR 6) injects
//! faults only into datapath gates; real accelerators die at least as
//! often in their SRAMs. This crate opens that second fault surface:
//!
//! * [`WeightMemory`] — the weight store as a physical bit-cell array
//!   (hidden rows, output rows, spare rows/columns), fetched with the
//!   companion-core write-then-read discipline so a healthy array is
//!   exactly bit-invisible on the Q6.10 forward path;
//! * [`MemDefect`] — stuck bit cells, whole row/column failures,
//!   sense-amp and write-driver faults, and bitline bridges, each riding
//!   the same seeded [`Activation`] lifetime taxonomy
//!   (permanent / transient / intermittent) as transistor defects;
//! * [`ecc`] — a SEC-DED (22,16) extended Hamming code protecting every
//!   stored word;
//! * [`march_cminus`] — a double-background March C- BIST that localizes
//!   faults to row/column/cell granularity, and [`apply_repairs`] which
//!   steers the flagged units onto spares.
//!
//! Everything is deterministic from its seed: injection draws from a
//! caller-provided RNG and dynamic defect lifetimes use the same
//! `ActivationState` ChaCha8 state machine as the transistor layer.

pub mod array;
pub mod ecc;
pub mod march;

pub use array::{
    Bank, EccCounters, MemDefect, MemDefectState, MemGeometry, MemRepairError, ScrubReport,
    WeightMemory, RAW_BITS,
};
pub use ecc::{decode, encode, EccStatus, CODE_BITS, DATA_BITS};
pub use march::{apply_repairs, march_cminus, march_cminus_guarded, MarchReport, RepairSummary};

// Re-exported so downstream crates name one source for the lifetime taxonomy.
pub use dta_transistor::{Activation, ActivationState};

#[cfg(test)]
mod tests {
    use super::*;
    use dta_fixed::Fx;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_geom(ecc: bool) -> MemGeometry {
        MemGeometry {
            hidden_rows: 4,
            output_rows: 3,
            hidden_synapses: 6,
            output_synapses: 4,
            spare_rows: 2,
            spare_cols: 4,
            ecc,
        }
    }

    #[test]
    fn healthy_fetch_is_identity() {
        for ecc in [false, true] {
            let mut mem = WeightMemory::new(small_geom(ecc));
            assert!(mem.is_transparent());
            for raw in [0u16, 0xFFFF, 0x8001, 0x0400, 0x1234] {
                let w = Fx::from_bits(raw);
                assert_eq!(
                    mem.fetch(Bank::Hidden, 2, 3, w),
                    w,
                    "ecc={ecc} raw={raw:#06x}"
                );
                assert_eq!(
                    mem.fetch(Bank::Output, 1, 0, w),
                    w,
                    "ecc={ecc} raw={raw:#06x}"
                );
            }
            assert_eq!(mem.ecc_counters(), EccCounters::default());
        }
    }

    #[test]
    fn ecc_absorbs_a_single_stuck_data_cell() {
        let mut mem = WeightMemory::new(small_geom(true));
        // Stick one bit of hidden row 1, slot 2 to 1.
        let code = mem.geometry().code_bits();
        mem.push_defect(
            MemDefect::StuckCell {
                row: 1,
                col: 2 * code + 5,
                value: true,
            },
            None,
        );
        let w = Fx::from_bits(0x0000);
        assert_eq!(
            mem.fetch(Bank::Hidden, 1, 2, w),
            w,
            "single stuck cell must be corrected"
        );
        assert_eq!(mem.ecc_counters().corrected, 1);
    }

    #[test]
    fn raw_array_exposes_the_same_stuck_cell() {
        let mut mem = WeightMemory::new(small_geom(false));
        let code = mem.geometry().code_bits();
        mem.push_defect(
            MemDefect::StuckCell {
                row: 1,
                col: 2 * code + 5,
                value: true,
            },
            None,
        );
        let w = Fx::from_bits(0x0000);
        assert_eq!(mem.fetch(Bank::Hidden, 1, 2, w).to_bits(), 1 << 5);
    }

    #[test]
    fn march_detects_each_defect_class_and_repairs_restore_clean() {
        let geom = small_geom(true);
        let code = geom.code_bits();
        let cases: Vec<(MemDefect, &str)> = vec![
            (
                MemDefect::StuckCell {
                    row: 2,
                    col: 7,
                    value: true,
                },
                "stuck cell",
            ),
            (MemDefect::RowStuck { row: 3 }, "row failure"),
            (
                MemDefect::ColStuck {
                    col: 2 * code + 1,
                    value: false,
                },
                "column failure",
            ),
            (MemDefect::SenseAmp { col: 11 }, "sense amp"),
            (MemDefect::WriteDriver { col: 4 }, "write driver"),
            (MemDefect::Bridge { col: 3 * code + 2 }, "bitline bridge"),
        ];
        for (defect, label) in cases {
            let mut mem = WeightMemory::new(geom);
            mem.push_defect(defect.clone(), None);
            let report = march_cminus(&mut mem);
            assert!(!report.clean(), "{label} must be detected");
            match &defect {
                MemDefect::StuckCell { row, col, .. } => {
                    assert_eq!(report.bad_cells, vec![(*row, *col)], "{label}");
                }
                MemDefect::RowStuck { row } => {
                    assert_eq!(report.bad_rows, vec![*row], "{label}");
                }
                MemDefect::ColStuck { col, .. }
                | MemDefect::SenseAmp { col }
                | MemDefect::WriteDriver { col } => {
                    assert_eq!(report.bad_cols, vec![*col], "{label}");
                }
                MemDefect::Bridge { col } => {
                    assert_eq!(report.bad_cols, vec![*col, col + 1], "{label}");
                }
            }
            // Steering the flagged units must silence the array.
            let summary = apply_repairs(&mut mem, &report);
            if matches!(defect, MemDefect::StuckCell { .. }) {
                // A lone cell is left to the ECC, not a spare.
                assert_eq!(summary.rows_steered + summary.cols_steered, 0, "{label}");
            } else {
                assert!(march_cminus(&mut mem).clean(), "{label} must repair clean");
            }
        }
    }

    #[test]
    fn injection_is_deterministic_from_the_seed() {
        let geom = MemGeometry::accelerator();
        let mut a = WeightMemory::new(geom);
        let mut b = WeightMemory::new(geom);
        let mut rng_a = ChaCha8Rng::seed_from_u64(0x5EED);
        let mut rng_b = ChaCha8Rng::seed_from_u64(0x5EED);
        let ra = a.inject_many(12, Activation::Permanent, &mut rng_a);
        let rb = b.inject_many(12, Activation::Permanent, &mut rng_b);
        assert_eq!(ra, rb);
        assert_eq!(a.records(), rb.as_slice());
    }

    #[test]
    fn transient_defects_disqualify_vectorization_and_reset_rewinds() {
        let mut mem = WeightMemory::new(small_geom(true));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        mem.inject_many(
            3,
            Activation::Transient {
                per_eval_probability: 0.5,
            },
            &mut rng,
        );
        assert!(!mem.vectorizable());
        let w = Fx::from_bits(0x0400);
        let first: Vec<u16> = (0..32)
            .map(|i| mem.fetch(Bank::Hidden, 0, i % 7, w).to_bits())
            .collect();
        mem.reset_state();
        let second: Vec<u16> = (0..32)
            .map(|i| mem.fetch(Bank::Hidden, 0, i % 7, w).to_bits())
            .collect();
        assert_eq!(first, second, "reset_state must rewind the fault sequence");
    }

    #[test]
    fn density_injection_rounds_to_cell_count() {
        let geom = MemGeometry::accelerator();
        let mut mem = WeightMemory::new(geom);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let recs = mem.inject_density(1e-3, Activation::Permanent, &mut rng);
        let expect = (1e-3 * geom.data_cells() as f64).round() as usize;
        assert_eq!(recs.len(), expect);
        assert!(expect > 0);
    }

    #[test]
    fn guarded_march_aborts_on_a_tripped_flag_and_matches_when_clear() {
        let mut mem = WeightMemory::new(small_geom(true));
        mem.push_defect(MemDefect::RowStuck { row: 1 }, None);
        let tripped = std::sync::atomic::AtomicBool::new(true);
        assert_eq!(march_cminus_guarded(&mut mem, &tripped), None);
        // The abort path leaves the array power-on clean: a follow-up
        // guarded walk with a clear flag matches the plain entry point.
        let clear = std::sync::atomic::AtomicBool::new(false);
        let guarded = march_cminus_guarded(&mut mem, &clear).unwrap();
        let plain = march_cminus(&mut mem);
        assert_eq!(guarded, plain);
        assert_eq!(guarded.bad_rows, vec![1]);
    }

    #[test]
    fn scrub_localizes_uncorrectable_words() {
        let mut mem = WeightMemory::new(small_geom(true));
        let code = mem.geometry().code_bits();
        // Two stuck cells in the same word defeat SEC-DED.
        for bit in [3usize, 9] {
            mem.push_defect(
                MemDefect::StuckCell {
                    row: 2,
                    col: 5 * code + bit,
                    value: true,
                },
                None,
            );
        }
        let report = mem.scrub();
        assert_eq!(report.uncorrectable, vec![(2, 5)]);
    }
}
