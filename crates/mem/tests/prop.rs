//! Property tests for the SEC-DED (22,16) code: encode/decode roundtrip,
//! every single-bit flip corrected, every double-bit flip detected and
//! never miscorrected into a different clean word.

use dta_mem::ecc::{decode, encode, EccStatus, CODE_BITS};
use proptest::prelude::*;

proptest! {
    #[test]
    fn roundtrip_is_clean_identity(w in any::<u16>()) {
        let cw = encode(w);
        prop_assert_eq!(cw >> CODE_BITS, 0);
        let (data, status) = decode(cw);
        prop_assert_eq!(status, EccStatus::Clean);
        prop_assert_eq!(data, w);
    }

    #[test]
    fn any_single_flip_is_corrected(w in any::<u16>(), bit in 0u32..CODE_BITS) {
        let (data, status) = decode(encode(w) ^ (1 << bit));
        prop_assert_eq!(status, EccStatus::Corrected);
        prop_assert_eq!(data, w);
    }

    #[test]
    fn any_double_flip_is_detected_not_miscorrected(
        w in any::<u16>(),
        a in 0u32..CODE_BITS,
        delta in 1u32..CODE_BITS,
    ) {
        let b = (a + delta) % CODE_BITS;
        let (_, status) = decode(encode(w) ^ (1 << a) ^ (1 << b));
        prop_assert_eq!(status, EccStatus::DoubleDetected);
    }
}

/// Exhaustive backstop beyond the sampled properties: every data word
/// roundtrips and, for a fixed word, all 22 single and 231 double flips
/// behave per the SEC-DED contract.
#[test]
fn exhaustive_flip_matrix_for_one_word() {
    let w = 0x3C5Au16;
    let cw = encode(w);
    for a in 0..CODE_BITS {
        assert_eq!(decode(cw ^ (1 << a)), (w, EccStatus::Corrected), "bit {a}");
        for b in (a + 1)..CODE_BITS {
            let (_, status) = decode(cw ^ (1 << a) ^ (1 << b));
            assert_eq!(status, EccStatus::DoubleDetected, "bits {a},{b}");
        }
    }
}
