//! Microbenchmark: Q6.10 fixed-point arithmetic vs. f64.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dta_fixed::{Fx, SigmoidLut};

fn bench_fixed_ops(c: &mut Criterion) {
    let xs: Vec<Fx> = (0..1024).map(|i| Fx::from_raw((i * 37) as i16)).collect();
    let ys: Vec<Fx> = (0..1024)
        .map(|i| Fx::from_raw((i * 91 + 5) as i16))
        .collect();
    let fx: Vec<f64> = xs.iter().map(|x| x.to_f64()).collect();
    let fy: Vec<f64> = ys.iter().map(|y| y.to_f64()).collect();

    c.bench_function("fx_mac_1024", |b| {
        b.iter(|| {
            let mut acc = Fx::ZERO;
            for (&x, &y) in xs.iter().zip(&ys) {
                acc += x * y;
            }
            black_box(acc)
        })
    });

    c.bench_function("f64_mac_1024", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for (&x, &y) in fx.iter().zip(&fy) {
                acc += x * y;
            }
            black_box(acc)
        })
    });

    let lut = SigmoidLut::new();
    c.bench_function("sigmoid_lut_1024", |b| {
        b.iter(|| {
            let mut acc = Fx::ZERO;
            for &x in &xs {
                acc = acc.wrapping_add(lut.eval(x));
            }
            black_box(acc)
        })
    });

    c.bench_function("sigmoid_exact_1024", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &x in &fx {
                acc += dta_fixed::sigmoid::sigmoid(x);
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fixed_ops
}
criterion_main!(benches);
