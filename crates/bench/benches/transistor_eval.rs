//! Microbenchmark: switch-level CMOS cell evaluation (healthy and
//! defective) and symbolic reconstruction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dta_logic::gate::GateBehavior;
use dta_logic::GateKind;
use dta_transistor::{reconstruct::reconstruct_cell, CmosCell, Defect, FaultyCell};

fn bench_transistor(c: &mut Criterion) {
    let healthy = CmosCell::for_gate(GateKind::Oai22);
    let mut cell = FaultyCell::new(healthy.clone());
    c.bench_function("oai22_switch_eval", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let v = [i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0];
            black_box(cell.eval(&v))
        })
    });

    let mut defective = healthy.clone();
    defective
        .inject(Defect::Bridge {
            stage: 0,
            a: 3,
            b: 4,
        })
        .unwrap();
    let mut faulty = FaultyCell::new(defective.clone());
    c.bench_function("oai22_bridged_eval", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let v = [i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0];
            black_box(faulty.eval(&v))
        })
    });

    c.bench_function("oai22_reconstruct", |b| {
        b.iter(|| black_box(reconstruct_cell(&defective)))
    });

    let xor = CmosCell::for_gate(GateKind::Xor2);
    c.bench_function("xor2_schematic_build", |b| {
        b.iter(|| black_box(CmosCell::for_gate(GateKind::Xor2)))
    });
    let mut xor_eval = FaultyCell::new(xor);
    c.bench_function("xor2_switch_eval", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(xor_eval.eval(&[i & 1 != 0, i & 2 != 0]))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transistor
}
criterion_main!(benches);
