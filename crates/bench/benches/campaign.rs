//! Microbenchmark: the defect-campaign hot path at two granularities.
//!
//! *Cell level* — one faulty-gate evaluation through the switch-level
//! CMOS evaluator vs. the reconstructed truth-table cache. This is the
//! per-gate cost `FaultyCell` used to pay on every evaluation and is
//! where the cache's order-of-magnitude win lives.
//!
//! *Campaign-cell level* — one grid cell of `defect_tolerance_curve`
//! (draw a defect set, retrain, cross-validate), comparing the cached
//! engine against the uncached switch-level baseline
//! (`force_switch_level_baseline`). The faulty cells are a small slice
//! of each operator netlist, so the end-to-end delta is percent-scale;
//! the wall-clock of the whole sweep is dominated by the settle loop
//! and, across cells, by the `--threads` fan-out.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dta_ann::{cross_validate, FaultPlan, ForwardMode, Trainer};
use dta_circuits::{force_switch_level_baseline, FaultModel};
use dta_datasets::suite;
use dta_transistor::{CachedCell, CmosCell, Defect, FaultyCell};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use dta_logic::GateKind;

const DEFECTS: usize = 4;
const HIDDEN: usize = 8;
const FOLDS: usize = 2;
const EPOCHS: usize = 6;
const SEED: u64 = 0xD7A;

fn faulty_oai22() -> CmosCell {
    let mut cell = CmosCell::for_gate(GateKind::Oai22);
    cell.inject(Defect::Open {
        stage: 0,
        transistor: 2,
    })
    .unwrap();
    cell
}

fn bench_cell_eval(c: &mut Criterion) {
    let cell = faulty_oai22();
    let mut switch = FaultyCell::new(cell.clone());
    let mut cached = CachedCell::new(&cell);

    c.bench_function("faulty_oai22_switch_level_eval", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7);
            switch.eval_cell(&[i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0])
        })
    });
    c.bench_function("faulty_oai22_cached_eval", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7);
            cached.eval_cell(&[i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0])
        })
    });
}

/// One campaign cell: draw a defect set, retrain through the faulty
/// forward path, cross-validate. Mirrors `campaign_cell` in
/// `dta-core::campaign` (same RNG derivation for defect count 4, rep 0).
fn campaign_cell(ds: &dta_datasets::Dataset, trainer: &Trainer) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ (DEFECTS as u64) << 24);
    let mut plan = FaultPlan::new(90);
    for _ in 0..DEFECTS {
        plan.inject_random_hidden(HIDDEN, FaultModel::TransistorLevel, &mut rng);
    }
    cross_validate(trainer, ds, HIDDEN, FOLDS, SEED, Some(&mut plan)).mean()
}

fn bench_campaign_cell(c: &mut Criterion) {
    let ds = suite::load("iris").unwrap();
    let trainer = Trainer::new(0.2, 0.1, EPOCHS, ForwardMode::Fixed);

    // Warm the process-wide truth-table cache outside the timed region,
    // the same way a long campaign amortises construction across cells.
    let cached_ref = campaign_cell(&ds, &trainer);
    c.bench_function("campaign_cell_cached", |b| {
        b.iter(|| campaign_cell(&ds, &trainer))
    });

    force_switch_level_baseline(true);
    let switch_ref = campaign_cell(&ds, &trainer);
    c.bench_function("campaign_cell_switch_level", |b| {
        b.iter(|| campaign_cell(&ds, &trainer))
    });
    force_switch_level_baseline(false);

    // Both engines must agree bit-for-bit or the comparison is void.
    assert_eq!(cached_ref, switch_ref, "engines diverged");
    black_box(cached_ref);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cell_eval, bench_campaign_cell
}
criterion_main!(benches);
