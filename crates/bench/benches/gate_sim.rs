//! Microbenchmark: gate-level circuit simulation throughput (the cost
//! of the hybrid faulty-operator path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dta_circuits::{AdderCircuit, FxMulCircuit, SatAdderCircuit, SigmoidUnitCircuit};
use dta_fixed::Fx;

fn bench_gate_sim(c: &mut Criterion) {
    let adder4 = AdderCircuit::new(4);
    let mut sim4 = adder4.simulator();
    c.bench_function("adder4_compute", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(adder4.compute(&mut sim4, i & 15, (i >> 4) & 15))
        })
    });

    let sat = SatAdderCircuit::new();
    let mut sim_sat = sat.simulator();
    c.bench_function("sat_adder16_compute", |b| {
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(2531);
            black_box(sat.compute(
                &mut sim_sat,
                Fx::from_raw(i as i16),
                Fx::from_raw((i >> 3) as i16),
            ))
        })
    });

    let mul = FxMulCircuit::new();
    let mut sim_mul = mul.simulator();
    c.bench_function("fx_mul16_compute", |b| {
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(911);
            black_box(mul.compute(
                &mut sim_mul,
                Fx::from_raw(i as i16),
                Fx::from_raw((i >> 2) as i16),
            ))
        })
    });

    let act = SigmoidUnitCircuit::new();
    let mut sim_act = act.simulator();
    c.bench_function("sigmoid_unit_compute", |b| {
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(433);
            black_box(act.compute(&mut sim_act, Fx::from_raw(i as i16)))
        })
    });

    // 64-lane bit-parallel engine vs. 64 scalar evaluations.
    let adder16 = AdderCircuit::new(16);
    let a_bus: Vec<_> = (0..16)
        .map(|i| adder16.netlist().input(&format!("a[{i}]")).unwrap())
        .collect();
    let b_bus: Vec<_> = (0..16)
        .map(|i| adder16.netlist().input(&format!("b[{i}]")).unwrap())
        .collect();
    let words: Vec<u64> = (0..64u64).map(|i| i * 997 % 65536).collect();
    let mut v = dta_logic::Simulator64::new(adder16.netlist().clone());
    c.bench_function("adder16_64lanes_vectorized", |b| {
        b.iter(|| {
            v.set_input_words(&a_bus, &words);
            v.set_input_words(&b_bus, &words);
            v.settle();
            black_box(v.read_word_lane(&a_bus, 63))
        })
    });
    let mut s = adder16.simulator();
    c.bench_function("adder16_64lanes_scalar", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &w in &words {
                let (sum, _) = adder16.compute(&mut s, w, w);
                acc ^= sum;
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gate_sim
}
criterion_main!(benches);
