//! Microbenchmark: 90-10-10 forward-pass throughput — float, fixed, and
//! the hybrid path with one gate-level faulty operator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dta_ann::{FaultPlan, Mlp, Topology};
use dta_circuits::FaultModel;
use dta_fixed::SigmoidLut;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_forward(c: &mut Criterion) {
    let topo = Topology::accelerator();
    let mlp = Mlp::new(topo, 42);
    let lut = SigmoidLut::new();
    let x: Vec<f64> = (0..90).map(|i| (i % 13) as f64 / 13.0).collect();

    c.bench_function("forward_float_90_10_10", |b| {
        b.iter(|| black_box(mlp.forward_float(&x)))
    });

    c.bench_function("forward_fixed_90_10_10", |b| {
        b.iter(|| black_box(mlp.forward_fixed(&x, &lut)))
    });

    let mut plan = FaultPlan::new(90);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    plan.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
    c.bench_function("forward_faulty_1_defect_90_10_10", |b| {
        b.iter(|| black_box(mlp.forward_faulty(&x, &lut, &mut plan)))
    });

    let mut plan10 = FaultPlan::new(90);
    for _ in 0..10 {
        plan10.inject_random_hidden(10, FaultModel::TransistorLevel, &mut rng);
    }
    c.bench_function("forward_faulty_10_defects_90_10_10", |b| {
        b.iter(|| black_box(mlp.forward_faulty(&x, &lut, &mut plan10)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_forward
}
criterion_main!(benches);
