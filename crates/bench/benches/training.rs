//! Microbenchmark: back-propagation epoch throughput (companion-core
//! training through the hardware forward path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dta_ann::{FaultPlan, ForwardMode, Mlp, Topology, Trainer};
use dta_circuits::FaultModel;
use dta_datasets::suite;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_training(c: &mut Criterion) {
    let ds = suite::load("iris").unwrap();
    let idx: Vec<usize> = (0..ds.len()).collect();
    let topo = Topology::new(4, 8, 3);

    for (label, mode) in [
        ("train_epoch_iris_float", ForwardMode::Float),
        ("train_epoch_iris_fixed", ForwardMode::Fixed),
    ] {
        let trainer = Trainer::new(0.2, 0.1, 1, mode);
        c.bench_function(label, |b| {
            b.iter(|| {
                let mut mlp = Mlp::new(topo, 1);
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                trainer.train(&mut mlp, &ds, &idx, None, &mut rng);
                black_box(mlp)
            })
        });
    }

    let trainer = Trainer::new(0.2, 0.1, 1, ForwardMode::Fixed);
    c.bench_function("train_epoch_iris_3_defects", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut plan = FaultPlan::new(90);
        for _ in 0..3 {
            plan.inject_random_hidden(8, FaultModel::TransistorLevel, &mut rng);
        }
        b.iter(|| {
            let mut mlp = Mlp::new(topo, 1);
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            trainer.train(&mut mlp, &ds, &idx, Some(&mut plan), &mut rng);
            black_box(mlp)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training
}
criterion_main!(benches);
