//! Figure-10-style comparison of fault *lifetimes*: the same defect
//! sites injected as permanent, transient, or intermittent faults, with
//! retraining, so the accuracy cost of each activation class can be
//! compared directly.
//!
//! * `permanent` — the paper's Figure 10 regime: a defect is present in
//!   every evaluation.
//! * `transient` — each defect is active in any given evaluation with
//!   probability `--p` (soft-error-like upsets; default 0.05).
//! * `intermittent` — each defect is active for `--duty` out of every
//!   `--period` evaluations (marginal devices that come and go with
//!   operating conditions; defaults 5/50).
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_transient
//! cargo run --release -p dta-bench --bin exp_transient -- --p 0.2 --period 20 --duty 10
//! cargo run --release -p dta-bench --bin exp_transient -- --checkpoint transient.ckpt
//! ```
//!
//! `--checkpoint BASE` journals finished grid cells to one file per
//! class (`BASE.permanent`, `BASE.transient`, `BASE.intermittent` —
//! the classes have different configuration fingerprints); a killed
//! run restarted with the same flags skips journaled cells and
//! reproduces the uninterrupted output byte-for-byte. `--chaos
//! defects:rep:attempts[,..]` injects engine panics into the named
//! grid cells (isolation/retry demo — a cell panicking twice is
//! reported in the `failed` column instead of killing the run).
//!
//! Machine-readable lines for scripts/CI start with `data `:
//! `data <task> <class> <defects> <mean> <min> <max> <failed> <retried>`.
//! A perf record goes to `BENCH_transient.json` (`--bench-out`
//! overrides).

use std::time::Instant;

use dta_bench::{rule, Args, JsonMap};
use dta_circuits::{Activation, FaultModel};
use dta_core::campaign::{defect_tolerance_curve_resumable, CampaignConfig, ChaosCell, CurvePoint};
use dta_core::checkpoint::Checkpoint;
use dta_core::parallel::effective_threads;
use dta_datasets::{suite, TaskSpec};

/// Parses `--chaos defects:rep:attempts[,..]`.
fn parse_chaos(spec: &str) -> Vec<ChaosCell> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|triple| {
            let parts: Vec<usize> = triple
                .trim()
                .split(':')
                .map(|f| {
                    f.parse().unwrap_or_else(|e| {
                        eprintln!("--chaos `{triple}`: {e} (expected defects:rep:attempts)");
                        std::process::exit(2);
                    })
                })
                .collect();
            if parts.len() != 3 {
                eprintln!("--chaos `{triple}`: expected defects:rep:attempts");
                std::process::exit(2);
            }
            ChaosCell {
                defects: parts[0],
                rep: parts[1],
                attempts: parts[2],
            }
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let task_names = {
        let requested = args.get_str_list("tasks", &["iris"]);
        if requested == ["all"] {
            suite::specs().iter().map(|s| s.name.to_string()).collect()
        } else {
            requested
        }
    };
    let epochs = args.get("epochs", 20usize);
    let p = args.get("p", 0.05f64);
    let period = args.get("period", 50u32);
    let duty = args.get("duty", 5u32);
    let chaos = args
        .get_opt_str("chaos")
        .map(parse_chaos)
        .unwrap_or_default();

    let classes: Vec<(&str, Activation)> = {
        let requested = args.get_str_list("classes", &["permanent", "transient", "intermittent"]);
        requested
            .iter()
            .map(|name| match name.as_str() {
                "permanent" => ("permanent", Activation::Permanent),
                "transient" => (
                    "transient",
                    Activation::Transient {
                        per_eval_probability: p,
                    },
                ),
                "intermittent" => ("intermittent", Activation::Intermittent { period, duty }),
                other => {
                    eprintln!("unknown activation class `{other}`");
                    std::process::exit(2);
                }
            })
            .collect()
    };

    let base_cfg = CampaignConfig {
        defect_counts: args.get_usize_list("counts", &[0, 4, 8, 12, 18]),
        repetitions: args.get("reps", 3usize),
        folds: args.get("folds", 2usize),
        epochs: if epochs == 0 { None } else { Some(epochs) },
        model: match args.get_str_list("model", &["transistor"])[0].as_str() {
            "gate" => FaultModel::GateLevel,
            _ => FaultModel::TransistorLevel,
        },
        activation: Activation::Permanent,
        seed: args.get("seed", 0x7A41u64),
        threads: args.get("threads", 1usize),
        chaos,
        mem: None,
        combined: false,
    };

    let specs: Vec<TaskSpec> = task_names
        .iter()
        .filter_map(|name| {
            let spec = suite::specs().into_iter().find(|s| s.name == name);
            if spec.is_none() {
                eprintln!("unknown task `{name}`, skipping");
            }
            spec
        })
        .collect();

    println!("Fault-lifetime comparison — accuracy vs. #defects after retraining");
    println!(
        "(transient p={p}, intermittent {duty}/{period} evals, {} reps, {} folds, epochs {:?})",
        base_cfg.repetitions, base_cfg.folds, base_cfg.epochs
    );

    let started = Instant::now();
    let mut failed_cells = 0usize;
    let mut retried_cells = 0usize;
    let mut curves: Vec<(String, String, Vec<CurvePoint>)> = Vec::new();

    for spec in &specs {
        println!("\ntask `{}`:", spec.name);
        print!("{:<14}", "class");
        for &d in &base_cfg.defect_counts {
            print!("{d:>8}");
        }
        println!("{:>8}{:>8}", "failed", "retried");
        rule(14 + 8 * (base_cfg.defect_counts.len() + 2));

        for (class_name, activation) in &classes {
            let cfg = CampaignConfig {
                activation: *activation,
                ..base_cfg.clone()
            };
            // One journal per class: the activation is part of the
            // fingerprint, so the classes cannot share a file.
            let checkpoint = args.get_opt_str("checkpoint").map(|base| {
                let path = format!("{base}.{class_name}");
                match Checkpoint::open(&path, &cfg.fingerprint()) {
                    Ok(ck) => {
                        if ck.completed() > 0 {
                            eprintln!(
                                "resuming {class_name} from {path}: {} cells journaled",
                                ck.completed()
                            );
                        }
                        ck
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            });
            let curve = defect_tolerance_curve_resumable(spec, &cfg, checkpoint.as_ref())
                .unwrap_or_else(|e| {
                    eprintln!("campaign failed: {e}");
                    std::process::exit(1);
                });

            print!("{class_name:<14}");
            let (mut failed, mut retried) = (0, 0);
            for point in &curve {
                print!("{:>7.1}%", point.mean_accuracy * 100.0);
                failed += point.failed;
                retried += point.retried;
            }
            println!("{failed:>8}{retried:>8}");
            failed_cells += failed;
            retried_cells += retried;
            curves.push((spec.name.to_string(), class_name.to_string(), curve));
        }
    }
    let wall_s = started.elapsed().as_secs_f64();

    // Stable machine-readable lines (floats in shortest round-trip
    // form, so a resumed run diffs clean against an uninterrupted one).
    println!();
    for (task, class, curve) in &curves {
        for point in curve {
            println!(
                "data {task} {class} {} {:?} {:?} {:?} {} {}",
                point.defects,
                point.mean_accuracy,
                point.min_accuracy,
                point.max_accuracy,
                point.failed,
                point.retried
            );
        }
    }

    let threads_used = effective_threads(base_cfg.threads);
    let cells =
        (specs.len() * classes.len() * base_cfg.defect_counts.len() * base_cfg.repetitions) as u64;
    println!(
        "\n{cells} cells in {wall_s:.2} s on {threads_used} thread(s), \
         {failed_cells} failed, {retried_cells} retried"
    );

    let out_path = args.get("bench-out", "BENCH_transient.json".to_string());
    let record = JsonMap::new()
        .str("bin", "exp_transient")
        .str_list(
            "tasks",
            &specs.iter().map(|s| s.name.to_string()).collect::<Vec<_>>(),
        )
        .str_list(
            "classes",
            &classes
                .iter()
                .map(|(name, _)| name.to_string())
                .collect::<Vec<_>>(),
        )
        .int_list("defect_counts", &base_cfg.defect_counts)
        .int("repetitions", base_cfg.repetitions as u64)
        .num("transient_p", p)
        .int("intermittent_period", u64::from(period))
        .int("intermittent_duty", u64::from(duty))
        .int("threads", threads_used as u64)
        .int("cells", cells)
        .int("failed_cells", failed_cells as u64)
        .int("retried_cells", retried_cells as u64)
        .num("wall_s", wall_s)
        .num("cells_per_s", cells as f64 / wall_s);
    match record.write(&out_path) {
        Ok(()) => println!("perf record written to {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
