//! §VI-A technology scaling: the key-logic (interface, write decode, TM
//! control) area fraction across technology generations, assuming the
//! datapath halves per node while key logic — which must stay
//! defect-free and therefore cannot shrink aggressively — stays
//! constant.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_scaling
//! ```

use dta_bench::{pct, rule};
use dta_core::cost::CostModel;

fn main() {
    let model = CostModel::calibrated_90nm();
    println!("Key-logic area fraction across technology generations (paper §VI-A)\n");
    println!(
        "{:<14}{:>10}{:>22}",
        "generation", "node", "key-logic fraction"
    );
    rule(46);
    let nodes = ["90nm", "65nm", "45nm", "32nm", "22nm", "16nm", "11nm"];
    for (g, node) in nodes.iter().enumerate() {
        let frac = model.key_logic_area_fraction(g as u32);
        let marker = match g {
            4 => "  <- paper: <10% after 4 generations",
            6 => "  <- paper: 25% at the 6th generation",
            _ => "",
        };
        println!("{:<14}{:>10}{:>22}{marker}", g, node, pct(frac));
    }
    println!(
        "\n(scaling up the neuron count per generation would shrink the \
         fraction further, as the paper notes)"
    );
}
