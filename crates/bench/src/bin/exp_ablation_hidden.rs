//! Ablation: hidden-layer size sweep (paper §IV: "the number of hidden
//! neurons (10) is the best trade-off between accuracy and cost for the
//! example cases we consider").
//!
//! For each task, sweeps the hidden-layer size over the Table I range
//! and reports cross-validated accuracy next to the silicon area the
//! cost model assigns to that geometry.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_ablation_hidden
//! ```

use dta_ann::{cross_validate, ForwardMode, Topology, Trainer};
use dta_bench::{require_task, rule, Args};
use dta_core::cost::CostModel;

fn main() {
    let args = Args::parse();
    let task_names = args.get_str_list("tasks", &["iris", "wine", "glass", "vehicle"]);
    let epochs = args.get("epochs", 30usize);
    let folds = args.get("folds", 3usize);
    let seed = args.get("seed", 0x41Du64);
    let hiddens = args.get_usize_list("hidden", &[2, 4, 6, 8, 10, 12, 14, 16]);

    let cost = CostModel::calibrated_90nm();
    print!("{:<12}", "task");
    for &h in &hiddens {
        print!("{h:>8}");
    }
    println!();
    rule(12 + 8 * hiddens.len());

    // Mean accuracy across tasks per hidden size, for the trade-off row.
    let mut sums = vec![0.0f64; hiddens.len()];
    let mut rows = 0;
    for name in &task_names {
        let spec = require_task(name);
        let ds = spec.dataset();
        let trainer = Trainer::new(spec.learning_rate, 0.1, epochs, ForwardMode::Fixed);
        print!("{:<12}", spec.name);
        for (i, &h) in hiddens.iter().enumerate() {
            let cv = cross_validate(&trainer, &ds, h, folds, seed, None);
            sums[i] += cv.mean();
            print!("{:>7.1}%", cv.mean() * 100.0);
        }
        println!();
        rows += 1;
    }

    print!("{:<12}", "mean");
    for s in &sums {
        print!("{:>7.1}%", s / rows as f64 * 100.0);
    }
    println!();

    print!("{:<12}", "area mm²");
    for &h in &hiddens {
        let area = cost.report(Topology::new(90, h, 10)).area_mm2;
        print!("{area:>8.2}");
    }
    println!();
    println!(
        "\ntrade-off: accuracy saturates around 8-10 hidden neurons while area \
         keeps growing linearly — the paper's rationale for the 10-neuron array."
    );
}
