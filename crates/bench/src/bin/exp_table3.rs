//! Table III: accelerator, activation-function and memory-interface
//! characteristics at 90 nm, plus the §VI-A bandwidth arithmetic.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_table3
//! ```

use dta_ann::Topology;
use dta_bench::rule;
use dta_core::cost::{table3, CostModel, Inventory, OperatorMetrics, SensitiveAreaReport};
use dta_core::MemoryInterface;

fn main() {
    let model = CostModel::calibrated_90nm();
    let geometry = Topology::accelerator();
    let report = model.report(geometry);
    let m = OperatorMetrics::measured();
    let inv = Inventory::for_geometry(geometry);

    println!("Table III — accelerator characteristics at 90 nm ({geometry})\n");
    println!(
        "{:<26}{:>14}{:>14}{:>14}",
        "characteristic", "accelerator", "activation", "interface"
    );
    rule(68);
    println!(
        "{:<26}{:>14.2}{:>14.2}{:>14}",
        "time (ns)", report.latency_ns, report.activation.latency_ns, "-"
    );
    println!("{:<26}{:>14}{:>14}{:>14}", "freq (MHz)", "-", "-", 800);
    println!(
        "{:<26}{:>14.3}{:>14.4}{:>14.3}",
        "area (mm^2)", report.area_mm2, report.activation.area_mm2, report.interface.area_mm2
    );
    println!(
        "{:<26}{:>14.3}{:>14.4}{:>14.4}",
        "power (W)", report.power_w, report.activation.power_w, report.interface.power_w
    );
    println!(
        "{:<26}{:>14.2}{:>14.4}{:>14.4}",
        "energy/row (nJ)",
        report.energy_per_row_nj,
        report.activation.energy_per_row_nj,
        report.interface.energy_per_row_nj
    );

    println!("\npaper Table III: 14.92 ns | 9.02 mm^2 | 4.70 W | 70.16 nJ/row");
    println!(
        "paper activation: {} ns | {} mm^2 | {} W | {} nJ",
        table3::ACTIVATION_LATENCY_NS,
        table3::ACTIVATION_AREA_MM2,
        table3::ACTIVATION_POWER_W,
        table3::ACTIVATION_ENERGY_NJ
    );

    println!("\nStructural inventory behind the model:");
    println!(
        "  {} multipliers ({} T each, depth {}), {} adders ({} T, depth {}),",
        inv.multipliers, m.mul_transistors, m.mul_depth, inv.adders, m.add_transistors, m.add_depth
    );
    println!(
        "  {} activation units ({} T, depth {}), {} latch words -> {} transistors total",
        inv.activations, m.act_transistors, m.act_depth, inv.latch_words, inv.transistors
    );

    println!("\nMemory interface / bandwidth (paper §VI-A):");
    let dma = MemoryInterface::paper_config();
    let bw = dma.bandwidth_report(report.latency_ns);
    println!(
        "  {} bits/row every {:.2} ns -> {:.2} GB/s (paper: 11.23 GB/s, QPI-class)",
        bw.bits_per_row, report.latency_ns, bw.required_gb_s
    );
    println!(
        "  2 x 64-bit links: {} cycles/row, min clock {:.0} MHz (paper: >= 754, clocked at 800)",
        bw.cycles_per_row, bw.min_clock_mhz
    );

    println!("\nDefect-sensitive region (paper §VI-C):");
    let s = SensitiveAreaReport::for_geometry(geometry);
    println!(
        "  output adders + activations: {:.1}% of the output layer, {:.1}% of total",
        s.fraction_of_output_layer * 100.0,
        s.fraction_of_total * 100.0
    );
    println!("  (paper: 25.9% of the output layer, 2.3% of total area)");
    println!(
        "  mitigation overheads: harden as key logic {:.1}% vs one spare output neuron {:.1}% -> {}",
        s.harden_overhead * 100.0,
        s.spare_neuron_overhead * 100.0,
        if s.hardening_preferable() {
            "hardening preferable (as in the paper)"
        } else {
            "spare neurons already cheaper in our structural model"
        }
    );
}
