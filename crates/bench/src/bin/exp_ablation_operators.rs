//! Ablation: arithmetic-operator implementations (the paper's automated
//! flow exists "to assess different neural networks organizations and
//! operators — e.g., different sigmoid functions, different
//! implementations of arithmetic operators").
//!
//! Compares ripple-carry vs. carry-lookahead adders and array vs.
//! Wallace-tree multipliers on structure (transistors, critical-path
//! depth) and on single-defect visibility (fraction of random operands
//! where one random transistor defect corrupts the output).
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_ablation_operators
//! ```

use dta_bench::{pct, rule, Args};
use dta_circuits::{
    AdderCircuit, ArrayMultiplier, ClaAdderCircuit, DefectPlan, FaultModel, WallaceMultiplier,
};
use dta_logic::{Netlist, NodeId, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Mean single-defect visibility over `defects` random injections ×
/// `samples` random operand pairs, for any two-operand circuit.
#[allow(clippy::too_many_arguments)]
fn visibility(
    net: &Arc<Netlist>,
    cells: &[Vec<NodeId>],
    mut healthy_then_faulty: impl FnMut(&mut Simulator, u64, u64) -> u64,
    width: usize,
    defects: usize,
    samples: usize,
    seed: u64,
) -> f64 {
    let mask = (1u64 << width) - 1;
    let mut total = 0.0;
    for d in 0..defects {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (d as u64) << 8);
        let mut plan = DefectPlan::new(FaultModel::TransistorLevel);
        plan.add_random(net, cells, &mut rng);
        let mut clean_sim = Simulator::new(Arc::clone(net));
        let mut faulty_sim = Simulator::new(Arc::clone(net));
        plan.apply(&mut faulty_sim);
        let mut visible = 0usize;
        let mut x = seed ^ 0x9e3779b97f4a7c15;
        for _ in 0..samples {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (a, b) = (x & mask, (x >> 20) & mask);
            let clean = healthy_then_faulty(&mut clean_sim, a, b);
            let faulty = healthy_then_faulty(&mut faulty_sim, a, b);
            if clean != faulty {
                visible += 1;
            }
        }
        total += visible as f64 / samples as f64;
    }
    total / defects as f64
}

fn main() {
    let args = Args::parse();
    let defects = args.get("defects", 40usize);
    let samples = args.get("samples", 200usize);
    let seed = args.get("seed", 0x0950u64);

    println!(
        "Operator implementations: structure and single-defect visibility \
         ({defects} defects x {samples} operand pairs)\n"
    );
    println!(
        "{:<26}{:>12}{:>8}{:>14}",
        "operator", "transistors", "depth", "1-defect vis"
    );
    rule(60);

    let ripple = AdderCircuit::new(16);
    let vis = visibility(
        ripple.netlist(),
        ripple.cells(),
        |sim, a, b| {
            let (s, c) = ripple.compute(sim, a, b);
            s | (u64::from(c) << 16)
        },
        16,
        defects,
        samples,
        seed,
    );
    println!(
        "{:<26}{:>12}{:>8}{:>14}",
        "adder: ripple-carry",
        ripple.netlist().transistor_count(),
        ripple.netlist().logic_depth(),
        pct(vis)
    );

    let cla = ClaAdderCircuit::new(16);
    let vis = visibility(
        cla.netlist(),
        cla.cells(),
        |sim, a, b| {
            let (s, c) = cla.compute(sim, a, b);
            s | (u64::from(c) << 16)
        },
        16,
        defects,
        samples,
        seed,
    );
    println!(
        "{:<26}{:>12}{:>8}{:>14}",
        "adder: carry-lookahead",
        cla.netlist().transistor_count(),
        cla.netlist().logic_depth(),
        pct(vis)
    );

    let array = ArrayMultiplier::signed(16);
    let vis = visibility(
        array.netlist(),
        array.cells(),
        |sim, a, b| array.compute(sim, a, b),
        16,
        defects,
        samples,
        seed,
    );
    println!(
        "{:<26}{:>12}{:>8}{:>14}",
        "multiplier: array",
        array.netlist().transistor_count(),
        array.netlist().logic_depth(),
        pct(vis)
    );

    let wallace = WallaceMultiplier::signed(16);
    let vis = visibility(
        wallace.netlist(),
        wallace.cells(),
        |sim, a, b| wallace.compute(sim, a, b),
        16,
        defects,
        samples,
        seed,
    );
    println!(
        "{:<26}{:>12}{:>8}{:>14}",
        "multiplier: Wallace tree",
        wallace.netlist().transistor_count(),
        wallace.netlist().logic_depth(),
        pct(vis)
    );

    println!(
        "\ninterpretation: the Wallace tree halves the transistor count (no \
         idle zero-adds) and cuts the depth, but every surviving gate is \
         load-bearing, so a single defect is *more* visible — denser \
         operators trade silent redundancy for area, which matters for the \
         defect-tolerance budget."
    );
}
