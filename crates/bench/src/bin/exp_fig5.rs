//! Figure 5: output-value distributions of faulty 4-bit adders and
//! multipliers under gate-level vs. transistor-level defect injection.
//!
//! For each configuration, `--trials` random defect sets are injected;
//! all 256 input pairs are presented **in random order** (so memory
//! effects from asymmetric N/P networks are exercised, as in the paper)
//! and the distribution of the output value is accumulated. The paper's
//! finding: the transistor-level profile stays closer to the error-free
//! profile than the gate-level profile.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_fig5 -- --trials 1000
//! ```

use dta_bench::{total_variation, Args};
use dta_circuits::{AdderCircuit, ArrayMultiplier, DefectPlan, FaultModel};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Output histogram of one operator under one fault model.
fn adder_histogram(
    adder: &AdderCircuit,
    model: Option<FaultModel>,
    defects: usize,
    trials: usize,
    seed: u64,
) -> Vec<u64> {
    // Healthy x+y lies in 0..=30, but a faulty adder can emit any 5-bit
    // pattern including 31.
    let mut hist = vec![0u64; 32];
    let mut pairs: Vec<(u64, u64)> = (0..16).flat_map(|a| (0..16).map(move |b| (a, b))).collect();
    for trial in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (trial as u64) << 8);
        let mut sim = adder.simulator();
        if let Some(model) = model {
            let mut plan = DefectPlan::new(model);
            for _ in 0..defects {
                plan.add_random(adder.netlist(), adder.cells(), &mut rng);
            }
            plan.apply(&mut sim);
        }
        pairs.shuffle(&mut rng);
        for &(a, b) in &pairs {
            let (s, c) = adder.compute(&mut sim, a, b);
            hist[(s | (u64::from(c) << 4)) as usize] += 1;
        }
    }
    hist
}

fn multiplier_histogram(
    mul: &ArrayMultiplier,
    model: Option<FaultModel>,
    defects: usize,
    trials: usize,
    seed: u64,
) -> Vec<u64> {
    let mut hist = vec![0u64; 256]; // x*y in 0..=225, 8-bit output
    let mut pairs: Vec<(u64, u64)> = (0..16).flat_map(|a| (0..16).map(move |b| (a, b))).collect();
    for trial in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (trial as u64) << 8);
        let mut sim = mul.simulator();
        if let Some(model) = model {
            let mut plan = DefectPlan::new(model);
            for _ in 0..defects {
                plan.add_random(mul.netlist(), mul.cells(), &mut rng);
            }
            plan.apply(&mut sim);
        }
        pairs.shuffle(&mut rng);
        for &(a, b) in &pairs {
            let p = mul.compute(&mut sim, a, b) & 0xFF;
            hist[p as usize] += 1;
        }
    }
    hist
}

fn print_panel(title: &str, hist_none: &[u64], hist_trans: &[u64], hist_gate: &[u64]) {
    println!("\n== {title} ==");
    let tv_trans = total_variation(hist_trans, hist_none);
    let tv_gate = total_variation(hist_gate, hist_none);
    println!(
        "TV distance to error-free: transistor {:.4}, gate {:.4}",
        tv_trans, tv_gate
    );
    println!(
        "transistor-level closer to error-free: {}",
        if tv_trans < tv_gate {
            "YES (paper's finding)"
        } else {
            "no"
        }
    );
    // Coarse histogram: 8 buckets.
    let buckets = 8;
    let per = hist_none.len().div_ceil(buckets);
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "value range", "none", "trans.", "gate"
    );
    for b in 0..buckets {
        let lo = b * per;
        let hi = ((b + 1) * per).min(hist_none.len());
        if lo >= hist_none.len() {
            break;
        }
        let sum = |h: &[u64]| h[lo..hi].iter().sum::<u64>();
        println!(
            "{:>5}..{:<5} {:>12} {:>12} {:>12}",
            lo,
            hi - 1,
            sum(hist_none),
            sum(hist_trans),
            sum(hist_gate)
        );
    }
}

fn main() {
    let args = Args::parse();
    let trials = args.get("trials", 200usize);
    let seed = args.get("seed", 0xF165u64);
    println!("Figure 5 — faulty 4-bit operators ({trials} random defect sets per panel)");

    let adder = AdderCircuit::new(4);
    let clean = adder_histogram(&adder, None, 0, 1, seed);
    // Scale the clean histogram to the trial count for fair TV stats.
    let clean_scaled: Vec<u64> = clean.iter().map(|&c| c * trials as u64).collect();
    for defects in [1usize, 5, 20] {
        let trans = adder_histogram(
            &adder,
            Some(FaultModel::TransistorLevel),
            defects,
            trials,
            seed,
        );
        let gate = adder_histogram(&adder, Some(FaultModel::GateLevel), defects, trials, seed);
        print_panel(
            &format!("4-bit adder, {defects} defect(s)"),
            &clean_scaled,
            &trans,
            &gate,
        );
    }

    let mul = ArrayMultiplier::unsigned(4);
    let clean = multiplier_histogram(&mul, None, 0, 1, seed);
    let clean_scaled: Vec<u64> = clean.iter().map(|&c| c * trials as u64).collect();
    let trans = multiplier_histogram(&mul, Some(FaultModel::TransistorLevel), 20, trials, seed);
    let gate = multiplier_histogram(&mul, Some(FaultModel::GateLevel), 20, trials, seed);
    print_panel("4-bit multiplier, 20 defects", &clean_scaled, &trans, &gate);
}
