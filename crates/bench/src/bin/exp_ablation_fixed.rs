//! Ablation: datapath precision sweep (paper §IV: "fixed-point
//! computations with as little as 8 bits have been shown to achieve
//! similar accuracy ... we opt for a 16-bit design" and "we empirically
//! checked that this 16-bit design allows to achieve the same accuracy
//! as a floating-point design").
//!
//! A Qm.n-quantized forward path (weights, inputs and activations
//! quantized; exact sigmoid on the quantized values) is swept over word
//! widths and compared against the f64 reference.
//!
//! ```sh
//! cargo run --release -p dta-bench --bin exp_ablation_fixed
//! ```

use dta_ann::{ForwardTrace, Mlp, Topology, Trainer};
use dta_bench::{pct, require_task, rule, Args};
use dta_fixed::{sigmoid::sigmoid, QFormat};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Forward pass with every operand and intermediate quantized to `q`.
fn forward_quantized(mlp: &Mlp, x: &[f64], q: QFormat) -> ForwardTrace {
    let topo = mlp.topology();
    let xq: Vec<f64> = x.iter().map(|&v| q.quantize_round(v)).collect();
    let hidden: Vec<f64> = (0..topo.hidden)
        .map(|j| {
            let mut acc = q.quantize_round(mlp.w_hidden(j, topo.inputs));
            for (i, &xi) in xq.iter().enumerate() {
                let w = q.quantize_round(mlp.w_hidden(j, i));
                acc = q.quantize(acc + q.quantize(w * xi));
            }
            q.quantize(sigmoid(acc))
        })
        .collect();
    let output_pre: Vec<f64> = (0..topo.outputs)
        .map(|k| {
            let mut acc = q.quantize_round(mlp.w_output(k, topo.hidden));
            for (j, &hj) in hidden.iter().enumerate() {
                let w = q.quantize_round(mlp.w_output(k, j));
                acc = q.quantize(acc + q.quantize(w * hj));
            }
            acc
        })
        .collect();
    let output = output_pre.iter().map(|&a| q.quantize(sigmoid(a))).collect();
    ForwardTrace {
        hidden,
        output_pre,
        output,
    }
}

fn main() {
    let args = Args::parse();
    let task_names = args.get_str_list("tasks", &["iris", "wine", "vehicle"]);
    let epochs = args.get("epochs", 30usize);
    let seed = args.get("seed", 0xF17ED_u64);

    // Formats: total width 8/12/16/20/24 with ~1/3 integral bits.
    let formats = [
        QFormat::new(3, 5),
        QFormat::new(4, 8),
        QFormat::new(6, 10), // the paper's choice
        QFormat::new(7, 13),
        QFormat::new(8, 16),
    ];

    print!("{:<12}{:>10}", "task", "f64");
    for q in &formats {
        print!("{:>10}", q.to_string());
    }
    println!();
    rule(12 + 10 * (formats.len() + 1));

    for name in &task_names {
        let spec = require_task(name);
        let ds = spec.dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        // One float-trained network per task; evaluate it through each
        // quantized path (training stays on the companion core).
        let trainer = Trainer::new(spec.learning_rate, 0.1, epochs, dta_ann::ForwardMode::Float);
        let topo = Topology::new(ds.n_features(), spec.hidden, ds.n_classes());
        let mut mlp = Mlp::new(topo, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        trainer.train(&mut mlp, &ds, &idx, None, &mut rng);

        let float_acc = Trainer::evaluate_with(&mlp, &ds, &idx, |m, x| m.forward_float(x));
        print!("{:<12}{:>10}", spec.name, pct(float_acc));
        for &q in &formats {
            let acc = Trainer::evaluate_with(&mlp, &ds, &idx, |m, x| forward_quantized(m, x, q));
            print!("{:>10}", pct(acc));
        }
        println!();
    }
    println!(
        "\nexpected shape: accuracy saturates by Q6.10 (16 bits); very narrow \
         formats (8 bits) may lose a little — matching Holi & Hwang and the \
         paper's design choice."
    );
}
